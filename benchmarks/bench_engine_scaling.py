"""Engine scaling: serial vs parallel wall time and warm-cache replay.

One fixed batch — twenty workloads (four per class) across the full
depth grid at full trace length — executed serially, on 2 and 4 workers,
and finally replayed from a warm result cache.  The recorded table backs docs/ENGINE.md's scaling
notes; the assertions pin the engine's contract (parallel results equal
serial ones, a warm replay executes nothing) rather than exact speedups,
which depend on the host.
"""

import os
import time

import pytest

from conftest import run_once
from repro.engine import EngineConfig, ExecutionEngine
from repro.engine.scheduler import jobs_for_specs
from repro.engine.serialize import result_to_dict
from repro.trace import small_suite

DEPTHS = tuple(range(2, 26))
TRACE_LENGTH = 8000


def _batch():
    return jobs_for_specs(small_suite(4), DEPTHS, trace_length=TRACE_LENGTH)


def _timed_run(workers: int, cache_dir=None):
    engine = ExecutionEngine(EngineConfig(workers=workers, cache_dir=cache_dir))
    started = time.perf_counter()
    results = engine.run(_batch())
    return time.perf_counter() - started, results, engine.report


@pytest.mark.benchmark(group="engine")
def test_engine_scaling(benchmark, record_table, tmp_path):
    serial_time, serial_results, _ = run_once(benchmark, lambda: _timed_run(1))

    lines = [
        f"Engine scaling — {len(serial_results)} workloads x {len(DEPTHS)} depths, "
        f"{TRACE_LENGTH}-instruction traces ({os.cpu_count()} host cores)",
        f"  serial (1 worker) : {serial_time:6.1f}s",
    ]
    for workers in (2, 4):
        wall, results, _ = _timed_run(workers)
        for a, b in zip(serial_results, results):
            assert [result_to_dict(r) for r in a.results] == [
                result_to_dict(r) for r in b.results
            ]
        lines.append(
            f"  {workers} workers         : {wall:6.1f}s  "
            f"(speedup x{serial_time / wall:.1f})"
        )

    cache_dir = tmp_path / "cache"
    cold_time, _, cold_report = _timed_run(1, cache_dir=cache_dir)
    warm_time, warm_results, warm_report = _timed_run(1, cache_dir=cache_dir)
    assert cold_report.executed == len(serial_results)
    assert warm_report.executed == 0
    assert warm_report.cache_hits == len(serial_results)
    for a, b in zip(serial_results, warm_results):
        assert [result_to_dict(r) for r in a.results] == [
            result_to_dict(r) for r in b.results
        ]
    lines.append(
        f"  warm cache        : {warm_time:6.2f}s  "
        f"(speedup x{cold_time / warm_time:.0f}, "
        f"{warm_report.cache_hits}/{warm_report.jobs} cache hits, 0 executed)"
    )

    record_table("engine_scaling", "\n".join(lines))
