"""Microbenchmarks of the substrates themselves (throughput numbers).

Unlike the figure benches (single-shot experiments), these measure the
library's working rates with proper multi-round statistics: simulated
instructions per second, trace-generation rate, and the analytic
optimiser's latency.
"""

import pytest

from repro.core import DesignSpace, calibrate_leakage, optimum_depth
from repro.pipeline import PipelineSimulator
from repro.trace import WorkloadClass, by_class, generate_trace

TRACE_LENGTH = 20000


@pytest.fixture(scope="module")
def trace():
    return generate_trace(by_class(WorkloadClass.MODERN)[0], TRACE_LENGTH)


@pytest.mark.benchmark(group="substrates")
def test_simulator_throughput(benchmark, trace):
    simulator = PipelineSimulator()
    result = benchmark(simulator.simulate, trace, 12)
    assert result.instructions == TRACE_LENGTH


@pytest.mark.benchmark(group="substrates")
def test_trace_generation_rate(benchmark):
    spec = by_class(WorkloadClass.LEGACY)[0]
    trace = benchmark(generate_trace, spec, TRACE_LENGTH)
    assert len(trace) == TRACE_LENGTH


@pytest.mark.benchmark(group="substrates")
def test_analytic_optimum_latency(benchmark):
    space = DesignSpace()
    space = space.with_power(calibrate_leakage(space, 0.15, 8.0))
    result = benchmark(optimum_depth, space, 3.0)
    assert result.pipelined
