"""Regenerate paper Fig. 8: the optimum vs leakage share (theory)."""

import pytest

from conftest import run_once
from repro.experiments import fig8_leakage


@pytest.mark.benchmark(group="fig8")
def test_fig8_leakage(benchmark, record_table):
    data = run_once(benchmark, lambda: fig8_leakage.run(trace_length=12000))
    record_table("fig8_leakage", fig8_leakage.format_table(data))
    depths = [d for _f, d in data.optima]
    fractions = [f for f, _d in data.optima]
    assert fractions == sorted(fractions)
    assert depths == sorted(depths)  # monotone deeper
    # Paper: 0% -> 90% roughly doubles the optimum (7 -> ~14 stages).
    assert depths[-1] / depths[0] >= 1.5
