"""Regenerate paper Fig. 9: the optimum vs the latch growth exponent."""

import pytest

from conftest import run_once
from repro.experiments import fig9_gamma


@pytest.mark.benchmark(group="fig9")
def test_fig9_gamma(benchmark, record_table):
    data = run_once(benchmark, lambda: fig9_gamma.run(trace_length=12000))
    record_table("fig9_gamma", fig9_gamma.format_table(data))
    depths = [d for _g, d in data.optima]
    assert depths == sorted(depths, reverse=True)  # shallower with gamma
    # Paper: "if gamma becomes larger than 2, the theory points to the
    # optimum as a single stage design".
    assert 2.0 <= data.single_stage_gamma <= 3.0
