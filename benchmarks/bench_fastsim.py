"""Kernel speedups: one trace analysis, then one timing pass for all depths.

Times a 20-point depth sweep (depths 2..21, the paper's working range)
over a commercial workload on all three backends and records the ratios:

* ``fast`` over ``reference`` — the event-precomputing kernel analyses
  the trace once and prices every depth from the shared event stream;
* ``batched`` over ``fast`` — the depth-batched C kernel additionally
  walks the event stream once with one state lane per depth, so the
  whole sweep costs one analysis plus one timing pass.

Timing is best-of-N: each rep runs the full sweep through
``simulate_depths`` on a freshly built simulator (the analysing
backends' trace analysis is *inside* the timed region, and no events
cache is attached) and the minimum wall time per backend is used, which
makes the ratios robust to scheduler noise on shared machines.

Two entry points:

* ``pytest benchmarks/bench_fastsim.py --benchmark-only`` — the recorded
  run; asserts fast >= 5x over reference and batched >= 3x over fast,
  and writes ``benchmarks/results/fastsim.txt`` + ``fastsim.json``.
* ``python benchmarks/bench_fastsim.py [--quick]`` — the CI smoke gate;
  ``--quick`` shrinks the measurement and only requires each kernel not
  to lose to the backend below it (>= 1x), appending the outcome to
  ``benchmarks/results/fastsim_ci.txt`` (+ ``fastsim_ci.json``).

A second measurement prices the *suite* backend at engine scale: the
full 55-workload headline suite at the engine's 24-depth grid, run
through :class:`~repro.engine.scheduler.ExecutionEngine` with a cold
result cache against a steady-state (warm) analysis tier — the recurring
shape of a headline regeneration after any sweep parameter changes.  Per-
job ``batched`` dispatch must regenerate each trace just to *address* the
analysis cache; the suite scheduler path resolves every job through the
spec-keyed trace-fingerprint index and prices all misses in one ragged
kernel call.  The recorded run asserts suite >= 5x over batched
dispatch; ``--quick`` shrinks the suite and only requires the suite
backend never to lose (>= 1x).
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import gc
import pathlib
import sys
import time
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.pipeline.fastsim import make_simulator
from repro.pipeline.simulator import MachineConfig
from repro.trace import generate_trace, get_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

WORKLOAD = "cics-payroll"
DEPTHS: Tuple[int, ...] = tuple(range(2, 22))  # 20-point sweep
TRACE_LENGTH = 8000
REPS = 13
SPEEDUP_FLOOR = 5.0          # fast over reference
BATCHED_FLOOR = 3.0          # batched over fast

QUICK_TRACE_LENGTH = 2000
QUICK_REPS = 3
QUICK_FLOOR = 1.0
QUICK_BATCHED_FLOOR = 1.0    # smoke: batched must not lose to fast

SUITE_DEPTHS: Tuple[int, ...] = tuple(range(2, 26))  # the engine's 24-depth grid
SUITE_REPS = 7               # best-of; host steal noise only adds time, so more
                             # draws converge the minimum to the clean floor
SUITE_FLOOR = 5.0            # suite engine run over per-job batched dispatch

QUICK_SUITE_WORKLOADS = 2    # small_suite(2): ten workloads
QUICK_SUITE_TRACE_LENGTH = 2000
QUICK_SUITE_REPS = 2
QUICK_SUITE_FLOOR = 1.0      # smoke: suite must not lose to batched dispatch


@dataclass(frozen=True)
class BenchResult:
    workload: str
    trace_length: int
    depths: Tuple[int, ...]
    reps: int
    reference_seconds: float
    fast_seconds: float
    batched_seconds: float

    @property
    def speedup(self) -> float:
        """fast over reference (sweep wall time)."""
        return self.reference_seconds / self.fast_seconds

    @property
    def batched_speedup(self) -> float:
        """batched over fast (sweep wall time)."""
        return self.fast_seconds / self.batched_seconds

    def as_json(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["depths"] = list(self.depths)
        payload["fast_speedup"] = self.speedup
        payload["batched_speedup"] = self.batched_speedup
        return payload


@dataclass(frozen=True)
class SuiteBenchResult:
    workloads: int
    trace_length: int
    depths: Tuple[int, ...]
    reps: int
    batched_seconds: float
    suite_seconds: float

    @property
    def suite_speedup(self) -> float:
        """suite engine run over per-job batched dispatch (wall time)."""
        return self.batched_seconds / self.suite_seconds

    def as_json(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["depths"] = list(self.depths)
        payload["suite_speedup"] = self.suite_speedup
        return payload


@contextlib.contextmanager
def _gc_paused():
    """Suspend the cyclic collector for one timed region.

    A collection pass landing inside a rep is scheduling noise, not
    workload — whether it fires depends on allocator history, which is
    exactly the run-to-run jitter a best-of measurement should exclude.
    The heap is collected *before* the timer starts so every rep begins
    from the same collector state.
    """
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _time_sweep(machine, backend, trace, depths, reps) -> float:
    best = float("inf")
    for _ in range(reps):
        simulator = make_simulator(machine, backend)
        with _gc_paused():
            started = time.perf_counter()
            simulator.simulate_depths(trace, depths)
            best = min(best, time.perf_counter() - started)
    return best


def measure(
    workload: str = WORKLOAD,
    trace_length: int = TRACE_LENGTH,
    depths: Sequence[int] = DEPTHS,
    reps: int = REPS,
) -> BenchResult:
    """Best-of-``reps`` wall time for a full depth sweep on each backend."""
    machine = MachineConfig()
    trace = generate_trace(get_workload(workload), trace_length)
    depths = tuple(depths)

    # Equal-work sanity check before timing anything.
    checks = [
        make_simulator(machine, backend).simulate(trace, depths[-1])
        for backend in ("reference", "fast", "batched")
    ]
    if any(check != checks[0] for check in checks[1:]):
        raise AssertionError(
            "backends diverge; run 'repro validate-kernel' before benchmarking"
        )

    return BenchResult(
        workload=workload,
        trace_length=trace_length,
        depths=depths,
        reps=reps,
        reference_seconds=_time_sweep(machine, "reference", trace, depths, reps),
        fast_seconds=_time_sweep(machine, "fast", trace, depths, reps),
        batched_seconds=_time_sweep(machine, "batched", trace, depths, reps),
    )


def measure_suite(
    workloads: "int | None" = None,
    trace_length: int = TRACE_LENGTH,
    depths: Sequence[int] = SUITE_DEPTHS,
    reps: int = SUITE_REPS,
) -> SuiteBenchResult:
    """Engine wall time over the headline suite: suite vs batched dispatch.

    ``workloads`` of None runs the full 55-workload headline suite
    (``repro.trace.suite``); an integer n runs ``small_suite(n)``.  Each
    timed run starts from a *cold* result cache against a shared *warm*
    analysis tier (populated untimed beforehand), and the best of
    ``reps`` runs per backend is kept.  Both backends' engine results are
    compared for equality before any ratio is reported.
    """
    import tempfile

    from repro.engine.job import SimJob
    from repro.engine.scheduler import EngineConfig, ExecutionEngine
    from repro.engine.worker import execute_suite_batch
    from repro.pipeline.events_cache import TraceEventsCache
    from repro.runtime.resolver import Resolver
    from repro.trace import small_suite, suite

    specs = tuple(suite() if workloads is None else small_suite(workloads))
    depths = tuple(depths)
    jobs = {
        backend: [
            SimJob(
                spec=spec, depths=depths, trace_length=trace_length,
                backend=backend,
            )
            for spec in specs
        ]
        for backend in ("batched", "suite")
    }

    with tempfile.TemporaryDirectory() as tmp:
        events_cache = TraceEventsCache(pathlib.Path(tmp) / "analysis")
        # Warm the analysis tier (and the trace-fingerprint index) untimed.
        execute_suite_batch(jobs["suite"], events_cache=events_cache)

        def timed_run(backend: str):
            best, results = float("inf"), None
            for _ in range(reps):
                with tempfile.TemporaryDirectory(dir=tmp) as cache_dir:
                    resolver = Resolver(
                        cache_dir=cache_dir, memory_entries=0,
                        events_cache=events_cache,
                    )
                    engine = ExecutionEngine(
                        EngineConfig(workers=1, cache_dir=cache_dir),
                        resolver=resolver,
                    )
                    with _gc_paused():
                        started = time.perf_counter()
                        out = engine.run(jobs[backend])
                        best = min(best, time.perf_counter() - started)
                    results = [r.results for r in out]
            return best, results

        batched_seconds, batched_results = timed_run("batched")
        suite_seconds, suite_results = timed_run("suite")

    if batched_results != suite_results:
        raise AssertionError(
            "suite and batched engine runs diverge; "
            "run 'repro validate-kernel' before benchmarking"
        )
    return SuiteBenchResult(
        workloads=len(specs),
        trace_length=trace_length,
        depths=depths,
        reps=reps,
        batched_seconds=batched_seconds,
        suite_seconds=suite_seconds,
    )


def format_result(result: BenchResult) -> str:
    return "\n".join(
        [
            f"Kernel sweep benchmark — {result.workload}, "
            f"{result.trace_length} instructions, "
            f"{len(result.depths)} depths ({result.depths[0]}..{result.depths[-1]}), "
            f"best of {result.reps}",
            f"  reference backend : {result.reference_seconds * 1e3:7.1f} ms",
            f"  fast backend      : {result.fast_seconds * 1e3:7.1f} ms",
            f"  batched backend   : {result.batched_seconds * 1e3:7.1f} ms",
            f"  fast over reference : {result.speedup:6.2f}x",
            f"  batched over fast   : {result.batched_speedup:6.2f}x",
        ]
    )


def format_suite_result(result: SuiteBenchResult) -> str:
    return "\n".join(
        [
            f"Suite engine benchmark — {result.workloads} workloads, "
            f"{result.trace_length} instructions, "
            f"{len(result.depths)} depths ({result.depths[0]}..{result.depths[-1]}), "
            f"cold result cache / warm analysis tier, best of {result.reps}",
            f"  batched dispatch  : {result.batched_seconds * 1e3:7.1f} ms",
            f"  suite backend     : {result.suite_seconds * 1e3:7.1f} ms",
            f"  suite over batched dispatch : {result.suite_speedup:6.2f}x",
        ]
    )


def test_fastsim_speedup(benchmark, record_table):
    """Recorded run: fast 5x over reference, batched 3x over fast,
    suite 5x over per-job batched dispatch at engine scale."""
    from conftest import run_once

    result = run_once(benchmark, measure)
    suite_result = measure_suite()
    table = format_result(result) + "\n" + format_suite_result(suite_result)
    data = result.as_json()
    data["suite"] = suite_result.as_json()
    record_table("fastsim", table, data=data)
    assert result.speedup >= SPEEDUP_FLOOR, format_result(result)
    assert result.batched_speedup >= BATCHED_FLOOR, format_result(result)
    assert suite_result.suite_speedup >= SUITE_FLOOR, format_suite_result(
        suite_result
    )


def main(argv: "Sequence[str] | None" = None) -> int:
    from conftest import write_json_record

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: shorter trace, fewer reps, only require each kernel "
        "not to lose to the backend below it",
    )
    args = parser.parse_args(argv)

    if args.quick:
        result = measure(trace_length=QUICK_TRACE_LENGTH, reps=QUICK_REPS)
        suite_result = measure_suite(
            workloads=QUICK_SUITE_WORKLOADS,
            trace_length=QUICK_SUITE_TRACE_LENGTH,
            reps=QUICK_SUITE_REPS,
        )
        floor, batched_floor = QUICK_FLOOR, QUICK_BATCHED_FLOOR
        suite_floor = QUICK_SUITE_FLOOR
        name = "fastsim_ci"
    else:
        result = measure()
        suite_result = measure_suite()
        floor, batched_floor = SPEEDUP_FLOOR, BATCHED_FLOOR
        suite_floor = SUITE_FLOOR
        name = "fastsim"

    table = format_result(result) + "\n" + format_suite_result(suite_result)
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    with (RESULTS_DIR / f"{name}.txt").open("a", encoding="utf-8") as handle:
        handle.write(f"[{stamp}] {table}\n")
    data = result.as_json()
    data["suite"] = suite_result.as_json()
    write_json_record(name, table, data=data)
    failed = False
    if result.speedup < floor:
        print(f"FAIL: fast speedup {result.speedup:.2f}x below the "
              f"{floor:g}x floor", file=sys.stderr)
        failed = True
    if result.batched_speedup < batched_floor:
        print(f"FAIL: batched speedup {result.batched_speedup:.2f}x below the "
              f"{batched_floor:g}x floor", file=sys.stderr)
        failed = True
    if suite_result.suite_speedup < suite_floor:
        print(f"FAIL: suite speedup {suite_result.suite_speedup:.2f}x below "
              f"the {suite_floor:g}x floor", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(f"PASS: fast {result.speedup:.2f}x (floor {floor:g}x), "
          f"batched {result.batched_speedup:.2f}x (floor {batched_floor:g}x), "
          f"suite {suite_result.suite_speedup:.2f}x "
          f"(floor {suite_floor:g}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
