"""Fast-kernel speedup: one trace analysis vs twenty interpretations.

Times a 20-point depth sweep (depths 2..21, the paper's working range)
over a commercial workload on both backends and records the ratio.  The
fast kernel analyses the trace once and prices every depth from the
shared event stream, so the sweep-level speedup — not single-depth
latency — is the number that matters for the figures.

Timing is best-of-N: each rep runs the full sweep on a freshly built
simulator (the fast backend's trace analysis is *inside* the timed
region) and the minimum wall time per backend is used, which makes the
ratio robust to scheduler noise on shared machines.

Two entry points:

* ``pytest benchmarks/bench_fastsim.py --benchmark-only`` — the recorded
  run; asserts the >= 5x sweep speedup and writes
  ``benchmarks/results/fastsim.txt``.
* ``python benchmarks/bench_fastsim.py [--quick]`` — the CI smoke gate;
  ``--quick`` shrinks the measurement and only requires the fast backend
  to beat the reference (>= 1x), appending the outcome to
  ``benchmarks/results/fastsim_ci.txt``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.pipeline.fastsim import FastPipelineSimulator
from repro.pipeline.simulator import MachineConfig, PipelineSimulator
from repro.trace import generate_trace, get_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

WORKLOAD = "cics-payroll"
DEPTHS: Tuple[int, ...] = tuple(range(2, 22))  # 20-point sweep
TRACE_LENGTH = 8000
REPS = 9
SPEEDUP_FLOOR = 5.0

QUICK_TRACE_LENGTH = 2000
QUICK_REPS = 3
QUICK_FLOOR = 1.0


@dataclass(frozen=True)
class BenchResult:
    workload: str
    trace_length: int
    depths: Tuple[int, ...]
    reps: int
    reference_seconds: float
    fast_seconds: float

    @property
    def speedup(self) -> float:
        return self.reference_seconds / self.fast_seconds


def measure(
    workload: str = WORKLOAD,
    trace_length: int = TRACE_LENGTH,
    depths: Sequence[int] = DEPTHS,
    reps: int = REPS,
) -> BenchResult:
    """Best-of-``reps`` wall time for a full depth sweep on each backend."""
    machine = MachineConfig()
    trace = generate_trace(get_workload(workload), trace_length)
    depths = tuple(depths)

    # Equal-work sanity check before timing anything.
    reference_check = PipelineSimulator(machine).simulate(trace, depths[-1])
    fast_check = FastPipelineSimulator(machine).simulate(trace, depths[-1])
    if reference_check != fast_check:
        raise AssertionError(
            "backends diverge; run 'repro validate-kernel' before benchmarking"
        )

    reference_best = fast_best = float("inf")
    for _ in range(reps):
        simulator = PipelineSimulator(machine)
        started = time.perf_counter()
        for depth in depths:
            simulator.simulate(trace, depth)
        reference_best = min(reference_best, time.perf_counter() - started)

        fast_simulator = FastPipelineSimulator(machine)
        started = time.perf_counter()
        for depth in depths:
            fast_simulator.simulate(trace, depth)
        fast_best = min(fast_best, time.perf_counter() - started)

    return BenchResult(
        workload=workload,
        trace_length=trace_length,
        depths=depths,
        reps=reps,
        reference_seconds=reference_best,
        fast_seconds=fast_best,
    )


def format_result(result: BenchResult) -> str:
    return "\n".join(
        [
            f"Fast-kernel sweep benchmark — {result.workload}, "
            f"{result.trace_length} instructions, "
            f"{len(result.depths)} depths ({result.depths[0]}..{result.depths[-1]}), "
            f"best of {result.reps}",
            f"  reference backend : {result.reference_seconds * 1e3:7.1f} ms",
            f"  fast backend      : {result.fast_seconds * 1e3:7.1f} ms",
            f"  sweep speedup     : {result.speedup:.2f}x",
        ]
    )


def test_fastsim_speedup(benchmark, record_table):
    """Recorded run: the fast backend clears the 5x sweep-speedup floor."""
    from conftest import run_once

    result = run_once(benchmark, measure)
    record_table("fastsim", format_result(result))
    assert result.speedup >= SPEEDUP_FLOOR, format_result(result)


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: shorter trace, fewer reps, only require fast >= reference",
    )
    args = parser.parse_args(argv)

    if args.quick:
        result = measure(trace_length=QUICK_TRACE_LENGTH, reps=QUICK_REPS)
        floor = QUICK_FLOOR
        record = RESULTS_DIR / "fastsim_ci.txt"
    else:
        result = measure()
        floor = SPEEDUP_FLOOR
        record = RESULTS_DIR / "fastsim.txt"

    table = format_result(result)
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    with record.open("a", encoding="utf-8") as handle:
        handle.write(f"[{stamp}] {table}\n")
    if result.speedup < floor:
        print(f"FAIL: speedup {result.speedup:.2f}x below the {floor:g}x floor",
              file=sys.stderr)
        return 1
    print(f"PASS: speedup {result.speedup:.2f}x (floor {floor:g}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
