"""Kernel speedups: one trace analysis, then one timing pass for all depths.

Times a 20-point depth sweep (depths 2..21, the paper's working range)
over a commercial workload on all three backends and records the ratios:

* ``fast`` over ``reference`` — the event-precomputing kernel analyses
  the trace once and prices every depth from the shared event stream;
* ``batched`` over ``fast`` — the depth-batched C kernel additionally
  walks the event stream once with one state lane per depth, so the
  whole sweep costs one analysis plus one timing pass.

Timing is best-of-N: each rep runs the full sweep through
``simulate_depths`` on a freshly built simulator (the analysing
backends' trace analysis is *inside* the timed region, and no events
cache is attached) and the minimum wall time per backend is used, which
makes the ratios robust to scheduler noise on shared machines.

Two entry points:

* ``pytest benchmarks/bench_fastsim.py --benchmark-only`` — the recorded
  run; asserts fast >= 5x over reference and batched >= 3x over fast,
  and writes ``benchmarks/results/fastsim.txt`` + ``fastsim.json``.
* ``python benchmarks/bench_fastsim.py [--quick]`` — the CI smoke gate;
  ``--quick`` shrinks the measurement and only requires each kernel not
  to lose to the backend below it (>= 1x), appending the outcome to
  ``benchmarks/results/fastsim_ci.txt`` (+ ``fastsim_ci.json``).
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import sys
import time
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.pipeline.fastsim import make_simulator
from repro.pipeline.simulator import MachineConfig
from repro.trace import generate_trace, get_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

WORKLOAD = "cics-payroll"
DEPTHS: Tuple[int, ...] = tuple(range(2, 22))  # 20-point sweep
TRACE_LENGTH = 8000
REPS = 9
SPEEDUP_FLOOR = 5.0          # fast over reference
BATCHED_FLOOR = 3.0          # batched over fast

QUICK_TRACE_LENGTH = 2000
QUICK_REPS = 3
QUICK_FLOOR = 1.0
QUICK_BATCHED_FLOOR = 1.0    # smoke: batched must not lose to fast


@dataclass(frozen=True)
class BenchResult:
    workload: str
    trace_length: int
    depths: Tuple[int, ...]
    reps: int
    reference_seconds: float
    fast_seconds: float
    batched_seconds: float

    @property
    def speedup(self) -> float:
        """fast over reference (sweep wall time)."""
        return self.reference_seconds / self.fast_seconds

    @property
    def batched_speedup(self) -> float:
        """batched over fast (sweep wall time)."""
        return self.fast_seconds / self.batched_seconds

    def as_json(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["depths"] = list(self.depths)
        payload["fast_speedup"] = self.speedup
        payload["batched_speedup"] = self.batched_speedup
        return payload


def _time_sweep(machine, backend, trace, depths, reps) -> float:
    best = float("inf")
    for _ in range(reps):
        simulator = make_simulator(machine, backend)
        started = time.perf_counter()
        simulator.simulate_depths(trace, depths)
        best = min(best, time.perf_counter() - started)
    return best


def measure(
    workload: str = WORKLOAD,
    trace_length: int = TRACE_LENGTH,
    depths: Sequence[int] = DEPTHS,
    reps: int = REPS,
) -> BenchResult:
    """Best-of-``reps`` wall time for a full depth sweep on each backend."""
    machine = MachineConfig()
    trace = generate_trace(get_workload(workload), trace_length)
    depths = tuple(depths)

    # Equal-work sanity check before timing anything.
    checks = [
        make_simulator(machine, backend).simulate(trace, depths[-1])
        for backend in ("reference", "fast", "batched")
    ]
    if any(check != checks[0] for check in checks[1:]):
        raise AssertionError(
            "backends diverge; run 'repro validate-kernel' before benchmarking"
        )

    return BenchResult(
        workload=workload,
        trace_length=trace_length,
        depths=depths,
        reps=reps,
        reference_seconds=_time_sweep(machine, "reference", trace, depths, reps),
        fast_seconds=_time_sweep(machine, "fast", trace, depths, reps),
        batched_seconds=_time_sweep(machine, "batched", trace, depths, reps),
    )


def format_result(result: BenchResult) -> str:
    return "\n".join(
        [
            f"Kernel sweep benchmark — {result.workload}, "
            f"{result.trace_length} instructions, "
            f"{len(result.depths)} depths ({result.depths[0]}..{result.depths[-1]}), "
            f"best of {result.reps}",
            f"  reference backend : {result.reference_seconds * 1e3:7.1f} ms",
            f"  fast backend      : {result.fast_seconds * 1e3:7.1f} ms",
            f"  batched backend   : {result.batched_seconds * 1e3:7.1f} ms",
            f"  fast over reference : {result.speedup:6.2f}x",
            f"  batched over fast   : {result.batched_speedup:6.2f}x",
        ]
    )


def test_fastsim_speedup(benchmark, record_table):
    """Recorded run: fast clears 5x over reference, batched 3x over fast."""
    from conftest import run_once

    result = run_once(benchmark, measure)
    record_table("fastsim", format_result(result), data=result.as_json())
    assert result.speedup >= SPEEDUP_FLOOR, format_result(result)
    assert result.batched_speedup >= BATCHED_FLOOR, format_result(result)


def main(argv: "Sequence[str] | None" = None) -> int:
    from conftest import write_json_record

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: shorter trace, fewer reps, only require each kernel "
        "not to lose to the backend below it",
    )
    args = parser.parse_args(argv)

    if args.quick:
        result = measure(trace_length=QUICK_TRACE_LENGTH, reps=QUICK_REPS)
        floor, batched_floor = QUICK_FLOOR, QUICK_BATCHED_FLOOR
        name = "fastsim_ci"
    else:
        result = measure()
        floor, batched_floor = SPEEDUP_FLOOR, BATCHED_FLOOR
        name = "fastsim"

    table = format_result(result)
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    with (RESULTS_DIR / f"{name}.txt").open("a", encoding="utf-8") as handle:
        handle.write(f"[{stamp}] {table}\n")
    write_json_record(name, table, data=result.as_json())
    failed = False
    if result.speedup < floor:
        print(f"FAIL: fast speedup {result.speedup:.2f}x below the "
              f"{floor:g}x floor", file=sys.stderr)
        failed = True
    if result.batched_speedup < batched_floor:
        print(f"FAIL: batched speedup {result.batched_speedup:.2f}x below the "
              f"{batched_floor:g}x floor", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(f"PASS: fast {result.speedup:.2f}x (floor {floor:g}x), "
          f"batched {result.batched_speedup:.2f}x (floor {batched_floor:g}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
