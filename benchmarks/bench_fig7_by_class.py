"""Regenerate paper Fig. 7: the optimum-depth distribution by class."""

import pytest

from conftest import run_once
from repro.experiments import fig7_by_class
from repro.trace import WorkloadClass


@pytest.mark.benchmark(group="fig7")
def test_fig7_by_class_full_suite(benchmark, record_table):
    data = run_once(benchmark, lambda: fig7_by_class.run(trace_length=8000))
    record_table("fig7_by_class", fig7_by_class.format_table(data))
    summary = data.class_summary
    # Shape claims: every class optimises well below the perf-only ~20+;
    # floating point is the deepest class with the widest spread.
    means = {cls: mean for cls, (mean, _lo, _hi) in summary.items()}
    spreads = {cls: hi - lo for cls, (_mean, lo, hi) in summary.items()}
    assert all(4.0 <= mean <= 16.0 for mean in means.values())
    assert means[WorkloadClass.FLOAT] == max(means.values())
    assert spreads[WorkloadClass.FLOAT] == max(spreads.values())
