"""Serving-layer benchmark: coalescing, cache wins, and open-loop SLOs.

Boots the serving stack in-process (thread executor, fast backend,
private disk caches) and measures the behaviours it exists for:

1. **Herd phase** — every client simultaneously requests the *same* cold
   key: single-flight must collapse the thundering herd to exactly one
   computed job, everyone else coalesced.
2. **Zipf phase** — a closed-loop, zipf-skewed mix (hot head, cold tail)
   over a workload set: after the tail warms, the memory LRU + disk
   cache must serve ≥ 90 % of requests without touching the simulator.
3. **Open-loop SLO phase** — the same Poisson/zipf schedule (a pure
   function of the seed) is offered twice, arrivals never gated on
   completions: once to a single daemon, once to a 3-shard cluster
   behind the consistent-hash router with the *same total* LRU budget
   split across shards.  Recorded per phase (sustained, then burst):
   p50 / p99 / p99.9, shed rate and the source mix.  Asserted: zero
   sustained-phase shed, finite p99, zero transport errors, and a
   cluster memory-hit ratio no worse than the single daemon's — the
   shard-affinity property the router exists to preserve.

Two entry points, mirroring ``bench_fastsim.py``:

* ``pytest benchmarks/bench_service.py --benchmark-only`` — the recorded
  acceptance run; writes ``benchmarks/results/service.txt`` and the
  ``service.json`` sidecar CI pins.
* ``python benchmarks/bench_service.py [--quick]`` — standalone/CI smoke
  (the ``cluster-smoke`` job runs ``--quick``).
"""

from __future__ import annotations

import argparse
import asyncio
import math
import pathlib
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.cluster.loadgen import OpenLoopReport, arrival_schedule, run_open_loop
from repro.cluster.metrics import parse_samples
from repro.cluster.router import Router, RouterServer
from repro.service.app import ServiceState
from repro.runtime import RuntimeConfig
from repro.service.http import ServiceServer
from repro.service.loadgen import HttpClient, LoadReport, run_load
from repro.trace.suite import suite_names

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

HERD_CLIENTS = 8
ZIPF_CLIENTS = 8
ZIPF_REQUESTS = 75          # per client: 600 total over 16 workloads
ZIPF_SKEW = 1.2
WORKLOAD_COUNT = 16
TRACE_LENGTH = 2000
HIT_RATIO_FLOOR = 0.90
AFFINITY_SLACK = 0.05       # cluster memory-hit ratio may trail by this much

SHARDS = 3
OPEN_SEED = 20030101
OPEN_RATE = 60.0            # sustained arrivals per second
OPEN_DURATION = 6.0
BURST_FACTOR = 3.0
BURST_DURATION = 2.0

QUICK_REQUESTS = 20
QUICK_WORKLOADS = 8
QUICK_RATE = 40.0
QUICK_DURATION = 3.0
QUICK_BURST_DURATION = 1.0


@dataclass(frozen=True)
class OpenLoopBench:
    """The open-loop SLO comparison: one daemon vs the sharded cluster."""

    baseline: OpenLoopReport
    cluster: OpenLoopReport
    baseline_memory_ratio: float
    cluster_memory_ratio: float
    shard_hit_ratios: "Dict[str, float]"
    router_counters: "Dict[str, float]"


@dataclass(frozen=True)
class ServiceBench:
    """Every phase of one benchmark run."""

    herd_computed: int
    herd_coalesced: int
    zipf: LoadReport
    server_hit_ratio: float
    lru_evictions: int
    open_loop: OpenLoopBench


def _memory_ratio(report: OpenLoopReport) -> float:
    """Memory-LRU hits as a share of all completed open-loop requests."""
    memory = sum(stats.sources.get("memory", 0) for stats in report.phases.values())
    return memory / report.completed if report.completed else 0.0


def _router_counters(router: Router) -> "Dict[str, float]":
    """Router-family totals (failovers, retries, shed) out of its registry."""
    _families, samples = parse_samples(router.metrics.render())
    totals: "Dict[str, float]" = {}
    for name in ("repro_cluster_failovers_total", "repro_cluster_retries_total",
                 "repro_cluster_rejected_total"):
        totals[name] = sum(
            value for series, value in samples.items()
            if series.split("{", 1)[0] == name
        )
    return totals


async def _herd_phase(port: int, workload: str, length: int) -> "Tuple[int, int]":
    """All clients hit one cold key at once; count computed vs coalesced."""
    clients = [HttpClient("127.0.0.1", port) for _ in range(HERD_CLIENTS)]
    for client in clients:
        await client.connect()
    body = {"workload": workload, "length": length}
    responses = await asyncio.gather(
        *(client.request_json("POST", "/v1/sweep", body) for client in clients)
    )
    for client in clients:
        await client.close()
    sources = [resp.get("source") for status, resp in responses if status == 200]
    return sources.count("computed"), sources.count("coalesced")


def _shard_config(cache_dir: str, memory_entries: int) -> RuntimeConfig:
    return RuntimeConfig(
        host="127.0.0.1",
        port=0,
        backend="fast",
        executor="thread",
        workers=4,
        concurrency=8,
        queue_limit=64,
        memory_entries=memory_entries,
        cache_dir=cache_dir,
    )


async def _open_loop_phase(
    names: "List[str]", length: int, *,
    rate: float, duration: float, burst_duration: float,
) -> OpenLoopBench:
    schedule = arrival_schedule(
        seed=OPEN_SEED,
        rate=rate,
        duration=duration,
        workloads=names,
        zipf_skew=ZIPF_SKEW,
        burst_factor=BURST_FACTOR,
        burst_duration=burst_duration,
    )
    total_lru = len(names) * 2

    # Baseline: the identical schedule against one daemon holding the
    # whole LRU budget, on its own cold disk cache.
    with tempfile.TemporaryDirectory(prefix="repro-bench-openloop-base-") as base_dir:
        server = ServiceServer(ServiceState(
            _shard_config(str(pathlib.Path(base_dir) / "disk"), total_lru)
        ))
        await server.start()
        try:
            baseline = await run_open_loop(
                "127.0.0.1", server.port, schedule,
                length=length, seed=OPEN_SEED, rate=rate,
            )
        finally:
            await server.drain(timeout=5.0)

    # Cluster: the same schedule, same *total* LRU budget split across
    # shards, a shared cold disk tier, the router in front.
    with tempfile.TemporaryDirectory(prefix="repro-bench-openloop-cluster-") as dir_:
        shared_disk = str(pathlib.Path(dir_) / "disk")
        per_shard = max(total_lru // SHARDS, 1)
        shard_servers = [
            ServiceServer(ServiceState(_shard_config(shared_disk, per_shard)))
            for _ in range(SHARDS)
        ]
        for server in shard_servers:
            await server.start()
        router_config = RuntimeConfig(
            host="127.0.0.1",
            cluster_port=0,
            cluster_shards=SHARDS,
            cluster_health_interval=0.2,
        )
        router = Router(router_config, {
            f"shard-{i}": ("127.0.0.1", server.port)
            for i, server in enumerate(shard_servers)
        })
        front = RouterServer(router)
        await front.start()
        try:
            cluster = await run_open_loop(
                "127.0.0.1", front.port, schedule,
                length=length, seed=OPEN_SEED, rate=rate,
            )
            shard_hit_ratios = {
                f"shard-{i}": server.state.hit_ratio()
                for i, server in enumerate(shard_servers)
            }
            counters = _router_counters(router)
        finally:
            await front.drain(timeout=5.0)
            for server in shard_servers:
                await server.drain(timeout=5.0)

    return OpenLoopBench(
        baseline=baseline,
        cluster=cluster,
        baseline_memory_ratio=_memory_ratio(baseline),
        cluster_memory_ratio=_memory_ratio(cluster),
        shard_hit_ratios=shard_hit_ratios,
        router_counters=counters,
    )


async def _run(
    requests_per_client: int, workload_count: int, length: int, *,
    rate: float, duration: float, burst_duration: float,
) -> ServiceBench:
    names = list(suite_names())[:workload_count]
    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as cache_dir:
        config = _shard_config(
            str(pathlib.Path(cache_dir) / "disk"), workload_count * 2
        )
        server = ServiceServer(ServiceState(config))
        await server.start()
        try:
            herd_computed, herd_coalesced = await _herd_phase(
                server.port, names[-1], length
            )
            zipf = await run_load(
                "127.0.0.1",
                server.port,
                clients=ZIPF_CLIENTS,
                requests_per_client=requests_per_client,
                workloads=names,
                zipf_skew=ZIPF_SKEW,
                length=length,
            )
            server_hit_ratio = server.state.hit_ratio()
            lru_evictions = server.state.lru.evictions
        finally:
            await server.drain(timeout=5.0)

    open_loop = await _open_loop_phase(
        names, length, rate=rate, duration=duration, burst_duration=burst_duration
    )
    return ServiceBench(
        herd_computed=herd_computed,
        herd_coalesced=herd_coalesced,
        zipf=zipf,
        server_hit_ratio=server_hit_ratio,
        lru_evictions=lru_evictions,
        open_loop=open_loop,
    )


def measure(
    requests_per_client: int = ZIPF_REQUESTS,
    workload_count: int = WORKLOAD_COUNT,
    length: int = TRACE_LENGTH,
    rate: float = OPEN_RATE,
    duration: float = OPEN_DURATION,
    burst_duration: float = BURST_DURATION,
) -> ServiceBench:
    return asyncio.run(_run(
        requests_per_client, workload_count, length,
        rate=rate, duration=duration, burst_duration=burst_duration,
    ))


def _format_open_loop(label: str, report: OpenLoopReport) -> "List[str]":
    lines = []
    for name, stats in sorted(report.phases.items()):
        lines.append(
            f"  {label} {name:>9} : p50 {stats.p50 * 1e3:7.2f} ms, "
            f"p99 {stats.p99 * 1e3:7.2f} ms, p99.9 {stats.p999 * 1e3:7.2f} ms, "
            f"shed {stats.shed_rate:5.1%}, offered {stats.offered}"
        )
    return lines


def format_result(bench: ServiceBench) -> str:
    zipf = bench.zipf
    open_loop = bench.open_loop
    sources = ", ".join(
        f"{name} {count}" for name, count in sorted(zipf.sources.items())
    )
    shard_ratios = ", ".join(
        f"{shard} {ratio:.1%}"
        for shard, ratio in sorted(open_loop.shard_hit_ratios.items())
    )
    lines = [
        "Serving-layer benchmark — closed-loop zipf mix + open-loop SLO run "
        f"(skew {ZIPF_SKEW}, {zipf.clients} clients, {zipf.requests} requests, "
        f"trace length {TRACE_LENGTH})",
        f"  herd collapse     : {bench.herd_computed} computed / "
        f"{bench.herd_coalesced} coalesced of {HERD_CLIENTS} identical "
        "concurrent requests",
        f"  throughput        : {zipf.throughput:7.1f} req/s",
        f"  latency           : p50 {zipf.p50 * 1e3:7.2f} ms, "
        f"p99 {zipf.p99 * 1e3:7.2f} ms",
        f"  client hit ratio  : {zipf.hit_ratio:.1%} (memory+disk)",
        f"  server hit ratio  : {bench.server_hit_ratio:.1%}",
        f"  sources           : {sources}",
        f"  rejected (429)    : {zipf.rejected}, errors {zipf.errors}, "
        f"lru evictions {bench.lru_evictions}",
        f"open-loop SLOs — seed {open_loop.baseline.seed}, "
        f"{open_loop.baseline.rate:g} req/s sustained, "
        f"x{BURST_FACTOR:g} burst, 1 daemon vs {SHARDS}-shard cluster",
    ]
    lines += _format_open_loop("daemon", open_loop.baseline)
    lines += _format_open_loop("cluster", open_loop.cluster)
    lines += [
        f"  memory-hit ratio  : daemon {open_loop.baseline_memory_ratio:.1%} "
        f"vs cluster {open_loop.cluster_memory_ratio:.1%} "
        f"(per shard: {shard_ratios})",
        f"  router            : "
        f"failovers {open_loop.router_counters['repro_cluster_failovers_total']:.0f}, "
        f"retries {open_loop.router_counters['repro_cluster_retries_total']:.0f}, "
        f"shed {open_loop.router_counters['repro_cluster_rejected_total']:.0f}",
    ]
    return "\n".join(lines)


def bench_data(bench: ServiceBench) -> dict:
    """The machine-readable form of one run (the JSON sidecar's ``data``)."""
    zipf = bench.zipf
    open_loop = bench.open_loop
    return {
        "herd": {
            "clients": HERD_CLIENTS,
            "computed": bench.herd_computed,
            "coalesced": bench.herd_coalesced,
        },
        "zipf": {
            "clients": zipf.clients,
            "requests": zipf.requests,
            "completed": zipf.completed,
            "rejected": zipf.rejected,
            "errors": zipf.errors,
            "wall_seconds": zipf.wall_seconds,
            "throughput_rps": zipf.throughput,
            "p50_ms": zipf.p50 * 1e3,
            "p99_ms": zipf.p99 * 1e3,
            "hit_ratio": zipf.hit_ratio,
            "sources": dict(sorted(zipf.sources.items())),
            "statuses": {str(k): v for k, v in sorted(zipf.statuses.items())},
        },
        "open_loop": {
            "shards": SHARDS,
            "burst_factor": BURST_FACTOR,
            "baseline": open_loop.baseline.to_doc(),
            "cluster": open_loop.cluster.to_doc(),
            "baseline_memory_ratio": open_loop.baseline_memory_ratio,
            "cluster_memory_ratio": open_loop.cluster_memory_ratio,
            "shard_hit_ratios": dict(sorted(open_loop.shard_hit_ratios.items())),
            "router": open_loop.router_counters,
        },
        "server_hit_ratio": bench.server_hit_ratio,
        "lru_evictions": bench.lru_evictions,
    }


def _check(bench: ServiceBench, hit_floor: float) -> "List[str]":
    failures = []
    if bench.herd_computed != 1:
        failures.append(
            f"herd phase computed {bench.herd_computed} jobs (expected exactly 1)"
        )
    if bench.herd_coalesced != HERD_CLIENTS - 1:
        failures.append(
            f"herd phase coalesced {bench.herd_coalesced} "
            f"(expected {HERD_CLIENTS - 1})"
        )
    if bench.zipf.hit_ratio < hit_floor:
        failures.append(
            f"hit ratio {bench.zipf.hit_ratio:.1%} below the {hit_floor:.0%} floor"
        )
    if bench.zipf.errors:
        failures.append(f"{bench.zipf.errors} transport errors (closed loop)")

    open_loop = bench.open_loop
    for label, report in (("daemon", open_loop.baseline),
                          ("cluster", open_loop.cluster)):
        if report.errors:
            failures.append(f"{report.errors} transport errors ({label} open loop)")
        sustained = report.phases.get("sustained")
        if sustained is None or not sustained.offered:
            failures.append(f"{label} open loop offered no sustained traffic")
            continue
        if sustained.shed:
            failures.append(
                f"{label} shed {sustained.shed} sustained-phase requests "
                "(expected 0)"
            )
        for stats in report.phases.values():
            if not math.isfinite(stats.p99):
                failures.append(
                    f"{label} {stats.phase} p99 is not finite "
                    f"({stats.completed} completed)"
                )
    floor = open_loop.baseline_memory_ratio - AFFINITY_SLACK
    if open_loop.cluster_memory_ratio < floor:
        failures.append(
            f"cluster memory-hit ratio {open_loop.cluster_memory_ratio:.1%} "
            f"trails the single daemon's {open_loop.baseline_memory_ratio:.1%} "
            f"by more than {AFFINITY_SLACK:.0%}"
        )
    return failures


def test_service_throughput(benchmark, record_table):
    """Recorded run: herd collapse, hit-ratio floor, open-loop SLOs."""
    from conftest import run_once

    bench = run_once(benchmark, measure)
    table = format_result(bench)
    record_table("service", table, data=bench_data(bench))
    failures = _check(bench, HIT_RATIO_FLOOR)
    assert not failures, f"{failures}\n{table}"


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: fewer requests, workloads and seconds, same assertions",
    )
    args = parser.parse_args(argv)

    if args.quick:
        bench = measure(
            requests_per_client=QUICK_REQUESTS,
            workload_count=QUICK_WORKLOADS,
            rate=QUICK_RATE,
            duration=QUICK_DURATION,
            burst_duration=QUICK_BURST_DURATION,
        )
    else:
        bench = measure()

    table = format_result(bench)
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    name = "service_ci" if args.quick else "service"
    record = RESULTS_DIR / f"{name}.txt"
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    with record.open("a", encoding="utf-8") as handle:
        handle.write(f"[{stamp}]\n{table}\n")
    from conftest import write_json_record

    write_json_record(name, table, data=bench_data(bench))

    failures = _check(bench, HIT_RATIO_FLOOR)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    cluster_sustained = bench.open_loop.cluster.phases["sustained"]
    print(
        f"PASS: herd 1+{bench.herd_coalesced} collapse, "
        f"hit ratio {bench.zipf.hit_ratio:.1%} (floor {HIT_RATIO_FLOOR:.0%}), "
        f"cluster sustained p99 {cluster_sustained.p99 * 1e3:.2f} ms "
        f"with {cluster_sustained.shed} shed"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
