"""Serving-layer benchmark: coalescing collapse + cache-hierarchy wins.

Boots the daemon in-process (thread executor, fast backend, private disk
cache) and measures the two behaviours the serving layer exists for:

1. **Herd phase** — every client simultaneously requests the *same* cold
   key: single-flight must collapse the thundering herd to exactly one
   computed job, everyone else coalesced.
2. **Zipf phase** — a closed-loop, zipf-skewed mix (hot head, cold tail)
   over a workload set: after the tail warms, the memory LRU + disk
   cache must serve ≥ 90 % of requests without touching the simulator,
   and throughput/p50/p99 quantify the win.

Two entry points, mirroring ``bench_fastsim.py``:

* ``pytest benchmarks/bench_service.py --benchmark-only`` — the recorded
  acceptance run; asserts the hit-ratio floor and the herd collapse, and
  writes ``benchmarks/results/service.txt``.
* ``python benchmarks/bench_service.py [--quick]`` — standalone/CI smoke.
"""

from __future__ import annotations

import argparse
import asyncio
import pathlib
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Sequence

from repro.service.app import ServiceState
from repro.runtime import RuntimeConfig
from repro.service.http import ServiceServer
from repro.service.loadgen import HttpClient, LoadReport, run_load
from repro.trace.suite import suite_names

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

HERD_CLIENTS = 8
ZIPF_CLIENTS = 8
ZIPF_REQUESTS = 75          # per client: 600 total over 16 workloads
ZIPF_SKEW = 1.2
WORKLOAD_COUNT = 16
TRACE_LENGTH = 2000
HIT_RATIO_FLOOR = 0.90

QUICK_REQUESTS = 20
QUICK_WORKLOADS = 8


@dataclass(frozen=True)
class ServiceBench:
    """Both phases of one benchmark run."""

    herd_computed: int
    herd_coalesced: int
    zipf: LoadReport
    server_hit_ratio: float
    lru_evictions: int


async def _herd_phase(port: int, workload: str, length: int) -> "tuple[int, int]":
    """All clients hit one cold key at once; count computed vs coalesced."""
    clients = [HttpClient("127.0.0.1", port) for _ in range(HERD_CLIENTS)]
    for client in clients:
        await client.connect()
    body = {"workload": workload, "length": length}
    responses = await asyncio.gather(
        *(client.request_json("POST", "/v1/sweep", body) for client in clients)
    )
    for client in clients:
        await client.close()
    sources = [response.get("source") for status, response in responses if status == 200]
    return sources.count("computed"), sources.count("coalesced")


async def _run(
    requests_per_client: int, workload_count: int, length: int
) -> ServiceBench:
    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as cache_dir:
        config = RuntimeConfig(
            host="127.0.0.1",
            port=0,
            backend="fast",
            executor="thread",
            workers=4,
            concurrency=8,
            queue_limit=64,
            memory_entries=workload_count * 2,
            cache_dir=str(pathlib.Path(cache_dir) / "disk"),
        )
        server = ServiceServer(ServiceState(config))
        await server.start()
        try:
            names = list(suite_names())[:workload_count]
            herd_computed, herd_coalesced = await _herd_phase(
                server.port, names[-1], length
            )
            zipf = await run_load(
                "127.0.0.1",
                server.port,
                clients=ZIPF_CLIENTS,
                requests_per_client=requests_per_client,
                workloads=names,
                zipf_skew=ZIPF_SKEW,
                length=length,
            )
            return ServiceBench(
                herd_computed=herd_computed,
                herd_coalesced=herd_coalesced,
                zipf=zipf,
                server_hit_ratio=server.state.hit_ratio(),
                lru_evictions=server.state.lru.evictions,
            )
        finally:
            await server.drain(timeout=5.0)


def measure(
    requests_per_client: int = ZIPF_REQUESTS,
    workload_count: int = WORKLOAD_COUNT,
    length: int = TRACE_LENGTH,
) -> ServiceBench:
    return asyncio.run(_run(requests_per_client, workload_count, length))


def format_result(bench: ServiceBench) -> str:
    zipf = bench.zipf
    sources = ", ".join(
        f"{name} {count}" for name, count in sorted(zipf.sources.items())
    )
    return "\n".join(
        [
            "Serving-layer benchmark — zipf-skewed closed-loop mix "
            f"(skew {ZIPF_SKEW}, {zipf.clients} clients, {zipf.requests} requests, "
            f"trace length {TRACE_LENGTH})",
            f"  herd collapse     : {bench.herd_computed} computed / "
            f"{bench.herd_coalesced} coalesced of {HERD_CLIENTS} identical "
            "concurrent requests",
            f"  throughput        : {zipf.throughput:7.1f} req/s",
            f"  latency           : p50 {zipf.p50 * 1e3:7.2f} ms, "
            f"p99 {zipf.p99 * 1e3:7.2f} ms",
            f"  client hit ratio  : {zipf.hit_ratio:.1%} (memory+disk)",
            f"  server hit ratio  : {bench.server_hit_ratio:.1%}",
            f"  sources           : {sources}",
            f"  rejected (429)    : {zipf.rejected}, errors {zipf.errors}, "
            f"lru evictions {bench.lru_evictions}",
        ]
    )


def bench_data(bench: ServiceBench) -> dict:
    """The machine-readable form of one run (the JSON sidecar's ``data``)."""
    zipf = bench.zipf
    return {
        "herd": {
            "clients": HERD_CLIENTS,
            "computed": bench.herd_computed,
            "coalesced": bench.herd_coalesced,
        },
        "zipf": {
            "clients": zipf.clients,
            "requests": zipf.requests,
            "completed": zipf.completed,
            "rejected": zipf.rejected,
            "errors": zipf.errors,
            "wall_seconds": zipf.wall_seconds,
            "throughput_rps": zipf.throughput,
            "p50_ms": zipf.p50 * 1e3,
            "p99_ms": zipf.p99 * 1e3,
            "hit_ratio": zipf.hit_ratio,
            "sources": dict(sorted(zipf.sources.items())),
            "statuses": {str(k): v for k, v in sorted(zipf.statuses.items())},
        },
        "server_hit_ratio": bench.server_hit_ratio,
        "lru_evictions": bench.lru_evictions,
    }


def _check(bench: ServiceBench, hit_floor: float) -> "list[str]":
    failures = []
    if bench.herd_computed != 1:
        failures.append(
            f"herd phase computed {bench.herd_computed} jobs (expected exactly 1)"
        )
    if bench.herd_coalesced != HERD_CLIENTS - 1:
        failures.append(
            f"herd phase coalesced {bench.herd_coalesced} "
            f"(expected {HERD_CLIENTS - 1})"
        )
    if bench.zipf.hit_ratio < hit_floor:
        failures.append(
            f"hit ratio {bench.zipf.hit_ratio:.1%} below the {hit_floor:.0%} floor"
        )
    if bench.zipf.errors:
        failures.append(f"{bench.zipf.errors} transport errors")
    return failures


def test_service_throughput(benchmark, record_table):
    """Recorded run: herd collapses to one compute; hit ratio >= 90%."""
    from conftest import run_once

    bench = run_once(benchmark, measure)
    table = format_result(bench)
    record_table("service", table, data=bench_data(bench))
    failures = _check(bench, HIT_RATIO_FLOOR)
    assert not failures, f"{failures}\n{table}"


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: fewer requests and workloads, same assertions",
    )
    args = parser.parse_args(argv)

    if args.quick:
        bench = measure(
            requests_per_client=QUICK_REQUESTS, workload_count=QUICK_WORKLOADS
        )
    else:
        bench = measure()

    table = format_result(bench)
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    name = "service_ci" if args.quick else "service"
    record = RESULTS_DIR / f"{name}.txt"
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    with record.open("a", encoding="utf-8") as handle:
        handle.write(f"[{stamp}]\n{table}\n")
    from conftest import write_json_record

    write_json_record(name, table, data=bench_data(bench))

    failures = _check(bench, HIT_RATIO_FLOOR)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(
        f"PASS: herd 1+{bench.herd_coalesced} collapse, "
        f"hit ratio {bench.zipf.hit_ratio:.1%} (floor {HIT_RATIO_FLOOR:.0%})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
