"""Benchmark harness support.

Each ``bench_fig*.py`` regenerates one paper figure at full evaluation
scale, times it with pytest-benchmark (single round — these are
experiments, not microbenchmarks), asserts the figure's shape claims and
writes the printed table to ``benchmarks/results/<name>.txt`` so the
numbers that went into EXPERIMENTS.md are reproducible artifacts.

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def record_table():
    """Persist a figure's table under benchmarks/results/ and echo it."""

    def _record(name: str, table: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(table + "\n")
        print()
        print(table)

    return _record


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
