"""Benchmark harness support.

Each ``bench_fig*.py`` regenerates one paper figure at full evaluation
scale, times it with pytest-benchmark (single round — these are
experiments, not microbenchmarks), asserts the figure's shape claims and
writes the printed table to ``benchmarks/results/<name>.txt`` so the
numbers that went into EXPERIMENTS.md are reproducible artifacts.  A
machine-readable ``<name>.json`` sidecar is written alongside every
table (CI uploads the whole ``results/`` directory as an artifact);
benches may pass structured ``data`` to enrich it beyond the table text.

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

import json
import pathlib
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_json_record(name: str, table: str, data=None) -> pathlib.Path:
    """Write the ``<name>.json`` sidecar; returns its path."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    payload = {
        "name": name,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "table": table,
    }
    if data is not None:
        payload["data"] = data
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture()
def record_table():
    """Persist a figure's table (txt + json) under benchmarks/results/."""

    def _record(name: str, table: str, data=None) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(table + "\n")
        write_json_record(name, table, data)
        print()
        print(table)

    return _record


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
