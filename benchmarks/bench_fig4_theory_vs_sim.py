"""Regenerate paper Figs. 4a/4b/4c: theory vs simulation, both gatings."""

import numpy as np
import pytest

from conftest import run_once
from repro.experiments import fig4_theory_vs_sim


@pytest.mark.benchmark(group="fig4")
def test_fig4_theory_vs_sim(benchmark, record_table):
    data = run_once(
        benchmark, lambda: fig4_theory_vs_sim.run(trace_length=12000)
    )
    record_table("fig4_theory_vs_sim", fig4_theory_vs_sim.format_table(data))
    for panel in data.panels:
        # Clock gating lifts the metric everywhere (paper: "non-clock
        # gated data fall below the clock gated data").
        assert np.all(panel.gated_metric >= panel.ungated_metric * 0.999)
        # The theory's optimum sits in the same regime as the simulation's.
        assert abs(panel.gated_theory.optimum.depth - panel.gated_optimum) < 8.0
    # Integer workloads (modern, SPECint) must fit reasonably; FP is the
    # known hard case (its long-op stalls are not of the hazard form).
    for panel in data.panels[:2]:
        assert panel.gated_theory.r_squared > 0.3
