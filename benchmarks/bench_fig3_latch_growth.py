"""Regenerate paper Fig. 3: overall latch growth ~ p^1.1 from per-unit 1.3."""

import pytest

from conftest import run_once
from repro.experiments import fig3_latch_growth


@pytest.mark.benchmark(group="fig3")
def test_fig3_latch_growth(benchmark, record_table):
    data = run_once(benchmark, fig3_latch_growth.run)
    record_table("fig3_latch_growth", fig3_latch_growth.format_table(data))
    assert data.per_unit_exponent == pytest.approx(1.3)
    assert 0.9 <= data.fitted_exponent <= 1.2  # paper: ~1.1
