"""Regenerate paper Fig. 6: optimum-depth distribution over all 55 workloads."""

import pytest

from conftest import run_once
from repro.experiments import fig6_distribution


@pytest.mark.benchmark(group="fig6")
def test_fig6_distribution_full_suite(benchmark, record_table):
    data = run_once(benchmark, lambda: fig6_distribution.run(trace_length=8000))
    record_table("fig6_distribution", fig6_distribution.format_table(data))
    # Paper: centred around 8 stages / 20 FO4 (we accept the band).
    assert 6.5 <= data.mean_depth <= 11.0
    assert 14.0 <= data.mean_fo4 <= 25.0
    assert len(data.distribution.optima) == 55
