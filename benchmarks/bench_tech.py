"""Technology-node axis acceptance: throughput and optimum shift.

Runs the Fig. 10 (depth x node) grid on the ``suite`` backend and checks
the two claims the technology axis makes (see ``docs/TECH.md``):

* **base-node identity** — the ``cmos-hp-45`` row of the grid is
  bit-identical (same cubic-fit optimum, float for float) to a plain
  sweep that never mentions a node: the axis is a no-op until you leave
  the base node;
* **the axis matters** — at least one leakage-dominated node (LP CMOS,
  deeply scaled HP) moves the suite-mean BIPS^3/W optimum by a
  non-trivial margin relative to base, in the deeper direction the
  paper's Fig. 8 leakage argument predicts;

and records the grid's dispatch throughput (depth points per second
through the suite kernel) against a conservative floor so a regression
that de-vectorises the node-scaled path fails loudly.

Two entry points:

* ``pytest benchmarks/bench_tech.py --benchmark-only`` — the recorded
  run; writes ``benchmarks/results/tech.txt`` + ``tech.json``.
* ``python benchmarks/bench_tech.py [--quick]`` — the CI smoke gate;
  ``--quick`` shrinks the grid, appending to
  ``benchmarks/results/tech_ci.txt`` (+ ``tech_ci.json``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.analysis.optimum import optimum_from_sweep
from repro.analysis.sweep import run_depth_sweeps
from repro.experiments import fig10_technodes
from repro.tech import BASE_NODE, get_node
from repro.trace import get_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

WORKLOADS: Tuple[str, ...] = ("gcc95", "oltp-bank")
NODES: Tuple[str, ...] = fig10_technodes.DEFAULT_NODES
DEPTHS: Tuple[int, ...] = tuple(range(2, 26))
TRACE_LENGTH = 8000
M = 3.0

QUICK_WORKLOADS: Tuple[str, ...] = ("gcc95",)
QUICK_DEPTHS: Tuple[int, ...] = tuple(range(2, 26, 2))
QUICK_TRACE_LENGTH = 3000

DISPATCH_FLOOR = 2.0
"""Minimum (depth x node x workload) points per second through the suite
kernel — set ~10x below a cold serial run on a modest container so only a
real slowdown (not machine noise) can cross it."""

SHIFT_FLOOR = 0.5
"""Minimum optimum-depth shift (stages) some non-base node must show."""


@dataclass(frozen=True)
class TechBenchResult:
    workloads: Tuple[str, ...]
    nodes: Tuple[str, ...]
    depths: Tuple[int, ...]
    trace_length: int
    grid_seconds: float
    figure: fig10_technodes.Fig10Data
    base_optima: Tuple[Tuple[str, float], ...]  # node-less plain sweep
    base_identical: bool

    @property
    def depth_points(self) -> int:
        return len(self.nodes) * len(self.workloads) * len(self.depths)

    @property
    def dispatch_rate(self) -> float:
        return self.depth_points / self.grid_seconds

    @property
    def best_shift(self) -> Tuple[str, float]:
        """(node, shift) of the largest move away from the base optimum."""
        base = self.figure.base_row.mean_depth
        row = max(
            (r for r in self.figure.rows if r.node != BASE_NODE),
            key=lambda r: abs(r.mean_depth - base),
        )
        return row.node, row.mean_depth - base

    def as_json(self) -> dict:
        node, shift = self.best_shift
        return {
            "workloads": list(self.workloads),
            "nodes": list(self.nodes),
            "depths": list(self.depths),
            "trace_length": self.trace_length,
            "grid_seconds": self.grid_seconds,
            "depth_points": self.depth_points,
            "dispatch_rate": self.dispatch_rate,
            "dispatch_floor": DISPATCH_FLOOR,
            "base_identical": self.base_identical,
            "best_shift_node": node,
            "best_shift_stages": shift,
            "shift_floor": SHIFT_FLOOR,
            "optima": {
                row.node: {
                    "mean_depth": row.mean_depth,
                    "leakage_share": row.leakage_share,
                    "fo4_per_stage": row.fo4_per_stage,
                    "per_workload": dict(row.optima),
                }
                for row in self.figure.rows
            },
        }


def measure(
    workloads: Sequence[str] = WORKLOADS,
    nodes: Sequence[str] = NODES,
    depths: Sequence[int] = DEPTHS,
    trace_length: int = TRACE_LENGTH,
) -> TechBenchResult:
    """Time the (depth x node) grid and cross-check the base-node row."""
    started = time.perf_counter()
    figure = fig10_technodes.run(
        workloads=workloads, nodes=nodes, depths=depths,
        trace_length=trace_length, m=M, backend="suite",
    )
    grid_seconds = time.perf_counter() - started

    # The same sweep with no node anywhere in sight: machine=None, the
    # pre-tech code path.  Optima must match the base row float-for-float.
    specs = tuple(get_workload(name) for name in workloads)
    plain = run_depth_sweeps(
        specs, depths=tuple(depths), trace_length=trace_length, backend="suite"
    )
    base_optima = tuple(
        (spec.name, float(optimum_from_sweep(sweep, M, gated=True).depth))
        for spec, sweep in zip(specs, plain)
    )
    return TechBenchResult(
        workloads=tuple(str(w) for w in workloads),
        nodes=tuple(str(n) for n in nodes),
        depths=tuple(int(d) for d in depths),
        trace_length=trace_length,
        grid_seconds=grid_seconds,
        figure=figure,
        base_optima=base_optima,
        base_identical=base_optima == figure.base_row.optima,
    )


def format_result(result: TechBenchResult) -> str:
    node, shift = result.best_shift
    lines = [
        f"Technology-node axis — {len(result.nodes)} nodes x "
        f"{len(result.workloads)} workloads x {len(result.depths)} depths "
        f"({result.trace_length} instructions, suite kernel)",
        f"  grid wall time    : {result.grid_seconds:7.1f} s "
        f"({result.dispatch_rate:.1f} depth-points/s, floor {DISPATCH_FLOOR:g})",
        f"  base-node identity: "
        f"{'PASS' if result.base_identical else 'FAIL'} "
        f"({BASE_NODE} row == node-less sweep, float for float)",
        f"  largest shift     : {node} {shift:+.2f} stages "
        f"(static x{get_node(node).static_scale:g}; floor {SHIFT_FLOOR:g})",
    ]
    lines.append(fig10_technodes.format_table(result.figure))
    return "\n".join(lines)


def check(result: TechBenchResult) -> Tuple[str, ...]:
    """The assertions both entry points share; returns failure lines."""
    failures = []
    if not result.base_identical:
        failures.append(
            f"base-node row diverged from the node-less sweep: "
            f"{result.figure.base_row.optima} != {result.base_optima}"
        )
    _node, shift = result.best_shift
    if abs(shift) < SHIFT_FLOOR:
        failures.append(
            f"no node moved the optimum by >= {SHIFT_FLOOR} stages "
            f"(best {shift:+.2f})"
        )
    if result.dispatch_rate < DISPATCH_FLOOR:
        failures.append(
            f"suite-kernel dispatch {result.dispatch_rate:.2f} "
            f"depth-points/s below floor {DISPATCH_FLOOR:g}"
        )
    return tuple(failures)


def test_tech_axis(benchmark, record_table):
    """Recorded run: base row identical, optimum moves, dispatch above floor."""
    from conftest import run_once

    result = run_once(benchmark, measure)
    record_table("tech", format_result(result), data=result.as_json())
    failures = check(result)
    assert not failures, "\n".join(failures)


def main(argv: "Sequence[str] | None" = None) -> int:
    from conftest import write_json_record

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: one workload, even depths, shorter trace",
    )
    args = parser.parse_args(argv)

    if args.quick:
        result = measure(
            workloads=QUICK_WORKLOADS,
            depths=QUICK_DEPTHS,
            trace_length=QUICK_TRACE_LENGTH,
        )
        name = "tech_ci"
    else:
        result = measure()
        name = "tech"

    table = format_result(result)
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    with (RESULTS_DIR / f"{name}.txt").open("a", encoding="utf-8") as handle:
        handle.write(f"[{stamp}] {table}\n")
    write_json_record(name, table, data=result.as_json())

    failures = check(result)
    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    node, shift = result.best_shift
    print(
        f"PASS: base row identical, {node} moves the optimum {shift:+.2f} "
        f"stages, {result.dispatch_rate:.1f} depth-points/s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
