"""Regenerate the paper's headline scalar claims ("Table H").

Alongside the claims themselves this records how fast the engine can
produce them: ``test_headline_suite_dispatch`` times the same headline
run under per-job batched dispatch and under the suite backend's one
ragged kernel call, asserting suite dispatch never loses and recording
the wall-clock pair next to the claims table.
"""

import tempfile
import time
from pathlib import Path

import pytest

from conftest import run_once
from repro.engine.scheduler import EngineConfig, ExecutionEngine
from repro.experiments import headline
from repro.pipeline.events_cache import TraceEventsCache
from repro.runtime.resolver import Resolver
from repro.trace import small_suite


@pytest.mark.benchmark(group="headline")
def test_headline_claims(benchmark, record_table):
    data = run_once(
        benchmark, lambda: headline.run(specs=small_suite(3), trace_length=8000)
    )
    held = sum(row.holds for row in data.rows)
    record_table(
        "headline",
        headline.format_table(data),
        data={
            "claims": [
                {
                    "claim": row.claim,
                    "paper_value": row.paper_value,
                    "measured": row.measured,
                    "holds": row.holds,
                }
                for row in data.rows
            ],
            "held": held,
            "total": len(data.rows),
        },
    )
    assert held >= 6, headline.format_table(data)


def _timed_headline(backend, events_cache, reps=2):
    """Best-of-``reps`` cold-result headline run under ``backend`` dispatch."""
    best = None
    data = None
    for _ in range(reps):
        with tempfile.TemporaryDirectory() as cache_dir:
            resolver = Resolver(
                cache_dir=Path(cache_dir),
                memory_entries=0,
                events_cache=events_cache,
            )
            engine = ExecutionEngine(
                EngineConfig(workers=1, cache_dir=Path(cache_dir)),
                resolver=resolver,
            )
            started = time.perf_counter()
            data = headline.run(
                specs=small_suite(3),
                trace_length=8000,
                engine=engine,
                backend=backend,
            )
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
    return best, data


def test_headline_suite_dispatch(record_table):
    """Suite dispatch reproduces the claims table and never loses to batched."""
    with tempfile.TemporaryDirectory() as events_dir:
        events_cache = TraceEventsCache(Path(events_dir))
        batched_seconds, batched_data = _timed_headline("batched", events_cache)
        suite_seconds, suite_data = _timed_headline("suite", events_cache)
    assert [
        (row.claim, row.measured, row.holds) for row in suite_data.rows
    ] == [(row.claim, row.measured, row.holds) for row in batched_data.rows]
    speedup = batched_seconds / suite_seconds
    table = (
        f"headline dispatch wall-clock (cold results, warm analyses)\n"
        f"  batched {batched_seconds * 1e3:8.1f} ms\n"
        f"  suite   {suite_seconds * 1e3:8.1f} ms   ({speedup:.2f}x)\n"
    )
    record_table(
        "headline_suite",
        table,
        data={
            "batched_seconds": batched_seconds,
            "suite_seconds": suite_seconds,
            "suite_speedup": speedup,
        },
    )
    assert speedup >= 1.0, table
