"""Regenerate the paper's headline scalar claims ("Table H")."""

import pytest

from conftest import run_once
from repro.experiments import headline
from repro.trace import small_suite


@pytest.mark.benchmark(group="headline")
def test_headline_claims(benchmark, record_table):
    data = run_once(
        benchmark, lambda: headline.run(specs=small_suite(3), trace_length=8000)
    )
    held = sum(row.holds for row in data.rows)
    record_table(
        "headline",
        headline.format_table(data),
        data={
            "claims": [
                {
                    "claim": row.claim,
                    "paper_value": row.paper_value,
                    "measured": row.measured,
                    "holds": row.holds,
                }
                for row in data.rows
            ],
            "held": held,
            "total": len(data.rows),
        },
    )
    assert held >= 6, headline.format_table(data)
