"""Cycle backend acceptance: tracks the reference within its tolerance.

Runs one depth sweep over a commercial workload on the ``reference``
and ``cycle`` backends and checks the differential contract the cycle
backend documents (see ``docs/FASTSIM.md``):

* every hazard count (instructions, mispredicts, cache misses, ...) is
  bit-identical — both models consume the same trace analysis, so any
  drift here is a wiring bug, not a modeling choice;
* per-depth ``cycles`` and ``issue_cycles`` agree within
  ``CYCLE_CPI_RTOL`` — the two timing models are independent (analytic
  recurrences vs. an event-driven state machine), so this is the real
  cross-validation;

and records the worst relative CPI deviation observed plus the wall-time
cost of cycle accuracy (informational — the cycle backend is expected to
be the slowest; it exists for validation, not throughput).

Two entry points:

* ``pytest benchmarks/bench_cycle.py --benchmark-only`` — the recorded
  run; writes ``benchmarks/results/cycle.txt`` + ``cycle.json``.
* ``python benchmarks/bench_cycle.py [--quick]`` — the CI smoke gate;
  ``--quick`` shrinks the trace and the depth set, appending to
  ``benchmarks/results/cycle_ci.txt`` (+ ``cycle_ci.json``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.fuzz import compare_results
from repro.pipeline.cycle import CYCLE_CPI_RTOL
from repro.pipeline.fastsim import make_simulator
from repro.pipeline.simulator import MachineConfig
from repro.trace import generate_trace, get_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

WORKLOAD = "cics-payroll"
DEPTHS: Tuple[int, ...] = tuple(range(2, 22))  # 20-point sweep
TRACE_LENGTH = 8000

QUICK_TRACE_LENGTH = 1500
QUICK_DEPTHS: Tuple[int, ...] = (2, 5, 9, 14, 19)


@dataclass(frozen=True)
class CycleBenchResult:
    workload: str
    trace_length: int
    depths: Tuple[int, ...]
    reference_seconds: float
    cycle_seconds: float
    worst_rel_cpi: float
    worst_rel_depth: int
    mismatches: Tuple[str, ...]

    @property
    def slowdown(self) -> float:
        """cycle over reference (sweep wall time) — informational."""
        return self.cycle_seconds / self.reference_seconds

    def as_json(self) -> dict:
        return {
            "workload": self.workload,
            "trace_length": self.trace_length,
            "depths": list(self.depths),
            "reference_seconds": self.reference_seconds,
            "cycle_seconds": self.cycle_seconds,
            "slowdown": self.slowdown,
            "worst_rel_cpi": self.worst_rel_cpi,
            "worst_rel_depth": self.worst_rel_depth,
            "cpi_rtol": CYCLE_CPI_RTOL,
            "mismatches": list(self.mismatches),
        }


def measure(
    workload: str = WORKLOAD,
    trace_length: int = TRACE_LENGTH,
    depths: Sequence[int] = DEPTHS,
) -> CycleBenchResult:
    """One sweep per backend, compared depth-for-depth."""
    machine = MachineConfig()
    trace = generate_trace(get_workload(workload), trace_length)
    depths = tuple(depths)

    started = time.perf_counter()
    reference = make_simulator(machine, "reference").simulate_depths(trace, depths)
    reference_seconds = time.perf_counter() - started

    started = time.perf_counter()
    cycle = make_simulator(machine, "cycle").simulate_depths(trace, depths)
    cycle_seconds = time.perf_counter() - started

    mismatches: list = []
    worst_rel, worst_depth = 0.0, depths[0]
    for depth, ref, cyc in zip(depths, reference, cycle):
        mismatches.extend(compare_results(ref, cyc, "cycle", depth))
        rel = abs(cyc.cycles - ref.cycles) / ref.cycles
        if rel > worst_rel:
            worst_rel, worst_depth = rel, depth

    return CycleBenchResult(
        workload=workload,
        trace_length=trace_length,
        depths=depths,
        reference_seconds=reference_seconds,
        cycle_seconds=cycle_seconds,
        worst_rel_cpi=worst_rel,
        worst_rel_depth=worst_depth,
        mismatches=tuple(mismatches),
    )


def format_result(result: CycleBenchResult) -> str:
    lines = [
        f"Cycle backend acceptance — {result.workload}, "
        f"{result.trace_length} instructions, "
        f"{len(result.depths)} depths ({result.depths[0]}..{result.depths[-1]})",
        f"  reference backend : {result.reference_seconds * 1e3:7.1f} ms",
        f"  cycle backend     : {result.cycle_seconds * 1e3:7.1f} ms "
        f"({result.slowdown:.2f}x reference — informational)",
        f"  worst |rel| CPI   : {result.worst_rel_cpi:7.4f} at depth "
        f"{result.worst_rel_depth} (tolerance {CYCLE_CPI_RTOL:g})",
        f"  contract          : {'PASS' if not result.mismatches else 'FAIL'} "
        "(hazards exact, timing within rtol)",
    ]
    lines.extend(f"    {line}" for line in result.mismatches)
    return "\n".join(lines)


def test_cycle_tracks_reference(benchmark, record_table):
    """Recorded run: hazards exact, CPI within the documented tolerance."""
    from conftest import run_once

    result = run_once(benchmark, measure)
    record_table("cycle", format_result(result), data=result.as_json())
    assert not result.mismatches, format_result(result)


def main(argv: "Sequence[str] | None" = None) -> int:
    from conftest import write_json_record

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: shorter trace and a 5-depth subset",
    )
    args = parser.parse_args(argv)

    if args.quick:
        result = measure(trace_length=QUICK_TRACE_LENGTH, depths=QUICK_DEPTHS)
        name = "cycle_ci"
    else:
        result = measure()
        name = "cycle"

    table = format_result(result)
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    with (RESULTS_DIR / f"{name}.txt").open("a", encoding="utf-8") as handle:
        handle.write(f"[{stamp}] {table}\n")
    write_json_record(name, table, data=result.as_json())

    if result.mismatches:
        print(
            f"FAIL: {len(result.mismatches)} contract violations", file=sys.stderr
        )
        return 1
    print(
        f"PASS: hazards exact, worst |rel| CPI {result.worst_rel_cpi:.4f} "
        f"within rtol {CYCLE_CPI_RTOL:g} across {len(result.depths)} depths"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
