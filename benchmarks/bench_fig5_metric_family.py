"""Regenerate paper Fig. 5: BIPS, BIPS^3/W, BIPS^2/W, BIPS/W vs depth."""

import pytest

from conftest import run_once
from repro.experiments import fig5_metric_family


@pytest.mark.benchmark(group="fig5")
def test_fig5_metric_family(benchmark, record_table):
    data = run_once(benchmark, lambda: fig5_metric_family.run(trace_length=12000))
    record_table("fig5_metric_family", fig5_metric_family.format_table(data))
    # Paper claims: peaks for BIPS and BIPS^3/W; BIPS/W optimises at the
    # shallowest design; optima deepen with the exponent.
    assert data.interior[3.0]
    assert data.interior[float("inf")]
    assert not data.interior[1.0]
    assert data.optima[1.0] <= data.optima[2.0] + 0.75
    assert data.optima[2.0] <= data.optima[3.0] + 0.75
    assert data.optima[3.0] <= data.optima[float("inf")] + 0.75
