"""Search-subsystem benchmark: optimizer agreement + zero-recompute resume.

Runs the same design-space search (machine widths × latch overhead over a
small workload mix) through all three optimizers against one shared
result cache and measures what the subsystem promises:

1. **Agreement** — beam search and multi-start hill climbing find the
   same optimum as the exhaustive grid (the reference strategy).
2. **Reuse** — because every probe resolves through the engine's
   content-addressed cache, the beam and multi-start searches after the
   grid pass compute *zero* simulations, and a warm re-run of the grid
   search itself replays entirely from its checkpoint.
3. **Throughput** — cold vs warm probes/sec and the engine hit ratio
   quantify the cost of a probe and the win of the cache tiers.

Two entry points, mirroring ``bench_fastsim.py``:

* ``pytest benchmarks/bench_search.py --benchmark-only`` — the recorded
  run; asserts agreement and zero recompute and writes
  ``benchmarks/results/search.txt`` + ``search.json``.
* ``python benchmarks/bench_search.py [--quick]`` — standalone/CI smoke
  (``search_ci.txt`` + ``search_ci.json``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Sequence

from repro.engine.scheduler import EngineConfig, ExecutionEngine
from repro.search import (
    BeamSearch,
    GridSearch,
    MultiStartSearch,
    Objective,
    SearchOutcome,
    SearchSpace,
    SearchStore,
    run_search,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SPACE = SearchSpace.of(
    {"issue_width": "2:6:2", "t_o": "1.5:3.5:0.5", "predictor_kind": "gshare,bimodal"}
)
WORKLOADS = ("gzip", "swim")
DEPTHS = (4, 6, 8, 10, 12)
TRACE_LENGTH = 4000
SEED = 0

QUICK_SPACE = SearchSpace.of({"issue_width": "2:4:2", "t_o": "2.0:3.0:0.5"})
QUICK_WORKLOADS = ("gzip",)
QUICK_DEPTHS = (4, 6, 8)
QUICK_TRACE_LENGTH = 1000


@dataclass(frozen=True)
class SearchBench:
    """One full benchmark run: grid cold, grid warm, beam, multistart."""

    space_size: int
    grid_cold: SearchOutcome
    grid_warm: SearchOutcome
    beam: SearchOutcome
    multistart: SearchOutcome

    @property
    def cold_probes_per_second(self) -> float:
        return self.grid_cold.new_probes / max(self.grid_cold.duration, 1e-9)

    @property
    def warm_probes_per_second(self) -> float:
        return self.grid_warm.probes / max(self.grid_warm.duration, 1e-9)

    @property
    def reuse_hit_ratio(self) -> float:
        """Engine cache hits per job over the post-grid searches."""
        jobs = self.beam.computed + self.beam.cache_hits
        jobs += self.multistart.computed + self.multistart.cache_hits
        hits = self.beam.cache_hits + self.multistart.cache_hits
        return hits / jobs if jobs else 1.0

    def as_json(self) -> dict:
        return {
            "space_size": self.space_size,
            "cold_probes_per_second": self.cold_probes_per_second,
            "warm_probes_per_second": self.warm_probes_per_second,
            "reuse_hit_ratio": self.reuse_hit_ratio,
            "outcomes": {
                "grid_cold": self.grid_cold.to_doc(),
                "grid_warm": self.grid_warm.to_doc(),
                "beam": self.beam.to_doc(),
                "multistart": self.multistart.to_doc(),
            },
        }


def measure(
    space: SearchSpace = SPACE,
    workloads: Sequence[str] = WORKLOADS,
    depths: Sequence[int] = DEPTHS,
    trace_length: int = TRACE_LENGTH,
) -> SearchBench:
    objective = Objective(
        workloads=tuple(workloads),
        depths=tuple(depths),
        trace_length=trace_length,
        backend="fast",
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-search-") as scratch:
        root = pathlib.Path(scratch)
        store = SearchStore(root / "state")

        def run(optimizer, resume=True):
            # A fresh engine per run keeps computed/hit counters per-run.
            engine = ExecutionEngine(
                EngineConfig(workers=1, cache_dir=root / "cache")
            )
            return run_search(
                space, objective, optimizer,
                seed=SEED, budget=0, engine=engine, store=store, resume=resume,
            )

        grid_cold = run(GridSearch())
        grid_warm = run(GridSearch(), resume=False)  # replays via the disk cache
        beam = run(BeamSearch())
        multistart = run(MultiStartSearch())
        return SearchBench(
            space_size=space.size(),
            grid_cold=grid_cold,
            grid_warm=grid_warm,
            beam=beam,
            multistart=multistart,
        )


def format_result(bench: SearchBench) -> str:
    best = ", ".join(
        f"{k}={v}" for k, v in sorted((bench.grid_cold.best_point or {}).items())
    )
    return "\n".join(
        [
            f"Search benchmark — {bench.space_size}-point space, seed {SEED}",
            f"  grid cold   : {bench.grid_cold.new_probes} probes, "
            f"{bench.grid_cold.computed} computed, "
            f"{bench.cold_probes_per_second:7.2f} probes/s",
            f"  grid warm   : {bench.grid_warm.probes} probes, "
            f"{bench.grid_warm.computed} computed, "
            f"{bench.warm_probes_per_second:7.2f} probes/s",
            f"  beam        : {bench.beam.probes} probes, "
            f"{bench.beam.computed} computed, "
            f"{bench.beam.cache_hits} cache hits",
            f"  multistart  : {bench.multistart.probes} probes, "
            f"{bench.multistart.computed} computed, "
            f"{bench.multistart.cache_hits} cache hits",
            f"  reuse ratio : {bench.reuse_hit_ratio:.1%} engine hits "
            "after the grid pass",
            f"  optimum     : {best} "
            f"(score {bench.grid_cold.best_score:.6g}, "
            f"depth {bench.grid_cold.best_depth})",
        ]
    )


def _check(bench: SearchBench) -> "list[str]":
    failures = []
    for name in ("beam", "multistart"):
        outcome = getattr(bench, name)
        if outcome.best_point != bench.grid_cold.best_point:
            failures.append(
                f"{name} optimum {outcome.best_point} != grid "
                f"{bench.grid_cold.best_point}"
            )
        if outcome.computed != 0:
            failures.append(
                f"{name} computed {outcome.computed} jobs after the grid "
                "warmed the cache (expected 0)"
            )
    if bench.grid_warm.computed != 0:
        failures.append(
            f"warm grid computed {bench.grid_warm.computed} jobs (expected 0)"
        )
    if bench.reuse_hit_ratio < 1.0:
        failures.append(f"reuse hit ratio {bench.reuse_hit_ratio:.1%} < 100%")
    return failures


def test_search_reuse(benchmark, record_table):
    """Recorded run: optimizers agree; post-grid searches compute nothing."""
    from conftest import run_once

    bench = run_once(benchmark, measure)
    table = format_result(bench)
    record_table("search", table, data=bench.as_json())
    failures = _check(bench)
    assert not failures, f"{failures}\n{table}"


def main(argv: "Sequence[str] | None" = None) -> int:
    from conftest import write_json_record

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: smaller space, one workload, shorter traces",
    )
    args = parser.parse_args(argv)

    if args.quick:
        bench = measure(
            space=QUICK_SPACE,
            workloads=QUICK_WORKLOADS,
            depths=QUICK_DEPTHS,
            trace_length=QUICK_TRACE_LENGTH,
        )
        name = "search_ci"
    else:
        bench = measure()
        name = "search"

    table = format_result(bench)
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    with (RESULTS_DIR / f"{name}.txt").open("a", encoding="utf-8") as handle:
        handle.write(f"[{stamp}]\n{table}\n")
    write_json_record(name, table, data=bench.as_json())

    failures = _check(bench)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(
        f"PASS: optimizers agree on {bench.grid_cold.best_point}, "
        f"warm run computed 0 jobs "
        f"({bench.cold_probes_per_second:.2f} cold / "
        f"{bench.warm_probes_per_second:.2f} warm probes/s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
