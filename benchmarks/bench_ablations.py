"""Ablation studies of the design choices DESIGN.md calls out.

Each ablation flips one modelling decision and reports how the optimum
design point responds — these are the "is this choice load-bearing?"
experiments a reviewer would ask for:

* **in-order vs out-of-order** — the paper's Sec. 3 justification for the
  in-order model ("only minor differences in the pipeline depth
  optimization");
* **branch predictor quality** — the theory's N_H sensitivity: worse
  prediction, shallower optimum;
* **issue width** — the theory's alpha sensitivity (Sec. 2.2): wider
  issue, shallower optimum;
* **merge rule** — the paper's max-power assumption for contracted
  stages vs keeping every latch;
* **partial clock gating** — the constant-f_cg bridge between the
  un-gated and perfectly gated extremes;
* **blocking vs non-blocking caches** (MSHRs).
"""

import pytest

from conftest import run_once
from repro.analysis import optimum_from_sweep, run_depth_sweep
from repro.core import DesignSpace, calibrate_leakage, gating_fraction_sweep
from repro.pipeline import MachineConfig
from repro.trace import get_workload

DEPTHS = tuple(range(2, 26))
LENGTH = 8000
WORKLOAD = "web-java-catalog"


def _optimum(machine=None, power_model=None, workload=WORKLOAD):
    sweep = run_depth_sweep(
        get_workload(workload), depths=DEPTHS, trace_length=LENGTH,
        machine=machine, power_model=power_model,
    )
    return optimum_from_sweep(sweep, 3.0, gated=True).depth, sweep


@pytest.mark.benchmark(group="ablations")
def test_ablation_in_order_vs_out_of_order(benchmark, record_table):
    def run():
        in_order, _ = _optimum(MachineConfig(in_order=True))
        ooo, _ = _optimum(MachineConfig(in_order=False, mshr_entries=4))
        return in_order, ooo

    in_order, ooo = run_once(benchmark, run)
    record_table(
        "ablation_ooo",
        "Ablation — in-order vs out-of-order (paper Sec. 3)\n"
        f"  in-order optimum      : {in_order:.1f} stages\n"
        f"  out-of-order optimum  : {ooo:.1f} stages\n"
        f"  difference            : {abs(in_order - ooo):.1f} stages (paper: 'minor')",
    )
    assert abs(in_order - ooo) <= 3.0


@pytest.mark.benchmark(group="ablations")
def test_ablation_branch_predictor(benchmark, record_table):
    def run():
        rows = []
        for kind in ("oracle", "gshare", "taken"):
            depth, sweep = _optimum(MachineConfig(predictor_kind=kind))
            rows.append((kind, depth, sweep.reference.misprediction_rate))
        return rows

    rows = run_once(benchmark, run)
    lines = ["Ablation — branch predictor quality (theory: more hazards, shallower)"]
    for kind, depth, rate in rows:
        lines.append(f"  {kind:8s} mispredict {rate:5.1%}  optimum {depth:5.1f} stages")
    record_table("ablation_predictor", "\n".join(lines))
    by_kind = {kind: depth for kind, depth, _ in rows}
    # The static-taken predictor mispredicts far more than gshare and must
    # not yield a deeper optimum; the oracle bounds gshare from above.
    assert by_kind["taken"] <= by_kind["gshare"] + 0.5
    assert by_kind["gshare"] <= by_kind["oracle"] + 1.0


@pytest.mark.benchmark(group="ablations")
def test_ablation_issue_width(benchmark, record_table):
    def run():
        rows = []
        for width in (1, 2, 4):
            depth, sweep = _optimum(MachineConfig(issue_width=width))
            rows.append((width, depth, sweep.reference.superscalar_degree))
        return rows

    rows = run_once(benchmark, run)
    lines = ["Ablation — issue width (theory Sec. 2.2: higher alpha, shallower)"]
    for width, depth, alpha in rows:
        lines.append(f"  width {width}: alpha {alpha:4.2f}  optimum {depth:5.1f} stages")
    record_table("ablation_issue_width", "\n".join(lines))
    by_width = {w: d for w, d, _ in rows}
    assert by_width[4] <= by_width[1] + 0.5


@pytest.mark.benchmark(group="ablations")
def test_ablation_merge_rule(benchmark, record_table):
    from repro.power import UnitPowerModel

    def run():
        max_rule, max_sweep = _optimum(power_model=UnitPowerModel(merge_rule="max"))
        sum_rule, sum_sweep = _optimum(power_model=UnitPowerModel(merge_rule="sum"))
        shallow_ratio = (
            sum_sweep.watts(True)[0] / max_sweep.watts(True)[0]
        )
        return max_rule, sum_rule, shallow_ratio

    max_rule, sum_rule, shallow_ratio = run_once(benchmark, run)
    record_table(
        "ablation_merge_rule",
        "Ablation — merged-stage power rule (paper: charge the max)\n"
        f"  'max' rule optimum : {max_rule:.1f} stages\n"
        f"  'sum' rule optimum : {sum_rule:.1f} stages\n"
        f"  p=2 power ratio (sum/max): {shallow_ratio:.2f}",
    )
    # Keeping every latch makes shallow designs costlier, never cheaper.
    assert shallow_ratio >= 1.0
    # The headline optimum must not hinge on the merge rule.
    assert abs(max_rule - sum_rule) <= 3.0


@pytest.mark.benchmark(group="ablations")
def test_ablation_partial_gating(benchmark, record_table):
    def run():
        space = DesignSpace()
        space = space.with_power(calibrate_leakage(space, 0.15, 8.0))
        return gating_fraction_sweep(space, fractions=(1.0, 0.6, 0.3, 0.1))

    curves = run_once(benchmark, run)
    lines = ["Ablation — partial clock gating (constant f_cg)"]
    for curve in curves:
        lines.append(f"  {curve.label:10s} optimum {curve.optimum.depth:5.2f} stages")
    record_table("ablation_partial_gating", "\n".join(lines))
    depths = [c.optimum.depth for c in curves]
    assert depths == sorted(depths)  # less switching -> deeper optimum


@pytest.mark.benchmark(group="ablations")
def test_ablation_mshrs(benchmark, record_table):
    def run():
        blocking, _ = _optimum(MachineConfig(mshr_entries=1), workload="oltp-airline")
        nonblocking, _ = _optimum(MachineConfig(mshr_entries=8), workload="oltp-airline")
        return blocking, nonblocking

    blocking, nonblocking = run_once(benchmark, run)
    record_table(
        "ablation_mshrs",
        "Ablation — blocking vs non-blocking caches (legacy workload)\n"
        f"  1 MSHR (blocking) optimum : {blocking:.1f} stages\n"
        f"  8 MSHRs optimum           : {nonblocking:.1f} stages",
    )
    assert abs(blocking - nonblocking) <= 4.0
