"""Regenerate paper Fig. 1: the stationarity quartic's zero crossings."""

import pytest

from conftest import run_once
from repro.experiments import fig1_quartic


@pytest.mark.benchmark(group="fig1")
def test_fig1_quartic(benchmark, record_table):
    data = run_once(benchmark, fig1_quartic.run)
    record_table("fig1_quartic", fig1_quartic.format_table(data))
    # Shape claims: four real roots, exactly one positive, Eq. 6a exact.
    assert len(data.real_roots) == 4
    assert len(data.positive_roots) == 1
    assert any(abs(r - data.expected_spurious[0]) < 1e-6 * abs(r) for r in data.real_roots)
