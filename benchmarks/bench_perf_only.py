"""Revalidate the predecessor performance-only result (H&P 2002, Eq. 2)."""

import pytest

from conftest import run_once
from repro.experiments import perf_only
from repro.trace import small_suite


@pytest.mark.benchmark(group="perf-only")
def test_perf_only_foundation(benchmark, record_table):
    data = run_once(
        benchmark, lambda: perf_only.run(specs=small_suite(2), trace_length=8000)
    )
    record_table("perf_only", perf_only.format_table(data))
    # Eq. 1 must track the simulated T/N_I curves closely (FP workloads
    # are the known hard case: long-op stalls are not of the hazard form).
    assert all(row.curve_r_squared > 0.6 for row in data.rows)
    integer_rows = [r for r in data.rows if r.workload not in ("swim", "mgrid")]
    assert all(row.curve_r_squared > 0.9 for row in integer_rows)
    # ...and both optimum estimates must land in the deep-pipeline regime,
    # bracketing the predecessor paper's ~22 stages.
    assert 12.0 <= data.mean_simulated <= 28.0
    assert 15.0 <= data.mean_eq2 <= 40.0
    assert data.mean_simulated <= 22.0 <= data.mean_eq2 + 2.0
