#!/usr/bin/env python3
"""Workload study: simulate real workload classes and find their optima.

Takes one workload per class from the 55-workload suite, sweeps it across
pipeline depths 2..25 on the cycle-accurate simulator, accounts power
under both gating models, and reports each workload's optimum design
point by the paper's two extraction methods (blind cubic fit of the
simulated metric, and the analytic theory scale-fitted to the data).

Run:  python examples/workload_study.py [--length N]
"""

import argparse

from repro.analysis import optimum_from_sweep, run_depth_sweep, theory_fit_from_sweep
from repro.trace import WorkloadClass, by_class


def study(trace_length: int) -> None:
    print(
        f"{'workload':>18s} {'class':>12s} {'alpha':>6s} {'N_H/N_I':>8s} "
        f"{'cubic-fit':>10s} {'theory':>7s} {'FO4':>6s}"
    )
    for workload_class in WorkloadClass:
        spec = by_class(workload_class)[0]
        sweep = run_depth_sweep(spec, trace_length=trace_length)
        reference = sweep.reference
        estimate = optimum_from_sweep(sweep, m=3.0, gated=True)
        theory = theory_fit_from_sweep(sweep, m=3.0, gated=True)
        print(
            f"{spec.name:>18s} {workload_class.value:>12s} "
            f"{reference.superscalar_degree:6.2f} {reference.hazard_rate:8.3f} "
            f"{estimate.depth:10.1f} {theory.optimum.depth:7.1f} "
            f"{estimate.fo4_per_stage:6.1f}"
        )

    print()
    spec = by_class(WorkloadClass.MODERN)[0]
    sweep = run_depth_sweep(spec, trace_length=trace_length)
    print(f"Metric curve for {spec.name} (BIPS^3/W, clock-gated, peak-normalised):")
    values = sweep.normalized_metric(3.0, gated=True)
    for depth, value in zip(sweep.depths, values):
        bar = "#" * int(round(value * 40))
        print(f"  p={depth:2d} |{bar:<40s}| {value:.2f}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=8000, help="trace length")
    args = parser.parse_args()
    study(args.length)


if __name__ == "__main__":
    main()
