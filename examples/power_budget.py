#!/usr/bin/env python3
"""Power-budget design: the paper's *other* strategy, made concrete.

The paper's introduction names two ways to bring power into the pipeline
decision: optimise a BIPS^m/W metric (the paper's study), or maximise
performance under a package power cap.  This example runs both on the
same design space and shows where they agree and where they diverge —
including the Pareto frontier both strategies walk along.

Run:  python examples/power_budget.py
"""

from repro.core import (
    DesignSpace,
    calibrate_leakage,
    constrained_optimum,
    metric,
    optimum_depth,
    pareto_frontier,
    total_power,
)
from repro.report import Series, line_chart


def main() -> None:
    space = DesignSpace()
    space = space.with_power(calibrate_leakage(space, 0.15, 8.0))

    metric_design = optimum_depth(space, m=3.0)
    print("Strategy 1 — optimise BIPS^3/W:")
    print(f"  depth {metric_design.depth:.2f} stages "
          f"({metric_design.fo4_per_stage:.1f} FO4/stage), "
          f"power {total_power(metric_design.depth, space):.1f} units")
    print()

    print("Strategy 2 — best BIPS under a package power cap:")
    reference_watts = float(total_power(metric_design.depth, space))
    for scale in (0.5, 1.0, 2.0, 4.0, 16.0):
        budget = scale * reference_watts
        design = constrained_optimum(space, budget)
        binding = "cap-limited" if design.binding else "performance-limited"
        print(f"  budget {scale:5.1f}x: depth {design.depth:6.2f} stages, "
              f"BIPS {design.bips * 1e3:6.2f}e-3  ({binding})")
    print()

    depths, perf, watts = pareto_frontier(space)
    print("The BIPS-vs-watts Pareto frontier both strategies walk:")
    print(line_chart(
        [Series("frontier", watts, perf)],
        title="performance vs power along the efficient depths",
        x_label="power (arbitrary units)",
        height=12,
    ))
    print()
    m3 = metric_design.depth
    print(f"The BIPS^3/W optimum sits on this frontier at depth {m3:.1f} — the "
          f"metric picks one point; the power cap picks another, by budget.")


if __name__ == "__main__":
    main()
