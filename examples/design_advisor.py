#!/usr/bin/env python3
"""Design advisor: recommend a pipeline depth for a described workload.

Demonstrates using the library as an early-concept-phase design tool (the
scenario the paper's introduction motivates: architects must fix the
pipeline structure before accurate models exist).  You describe the
workload with a few command-line knobs; the tool builds a synthetic trace,
runs the reference simulation, extracts the theory parameters and prints a
recommended depth for your chosen power/performance metric — plus how the
recommendation shifts if your technology assumptions move.

Run:  python examples/design_advisor.py --branch 0.2 --memory 0.4 --metric 3
"""

import argparse

from repro.analysis import optimum_from_sweep, run_depth_sweep, theory_fit_from_sweep
from repro.isa import OpClass
from repro.trace import WorkloadClass, WorkloadSpec


def build_spec(args: argparse.Namespace) -> WorkloadSpec:
    other = 1.0 - args.branch - args.memory - args.fp
    if other <= 0:
        raise SystemExit("branch + memory + fp fractions must leave room for ALU ops")
    mix = {
        OpClass.RR_ALU: other * 0.85,
        OpClass.COMPLEX: other * 0.15,
        OpClass.RX_LOAD: args.memory * 0.35,
        OpClass.RX_STORE: args.memory * 0.25,
        OpClass.RX_ALU: args.memory * 0.40,
        OpClass.BRANCH: args.branch,
        OpClass.FP: args.fp,
    }
    return WorkloadSpec(
        name="advisor-workload",
        workload_class=WorkloadClass.MODERN,
        mix=mix,
        branch_bias=args.predictability,
        data_working_set=args.working_set * 1024,
        data_locality=args.locality,
        code_footprint=args.code * 1024,
        dependency_distance=args.ilp,
        pointer_chase=args.chase,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--branch", type=float, default=0.18, help="branch fraction")
    parser.add_argument("--memory", type=float, default=0.42, help="memory-op fraction")
    parser.add_argument("--fp", type=float, default=0.01, help="floating-point fraction")
    parser.add_argument(
        "--predictability", type=float, default=0.93, help="branch bias in [0.5, 1]"
    )
    parser.add_argument("--working-set", type=int, default=512, help="data working set (KiB)")
    parser.add_argument("--locality", type=float, default=0.9, help="data locality [0, 1]")
    parser.add_argument("--code", type=int, default=128, help="code footprint (KiB)")
    parser.add_argument("--ilp", type=float, default=3.0, help="mean dependency distance")
    parser.add_argument("--chase", type=float, default=0.1, help="pointer-chase fraction")
    parser.add_argument("--metric", type=float, default=3.0, help="metric exponent m")
    parser.add_argument("--length", type=int, default=8000, help="trace length")
    args = parser.parse_args()

    spec = build_spec(args)
    sweep = run_depth_sweep(spec, trace_length=args.length)
    reference = sweep.reference
    simulated = optimum_from_sweep(sweep, m=args.metric, gated=True)
    theory = theory_fit_from_sweep(sweep, m=args.metric, gated=True)

    print("Workload characterisation (from one reference simulation at p=8):")
    print(f"  superscalar degree alpha : {reference.superscalar_degree:.2f}")
    print(f"  hazards per instruction  : {reference.hazard_rate:.3f}")
    print(f"  misprediction rate       : {reference.misprediction_rate:.1%}")
    print(f"  D-cache miss rate        : {reference.dcache_miss_rate:.1%}")
    print()
    print(f"Recommendation for BIPS^{args.metric:g}/W (clock-gated):")
    print(
        f"  simulated optimum : {simulated.depth:.1f} stages "
        f"({simulated.fo4_per_stage:.1f} FO4/stage)"
    )
    print(
        f"  theory optimum    : {theory.optimum.depth:.1f} stages "
        f"({theory.optimum.fo4_per_stage:.1f} FO4/stage, fit R^2 {theory.r_squared:.2f})"
    )
    low, high = sorted((simulated.depth, theory.optimum.depth))
    print(f"  suggested design  : {round(low)}-{round(high)} stages")


if __name__ == "__main__":
    main()
