#!/usr/bin/env python3
"""Characterise the 55-workload suite (the artifact table).

Prints, for every workload, the static instruction mix and the measured
behavioural rates on the reference machine — the numbers behind each
workload's position in the paper's Figs. 6/7 distributions.  Pass
``--full`` for all 55 workloads (about a minute); the default runs a
reduced suite.

Run:  python examples/suite_characterization.py [--full] [--length N]
"""

import argparse

from repro.analysis import characterize_suite
from repro.analysis.characterize import format_table
from repro.trace import small_suite, suite


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="all 55 workloads")
    parser.add_argument("--length", type=int, default=8000)
    args = parser.parse_args()

    specs = suite() if args.full else small_suite(2)
    characters = characterize_suite(specs, trace_length=args.length)
    print(format_table(characters))
    print()
    by_class = {}
    for c in characters:
        by_class.setdefault(c.workload_class, []).append(c)
    print("Class summary (mean hazard pressure alpha*N_H/N_I — the theory's")
    print("shallow-optimum driver; lower pressure, deeper optimum):")
    for workload_class, members in by_class.items():
        pressure = sum(c.stressfulness for c in members) / len(members)
        print(f"  {workload_class.display_name:22s} {pressure:.4f}")


if __name__ == "__main__":
    main()
