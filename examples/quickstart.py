#!/usr/bin/env python3
"""Quickstart: the analytic optimum pipeline depth in a few lines.

Builds the paper's default design point (t_p = 140 FO4, t_o = 2.5 FO4,
15 % leakage), asks the theory for the optimum depth under each metric of
the BIPS**m/W family, and prints the resulting design table — the heart of
Hartstein & Puzak's MICRO-36 2003 result in one script.

Run:  python examples/quickstart.py
"""

from repro.core import (
    DesignSpace,
    GatingModel,
    GatingStyle,
    MetricFamily,
    calibrate_leakage,
    feasibility,
    optimum_depth,
)


def main() -> None:
    # A "typical" design space: default technology (140 / 2.5 FO4), default
    # workload parameters, leakage calibrated to 15 % of total power at the
    # paper's 8-stage reference point.
    space = DesignSpace()
    space = space.with_power(calibrate_leakage(space, fraction=0.15, reference_depth=8.0))

    print("Optimum pipeline depth by metric (un-gated dynamic power)")
    print(f"{'metric':>10s} {'optimum p':>10s} {'FO4/stage':>10s} {'pipelined?':>11s}")
    for metric in (
        MetricFamily.BIPS_PER_WATT,
        MetricFamily.BIPS2_PER_WATT,
        MetricFamily.BIPS3_PER_WATT,
        MetricFamily.PERFORMANCE_ONLY,
    ):
        result = optimum_depth(space, metric)
        print(
            f"{metric.label:>10s} {result.depth:10.2f} {result.fo4_per_stage:10.1f} "
            f"{'yes' if result.pipelined else 'no':>11s}"
        )

    print()
    gated = space.with_gating(GatingModel(GatingStyle.PERFECT))
    gated = gated.with_power(calibrate_leakage(gated, 0.15, 8.0))
    result = optimum_depth(gated, MetricFamily.BIPS3_PER_WATT)
    print(
        f"With perfect clock gating, the BIPS^3/W optimum moves deeper: "
        f"p = {result.depth:.2f} ({result.fo4_per_stage:.1f} FO4/stage)"
    )

    print()
    report = feasibility(space, MetricFamily.BIPS_PER_WATT)
    print(f"Why BIPS/W never pipelines: {report.explanation}")


if __name__ == "__main__":
    main()
