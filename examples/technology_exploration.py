#!/usr/bin/env python3
"""Technology exploration: how the optimum moves as technology changes.

The point of the paper's closed-form theory is that it answers "what if"
questions without new simulations.  This example explores three of them:

1. leakage share rising from 0 % to 90 % (Fig. 8 — deeper optima),
2. the latch growth exponent gamma rising from 1.0 to 1.8 (Fig. 9 —
   shallower optima, collapsing to a single stage past ~2),
3. the total logic depth t_p shrinking as designs integrate more per
   cycle (Sec. 2.2 — less logic to pipeline means shallower optima).

Run:  python examples/technology_exploration.py
"""

from repro.core import (
    DesignSpace,
    calibrate_leakage,
    gamma_sweep,
    leakage_sweep,
    logic_depth_sweep,
)


def show(title: str, curves) -> None:
    print(title)
    for curve in curves:
        optimum = curve.optimum
        marker = f"p = {optimum.depth:5.2f}" if optimum.pipelined else "single stage"
        print(f"  {curve.label:>14s}: optimum {marker}  ({optimum.fo4_per_stage:5.1f} FO4)")
    print()


def main() -> None:
    space = DesignSpace()
    space = space.with_power(calibrate_leakage(space, 0.15, 8.0))

    show(
        "1. Leakage share (dynamic power held fixed) — paper Fig. 8",
        leakage_sweep(space, fractions=(0.0, 0.15, 0.30, 0.50, 0.90)),
    )
    show(
        "2. Latch growth exponent gamma — paper Fig. 9",
        gamma_sweep(space, gammas=(1.0, 1.1, 1.3, 1.5, 1.8)),
    )
    show(
        "3. Total logic depth t_p (FO4) — more logic, more room to pipeline",
        logic_depth_sweep(space, logic_depths=(70.0, 140.0, 280.0)),
    )


if __name__ == "__main__":
    main()
