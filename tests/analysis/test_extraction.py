"""Tests of theory-parameter extraction from simulation runs."""

import pytest

from repro.analysis import extract_workload_params
from repro.core import time_per_instruction


class TestExtraction:
    def test_params_are_valid(self, modern_sweep):
        report = extract_workload_params(modern_sweep.reference)
        params = report.params
        assert params.hazard_rate > 0
        assert 1.0 <= params.superscalar_degree <= 4.0
        assert 0.0 < params.hazard_stall_fraction <= 1.0
        assert params.name == modern_sweep.trace_name

    def test_alpha_passthrough(self, modern_sweep):
        report = extract_workload_params(modern_sweep.reference)
        assert report.params.superscalar_degree == pytest.approx(
            modern_sweep.reference.superscalar_degree
        )

    def test_stall_accounting_consistent(self, modern_sweep):
        report = extract_workload_params(modern_sweep.reference)
        reference = modern_sweep.reference
        assert report.stall_time == pytest.approx(reference.stall_time)
        assert report.busy_time == pytest.approx(reference.busy_time)

    def test_beta_overflow_inflates_hazard_rate(self, float_sweep):
        """FP workloads stall far more than their countable hazards can
        explain: beta pins at 1 and the rate carries the overflow, so the
        theory's stall term still matches at the reference depth."""
        reference = float_sweep.reference
        report = extract_workload_params(reference)
        if report.raw_beta > 1.0:
            assert report.beta_clamped
            assert report.params.hazard_stall_fraction == 1.0
            assert report.params.hazard_rate > reference.hazard_rate

    def test_reconstructed_stall_matches_reference(self, modern_sweep):
        """Eq. 1's stall term with the extracted parameters reproduces the
        measured per-instruction stall time at the reference depth."""
        reference = modern_sweep.reference
        report = extract_workload_params(reference)
        params = report.params
        tech = reference.technology
        pipeline_delay = tech.latch_overhead * reference.depth + tech.total_logic_depth
        modeled = params.hazard_stall_fraction * params.hazard_rate * pipeline_delay
        measured = reference.stall_time / reference.instructions
        if not report.beta_clamped:
            assert modeled == pytest.approx(measured, rel=1e-6)

    def test_eq1_matches_reference_time(self, modern_sweep):
        """The full Eq. 1 with extracted parameters reproduces the measured
        time per instruction at the reference depth (the anchor point)."""
        reference = modern_sweep.reference
        params = extract_workload_params(reference).params
        modeled = time_per_instruction(float(reference.depth), reference.technology, params)
        assert modeled == pytest.approx(reference.time_per_instruction, rel=0.02)
