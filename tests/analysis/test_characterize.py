"""Tests of suite characterisation."""

import pytest

from repro.analysis import characterize, characterize_suite
from repro.analysis.characterize import format_table
from repro.trace import WorkloadClass, by_class, small_suite


class TestCharacterize:
    def test_fields_in_physical_ranges(self, modern_spec):
        c = characterize(modern_spec, trace_length=2000)
        assert 0.0 <= c.branch_fraction <= 1.0
        assert 0.0 <= c.misprediction_rate <= 1.0
        assert 0.0 <= c.dcache_miss_rate <= 1.0
        assert c.cpi > 0
        assert 1.0 <= c.superscalar_degree <= 4.0

    def test_mix_matches_spec(self, modern_spec):
        c = characterize(modern_spec, trace_length=5000)
        assert c.branch_fraction == pytest.approx(modern_spec.branch_fraction, abs=0.05)
        assert c.memory_fraction == pytest.approx(modern_spec.memory_fraction, abs=0.07)

    def test_stressfulness(self, modern_spec):
        c = characterize(modern_spec, trace_length=2000)
        assert c.stressfulness == pytest.approx(c.superscalar_degree * c.hazard_rate)

    def test_float_class_has_most_fp(self):
        float_spec = by_class(WorkloadClass.FLOAT)[0]
        int_spec = by_class(WorkloadClass.SPECINT95)[0]
        fp = characterize(float_spec, trace_length=2000)
        integer = characterize(int_spec, trace_length=2000)
        assert fp.fp_fraction > integer.fp_fraction + 0.1


class TestSuiteTable:
    def test_one_row_per_workload(self):
        characters = characterize_suite(small_suite(1), trace_length=1500)
        table = format_table(characters)
        lines = table.splitlines()
        assert len(lines) == 1 + len(characters)
        for c in characters:
            assert any(c.name in line for line in lines)

    def test_header_columns(self):
        characters = characterize_suite(small_suite(1), trace_length=1000)
        header = format_table(characters).splitlines()[0]
        for column in ("workload", "class", "mpred%", "alpha", "CPI"):
            assert column in header
