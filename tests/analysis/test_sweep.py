"""Tests of depth sweeps."""

import numpy as np
import pytest

from repro.analysis import DEFAULT_DEPTHS, run_depth_sweep
from repro.power import UnitPowerModel, power_report
from repro.trace import generate_trace


class TestDefaults:
    def test_default_depths_are_papers_range(self):
        assert DEFAULT_DEPTHS == tuple(range(2, 26))


class TestDepthSweep:
    def test_alignment(self, modern_sweep):
        assert len(modern_sweep) == len(modern_sweep.depths)
        assert len(modern_sweep.results) == len(modern_sweep.reports)

    def test_result_at(self, modern_sweep):
        result = modern_sweep.result_at(8)
        assert result.depth == 8
        with pytest.raises(KeyError):
            modern_sweep.result_at(99)

    def test_reference(self, modern_sweep):
        assert modern_sweep.reference.depth == modern_sweep.reference_depth

    def test_bips_positive(self, modern_sweep):
        assert np.all(modern_sweep.bips() > 0)

    def test_watts_gated_below_ungated(self, modern_sweep):
        assert np.all(modern_sweep.watts(True) <= modern_sweep.watts(False) + 1e-9)

    def test_metric_definition(self, modern_sweep):
        values = modern_sweep.metric(3.0, gated=True)
        manual = modern_sweep.bips() ** 3 / modern_sweep.watts(True)
        assert np.allclose(values, manual)

    def test_metric_infinite_is_bips(self, modern_sweep):
        assert np.allclose(modern_sweep.metric(float("inf")), modern_sweep.bips())

    def test_normalized_metric_peak(self, modern_sweep):
        assert modern_sweep.normalized_metric(3.0).max() == pytest.approx(1.0)

    def test_time_per_instruction(self, modern_sweep):
        tpi = modern_sweep.time_per_instruction()
        assert np.allclose(tpi, 1.0 / modern_sweep.bips())

    def test_leakage_calibrated_at_reference(self, modern_sweep):
        index = modern_sweep.depths.index(modern_sweep.reference_depth)
        share = modern_sweep.reports[index].leakage_fraction(True)
        assert share == pytest.approx(0.15, abs=1e-6)


class TestRunDepthSweep:
    def test_accepts_prebuilt_trace(self, modern_spec):
        trace = generate_trace(modern_spec, 1500)
        sweep = run_depth_sweep(trace, depths=(4, 8, 12), reference_depth=8)
        assert sweep.spec is None
        assert sweep.trace_name == modern_spec.name

    def test_reference_depth_must_be_swept(self, modern_spec):
        with pytest.raises(ValueError):
            run_depth_sweep(modern_spec, depths=(4, 12), reference_depth=8)

    def test_depths_must_ascend(self, modern_spec):
        trace = generate_trace(modern_spec, 500)
        with pytest.raises(ValueError):
            run_depth_sweep(trace, depths=(8, 4), reference_depth=8)

    def test_leakage_none_keeps_model(self, modern_spec):
        trace = generate_trace(modern_spec, 1500)
        model = UnitPowerModel(leakage_per_latch=0.123)
        sweep = run_depth_sweep(
            trace, depths=(8,), reference_depth=8, power_model=model, leakage_fraction=None
        )
        assert sweep.power_model.leakage_per_latch == 0.123

    def test_reports_match_direct_accounting(self, modern_spec):
        trace = generate_trace(modern_spec, 1500)
        sweep = run_depth_sweep(trace, depths=(8,), reference_depth=8)
        direct = power_report(sweep.results[0], sweep.power_model)
        assert direct.total_gated == pytest.approx(sweep.reports[0].total_gated)
