"""Tests of machine-configuration comparison."""

import pytest

from repro.analysis import compare_machines
from repro.pipeline import MachineConfig
from repro.trace import small_suite

DEPTHS = (2, 4, 6, 8, 10, 12, 16, 20)


@pytest.fixture(scope="module")
def comparison():
    return compare_machines(
        {"4-wide": MachineConfig(issue_width=4), "1-wide": MachineConfig(issue_width=1)},
        small_suite(1)[:3],
        depths=DEPTHS,
        trace_length=2000,
    )


class TestCompareMachines:
    def test_all_configs_present(self, comparison):
        assert {r.label for r in comparison.results} == {"4-wide", "1-wide"}

    def test_wider_machine_faster(self, comparison):
        assert comparison.speedup("1-wide", "4-wide") > 1.2

    def test_narrow_machine_not_shallower(self, comparison):
        # Theory Sec. 2.2: smaller alpha -> deeper optimum.
        assert comparison.optimum_shift("4-wide", "1-wide") > -1.0

    def test_per_workload_entries(self, comparison):
        result = comparison.result("4-wide")
        assert len(result.optima) == 3
        assert set(result.optima) == set(result.peak_bips)

    def test_unknown_label(self, comparison):
        with pytest.raises(KeyError):
            comparison.result("8-wide")

    def test_format_table(self, comparison):
        table = comparison.format_table()
        assert "4-wide" in table and "mean optimum" in table

    def test_needs_two_configs(self):
        with pytest.raises(ValueError):
            compare_machines({"only": MachineConfig()}, small_suite(1)[:1])
