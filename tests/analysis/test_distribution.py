"""Tests of suite-level optimum distributions."""

import numpy as np
import pytest

from repro.analysis import OptimumDistribution, optimum_distribution
from repro.trace import WorkloadClass, small_suite

DEPTHS = (2, 4, 6, 8, 10, 12, 16, 20, 25)


@pytest.fixture(scope="module")
def tiny_distribution():
    return optimum_distribution(
        small_suite(1), depths=DEPTHS, trace_length=2500, reference_depth=8
    )


class TestDistribution:
    def test_one_optimum_per_workload(self, tiny_distribution):
        assert len(tiny_distribution.optima) == len(WorkloadClass)

    def test_depths_in_swept_range(self, tiny_distribution):
        depths = tiny_distribution.depths()
        assert np.all(depths >= DEPTHS[0])
        assert np.all(depths <= DEPTHS[-1])

    def test_summary_statistics(self, tiny_distribution):
        depths = tiny_distribution.depths()
        assert tiny_distribution.mean_depth == pytest.approx(float(depths.mean()))
        assert tiny_distribution.median_depth == pytest.approx(float(np.median(depths)))
        assert tiny_distribution.mean_fo4() > 0

    def test_histogram_counts_sum(self, tiny_distribution):
        _lefts, counts = tiny_distribution.histogram()
        assert counts.sum() == len(tiny_distribution.optima)

    def test_by_class_partition(self, tiny_distribution):
        grouped = tiny_distribution.by_class()
        total = sum(len(members) for members in grouped.values())
        assert total == len(tiny_distribution.optima)

    def test_class_summary_ranges(self, tiny_distribution):
        for _cls, (mean, lo, hi) in tiny_distribution.class_summary().items():
            assert lo <= mean <= hi

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            OptimumDistribution(optima=(), metric_exponent=3.0, gated=True)

    def test_custom_bins(self, tiny_distribution):
        lefts, counts = tiny_distribution.histogram(bins=[0, 10, 30])
        assert counts.sum() == len(tiny_distribution.optima)
        assert list(lefts) == [0, 10]
