"""Tests of optimum extraction and theory fitting."""

import numpy as np
import pytest

from repro.analysis import optimum_from_sweep, theory_fit_from_sweep
from repro.analysis.optimum import _parabolic_refine


class TestOptimumFromSweep:
    def test_estimate_in_range(self, modern_sweep):
        estimate = optimum_from_sweep(modern_sweep, 3.0, gated=True)
        assert modern_sweep.depths[0] <= estimate.depth <= modern_sweep.depths[-1]
        assert estimate.method in ("cubic-fit", "parabolic", "boundary")

    def test_fo4_consistent(self, modern_sweep):
        estimate = optimum_from_sweep(modern_sweep, 3.0, gated=True)
        tech = modern_sweep.reference.technology
        assert estimate.fo4_per_stage == pytest.approx(tech.fo4_per_stage(estimate.depth))

    def test_bips_per_watt_lands_at_shallow_boundary(self, modern_sweep):
        estimate = optimum_from_sweep(modern_sweep, 1.0, gated=True)
        assert estimate.depth <= modern_sweep.depths[0] + 2.0

    def test_performance_only_deeper_than_power_aware(self, modern_sweep):
        perf = optimum_from_sweep(modern_sweep, float("inf"), gated=True)
        power_aware = optimum_from_sweep(modern_sweep, 3.0, gated=True)
        assert perf.depth > power_aware.depth + 2.0

    def test_parabolic_refine_vertex(self):
        depths = np.asarray([2.0, 4.0, 6.0, 8.0, 10.0])
        values = -(depths - 6.5) ** 2
        vertex, peak, method = _parabolic_refine(depths, values)
        assert method == "parabolic"
        assert vertex == pytest.approx(6.5)

    def test_parabolic_refine_boundary(self):
        depths = np.asarray([2.0, 4.0, 6.0])
        values = np.asarray([1.0, 2.0, 3.0])  # rising to the edge
        vertex, peak, method = _parabolic_refine(depths, values)
        assert vertex <= 6.0


class TestTheoryFit:
    def test_scale_positive_and_finite(self, modern_sweep):
        fit = theory_fit_from_sweep(modern_sweep, 3.0, gated=True)
        assert fit.scale > 0
        assert np.isfinite(fit.r_squared)

    def test_theory_values_aligned(self, modern_sweep):
        fit = theory_fit_from_sweep(modern_sweep, 3.0, gated=True)
        assert fit.theory_values.shape == (len(modern_sweep),)

    def test_integer_workload_fits_reasonably(self, modern_sweep):
        """The paper's Figs. 4a/4b: theory tracks integer simulations."""
        fit = theory_fit_from_sweep(modern_sweep, 3.0, gated=True)
        assert fit.r_squared > 0.3

    def test_gamma_estimated_from_power(self, modern_sweep):
        fit = theory_fit_from_sweep(modern_sweep, 3.0, gated=True)
        assert 0.7 <= fit.gamma <= 1.6

    def test_gamma_override(self, modern_sweep):
        fit = theory_fit_from_sweep(modern_sweep, 3.0, gated=True, gamma=1.3)
        assert fit.gamma == 1.3
        assert fit.space.power.gamma == 1.3

    def test_gating_flag_respected(self, modern_sweep):
        gated = theory_fit_from_sweep(modern_sweep, 3.0, gated=True)
        ungated = theory_fit_from_sweep(modern_sweep, 3.0, gated=False)
        assert gated.space.gating.is_perfect
        assert not ungated.space.gating.is_perfect

    def test_workload_params_from_reference(self, modern_sweep):
        fit = theory_fit_from_sweep(modern_sweep, 3.0, gated=True)
        assert fit.space.workload.name == modern_sweep.trace_name
