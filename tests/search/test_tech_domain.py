"""Searching the technology-node axis: a Choice domain over the registry.

``tech_node`` makes the optimum-depth search two-dimensional (every
point still sweeps all depths): the checkpoint must identify the node a
point was scored at, resume must recompute nothing, and the scores must
reflect the node's power split — the leakage-dominated LP node prefers a
deeper best depth than scaled HP.
"""

from repro.engine.scheduler import EngineConfig, ExecutionEngine
from repro.search import GridSearch, Objective, SearchSpace, SearchStore, run_search
from repro.tech import BASE_NODE

SPACE = SearchSpace.of(
    {"tech_node": f"{BASE_NODE},cmos-hp-16,cmos-lp-22", "issue_width": "2:4:2"}
)
OBJECTIVE = Objective(
    workloads=("gzip",), depths=(4, 6, 8, 10, 14), trace_length=400,
    backend="fast",
)


def search(tmp_path, **kwargs):
    return run_search(
        SPACE,
        OBJECTIVE,
        GridSearch(),
        seed=kwargs.pop("seed", 0),
        budget=kwargs.pop("budget", 0),
        engine=ExecutionEngine(
            EngineConfig(workers=1, cache_dir=tmp_path / "cache")
        ),
        store=SearchStore(tmp_path / "state"),
        **kwargs,
    )


class TestNodeSearch:
    def test_grid_covers_the_node_axis(self, tmp_path):
        outcome = search(tmp_path)
        assert outcome.completed
        assert outcome.probes == SPACE.size() == 6
        assert outcome.best_point["tech_node"] in (
            BASE_NODE, "cmos-hp-16", "cmos-lp-22",
        )
        assert outcome.best_depth in OBJECTIVE.depths

    def test_resume_recomputes_nothing(self, tmp_path):
        first = search(tmp_path)
        resumed = search(tmp_path)
        assert resumed.search_id == first.search_id
        assert resumed.completed
        assert resumed.new_probes == 0 and resumed.computed == 0
        assert resumed.best_point == first.best_point

    def test_fresh_restart_is_all_cache_hits(self, tmp_path):
        """Every (point, node) job is already on disk: zero executions."""
        search(tmp_path)
        redone = search(tmp_path, resume=False)
        assert redone.new_probes == SPACE.size()
        assert redone.computed == 0
        assert redone.cache_hits == SPACE.size()

    def test_nodes_score_differently(self, tmp_path):
        """Same machine knobs, different node: the score must move."""
        objective = Objective(
            workloads=("oltp-bank",), depths=(4, 8, 14), trace_length=400,
            backend="fast",
        )
        scores = {}
        for node in (BASE_NODE, "cmos-lp-22"):
            point = {"tech_node": node}
            jobs = objective.jobs_for(point)
            engine = ExecutionEngine(
                EngineConfig(workers=1, cache_dir=tmp_path / "cache")
            )
            scores[node] = objective.score(point, engine.run(jobs)).value
        assert scores[BASE_NODE] != scores["cmos-lp-22"]
