"""Objective: point -> MachineConfig mapping, jobs, scoring, interchange."""

import math

import pytest

from repro.engine.scheduler import ExecutionEngine
from repro.search import Objective, ObjectiveError

DEPTHS = (4, 6, 8)
LENGTH = 400


@pytest.fixture(scope="module")
def objective():
    return Objective(
        workloads=("gzip",), depths=DEPTHS, trace_length=LENGTH, backend="fast"
    )


class TestMachineMapping:
    def test_structure_and_width_fields(self, objective):
        machine = objective.machine_for(
            {"issue_width": 8, "rob_size": 64, "btb_entries": 512}
        )
        assert machine.issue_width == 8
        assert machine.rob_size == 64
        assert machine.btb_entries == 512
        assert machine.in_order is True  # objective default applied

    def test_technology_fields_use_paper_notation(self, objective):
        machine = objective.machine_for({"t_o": 3.0, "t_p": 120.0})
        assert machine.technology.latch_overhead == 3.0
        assert machine.technology.total_logic_depth == 120.0

    def test_cache_sizes_are_in_kb(self, objective):
        machine = objective.machine_for({"icache_kb": 32, "l2_kb": 1024})
        assert machine.icache.size == 32 * 1024
        assert machine.l2.size == 1024 * 1024

    def test_none_btb_and_predictor_kind(self, objective):
        machine = objective.machine_for(
            {"btb_entries": None, "predictor_kind": "bimodal"}
        )
        assert machine.btb_entries is None
        assert machine.predictor_kind == "bimodal"

    def test_unknown_parameter_raises(self, objective):
        with pytest.raises(ObjectiveError, match="unknown search parameter"):
            objective.machine_for({"warp_factor": 9})

    def test_invalid_value_raises_objective_error(self, objective):
        with pytest.raises(ObjectiveError, match="invalid point"):
            objective.machine_for({"issue_width": -2})

    def test_m_is_a_metric_parameter(self, objective):
        assert objective.exponent_for({"m": 2.0}) == 2.0
        assert objective.exponent_for({}) == objective.m


class TestScoring:
    def test_jobs_and_score_align_per_workload(self):
        objective = Objective(
            workloads=("gzip", "gcc95"),
            depths=DEPTHS,
            trace_length=LENGTH,
            backend="fast",
        )
        point = {"issue_width": 4}
        jobs = objective.jobs_for(point)
        assert len(jobs) == 2
        assert [job.spec.name for job in jobs] == ["gzip", "gcc95"]
        assert all(job.depths == DEPTHS for job in jobs)

        results = ExecutionEngine().run(jobs)
        score = objective.score(point, results)
        assert score.best_depth in DEPTHS
        assert score.value > 0

        # Geometric mean: the two-workload score is the sqrt of the product
        # of the single-workload scores at the chosen depth.
        from repro.analysis.sweep import sweep_from_results
        from repro.trace.suite import get_workload

        index = DEPTHS.index(score.best_depth)
        singles = []
        for name, result in zip(objective.workloads, results):
            sweep = sweep_from_results(
                result.results, DEPTHS, spec=get_workload(name), reference_depth=8
            )
            singles.append(sweep.metric(3.0, True)[index])
        assert score.value == pytest.approx(math.sqrt(singles[0] * singles[1]))

    def test_result_count_mismatch_raises(self, objective):
        with pytest.raises(ObjectiveError, match="results for"):
            objective.score({}, [])


class TestValidationAndInterchange:
    def test_constructor_validation(self):
        with pytest.raises(ObjectiveError, match="workload"):
            Objective(workloads=())
        with pytest.raises(ObjectiveError, match="unknown workload"):
            Objective(workloads=("no-such-workload",))
        with pytest.raises(ObjectiveError, match="ascending"):
            Objective(workloads=("gzip",), depths=(8, 4))
        with pytest.raises(ObjectiveError, match="backend"):
            Objective(workloads=("gzip",), backend="warp")
        with pytest.raises(ObjectiveError, match="reference_depth"):
            Objective(workloads=("gzip",), depths=(4, 6), reference_depth=99)

    def test_reference_depth_defaults(self):
        assert Objective(workloads=("gzip",), depths=(4, 8, 12)).reference_depth == 8
        assert Objective(workloads=("gzip",), depths=(4, 6, 12)).reference_depth == 6

    def test_doc_round_trip(self, objective):
        assert Objective.from_doc(objective.to_doc()) == objective

    def test_from_doc_rejects_unknown_and_missing_fields(self):
        with pytest.raises(ObjectiveError, match="workloads"):
            Objective.from_doc({"depths": [4, 6]})
        with pytest.raises(ObjectiveError, match="unknown objective fields"):
            Objective.from_doc({"workloads": ["gzip"], "frobnicate": 1})
