"""run_search: determinism, budgets, resume and zero recomputation.

These are the subsystem's acceptance tests:

* a repeated run writes a byte-identical checkpoint (determinism);
* an interrupted-then-resumed search probes the same set as an
  uninterrupted one, recomputing nothing (resolver counters prove it);
* beam and multi-start find the exhaustive-grid optimum on a real
  (small) objective, and a warm second search computes zero jobs.
"""

import pathlib

from repro.engine.scheduler import EngineConfig, ExecutionEngine
from repro.search import (
    BeamSearch,
    GridSearch,
    MultiStartSearch,
    Objective,
    SearchSpace,
    SearchStore,
    run_search,
)

SPACE = SearchSpace.of({"issue_width": "2:4:2", "t_o": "2.0:3.0:0.5"})
OBJECTIVE = Objective(
    workloads=("gzip",), depths=(4, 6, 8), trace_length=400, backend="fast"
)


def engine_for(cache_dir):
    """A fresh engine per run, so its counters are per-run ground truth."""
    return ExecutionEngine(EngineConfig(workers=1, cache_dir=cache_dir))


def search(tmp_path, optimizer, *, cache="cache", state="state", **kwargs):
    return run_search(
        SPACE,
        OBJECTIVE,
        optimizer,
        seed=kwargs.pop("seed", 0),
        budget=kwargs.pop("budget", 0),
        engine=engine_for(tmp_path / cache),
        store=SearchStore(tmp_path / state),
        **kwargs,
    )


class TestGridDriver:
    def test_cold_run_probes_the_whole_space(self, tmp_path):
        outcome = search(tmp_path, GridSearch())
        assert outcome.completed and not outcome.budget_exhausted
        assert outcome.probes == outcome.new_probes == SPACE.size()
        assert outcome.computed == SPACE.size()  # 1 workload => 1 job/point
        assert outcome.best_point == {"issue_width": 4, "t_o": 2.0}
        assert outcome.best_depth in OBJECTIVE.depths

    def test_completed_checkpoint_short_circuits(self, tmp_path):
        first = search(tmp_path, GridSearch())
        second = search(tmp_path, GridSearch())
        assert second.search_id == first.search_id
        assert second.completed
        assert second.new_probes == 0 and second.computed == 0
        assert second.best_point == first.best_point

    def test_fresh_restarts_but_recomputes_nothing(self, tmp_path):
        search(tmp_path, GridSearch())
        redone = search(tmp_path, GridSearch(), resume=False)
        assert redone.new_probes == SPACE.size()
        assert redone.computed == 0  # every job is a result-cache disk hit
        assert redone.cache_hits == SPACE.size()


class TestDeterminism:
    def test_repeat_runs_write_byte_identical_checkpoints(self, tmp_path):
        """Satellite: all randomness flows from the explicit seed."""
        for optimizer in (GridSearch(), BeamSearch(beam_width=2),
                          MultiStartSearch(starts=3)):
            first = search(tmp_path, optimizer, state="state-a", seed=7)
            second = search(tmp_path, optimizer, state="state-b", seed=7)
            assert first.search_id == second.search_id
            bytes_a = pathlib.Path(first.checkpoint_path).read_bytes()
            bytes_b = pathlib.Path(second.checkpoint_path).read_bytes()
            assert bytes_a == bytes_b

    def test_seed_is_part_of_the_identity(self, tmp_path):
        a = search(tmp_path, MultiStartSearch(starts=2), seed=0)
        b = search(tmp_path, MultiStartSearch(starts=2), seed=1)
        assert a.search_id != b.search_id


class TestBudgetAndResume:
    def test_interrupted_resume_equals_uninterrupted_run(self, tmp_path):
        """Satellite: kill mid-run, resume, union equals one straight run
        and nothing is recomputed (resolver hit counters prove it)."""
        baseline = search(tmp_path, GridSearch(batch=2),
                          cache="cache-base", state="state-base")
        assert baseline.completed

        first = search(tmp_path, GridSearch(batch=2), budget=3)
        assert first.budget_exhausted and not first.completed
        assert first.probes == first.new_probes == 3
        assert first.computed == 3

        resumed = search(tmp_path, GridSearch(batch=2))
        assert resumed.completed and not resumed.budget_exhausted
        assert resumed.probes == SPACE.size()
        assert resumed.new_probes == SPACE.size() - 3
        assert resumed.replayed == 3  # served from the checkpoint
        assert resumed.computed == SPACE.size() - 3  # zero probes recomputed
        assert resumed.best_point == baseline.best_point
        assert resumed.best_score == baseline.best_score

        # The resumed checkpoint is byte-identical to the uninterrupted one.
        assert (
            pathlib.Path(resumed.checkpoint_path).read_bytes()
            == pathlib.Path(baseline.checkpoint_path).read_bytes()
        )

    def test_budget_zero_means_unlimited(self, tmp_path):
        outcome = search(tmp_path, GridSearch(), budget=0)
        assert outcome.completed and outcome.probes == SPACE.size()


class TestOptimizersAgree:
    def test_beam_and_multistart_find_the_grid_optimum(self, tmp_path):
        """Acceptance: every strategy lands on the exhaustive optimum, and
        anything after the grid pass computes zero new simulations."""
        grid = search(tmp_path, GridSearch())
        beam = search(tmp_path, BeamSearch(beam_width=2))
        multi = search(tmp_path, MultiStartSearch(starts=3), seed=7)
        assert beam.best_point == grid.best_point
        assert multi.best_point == grid.best_point
        assert beam.best_score == grid.best_score
        assert multi.best_score == grid.best_score
        # Cross-search reuse: the grid run warmed the result cache, so the
        # other searches probe entirely through disk hits.
        assert beam.computed == 0
        assert multi.computed == 0
