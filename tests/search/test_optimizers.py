"""Optimizer strategies against a synthetic oracle (no simulator).

The oracle is a smooth 2-D bowl with a unique maximum, so the grid
optimum is known exactly and the smarter strategies must find it.
"""

import pytest

from repro.search import (
    BeamSearch,
    BudgetExhausted,
    GridSearch,
    MultiStartSearch,
    OptimizerError,
    SearchSpace,
    optimizer_from_doc,
    point_key,
)

SPACE = SearchSpace.of({"x": "0:9", "y": "0:9"})
PEAK = {"x": 6, "y": 3}


def synthetic_score(point):
    return 100.0 - (point["x"] - PEAK["x"]) ** 2 - (point["y"] - PEAK["y"]) ** 2


class Oracle:
    """A recording evaluate() with optional fresh-probe budget."""

    def __init__(self, budget=None):
        self.seen = {}
        self.log = []
        self.budget = budget

    def __call__(self, points):
        fresh = [p for p in points if point_key(p) not in self.seen]
        if self.budget is not None and len(self.seen) + len(fresh) > self.budget:
            allowed = self.budget - len(self.seen)
            for point in fresh[:allowed]:
                self.seen[point_key(point)] = synthetic_score(point)
            raise BudgetExhausted("budget spent")
        for point in fresh:
            self.seen[point_key(point)] = synthetic_score(point)
        scores = [self.seen[point_key(p)] for p in points]
        self.log.append([point_key(p) for p in points])
        return scores

    def best(self):
        return max(self.seen.values())


def run(optimizer, seed=0, budget=None):
    oracle = Oracle(budget=budget)
    optimizer.explore(SPACE, oracle, seed)
    return oracle


class TestGridSearch:
    def test_visits_every_point_exactly_once(self):
        oracle = run(GridSearch(batch=7))
        assert len(oracle.seen) == SPACE.size()
        assert oracle.best() == synthetic_score(PEAK)

    def test_batching_chunks_the_grid(self):
        oracle = run(GridSearch(batch=32))
        assert [len(batch) for batch in oracle.log] == [32, 32, 32, 4]

    def test_budget_exhaustion_propagates(self):
        with pytest.raises(BudgetExhausted):
            run(GridSearch(batch=10), budget=25)


class TestBeamSearch:
    def test_finds_the_grid_optimum_with_fewer_probes(self):
        oracle = run(BeamSearch(beam_width=4))
        assert oracle.best() == synthetic_score(PEAK)
        assert len(oracle.seen) < SPACE.size()

    def test_probe_sequence_is_deterministic(self):
        a = run(BeamSearch(beam_width=3), seed=5)
        b = run(BeamSearch(beam_width=3), seed=5)
        assert a.log == b.log


class TestMultiStartSearch:
    def test_finds_the_grid_optimum(self):
        oracle = run(MultiStartSearch(starts=4), seed=1)
        assert oracle.best() == synthetic_score(PEAK)
        assert len(oracle.seen) < SPACE.size()

    def test_seed_determines_the_probe_sequence(self):
        a = run(MultiStartSearch(starts=3), seed=2)
        b = run(MultiStartSearch(starts=3), seed=2)
        assert a.log == b.log
        c = run(MultiStartSearch(starts=3), seed=3)
        assert a.log != c.log  # a different seed explores differently

    def test_replay_prefix_then_continue(self):
        """Resume = re-run with the old answers replayed: same final set."""
        uninterrupted = run(MultiStartSearch(starts=3), seed=4)

        interrupted = Oracle(budget=8)
        with pytest.raises(BudgetExhausted):
            MultiStartSearch(starts=3).explore(SPACE, interrupted, 4)
        resumed = Oracle()
        resumed.seen = dict(interrupted.seen)  # the checkpointed visited set
        MultiStartSearch(starts=3).explore(SPACE, resumed, 4)
        assert resumed.seen == uninterrupted.seen


class TestConfig:
    def test_from_doc_round_trip(self):
        beam = BeamSearch(beam_width=6, max_rounds=9)
        assert optimizer_from_doc(beam.to_doc()) == beam
        assert optimizer_from_doc("grid") == GridSearch()
        assert optimizer_from_doc({"kind": "multistart", "starts": 2}) == (
            MultiStartSearch(starts=2)
        )

    @pytest.mark.parametrize(
        "doc",
        [
            {"kind": "warp"},
            {"kind": "beam", "frobnicate": 1},
            {},
            42,
        ],
    )
    def test_malformed_docs_raise(self, doc):
        with pytest.raises(OptimizerError):
            optimizer_from_doc(doc)

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: GridSearch(batch=0),
            lambda: BeamSearch(beam_width=0),
            lambda: BeamSearch(initial=0),
            lambda: MultiStartSearch(starts=0),
            lambda: MultiStartSearch(max_steps=0),
        ],
    )
    def test_invalid_config_raises(self, bad):
        with pytest.raises(OptimizerError):
            bad()
