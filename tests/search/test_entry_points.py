"""Cross-entry-point search coherence: CLI, daemon and experiments hook.

A search is content-addressed by (space, objective, optimizer, seed), so
every entry point that names the same search must land on the same
checkpoint and the same result cache — a search started at the CLI can
be finished (or simply read) through ``GET /v1/search/{id}``, and the
daemon recomputes nothing.
"""

import argparse
import asyncio
import json

import pytest

from repro.cli import main as cli_main
from repro.experiments.runner import add_search_arguments, search_from_args
from repro.service import ServiceServer, ServiceState
from repro.service.loadgen import HttpClient
from repro.runtime import RuntimeConfig

LENGTH = 400


@pytest.fixture()
def shared_cache(tmp_path, monkeypatch):
    directory = tmp_path / "shared-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(directory))
    return directory


SEARCH_FLAGS = [
    "--workload", "gzip",
    "--param", "issue_width=2:4:2",
    "--length", str(LENGTH),
    "--depths", "4,6,8",
    "--backend", "fast",
]


def test_cli_search_finishes_through_the_daemon(shared_cache, capsys):
    """Start a search at the CLI under a budget, then poll and finish it
    via the daemon: same search id, zero jobs recomputed."""
    rc = cli_main(["search", *SEARCH_FLAGS, "--budget", "1", "--json"])
    assert rc == 0
    started = json.loads(capsys.readouterr().out)
    assert started["budget_exhausted"] is True
    assert started["probes"] == 1 and started["computed"] == 1

    async def scenario():
        config = RuntimeConfig.load().with_values(
            host="127.0.0.1", port=0, executor="thread", workers=2
        )
        state = ServiceState(config)
        server = ServiceServer(state)
        await server.start()
        client = HttpClient("127.0.0.1", server.port)
        try:
            # The daemon sees the CLI's checkpoint before any submit.
            status, paused = await client.request_json(
                "GET", f"/v1/search/{started['search_id']}"
            )
            assert (status, paused["state"]) == (200, "paused")
            assert paused["probes"] == 1

            # Submitting the same definition resumes the same search.
            body = {
                "space": {"issue_width": "2:4:2"},
                "objective": {
                    "workloads": ["gzip"],
                    "depths": [4, 6, 8],
                    "trace_length": LENGTH,
                    "backend": "fast",
                },
                "optimizer": "grid",
                "seed": 0,
                "budget": 0,
            }
            status, submitted = await client.request_json(
                "POST", "/v1/search", body
            )
            assert status == 200
            while True:
                status, doc = await client.request_json(
                    "GET", f"/v1/search/{submitted['search_id']}"
                )
                if doc["state"] != "running":
                    break
                await asyncio.sleep(0.05)
            return submitted, doc
        finally:
            await client.close()
            await server.drain(timeout=5.0)

    submitted, finished = asyncio.run(scenario())
    assert submitted["search_id"] == started["search_id"]
    assert finished["state"] == "done"
    assert finished["probes"] == 2
    # The CLI's probe replays from the checkpoint; the one fresh probe's
    # job is the only computation the daemon performs.
    assert finished["new_probes"] == 1
    assert finished["computed"] == 1

    # And a CLI re-run of the finished search recomputes nothing at all.
    rc = cli_main(["search", *SEARCH_FLAGS, "--json"])
    assert rc == 0
    rerun = json.loads(capsys.readouterr().out)
    assert rerun["search_id"] == started["search_id"]
    assert rerun["completed"] is True
    assert rerun["new_probes"] == 0 and rerun["computed"] == 0


def test_experiments_hook_matches_the_cli(shared_cache, capsys):
    """search_from_args (the experiments hook) resolves to the same
    content-addressed search as the CLI command."""
    parser = argparse.ArgumentParser()
    add_search_arguments(parser)
    outcome = search_from_args(parser.parse_args(SEARCH_FLAGS))
    assert outcome.completed
    assert outcome.probes == 2

    rc = cli_main(["search", *SEARCH_FLAGS, "--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["search_id"] == outcome.search_id
    assert doc["completed"] is True
    assert doc["new_probes"] == 0 and doc["computed"] == 0
    assert doc["best"]["point"] == outcome.best_point
