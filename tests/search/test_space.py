"""Domains, the CLI spec grammar and SearchSpace geometry."""

import random

import pytest

from repro.search import (
    Choice,
    FloatRange,
    IntRange,
    SearchSpace,
    SpaceError,
    parse_domain,
)


class TestDomains:
    def test_int_range_values(self):
        assert IntRange(2, 8, 2).values() == (2, 4, 6, 8)
        assert IntRange(3, 3).values() == (3,)

    def test_float_range_is_inclusive_linspace(self):
        values = FloatRange(1.5, 3.5, 5).values()
        assert values == (1.5, 2.0, 2.5, 3.0, 3.5)
        assert FloatRange(2.0, 2.0, 1).values() == (2.0,)

    def test_choice_keeps_order_and_types(self):
        options = ("gshare", "bimodal", None, 4096, True)
        assert Choice(options).values() == options

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: IntRange(8, 2),
            lambda: IntRange(2, 8, 0),
            lambda: FloatRange(3.5, 1.5, 5),
            lambda: FloatRange(1.0, 2.0, 0),
            lambda: FloatRange(1.0, 2.0, 1),  # 1 point but lo != hi
            lambda: Choice(()),
            lambda: Choice((1, 1)),
        ],
    )
    def test_malformed_domains_raise(self, bad):
        with pytest.raises(SpaceError):
            bad()


class TestParseDomain:
    def test_int_range_specs(self):
        assert parse_domain("2:8") == IntRange(2, 8, 1)
        assert parse_domain("2:8:2") == IntRange(2, 8, 2)

    def test_float_range_by_step_and_by_count(self):
        assert parse_domain("1.5:3.5:0.5") == FloatRange(1.5, 3.5, 5)
        assert parse_domain("1.5:3.5/5") == FloatRange(1.5, 3.5, 5)

    def test_choice_specs_parse_scalars(self):
        assert parse_domain("gshare,bimodal").options == ("gshare", "bimodal")
        assert parse_domain("none,512,1.5,true").options == (None, 512, 1.5, True)
        assert parse_domain("4096").options == (4096,)

    @pytest.mark.parametrize(
        "spec",
        ["", "1:2:3:4", "a:b", "1.5:3.5", "1:5/2:3", "1:5/x", "1.5:3.5:-1"],
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(SpaceError):
            parse_domain(spec)


class TestSearchSpace:
    @pytest.fixture()
    def space(self):
        return SearchSpace.of(
            {"issue_width": "2:4:2", "t_o": "2.0:3.0:0.5", "kind": "gshare,bimodal"}
        )

    def test_axes_are_name_sorted(self, space):
        assert space.names == ("issue_width", "kind", "t_o")
        reordered = SearchSpace.of(
            {"t_o": "2.0:3.0:0.5", "kind": "gshare,bimodal", "issue_width": "2:4:2"}
        )
        assert reordered.to_doc() == space.to_doc()

    def test_size_and_grid_cover_every_point(self, space):
        assert space.size() == 2 * 2 * 3
        points = list(space.grid())
        assert len(points) == space.size()
        assert len({tuple(sorted(p.items())) for p in points}) == space.size()
        # odometer: last (name-sorted) axis varies fastest
        assert points[0] == {"issue_width": 2, "kind": "gshare", "t_o": 2.0}
        assert points[1] == {"issue_width": 2, "kind": "gshare", "t_o": 2.5}

    def test_grid_sample_is_deterministic_and_on_grid(self, space):
        sample = space.grid_sample(5)
        assert sample == space.grid_sample(5)
        assert len(sample) == 5
        for point in sample:
            space.indices_of(point)  # raises if off-grid
        # oversampling clips to the grid
        assert len(space.grid_sample(100)) == space.size()

    def test_neighbors_step_one_index_per_axis(self, space):
        point = {"issue_width": 2, "kind": "gshare", "t_o": 2.5}
        neighbors = space.neighbors(point)
        assert {tuple(sorted(n.items())) for n in neighbors} == {
            (("issue_width", 4), ("kind", "gshare"), ("t_o", 2.5)),
            (("issue_width", 2), ("kind", "bimodal"), ("t_o", 2.5)),
            (("issue_width", 2), ("kind", "gshare"), ("t_o", 2.0)),
            (("issue_width", 2), ("kind", "gshare"), ("t_o", 3.0)),
        }
        with pytest.raises(KeyError):
            space.neighbors({"issue_width": 3, "kind": "gshare", "t_o": 2.5})

    def test_random_point_uses_only_the_given_rng(self, space):
        a = [space.random_point(random.Random("seed")) for _ in range(5)]
        b = [space.random_point(random.Random("seed")) for _ in range(5)]
        assert a == b
        for point in a:
            space.indices_of(point)

    def test_doc_round_trip(self, space):
        assert SearchSpace.from_doc(space.to_doc()) == space

    def test_from_doc_accepts_cli_strings(self):
        space = SearchSpace.from_doc({"issue_width": "2:4:2"})
        assert space.domain("issue_width") == IntRange(2, 4, 2)

    @pytest.mark.parametrize(
        "doc",
        [
            {},
            "not-a-mapping",
            {"x": 7},
            {"x": {"int": [1, 4], "float": [1.0, 4.0]}},
            {"x": {"weird": [1]}},
            {"x": {"int": [1]}},
        ],
    )
    def test_malformed_docs_raise(self, doc):
        with pytest.raises(SpaceError):
            SearchSpace.from_doc(doc)

    def test_duplicate_names_raise(self):
        with pytest.raises(SpaceError):
            SearchSpace((("a", IntRange(1, 2)), ("a", IntRange(1, 2))))
