"""Checkpoint identity, persistence and the cache-family surface."""

import json

from repro.search import (
    GridSearch,
    Objective,
    SearchSpace,
    SearchState,
    SearchStore,
    point_key,
)
from repro.search.state import SEARCH_SCHEMA, search_identity

SPACE = SearchSpace.of({"issue_width": "2:4:2"})
OBJECTIVE = Objective(workloads=("gzip",), depths=(4, 8), trace_length=400)


def fresh_state(seed=0):
    return SearchState.fresh(SPACE, OBJECTIVE, GridSearch().to_doc(), seed)


class TestIdentity:
    def test_id_depends_on_every_identity_field(self):
        base = fresh_state()
        assert fresh_state().search_id == base.search_id
        assert fresh_state(seed=1).search_id != base.search_id
        other_space = SearchState.fresh(
            SearchSpace.of({"issue_width": "2:8:2"}),
            OBJECTIVE,
            GridSearch().to_doc(),
            0,
        )
        assert other_space.search_id != base.search_id
        other_optimizer = SearchState.fresh(
            SPACE, OBJECTIVE, GridSearch(batch=7).to_doc(), 0
        )
        assert other_optimizer.search_id != base.search_id

    def test_budget_is_not_part_of_the_identity(self):
        identity = search_identity(SPACE, OBJECTIVE, GridSearch().to_doc(), 0)
        assert "budget" not in json.dumps(identity)

    def test_point_key_is_order_insensitive(self):
        assert point_key({"a": 1, "b": 2}) == point_key({"b": 2, "a": 1})


class TestState:
    def test_record_tracks_order_and_best(self):
        state = fresh_state()
        state.record({"issue_width": 2}, 1.0, 8)
        state.record({"issue_width": 4}, 3.0, 4)
        state.record({"issue_width": 2}, 1.0, 8)  # re-record: no new order entry
        assert state.probes == 2
        assert state.best["point"] == {"issue_width": 4}
        assert state.best["best_depth"] == 4

    def test_doc_round_trip(self):
        state = fresh_state()
        state.record({"issue_width": 2}, 1.0, 8)
        state.completed = True
        clone = SearchState.from_doc(state.to_doc())
        assert clone.to_doc() == state.to_doc()


class TestStore:
    def test_save_load_round_trip(self, tmp_path):
        store = SearchStore(tmp_path / "search")
        state = fresh_state()
        state.record({"issue_width": 2}, 1.0, 8)
        path = store.save(state)
        assert path.parent.name == f"v{SEARCH_SCHEMA}"
        loaded = store.load(state.search_id)
        assert loaded is not None and loaded.to_doc() == state.to_doc()

    def test_load_rejects_missing_corrupt_and_stale(self, tmp_path):
        store = SearchStore(tmp_path / "search")
        state = fresh_state()
        assert store.load(state.search_id) is None

        path = store.save(state)
        path.write_text("{not json", encoding="utf-8")
        assert store.load(state.search_id) is None

        doc = state.to_doc()
        doc["schema"] = SEARCH_SCHEMA + 1
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert store.load(state.search_id) is None

        doc["schema"] = SEARCH_SCHEMA
        doc["search_id"] = "someone-else"
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert store.load(state.search_id) is None

    def test_cache_family_surface(self, tmp_path):
        store = SearchStore(tmp_path / "search")
        assert len(store) == 0 and store.size_bytes() == 0
        store.save(fresh_state())
        store.save(fresh_state(seed=1))
        assert len(store) == 2
        assert store.size_bytes() > 0
        assert store.clear() == 2
        assert len(store) == 0

    def test_checkpoints_dodge_the_result_cache_glob(self, tmp_path):
        """Nested under the result cache dir, checkpoints must not match
        the result cache's ``*/*.json`` entry glob (clear() disjointness)."""
        from repro.engine.cache import ResultCache

        cache_dir = tmp_path / "cache"
        store = SearchStore(cache_dir / "search")
        store.save(fresh_state())
        result_cache = ResultCache(cache_dir)
        assert len(result_cache) == 0
        assert result_cache.clear() == 0
        assert len(store) == 1
