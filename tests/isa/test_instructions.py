"""Tests of the synthetic ISA."""

import pytest

from repro.isa import NO_REGISTER, REGISTER_COUNT, Instruction, OpClass


class TestOpClass:
    def test_memory_classes(self):
        assert OpClass.RX_LOAD.is_memory
        assert OpClass.RX_STORE.is_memory
        assert OpClass.RX_ALU.is_memory
        assert not OpClass.RR_ALU.is_memory
        assert not OpClass.BRANCH.is_memory
        assert not OpClass.FP.is_memory
        assert not OpClass.COMPLEX.is_memory

    def test_branch_class(self):
        assert OpClass.BRANCH.is_branch
        assert not OpClass.RX_LOAD.is_branch

    def test_register_writers(self):
        writers = {cls for cls in OpClass if cls.writes_register}
        assert writers == {
            OpClass.RR_ALU, OpClass.RX_LOAD, OpClass.RX_ALU, OpClass.FP, OpClass.COMPLEX
        }

    def test_long_ops(self):
        assert OpClass.FP.is_long_op
        assert OpClass.COMPLEX.is_long_op
        assert not OpClass.RR_ALU.is_long_op

    def test_codes_are_stable(self):
        """Trace arrays persist these values; they must never change."""
        assert [cls.value for cls in OpClass] == [0, 1, 2, 3, 4, 5, 6]


class TestInstruction:
    def test_valid_construction(self):
        instr = Instruction(0, OpClass.RR_ALU, pc=100, dest=3, src1=1, src2=2)
        assert instr.reads == (1, 2)

    def test_reads_skips_sentinels(self):
        instr = Instruction(0, OpClass.RR_ALU, pc=0, dest=3, src1=NO_REGISTER, src2=5)
        assert instr.reads == (5,)

    def test_register_bounds_checked(self):
        with pytest.raises(ValueError):
            Instruction(0, OpClass.RR_ALU, pc=0, dest=REGISTER_COUNT)
        with pytest.raises(ValueError):
            Instruction(0, OpClass.RR_ALU, pc=0, src1=-2)

    def test_only_branches_can_be_taken(self):
        Instruction(0, OpClass.BRANCH, pc=0, taken=True)
        with pytest.raises(ValueError):
            Instruction(0, OpClass.RR_ALU, pc=0, taken=True)

    def test_only_long_ops_carry_cycles(self):
        Instruction(0, OpClass.FP, pc=0, dest=1, fp_cycles=5)
        Instruction(0, OpClass.COMPLEX, pc=0, dest=1, fp_cycles=3)
        with pytest.raises(ValueError):
            Instruction(0, OpClass.RR_ALU, pc=0, fp_cycles=5)

    def test_frozen(self):
        instr = Instruction(0, OpClass.RR_ALU, pc=0)
        with pytest.raises(AttributeError):
            instr.pc = 4
