"""Tests of the command-line interface."""

import json
import pathlib

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"


class TestOptimum:
    def test_default(self, capsys):
        assert main(["optimum"]) == 0
        out = capsys.readouterr().out
        assert "optimum depth" in out
        assert "BIPS^3/W" in out

    def test_gated_deeper(self, capsys):
        main(["optimum"])
        ungated = capsys.readouterr().out
        main(["optimum", "--gated"])
        gated = capsys.readouterr().out

        def depth_of(text):
            for line in text.splitlines():
                if line.startswith("optimum depth"):
                    return float(line.split(":")[1].split()[0])
            raise AssertionError(text)

        assert depth_of(gated) > depth_of(ungated)

    def test_bips_per_watt_single_stage(self, capsys):
        main(["optimum", "-m", "1"])
        assert "single stage optimal" in capsys.readouterr().out

    def test_custom_parameters(self, capsys):
        assert main(["optimum", "--alpha", "3", "--hazard-rate", "0.2",
                     "--gamma", "1.3", "--tp", "200"]) == 0


class TestSweep:
    def test_sweep_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        code = main(["sweep", "gzip", "--length", "1500", "--csv", str(csv_path),
                     "--no-chart"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cubic-fit optimum" in out
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("depth,bips")

    def test_sweep_chart(self, capsys):
        assert main(["sweep", "gzip", "--length", "1500"]) == 0
        out = capsys.readouterr().out
        assert "simulated" in out and "theory" in out

    def test_sweep_backends_agree(self, capsys):
        assert main(["sweep", "gzip", "--length", "1500", "--no-chart"]) == 0
        reference = capsys.readouterr().out
        assert main(["sweep", "gzip", "--length", "1500", "--no-chart",
                     "--backend", "fast"]) == 0
        assert capsys.readouterr().out == reference

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            main(["sweep", "not-a-workload", "--length", "500"])


class TestSimulate:
    def test_summary(self, capsys):
        assert main(["simulate", "swim", "--depth", "10", "--length", "1500"]) == 0
        out = capsys.readouterr().out
        assert "swim@p10" in out
        assert "stall/busy" in out

    def test_out_of_order_flag(self, capsys):
        assert main(["simulate", "gzip", "--length", "1500", "--out-of-order"]) == 0

    @pytest.mark.parametrize("backend", ["fast", "batched"])
    def test_kernel_backends_same_summary(self, capsys, backend):
        assert main(["simulate", "swim", "--depth", "10", "--length", "1500"]) == 0
        reference = capsys.readouterr().out
        assert main(["simulate", "swim", "--depth", "10", "--length", "1500",
                     "--backend", backend]) == 0
        assert capsys.readouterr().out == reference


class TestValidateKernel:
    def test_small_grid_passes(self, capsys):
        assert main(["validate-kernel", "--small", "--length", "600"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "in-order, out-of-order" in out
        assert "fast, batched" in out  # both candidates by default

    def test_backend_flag_narrows_candidates(self, capsys):
        assert main(["validate-kernel", "--small", "--length", "400",
                     "--backend", "batched"]) == 0
        out = capsys.readouterr().out
        assert "batched (vs reference)" in out
        assert "fast," not in out


class TestWorkloads:
    def test_lists_all_classes(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "Legacy (DB/OLTP)" in out
        assert "Floating point" in out
        assert "gzip" in out and "swim" in out and "oltp-airline" in out


class TestCharacterize:
    def test_table(self, capsys):
        assert main(["characterize", "--length", "1000"]) == 0
        out = capsys.readouterr().out
        assert "workload" in out and "alpha" in out


class TestRoadmap:
    def test_deeper_across_nodes(self, capsys):
        assert main(["roadmap", "--gated"]) == 0
        out = capsys.readouterr().out
        assert "250nm" in out and "65nm" in out
        depths = [float(line.split("->")[1].split()[0])
                  for line in out.splitlines() if "->" in line]
        assert depths == sorted(depths)


class TestTech:
    def test_list_marks_the_base_node(self, capsys):
        assert main(["tech", "list"]) == 0
        out = capsys.readouterr().out
        assert "cmos-hp-45" in out and "tfet-homo-22" in out
        assert "* base node" in out

    def test_show_prints_scaled_constants(self, capsys):
        assert main(["tech", "show", "cmos-lp-22"]) == 0
        out = capsys.readouterr().out
        assert "freq_scale" in out and "0.61" in out
        assert "miss latencies stay absolute" in out

    def test_show_unknown_node_lists_choices(self):
        from repro.tech import TechModelError

        with pytest.raises(TechModelError, match="cmos-hp-45"):
            main(["tech", "show", "cmos-hp-7"])

    def test_sweep_honours_tech_node_flag(self, capsys):
        assert main(["sweep", "gzip", "--length", "800",
                     "--tech-node", "cmos-lp-22"]) == 0
        base_out = None
        lp_out = capsys.readouterr().out
        assert "cmos-lp-22" in lp_out
        assert main(["sweep", "gzip", "--length", "800"]) == 0
        base_out = capsys.readouterr().out
        assert "cmos-hp-45" in base_out

        def optimum_of(text):
            for line in text.splitlines():
                if "cubic-fit optimum" in line:
                    return float(line.split(":")[1].split()[0])
            raise AssertionError(text)

        # LP is leakage-dominated: its optimum sits deeper than base.
        assert optimum_of(lp_out) > optimum_of(base_out)

    def test_sweep_rejects_unknown_node(self):
        from repro.tech import TechModelError

        with pytest.raises(TechModelError):
            main(["sweep", "gzip", "--length", "500",
                  "--tech-node", "cmos-hp-7"])


class TestPlan:
    def test_single_depth(self, capsys):
        assert main(["plan", "--depth", "3"]) == 0
        out = capsys.readouterr().out
        assert "Decode+AgenQ+Agen" in out

    def test_table(self, capsys):
        assert main(["plan"]) == 0
        out = capsys.readouterr().out
        assert "decode" in out and "merges" in out


class TestBatch:
    MANIFEST = {
        "defaults": {"depths": [2, 4, 8, 12], "trace_length": 500},
        "sweeps": [{"label": "smoke", "workloads": ["gzip"]}],
    }

    def write_manifest(self, tmp_path):
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(self.MANIFEST), encoding="utf-8")
        return str(path)

    def test_cold_then_warm_then_cleared(self, capsys, tmp_path):
        manifest = self.write_manifest(tmp_path)
        flags = ["--cache-dir", str(tmp_path / "cache")]

        assert main(["batch", manifest, *flags]) == 0
        cold = capsys.readouterr().out
        assert "batch sweep 'smoke': 1 workloads" in cold
        assert "1 executed" in cold and "0 cache hits" in cold

        assert main(["batch", manifest, *flags]) == 0
        warm = capsys.readouterr().out
        assert "1 cache hits" in warm and "0 executed" in warm

        assert main(["batch", manifest, "--clear-cache", *flags]) == 0
        cleared = capsys.readouterr().out
        assert "cleared 1 cache entries" in cleared
        assert "1 executed" in cleared and "0 cache hits" in cleared

    def test_no_cache_flag(self, capsys, tmp_path):
        manifest = self.write_manifest(tmp_path)
        assert main(["batch", manifest, "--no-cache"]) == 0
        assert "1 executed" in capsys.readouterr().out

    def test_invalid_manifest_exits_cleanly(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}", encoding="utf-8")
        assert main(["batch", str(path), "--no-cache"]) == 2
        assert "error: " in capsys.readouterr().err


def _cache_rows(out):
    """Parse the aligned cache table into {family: [cells...]}."""
    lines = [line for line in out.strip().splitlines() if line]
    header = lines[0].split()
    return header, {line.split()[0]: line.split() for line in lines[1:]}


class TestCacheCommand:
    FAMILIES = ("result", "analysis", "search", "fuzz")

    def test_stats_on_empty_cache(self, capsys, tmp_path):
        assert main(["cache", "stats", "--result-dir", str(tmp_path / "c"),
                     "--analysis-dir", str(tmp_path / "a"),
                     "--search-dir", str(tmp_path / "s"),
                     "--fuzz-dir", str(tmp_path / "f")]) == 0
        header, rows = _cache_rows(capsys.readouterr().out)
        assert header == ["family", "entries", "bytes", "MiB", "directory"]
        assert tuple(rows) == self.FAMILIES  # one row per family, in order
        for family in self.FAMILIES:
            assert rows[family][1] == "0"
            assert rows[family][2] == "0"

    def test_stats_after_a_cached_run(self, capsys, tmp_path, monkeypatch):
        cache_dir = tmp_path / "c"
        monkeypatch.setenv("REPRO_ANALYSIS_CACHE_DIR", str(tmp_path / "a"))
        assert main(["sweep", "gzip", "--length", "1200", "--no-chart",
                     "--backend", "batched", "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        # --cache-dir stays as an alias of --result-dir.
        assert main(["cache", "stats", "--cache-dir", str(cache_dir),
                     "--analysis-dir", str(tmp_path / "a"),
                     "--search-dir", str(tmp_path / "s"),
                     "--fuzz-dir", str(tmp_path / "f")]) == 0
        _header, rows = _cache_rows(capsys.readouterr().out)
        assert rows["result"][1] == "1" and rows["analysis"][1] == "1"
        assert rows["search"][1] == "0" and rows["fuzz"][1] == "0"

    def test_clear(self, capsys, tmp_path, monkeypatch):
        cache_dir = tmp_path / "c"
        monkeypatch.setenv("REPRO_ANALYSIS_CACHE_DIR", str(tmp_path / "a"))
        flags = ["--result-dir", str(cache_dir),
                 "--analysis-dir", str(tmp_path / "a"),
                 "--search-dir", str(tmp_path / "s"),
                 "--fuzz-dir", str(tmp_path / "f")]
        assert main(["sweep", "gzip", "--length", "1200", "--no-chart",
                     "--backend", "fast", "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", *flags]) == 0
        header, rows = _cache_rows(capsys.readouterr().out)
        assert header == ["family", "cleared", "directory"]
        assert [rows[family][1] for family in self.FAMILIES] == ["1", "1", "0", "0"]
        assert main(["cache", "stats", *flags]) == 0
        _header, rows = _cache_rows(capsys.readouterr().out)
        assert all(rows[family][1] == "0" for family in self.FAMILIES)

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])

    def test_search_checkpoints_are_the_third_family(self, capsys, tmp_path):
        flags = ["--result-dir", str(tmp_path / "c"),
                 "--analysis-dir", str(tmp_path / "a"),
                 "--search-dir", str(tmp_path / "s")]
        assert main(["search", "--workload", "gzip",
                     "--param", "issue_width=2:4:2",
                     "--length", "400", "--depths", "4,6",
                     "--backend", "fast",
                     "--cache-dir", str(tmp_path / "c"),
                     "--state-dir", str(tmp_path / "s")]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", *flags]) == 0
        _header, rows = _cache_rows(capsys.readouterr().out)
        assert rows["search"][1] == "1"
        assert main(["cache", "clear", *flags]) == 0
        _header, rows = _cache_rows(capsys.readouterr().out)
        assert rows["search"][1] == "1"

    def test_default_directory_honours_env(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert main(["cache", "stats"]) == 0
        assert str(tmp_path / "env-cache") in capsys.readouterr().out


class TestConfigShow:
    def test_table_lists_every_field_with_provenance(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert main(["config", "show"]) == 0
        out = capsys.readouterr().out
        assert "jobs" in out and "[env:REPRO_JOBS]" in out
        assert "backend" in out and "[default]" in out
        import dataclasses

        from repro.runtime import RuntimeConfig

        for field in dataclasses.fields(RuntimeConfig):
            assert field.name in out

    def test_json_output_carries_value_and_source(self, capsys, monkeypatch, tmp_path):
        cfg = tmp_path / "repro.json"
        cfg.write_text(json.dumps({"port": 9999}), encoding="utf-8")
        assert main(["config", "show", "--config", str(cfg), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["port"] == {"value": 9999, "source": f"file:{cfg}"}
        assert doc["host"]["source"] == "default"

    def test_cluster_fields_show_with_env_provenance(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_SHARDS", "5")
        monkeypatch.setenv("REPRO_CLUSTER_INFLIGHT_LIMIT", "7")
        assert main(["config", "show", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["cluster_shards"] == {
            "value": 5, "source": "env:REPRO_CLUSTER_SHARDS"
        }
        assert doc["cluster_inflight_limit"] == {
            "value": 7, "source": "env:REPRO_CLUSTER_INFLIGHT_LIMIT"
        }
        for field in ("cluster_port", "cluster_base_port", "cluster_vnodes",
                      "cluster_replicas", "cluster_health_interval",
                      "cluster_restart_limit"):
            assert doc[field]["source"] == "default"

    def test_config_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["config"])


class TestServeParser:
    def test_serve_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--backend", "reference",
             "--concurrency", "2", "--no-disk-cache"]
        )
        assert args.command == "serve"
        assert args.port == 0 and args.backend == "reference"
        assert args.no_disk_cache is True

    def test_serve_builds_a_service_config(self, monkeypatch):
        from repro.service.config import config_from_args

        monkeypatch.setenv("REPRO_SERVICE_QUEUE_LIMIT", "3")
        args = build_parser().parse_args(["serve", "--port", "0"])
        config = config_from_args(args)
        assert config.port == 0
        assert config.queue_limit == 3
        assert config.backend == "fast"


class TestClusterParser:
    def test_cluster_serve_flags_parse(self):
        args = build_parser().parse_args(
            ["cluster", "serve", "--shards", "5", "--port", "0",
             "--base-port", "9100", "--replicas", "3",
             "--inflight-limit", "16", "--backend", "fast",
             "--no-disk-cache"]
        )
        assert args.command == "cluster" and args.cluster_command == "serve"
        assert args.shards == 5 and args.base_port == 9100
        assert args.replicas == 3 and args.inflight_limit == 16
        assert args.no_disk_cache is True

    def test_cluster_serve_builds_a_config(self, monkeypatch):
        from repro.runtime import RuntimeConfig

        monkeypatch.setenv("REPRO_CLUSTER_VNODES", "16")
        args = build_parser().parse_args(
            ["cluster", "serve", "--shards", "2", "--port", "0"]
        )
        config = RuntimeConfig.load(flags=dict(
            cluster_shards=args.shards, cluster_port=args.port,
            cluster_base_port=args.base_port,
        ))
        assert config.cluster_shards == 2
        assert config.cluster_port == 0
        assert config.cluster_vnodes == 16
        assert config.provenance["cluster_shards"] == "flag:--cluster-shards"
        assert config.provenance["cluster_vnodes"] == "env:REPRO_CLUSTER_VNODES"

    def test_cluster_loadgen_flags_parse(self):
        args = build_parser().parse_args(
            ["cluster", "loadgen", "--rate", "120", "--duration", "5",
             "--burst-factor", "3", "--burst-duration", "2",
             "--seed", "42", "--json-out", "slo.json"]
        )
        assert args.cluster_command == "loadgen"
        assert args.rate == 120.0 and args.burst_factor == 3.0
        assert args.seed == 42 and args.json_out == "slo.json"

    def test_cluster_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster"])


class TestSearchCommand:
    FLAGS = ["--workload", "gzip", "--param", "issue_width=2:4:2",
             "--length", "400", "--depths", "4,6,8", "--backend", "fast"]

    def search(self, tmp_path, *extra):
        return main(["search", *self.FLAGS,
                     "--cache-dir", str(tmp_path / "c"),
                     "--state-dir", str(tmp_path / "s"), *extra])

    def test_human_summary(self, capsys, tmp_path):
        assert self.search(tmp_path) == 0
        out = capsys.readouterr().out
        assert ": complete" in out
        assert "2 points, 2 probed (2 new this run)" in out
        assert "2 computed, 0 cache hits, 0 replayed" in out
        assert "best point : issue_width=4" in out
        assert "checkpoint : " in out

    def test_json_and_warm_rerun_recomputes_nothing(self, capsys, tmp_path):
        assert self.search(tmp_path, "--json") == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["completed"] is True and cold["computed"] == 2
        assert self.search(tmp_path, "--json") == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["search_id"] == cold["search_id"]
        assert warm["new_probes"] == 0 and warm["computed"] == 0
        assert warm["best"] == cold["best"]

    def test_budget_pauses_then_resume_finishes(self, capsys, tmp_path):
        assert self.search(tmp_path, "--budget", "1") == 0
        assert "budget exhausted (resume to continue)" in capsys.readouterr().out
        assert self.search(tmp_path, "--json") == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["completed"] is True
        assert resumed["probes"] == 2 and resumed["new_probes"] == 1

    def test_bad_definitions_exit_cleanly(self, capsys, tmp_path):
        assert main(["search", "--workload", "gzip",
                     "--param", "issue_width"]) == 2
        assert "NAME=SPEC" in capsys.readouterr().err
        assert main(["search", "--workload", "gzip",
                     "--param", "warp_factor=1:3"]) == 2
        assert main(["search", "--workload", "no-such-workload",
                     "--param", "issue_width=2:4:2"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestFuzzCommand:
    def fuzz(self, tmp_path, *extra):
        return main(["fuzz", "--state-dir", str(tmp_path / "bundles"), *extra])

    def test_clean_campaign_human_summary(self, capsys, tmp_path):
        assert self.fuzz(tmp_path, "--seed", "7", "--budget", "3") == 0
        out = capsys.readouterr().out
        assert "fuzz seed 7: 3 probes, all backends agree" in out
        assert "reference" in out and "cycle" in out

    def test_clean_campaign_json(self, capsys, tmp_path):
        assert self.fuzz(tmp_path, "--seed", "7", "--budget", "2", "--json") == 0
        report = json.loads(capsys.readouterr().out)
        assert report["passed"] is True
        assert report["probes"] == 2 and report["failures"] == []

    def test_backend_subset_and_unknown_backend(self, capsys, tmp_path):
        assert (
            self.fuzz(
                tmp_path,
                "--seed",
                "7",
                "--budget",
                "2",
                "--backends",
                "reference,fast",
            )
            == 0
        )
        capsys.readouterr()
        assert self.fuzz(tmp_path, "--backends", "reference,warp") == 2
        assert "unknown backends" in capsys.readouterr().err

    def test_list_empty_store(self, capsys, tmp_path):
        assert self.fuzz(tmp_path, "--list") == 0
        assert capsys.readouterr().out == ""

    def test_replay_unknown_id(self, capsys, tmp_path):
        assert self.fuzz(tmp_path, "--replay", "deadbeef") == 2
        assert "no unique bundle" in capsys.readouterr().err

    def test_replay_committed_fixture_is_fixed(self, capsys):
        fixtures = pathlib.Path(__file__).parent / "fuzz" / "fixtures" / "bundles"
        bundle_id = next(fixtures.glob("v*/[0-9a-f]*.json")).stem
        assert (
            main(["fuzz", "--state-dir", str(fixtures), "--replay", bundle_id[:12]])
            == 0
        )
        assert "fixed" in capsys.readouterr().out
