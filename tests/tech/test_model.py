"""The technology registry itself: validation, scaling laws, re-noding.

Property-based where the claim is universal (every node, any machine):
hypothesis draws nodes and machine knobs and checks the contracts
``docs/TECH.md`` states — base node is the identity, re-noding is
relative (never compounds), logic scales while memory latency does not.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import PowerParams, TechnologyParams
from repro.pipeline.simulator import MachineConfig
from repro.tech import (
    BASE_NODE,
    DEFAULT_TECH_MODEL,
    TechModel,
    TechModelError,
    TechNode,
    get_node,
    node_names,
)

NODES = st.sampled_from(node_names())

MACHINES = st.builds(
    MachineConfig,
    issue_width=st.integers(2, 6),
    in_order=st.booleans(),
    predictor_kind=st.sampled_from(("gshare", "bimodal", "taken")),
)


class TestRegistry:
    def test_base_node_is_registered_and_identity(self):
        base = get_node(BASE_NODE)
        assert base.is_base
        assert base.freq_scale == base.dynamic_scale == base.static_scale == 1.0

    def test_unknown_node_lists_the_choices(self):
        with pytest.raises(TechModelError) as excinfo:
            get_node("cmos-hp-7")
        assert "cmos-hp-7" in str(excinfo.value)
        assert BASE_NODE in str(excinfo.value)

    def test_every_family_is_present(self):
        flavours = {
            (get_node(name).family, get_node(name).variant)
            for name in node_names()
        }
        assert flavours == {("cmos", "hp"), ("cmos", "lp"), ("tfet", "homo")}

    def test_duplicate_names_rejected(self):
        node = get_node(BASE_NODE)
        with pytest.raises(TechModelError):
            TechModel(nodes=(node, node))

    def test_model_without_base_rejected(self):
        lp = get_node("cmos-lp-22")
        with pytest.raises(TechModelError):
            TechModel(nodes=(lp,), base="cmos-lp-22")

    def test_non_positive_scales_rejected(self):
        with pytest.raises(TechModelError):
            TechNode(
                name="bad", family="cmos", variant="hp", feature_nm=10,
                freq_scale=0.0, dynamic_scale=1.0, static_scale=1.0,
            )


class TestScalingLaws:
    @given(node=NODES)
    @settings(max_examples=20, deadline=None)
    def test_logic_shrinks_memory_does_not(self, node):
        machine = get_node(node).apply(MachineConfig())
        base = MachineConfig()
        scale = get_node(node).freq_scale
        assert machine.technology.total_logic_depth == pytest.approx(
            base.technology.total_logic_depth / scale
        )
        assert machine.technology.latch_overhead == pytest.approx(
            base.technology.latch_overhead / scale
        )
        # Miss latencies are absolute FO4 of the base process: a faster
        # clock pays *more* penalty cycles, it does not shrink the miss.
        assert machine.dcache.miss_latency_fo4 == base.dcache.miss_latency_fo4
        assert machine.l2.miss_latency_fo4 == base.l2.miss_latency_fo4

    @given(node=NODES)
    @settings(max_examples=20, deadline=None)
    def test_power_scaling_is_multiplicative(self, node):
        spec = get_node(node)
        power = spec.scale_power_params(PowerParams())
        base = PowerParams()
        assert power.dynamic_per_latch == pytest.approx(
            base.dynamic_per_latch * spec.dynamic_scale
        )
        assert power.leakage_per_latch == pytest.approx(
            base.leakage_per_latch * spec.static_scale
        )

    def test_base_scaling_returns_the_inputs_unchanged(self):
        base = get_node(BASE_NODE)
        technology = TechnologyParams()
        power = PowerParams()
        assert base.scale_technology(technology) is technology
        assert base.scale_power_params(power) is power


class TestReNoding:
    @given(machine=MACHINES)
    @settings(max_examples=20, deadline=None)
    def test_base_node_is_a_bit_identical_noop(self, machine):
        assert MachineConfig.for_node(BASE_NODE, machine) == machine

    @given(node=NODES, machine=MACHINES)
    @settings(max_examples=25, deadline=None)
    def test_renoding_is_idempotent(self, node, machine):
        once = get_node(node).apply(machine)
        twice = get_node(node).apply(once)
        assert twice == once  # relative scaling: same node, factor 1.0

    @given(a=NODES, b=NODES, machine=MACHINES)
    @settings(max_examples=25, deadline=None)
    def test_renoding_never_compounds(self, a, b, machine):
        via = get_node(b).apply(get_node(a).apply(machine))
        direct = get_node(b).apply(machine)
        assert via.tech_node == direct.tech_node == b
        assert via.technology.total_logic_depth == pytest.approx(
            direct.technology.total_logic_depth
        )
        assert via.technology.latch_overhead == pytest.approx(
            direct.technology.latch_overhead
        )

    def test_params_for_node_matches_machine_for_node(self):
        node = "cmos-hp-16"
        assert TechnologyParams.for_node(node) == MachineConfig.for_node(
            node
        ).technology


class TestDefaults:
    def test_default_model_fields_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_TECH_MODEL.base = "other"
        with pytest.raises(dataclasses.FrozenInstanceError):
            get_node(BASE_NODE).freq_scale = 2.0

    def test_lp_nodes_are_leakage_heavy(self):
        """The axis's reason to exist: LP static/dynamic ratio >> base."""
        for name in node_names():
            spec = get_node(name)
            if spec.variant == "lp":
                assert spec.static_scale / spec.dynamic_scale > 1.0
            if spec.family == "tfet":
                assert spec.static_scale < 0.1  # steep-slope: leakage collapses
