"""Cross-node cache isolation: two nodes can never alias a cached result.

The node name rides the machine's canonical fingerprint, so every cache
in the system — the engine's content-addressed result cache, the trace
analysis (events) cache, the suite-tensor batch — keys per node for
free.  These tests prove it end to end: pairwise-distinct keys across
the whole registry, a disk cache that misses when only the node changed
and hits when the same node returns, and a mixed-node suite batch that
prices every row with its own constants.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineConfig, ExecutionEngine
from repro.engine.job import SimJob
from repro.fingerprint import fingerprint_digest
from repro.pipeline.events_cache import TraceEventsCache
from repro.pipeline.simulator import MachineConfig
from repro.tech import BASE_NODE, node_names
from repro.trace import get_workload

DEPTHS = (4, 8)
LENGTH = 400


def job_at(node: str, workload: str = "gzip", backend: str = "fast") -> SimJob:
    return SimJob(
        spec=get_workload(workload),
        depths=DEPTHS,
        trace_length=LENGTH,
        machine=MachineConfig.for_node(node),
        backend=backend,
    )


class TestKeys:
    def test_cache_keys_pairwise_distinct_across_the_registry(self):
        keys = {node: job_at(node).cache_key() for node in node_names()}
        assert len(set(keys.values())) == len(keys), keys

    def test_machine_fingerprints_pairwise_distinct(self):
        """The events cache keys on this digest: distinct per node."""
        digests = {
            node: fingerprint_digest(MachineConfig.for_node(node))
            for node in node_names()
        }
        assert len(set(digests.values())) == len(digests)

    def test_events_cache_key_separates_nodes(self):
        base = fingerprint_digest(MachineConfig())
        lp = fingerprint_digest(MachineConfig.for_node("cmos-lp-22"))
        assert TraceEventsCache.key_for("trace", base) != TraceEventsCache.key_for(
            "trace", lp
        )

    @given(
        pair=st.tuples(
            st.sampled_from(node_names()), st.sampled_from(node_names())
        ).filter(lambda p: p[0] != p[1])
    )
    @settings(max_examples=15, deadline=None)
    def test_any_two_nodes_never_share_a_key(self, pair):
        a, b = pair
        assert job_at(a).cache_key() != job_at(b).cache_key()

    def test_base_node_key_equals_the_nodeless_key(self):
        """The default machine IS the base node: one cache entry, not two."""
        nodeless = SimJob(
            spec=get_workload("gzip"),
            depths=DEPTHS,
            trace_length=LENGTH,
            machine=MachineConfig(),
            backend="fast",
        )
        assert nodeless.cache_key() == job_at(BASE_NODE).cache_key()


class TestResultCache:
    def test_disk_cache_misses_across_nodes_hits_within(self, tmp_path):
        engine = ExecutionEngine(
            EngineConfig(workers=1, cache_dir=tmp_path / "cache")
        )
        (cold,) = engine.run([job_at(BASE_NODE)])
        assert not cold.cache_hit
        (other_node,) = engine.run([job_at("cmos-lp-22")])
        assert not other_node.cache_hit  # same spec, new node: recompute
        (warm,) = engine.run([job_at(BASE_NODE)])
        assert warm.cache_hit  # same node again: served from disk
        assert [r.cycles for r in warm.results] == [
            r.cycles for r in cold.results
        ]

    def test_mixed_node_suite_batch_prices_each_row_with_its_node(self, tmp_path):
        """One suite-kernel batch, three nodes: per-row node constants."""
        engine = ExecutionEngine(
            EngineConfig(workers=1, cache_dir=tmp_path / "cache")
        )
        nodes = (BASE_NODE, "cmos-lp-22", "cmos-hp-16")
        results = engine.run(
            [job_at(node, workload="oltp-bank", backend="suite") for node in nodes]
        )
        metrics = {
            node: tuple(r.bips for r in job_result.results)
            for node, job_result in zip(nodes, results)
        }
        assert len(set(metrics.values())) == len(nodes), metrics
