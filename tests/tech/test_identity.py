"""Base-node identity and cross-backend agreement on the node axis.

The axis's first contract: at ``cmos-hp-45`` every backend produces
results bit-identical to a machine that never heard of technology nodes.
The second: away from base, all five backends still agree with each
other (hazards exact; the cycle backend's timing within its documented
tolerance) — the node axis scales constants, it does not fork models.

The machines here carry deliberately small caches: node scaling reaches
cycle counts only through the miss-penalty-to-cycles conversion, so a
trace that never misses would vacuously pass everything.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz import compare_results
from repro.pipeline.fastsim import BACKENDS, make_simulator
from repro.pipeline.simulator import MachineConfig
from repro.tech import BASE_NODE
from repro.trace import generate_trace, get_workload
from repro.uarch.cache import CacheConfig

DEPTHS = (3, 8, 14)
LENGTH = 600


def missing_machine() -> MachineConfig:
    """A base-node machine whose caches are small enough to actually miss."""
    small = CacheConfig(
        size=2048, line_size=32, associativity=1, miss_latency_fo4=80.0
    )
    return MachineConfig(
        icache=small,
        dcache=small,
        l2=dataclasses.replace(small, size=8192, miss_latency_fo4=400.0),
    )


@pytest.fixture(scope="module")
def trace():
    return generate_trace(get_workload("oltp-bank"), LENGTH)


class TestBaseNodeIdentity:
    def test_for_node_base_is_the_default_machine(self):
        assert MachineConfig.for_node(BASE_NODE) == MachineConfig()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_backend_bit_identical_at_base(self, backend, trace):
        machine = missing_machine()
        plain = make_simulator(machine, backend).simulate_depths(trace, DEPTHS)
        noded = make_simulator(
            MachineConfig.for_node(BASE_NODE, machine), backend
        ).simulate_depths(trace, DEPTHS)
        for depth, a, b in zip(DEPTHS, plain, noded):
            assert a.cycles == b.cycles, f"{backend} depth {depth}"
            assert a.hazards == b.hazards, f"{backend} depth {depth}"
            assert a.bips == b.bips, f"{backend} depth {depth}"

    @given(
        node=st.sampled_from(("cmos-hp-16", "cmos-lp-22", "tfet-homo-22")),
        depth=st.integers(2, 20),
    )
    @settings(max_examples=10, deadline=None)
    def test_backends_agree_off_base(self, node, depth, trace):
        """Differential check at non-base nodes (hypothesis picks the cell)."""
        machine = MachineConfig.for_node(node, missing_machine())
        reference = make_simulator(machine, "reference").simulate_depths(
            trace, (depth,)
        )[0]
        for backend in BACKENDS[1:]:
            other = make_simulator(machine, backend).simulate_depths(
                trace, (depth,)
            )[0]
            mismatches = compare_results(reference, other, backend, depth)
            assert not mismatches, "\n".join(mismatches)


class TestNodeChangesTheAnswer:
    def test_off_base_timing_differs(self, trace):
        """A re-noded machine must not silently produce base-node numbers."""
        machine = missing_machine()
        base = make_simulator(machine, "fast").simulate_depths(trace, DEPTHS)
        lp = make_simulator(
            MachineConfig.for_node("cmos-lp-22", machine), "fast"
        ).simulate_depths(trace, DEPTHS)
        hp = make_simulator(
            MachineConfig.for_node("cmos-hp-16", machine), "fast"
        ).simulate_depths(trace, DEPTHS)
        base_cycles = [r.cycles for r in base]
        # Slower clock -> fewer penalty cycles per miss; faster -> more.
        assert [r.cycles for r in lp] < base_cycles
        assert [r.cycles for r in hp] > base_cycles
