"""Tests of the Prometheus-style metrics registry."""

import math

import pytest

from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c_total", "help")
        counter.inc()
        counter.inc(2.0)
        assert counter.value() == 3.0

    def test_labels_are_independent(self):
        counter = Counter("c_total", "help")
        counter.inc(endpoint="/a")
        counter.inc(endpoint="/b")
        counter.inc(endpoint="/a")
        assert counter.value(endpoint="/a") == 2.0
        assert counter.value(endpoint="/b") == 1.0
        assert counter.value(endpoint="/c") == 0.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c_total", "help").inc(-1)

    def test_render(self):
        counter = Counter("c_total", "requests seen")
        counter.inc(status="200", endpoint="/a")
        lines = counter.render()
        assert "# HELP c_total requests seen" in lines
        assert "# TYPE c_total counter" in lines
        assert 'c_total{endpoint="/a",status="200"} 1' in lines


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g", "help")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4.0

    def test_callback_gauge(self):
        box = {"v": 7}
        gauge = Gauge("g", "help", callback=lambda: box["v"])
        assert gauge.value() == 7.0
        box["v"] = 9
        assert "g 9" in gauge.render()


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        histogram = Histogram("h_seconds", "help", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        lines = histogram.render()
        assert 'h_seconds_bucket{le="0.1"} 1' in lines
        assert 'h_seconds_bucket{le="1"} 3' in lines
        assert 'h_seconds_bucket{le="10"} 4' in lines
        assert 'h_seconds_bucket{le="+Inf"} 5' in lines
        assert "h_seconds_count 5" in lines
        assert histogram.count() == 5
        assert histogram.sum() == pytest.approx(56.05)

    def test_per_label_series(self):
        histogram = Histogram("h", "help", buckets=(1.0,))
        histogram.observe(0.5, endpoint="/a")
        histogram.observe(2.0, endpoint="/b")
        assert histogram.count(endpoint="/a") == 1
        assert histogram.count(endpoint="/b") == 1
        assert histogram.count(endpoint="/c") == 0

    def test_quantile_estimate(self):
        histogram = Histogram("h", "help", buckets=(0.1, 1.0, 10.0))
        for _ in range(99):
            histogram.observe(0.05)
        histogram.observe(5.0)
        assert histogram.quantile(0.5) == 0.1
        assert histogram.quantile(1.0) == 10.0
        assert math.isnan(Histogram("e", "h", buckets=(1,)).quantile(0.5))

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=())


class TestRegistry:
    def test_render_is_valid_exposition_text(self):
        registry = MetricsRegistry()
        counter = registry.counter("a_total", "a")
        registry.gauge("b", "b", callback=lambda: 1.5)
        histogram = registry.histogram("c_seconds", "c", buckets=(1.0,))
        counter.inc()
        histogram.observe(0.5)
        text = registry.render()
        assert text.endswith("\n")
        for needle in (
            "# TYPE a_total counter",
            "# TYPE b gauge",
            "# TYPE c_seconds histogram",
            "a_total 1",
            "b 1.5",
            'c_seconds_bucket{le="+Inf"} 1',
        ):
            assert needle in text

    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        registry.counter("dup", "first")
        with pytest.raises(ValueError):
            registry.gauge("dup", "second")
