"""End-to-end tests of the serving daemon over real sockets.

Each test boots a :class:`ServiceServer` on an OS-assigned port inside
``asyncio.run`` and talks to it with the load generator's HTTP client —
the same code path production traffic takes, minus the network.
"""

import asyncio
import contextlib
import threading

from repro.engine.worker import execute_job
from repro.runtime import RuntimeConfig
from repro.service import ServiceServer, ServiceState
from repro.service.loadgen import HttpClient

LENGTH = 1200


def make_config(tmp_path, **overrides) -> RuntimeConfig:
    settings = dict(
        host="127.0.0.1",
        port=0,
        backend="fast",
        executor="thread",
        workers=4,
        concurrency=4,
        queue_limit=8,
        memory_entries=32,
        cache_dir=str(tmp_path / "service-disk"),
        drain_timeout=5.0,
    )
    settings.update(overrides)
    return RuntimeConfig(**settings)


@contextlib.asynccontextmanager
async def running(config, compute=None):
    server = ServiceServer(ServiceState(config, compute=compute))
    await server.start()
    client = HttpClient("127.0.0.1", server.port)
    try:
        yield server, client
    finally:
        await client.close()
        await server.drain(timeout=5.0)


def sweep_body(workload="gzip", **extra):
    body = {"workload": workload, "length": LENGTH}
    body.update(extra)
    return body


class TestEndpoints:
    def test_healthz(self, tmp_path):
        async def scenario():
            async with running(make_config(tmp_path)) as (_server, client):
                return await client.request_json("GET", "/healthz")

        status, health = asyncio.run(scenario())
        assert status == 200
        assert health["status"] == "ok"
        assert health["backend"] == "fast"
        assert "version" in health and "uptime_seconds" in health

    def test_sweep_then_optimum_share_the_cache(self, tmp_path):
        async def scenario():
            async with running(make_config(tmp_path)) as (_server, client):
                first = await client.request_json("POST", "/v1/sweep", sweep_body())
                second = await client.request_json(
                    "POST", "/v1/optimum", sweep_body()
                )
                return first, second

        (status1, sweep), (status2, optimum) = asyncio.run(scenario())
        assert status1 == 200 and status2 == 200
        assert sweep["source"] == "computed"
        assert len(sweep["bips"]) == len(sweep["depths"]) == 24
        assert len(sweep["metric"]) == 24
        # Same job key => the optimum request is a pure memory hit.
        assert optimum["source"] == "memory"
        assert optimum["key"] == sweep["key"]
        assert optimum["simulated"]["depth"] > 0
        assert optimum["analytic"]["depth"] > 0
        assert optimum["analytic"]["pipelined"] in (True, False)

    def test_metrics_expose_the_hierarchy(self, tmp_path):
        async def scenario():
            async with running(make_config(tmp_path)) as (_server, client):
                await client.request_json("POST", "/v1/sweep", sweep_body())
                await client.request_json("POST", "/v1/sweep", sweep_body())
                _status, _headers, raw = await client.request("GET", "/metrics")
                return raw.decode("utf-8")

        text = asyncio.run(scenario())
        assert 'repro_cache_hits_total{layer="memory"} 1' in text
        assert "repro_computed_jobs_total 1" in text
        assert "repro_lru_entries 1" in text
        assert 'repro_requests_total{endpoint="/v1/sweep",status="200"} 2' in text
        assert 'repro_request_seconds_bucket{endpoint="/v1/sweep",le="+Inf"} 2' in text

    def test_disk_layer_survives_a_restart(self, tmp_path):
        config = make_config(tmp_path)

        async def first_life():
            async with running(config) as (_server, client):
                status, response = await client.request_json(
                    "POST", "/v1/sweep", sweep_body()
                )
                return status, response["source"]

        async def second_life():
            async with running(config) as (server, client):
                status, response = await client.request_json(
                    "POST", "/v1/sweep", sweep_body()
                )
                return status, response["source"], server.state.lru.stats

        assert asyncio.run(first_life()) == (200, "computed")
        status, source, lru_stats = asyncio.run(second_life())
        # Fresh process-equivalent: empty LRU, but the disk entry written
        # by the first life is found and promoted into memory.
        assert (status, source) == (200, "disk")
        assert lru_stats["entries"] == 1

    def test_backend_override_changes_the_key(self, tmp_path):
        async def scenario():
            async with running(make_config(tmp_path)) as (_server, client):
                _status, fast = await client.request_json(
                    "POST", "/v1/sweep", sweep_body()
                )
                _status, reference = await client.request_json(
                    "POST", "/v1/sweep", sweep_body(backend="reference")
                )
                return fast, reference

        fast, reference = asyncio.run(scenario())
        assert fast["backend"] == "fast" and reference["backend"] == "reference"
        assert fast["key"] != reference["key"]
        # The validated-equivalent kernels must agree on the series.
        assert fast["bips"] == reference["bips"]


class TestValidation:
    def test_rejections(self, tmp_path):
        cases = [
            ("/v1/sweep", {}, "workload"),
            ("/v1/sweep", {"workload": "no-such-workload"}, "unknown workload"),
            ("/v1/sweep", sweep_body(depths=[]), "depths"),
            ("/v1/sweep", sweep_body(depths=[5, 3]), "ascending"),
            ("/v1/sweep", sweep_body(length=0), "length"),
            ("/v1/sweep", sweep_body(backend="warp"), "backend"),
            ("/v1/sweep", sweep_body(m=-1), "m must be positive"),
            ("/v1/sweep", sweep_body(reference_depth=99), "reference_depth"),
            ("/v1/sweep", sweep_body(frobnicate=1), "unknown fields"),
        ]

        async def scenario():
            outcomes = []
            async with running(make_config(tmp_path)) as (_server, client):
                for path, body, _needle in cases:
                    outcomes.append(await client.request_json("POST", path, body))
            return outcomes

        outcomes = asyncio.run(scenario())
        for (status, response), (_path, _body, needle) in zip(outcomes, cases):
            assert status == 400, response
            assert needle in response["error"]

    def test_transport_errors(self, tmp_path):
        async def scenario():
            async with running(make_config(tmp_path)) as (_server, client):
                missing = await client.request_json("POST", "/v1/nope", {})
                wrong_method = await client.request_json("GET", "/v1/sweep")
                empty_body = await client.request_json("POST", "/v1/sweep", None)
                return missing, wrong_method, empty_body

        missing, wrong_method, empty_body = asyncio.run(scenario())
        assert missing[0] == 404
        assert wrong_method[0] == 405
        assert empty_body[0] == 400  # empty body -> {} -> missing 'workload'

    def test_metric_inf_serves_bips(self, tmp_path):
        async def scenario():
            async with running(make_config(tmp_path)) as (_server, client):
                return await client.request_json(
                    "POST", "/v1/sweep", sweep_body(m="inf", gated=False)
                )

        status, response = asyncio.run(scenario())
        assert status == 200
        assert response["m"] == "inf"
        assert response["metric"] == response["bips"]


class TestCoalescing:
    def test_identical_concurrent_requests_compute_once(self, tmp_path):
        release = threading.Event()
        calls = []

        def gated_compute(job):
            calls.append(job.cache_key())
            release.wait(timeout=10)
            return execute_job(job)

        async def scenario():
            config = make_config(tmp_path, concurrency=8, queue_limit=8)
            async with running(config, compute=gated_compute) as (server, _c):
                clients = [HttpClient("127.0.0.1", server.port) for _ in range(8)]
                for client in clients:
                    await client.connect()
                tasks = [
                    asyncio.create_task(
                        client.request_json("POST", "/v1/sweep", sweep_body())
                    )
                    for client in clients
                ]
                while server.state.flight.coalesced < 7:
                    await asyncio.sleep(0.002)
                release.set()
                responses = await asyncio.gather(*tasks)
                for client in clients:
                    await client.close()
                return responses

        responses = asyncio.run(scenario())
        assert len(calls) == 1  # N concurrent identical requests -> 1 compute
        statuses = [status for status, _ in responses]
        assert statuses == [200] * 8
        sources = sorted(response["source"] for _status, response in responses)
        assert sources == ["coalesced"] * 7 + ["computed"]
        keys = {response["key"] for _status, response in responses}
        assert len(keys) == 1


class TestBackpressure:
    def test_saturated_queue_returns_429_but_serves_memory_hits(self, tmp_path):
        release = threading.Event()
        release.set()
        computed = []

        def gated_compute(job):
            computed.append(job.name)
            release.wait(timeout=10)
            return execute_job(job)

        async def scenario():
            config = make_config(tmp_path, concurrency=1, queue_limit=0)
            async with running(config, compute=gated_compute) as (server, client):
                # Warm one workload into the memory LRU.
                status, warm = await client.request_json(
                    "POST", "/v1/sweep", sweep_body("gzip")
                )
                assert status == 200 and warm["source"] == "computed"

                # Saturate the single compute slot with a blocked job.
                release.clear()
                blocked_client = HttpClient("127.0.0.1", server.port)
                await blocked_client.connect()
                blocked = asyncio.create_task(
                    blocked_client.request_json(
                        "POST", "/v1/sweep", sweep_body("gcc95")
                    )
                )
                while len(computed) < 2:
                    await asyncio.sleep(0.002)

                # A distinct cold key cannot be admitted: 429 + Retry-After.
                overload_status, _headers, raw = await client.request(
                    "POST", "/v1/sweep", sweep_body("perl95")
                )
                retry_after = _headers.get("retry-after")

                # The warm key still serves from memory during overload.
                memory_status, memory = await client.request_json(
                    "POST", "/v1/sweep", sweep_body("gzip")
                )

                release.set()
                blocked_status, blocked_response = await blocked
                await blocked_client.close()
                metrics = server.state.metrics.render()
                return (
                    overload_status, retry_after, raw,
                    memory_status, memory["source"],
                    blocked_status, blocked_response["source"],
                    metrics,
                )

        (
            overload_status, retry_after, raw,
            memory_status, memory_source,
            blocked_status, blocked_source,
            metrics,
        ) = asyncio.run(scenario())
        assert overload_status == 429, raw
        assert retry_after is not None and float(retry_after) > 0
        assert (memory_status, memory_source) == (200, "memory")
        assert (blocked_status, blocked_source) == (200, "computed")
        assert "repro_rejected_requests_total 1" in metrics
        assert 'repro_requests_total{endpoint="/v1/sweep",status="429"} 1' in metrics


class TestDrain:
    def test_graceful_drain_finishes_inflight_work(self, tmp_path):
        started = threading.Event()
        release = threading.Event()

        def gated_compute(job):
            started.set()
            release.wait(timeout=10)
            return execute_job(job)

        async def scenario():
            config = make_config(tmp_path)
            server = ServiceServer(ServiceState(config, compute=gated_compute))
            await server.start()
            port = server.port
            client = HttpClient("127.0.0.1", port)
            await client.connect()
            inflight = asyncio.create_task(
                client.request_json("POST", "/v1/sweep", sweep_body())
            )
            while not started.is_set():
                await asyncio.sleep(0.002)

            drain = asyncio.create_task(server.drain(timeout=5.0))
            await asyncio.sleep(0.05)  # drain must now be waiting on us
            release.set()
            drained = await drain
            status, response = await inflight
            await client.close()

            refused = False
            try:
                probe = HttpClient("127.0.0.1", port)
                await probe.connect()
                await probe.close()
            except (ConnectionError, OSError):
                refused = True
            return drained, status, response["source"], refused

        drained, status, source, refused = asyncio.run(scenario())
        assert drained is True
        assert (status, source) == (200, "computed")
        assert refused is True  # the listener is gone after the drain

    def test_drain_reports_timeout_when_work_is_stuck(self, tmp_path):
        release = threading.Event()

        def stuck_compute(job):
            release.wait(timeout=30)
            return execute_job(job)

        async def scenario():
            config = make_config(tmp_path)
            server = ServiceServer(ServiceState(config, compute=stuck_compute))
            await server.start()
            client = HttpClient("127.0.0.1", server.port)
            await client.connect()
            inflight = asyncio.create_task(
                client.request_json("POST", "/v1/sweep", sweep_body())
            )
            while server.state.admitted == 0:
                await asyncio.sleep(0.002)
            drained = await server.drain(timeout=0.1)
            release.set()
            await asyncio.gather(inflight, return_exceptions=True)
            await client.close()
            return drained

        assert asyncio.run(scenario()) is False

    def test_healthz_reports_draining(self, tmp_path):
        async def scenario():
            config = make_config(tmp_path)
            server = ServiceServer(ServiceState(config))
            await server.start()
            server.state.draining = True
            status, body, _type, _extra = await server._route("GET", "/healthz", b"")
            server.state.draining = False
            await server.drain(timeout=1.0)
            return status, body

        status, body = asyncio.run(scenario())
        assert status == 503
        assert b"draining" in body
