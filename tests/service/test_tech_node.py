"""The ``tech_node`` request field: validated, echoed, cache-isolated."""

import asyncio

from tests.service.test_http_service import make_config, running, sweep_body

from repro.tech import BASE_NODE


class TestTechNodeField:
    def test_default_is_the_base_node(self, tmp_path):
        async def scenario():
            async with running(make_config(tmp_path)) as (_server, client):
                return await client.request_json("POST", "/v1/sweep", sweep_body())

        status, body = asyncio.run(scenario())
        assert status == 200
        assert body["tech_node"] == BASE_NODE

    def test_node_is_echoed_and_changes_the_answer(self, tmp_path):
        async def scenario():
            async with running(make_config(tmp_path)) as (_server, client):
                base = await client.request_json("POST", "/v1/sweep", sweep_body())
                lp = await client.request_json(
                    "POST", "/v1/sweep", sweep_body(tech_node="cmos-lp-22")
                )
                return base, lp

        (status1, base), (status2, lp) = asyncio.run(scenario())
        assert status1 == 200 and status2 == 200
        assert base["tech_node"] == BASE_NODE
        assert lp["tech_node"] == "cmos-lp-22"
        # The LP node re-times and re-weights power: both responses were
        # computed (no cross-node cache aliasing) and the metrics differ.
        assert lp["source"] == "computed"
        assert lp["metric"] != base["metric"]

    def test_same_node_is_served_from_cache(self, tmp_path):
        async def scenario():
            async with running(make_config(tmp_path)) as (_server, client):
                first = await client.request_json(
                    "POST", "/v1/sweep", sweep_body(tech_node="cmos-hp-16")
                )
                second = await client.request_json(
                    "POST", "/v1/sweep", sweep_body(tech_node="cmos-hp-16")
                )
                return first, second

        (_, first), (_, second) = asyncio.run(scenario())
        assert first["source"] == "computed"
        assert second["source"] in ("memory", "disk")
        assert second["metric"] == first["metric"]

    def test_unknown_node_is_a_400(self, tmp_path):
        async def scenario():
            async with running(make_config(tmp_path)) as (_server, client):
                return await client.request_json(
                    "POST", "/v1/sweep", sweep_body(tech_node="cmos-hp-7")
                )

        status, body = asyncio.run(scenario())
        assert status == 400
        assert "cmos-hp-7" in body["error"]

    def test_config_default_node_applies(self, tmp_path):
        """REPRO_TECH_NODE-style config default, overridable per request."""
        config = make_config(tmp_path, tech_node="cmos-lp-22")

        async def scenario():
            async with running(config) as (_server, client):
                default = await client.request_json(
                    "POST", "/v1/sweep", sweep_body()
                )
                explicit = await client.request_json(
                    "POST", "/v1/sweep", sweep_body(tech_node=BASE_NODE)
                )
                return default, explicit

        (_, default), (_, explicit) = asyncio.run(scenario())
        assert default["tech_node"] == "cmos-lp-22"
        assert explicit["tech_node"] == BASE_NODE
