"""Tests of single-flight request coalescing."""

import asyncio

import pytest

from repro.service.singleflight import SingleFlight


class TestCoalescing:
    def test_concurrent_identical_keys_compute_once(self):
        async def scenario():
            flight = SingleFlight()
            calls = []
            release = asyncio.Event()

            async def supplier():
                calls.append(1)
                await release.wait()
                return {"answer": 42}

            tasks = [
                asyncio.create_task(flight.run("key", supplier)) for _ in range(8)
            ]
            while flight.coalesced < 7:
                await asyncio.sleep(0.001)
            release.set()
            return await asyncio.gather(*tasks), calls, flight

        results, calls, flight = asyncio.run(scenario())
        assert len(calls) == 1
        assert flight.leaders == 1 and flight.coalesced == 7
        values = [value for value, _coalesced in results]
        assert all(value == {"answer": 42} for value in values)
        assert sum(coalesced for _value, coalesced in results) == 7

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            flight = SingleFlight()
            calls = []

            def supplier_for(key):
                async def supplier():
                    calls.append(key)
                    await asyncio.sleep(0.01)
                    return key.upper()
                return supplier

            results = await asyncio.gather(
                flight.run("a", supplier_for("a")),
                flight.run("b", supplier_for("b")),
            )
            return results, calls, flight

        results, calls, flight = asyncio.run(scenario())
        assert sorted(calls) == ["a", "b"]
        assert flight.leaders == 2 and flight.coalesced == 0
        assert [value for value, _ in results] == ["A", "B"]

    def test_sequential_calls_run_fresh_flights(self):
        async def scenario():
            flight = SingleFlight()
            calls = []

            async def supplier():
                calls.append(1)
                return len(calls)

            first, _ = await flight.run("key", supplier)
            second, _ = await flight.run("key", supplier)
            return first, second, flight

        first, second, flight = asyncio.run(scenario())
        assert (first, second) == (1, 2)
        assert flight.leaders == 2 and flight.inflight() == 0


class TestErrors:
    def test_leader_failure_reaches_every_follower(self):
        async def scenario():
            flight = SingleFlight()
            release = asyncio.Event()

            async def supplier():
                await release.wait()
                raise RuntimeError("boom")

            tasks = [
                asyncio.create_task(flight.run("key", supplier)) for _ in range(4)
            ]
            while flight.coalesced < 3:
                await asyncio.sleep(0.001)
            release.set()
            return await asyncio.gather(*tasks, return_exceptions=True), flight

        outcomes, flight = asyncio.run(scenario())
        assert all(isinstance(outcome, RuntimeError) for outcome in outcomes)
        assert flight.inflight() == 0

    def test_failure_with_no_followers_raises_cleanly(self):
        async def scenario():
            flight = SingleFlight()

            async def supplier():
                raise ValueError("nope")

            with pytest.raises(ValueError):
                await flight.run("key", supplier)
            return flight

        flight = asyncio.run(scenario())
        assert flight.inflight() == 0

    def test_key_clears_after_failure(self):
        async def scenario():
            flight = SingleFlight()

            async def failing():
                raise ValueError("nope")

            async def working():
                return "fine"

            with pytest.raises(ValueError):
                await flight.run("key", failing)
            value, coalesced = await flight.run("key", working)
            return value, coalesced

        value, coalesced = asyncio.run(scenario())
        assert value == "fine" and coalesced is False

    def test_follower_cancellation_does_not_kill_the_flight(self):
        async def scenario():
            flight = SingleFlight()
            release = asyncio.Event()

            async def supplier():
                await release.wait()
                return "done"

            leader = asyncio.create_task(flight.run("key", supplier))
            follower = asyncio.create_task(flight.run("key", supplier))
            while flight.coalesced < 1:
                await asyncio.sleep(0.001)
            follower.cancel()
            await asyncio.gather(follower, return_exceptions=True)
            release.set()
            value, coalesced = await leader
            return value, coalesced

        value, coalesced = asyncio.run(scenario())
        assert value == "done" and coalesced is False
