"""The async search endpoints: POST /v1/search + GET /v1/search/{id}."""

import asyncio

from repro.service import ServiceServer, ServiceState

from .test_http_service import make_config, running

LENGTH = 400


def search_body(**overrides):
    body = {
        "space": {"issue_width": {"choice": [2, 4]}},
        "objective": {
            "workloads": ["gzip"],
            "depths": [4, 6, 8],
            "trace_length": LENGTH,
            "backend": "fast",
        },
        "optimizer": "grid",
        "seed": 0,
        "budget": 0,
    }
    body.update(overrides)
    return body


async def poll_until_settled(client, poll_path, timeout=20.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        status, doc = await client.request_json("GET", poll_path)
        assert status == 200
        if doc["state"] != "running":
            return doc
        assert asyncio.get_running_loop().time() < deadline, "search never settled"
        await asyncio.sleep(0.05)


class TestSearchEndpoints:
    def test_submit_poll_and_finish(self, tmp_path):
        async def scenario():
            async with running(make_config(tmp_path)) as (_server, client):
                status, submitted = await client.request_json(
                    "POST", "/v1/search", search_body()
                )
                assert status == 200
                assert submitted["state"] == "running"
                assert submitted["poll"].endswith(submitted["search_id"])
                done = await poll_until_settled(client, submitted["poll"])
                return submitted, done

        submitted, done = asyncio.run(scenario())
        assert done["state"] == "done"
        assert done["search_id"] == submitted["search_id"]
        assert done["completed"] is True
        assert done["probes"] == 2 and done["space_size"] == 2
        assert done["best"]["point"] == {"issue_width": 4}
        assert done["best"]["score"] > 0
        assert done["computed"] == 2 and done["error"] is None

    def test_resubmit_is_idempotent_and_restart_reads_the_checkpoint(self, tmp_path):
        config = make_config(tmp_path)

        async def first_life():
            async with running(config) as (_server, client):
                _status, submitted = await client.request_json(
                    "POST", "/v1/search", search_body()
                )
                await poll_until_settled(client, submitted["poll"])
                # Re-POST of a finished search: adopted, not restarted.
                status, again = await client.request_json(
                    "POST", "/v1/search", search_body()
                )
                return status, submitted["search_id"], again

        status, search_id, again = asyncio.run(first_life())
        assert status == 200
        assert again["search_id"] == search_id
        assert again["state"] == "done"

        async def second_life():
            async with running(config) as (_server, client):
                return await client.request_json("GET", f"/v1/search/{search_id}")

        # A fresh daemon has no live registry entry but finds the
        # on-disk checkpoint (the content address is the same).
        status, doc = asyncio.run(second_life())
        assert status == 200
        assert doc["state"] == "done" and doc["completed"] is True
        assert doc["probes"] == 2

    def test_unknown_id_is_404(self, tmp_path):
        async def scenario():
            async with running(make_config(tmp_path)) as (_server, client):
                return await client.request_json("GET", "/v1/search/deadbeef")

        status, doc = asyncio.run(scenario())
        assert status == 404
        assert "deadbeef" in doc["error"]

    def test_malformed_bodies_are_400(self, tmp_path):
        cases = [
            ({}, "space"),
            (search_body(space={}), "space"),
            (search_body(objective={}), "workloads"),
            (search_body(optimizer="warp"), "optimizer"),
            (search_body(budget=-1), "budget"),
            (search_body(seed="lucky"), "seed"),
            (search_body(frobnicate=1), "unknown fields"),
            (
                search_body(
                    objective={"workloads": ["gzip"], "trace_length": 10**9}
                ),
                "trace_length",
            ),
        ]

        async def scenario():
            outcomes = []
            async with running(make_config(tmp_path)) as (_server, client):
                for body, _needle in cases:
                    outcomes.append(
                        await client.request_json("POST", "/v1/search", body)
                    )
            return outcomes

        outcomes = asyncio.run(scenario())
        for (status, doc), (_body, needle) in zip(outcomes, cases):
            assert status == 400, doc
            assert needle in doc["error"]

    def test_admission_control_rejects_excess_searches(self, tmp_path):
        """With search_concurrency=1, a second distinct search gets 429
        while the first runs; a slow runner keeps the slot occupied."""
        import threading

        from repro.engine.worker import execute_job

        release = threading.Event()

        def slow_runner(job):
            release.wait(timeout=10)
            return execute_job(job)

        async def scenario():
            config = make_config(tmp_path, search_concurrency=1)
            state = ServiceState(config)
            state.search_runner = slow_runner
            server = ServiceServer(state)
            await server.start()
            from repro.service.loadgen import HttpClient

            client = HttpClient("127.0.0.1", server.port)
            try:
                status1, first = await client.request_json(
                    "POST", "/v1/search", search_body()
                )
                status2, _headers, raw = await client.request(
                    "POST", "/v1/search", search_body(seed=99)
                )
                retry_after = _headers.get("retry-after")
                release.set()
                done = await poll_until_settled(client, first["poll"])
                metrics = state.metrics.render()
                return status1, status2, retry_after, done, metrics
            finally:
                await client.close()
                release.set()
                await server.drain(timeout=5.0)

        status1, status2, retry_after, done, metrics = asyncio.run(scenario())
        assert status1 == 200
        assert status2 == 429
        assert retry_after is not None and float(retry_after) > 0
        assert done["state"] == "done"
        assert "repro_searches_total 1" in metrics
        assert "repro_searches_running 0" in metrics

    def test_wrong_method_on_status_is_405(self, tmp_path):
        async def scenario():
            config = make_config(tmp_path)
            state = ServiceState(config)
            server = ServiceServer(state)
            try:
                return await server._route("POST", "/v1/search/abc123", b"{}")
            finally:
                await state.shutdown()

        status, _body, _type, _extra = asyncio.run(scenario())
        assert status == 405
