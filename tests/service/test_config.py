"""Serving configuration: RuntimeConfig precedence plus the deprecation shim."""

import argparse
import warnings

import pytest

from repro.runtime import RuntimeConfig
from repro.service.config import (
    ServiceConfig,
    add_service_arguments,
    config_from_args,
)


def _parse(argv):
    parser = argparse.ArgumentParser()
    add_service_arguments(parser)
    return parser.parse_args(argv)


class TestDefaults:
    def test_backend_defaults_to_fast(self):
        assert RuntimeConfig().backend == "fast"

    def test_cache_dir_follows_engine_convention(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "engine"))
        assert RuntimeConfig().cache_dir == str(tmp_path / "engine")

    def test_admission_limit(self):
        config = RuntimeConfig(concurrency=3, queue_limit=5)
        assert config.admission_limit == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(backend="warp")
        with pytest.raises(ValueError):
            RuntimeConfig(executor="fiber")
        with pytest.raises(ValueError):
            RuntimeConfig(workers=0)
        with pytest.raises(ValueError):
            RuntimeConfig(queue_limit=-1)
        with pytest.raises(ValueError):
            RuntimeConfig(drain_timeout=-0.1)


class TestEnvOverrides:
    def test_env_patches_fields(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_PORT", "9999")
        monkeypatch.setenv("REPRO_SERVICE_BACKEND", "reference")
        monkeypatch.setenv("REPRO_SERVICE_CONCURRENCY", "2")
        monkeypatch.setenv("REPRO_SERVICE_DRAIN_TIMEOUT", "2.5")
        config = RuntimeConfig.from_env()
        assert config.port == 9999
        assert config.backend == "reference"
        assert config.concurrency == 2
        assert config.drain_timeout == 2.5

    def test_explicit_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_PORT", "9999")
        assert RuntimeConfig.from_env(port=1234).port == 1234

    def test_none_overrides_are_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_PORT", "9999")
        assert RuntimeConfig.from_env(port=None).port == 9999


class TestCliPrecedence:
    def test_flags_override_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_PORT", "9999")
        monkeypatch.setenv("REPRO_SERVICE_BACKEND", "reference")
        config = config_from_args(_parse(["--port", "7777"]))
        assert config.port == 7777          # flag beats env
        assert config.backend == "reference"  # env beats default

    def test_unset_flags_fall_through_to_defaults(self):
        config = config_from_args(_parse([]))
        defaults = RuntimeConfig()
        assert config.backend == defaults.backend
        assert config.concurrency == defaults.concurrency

    def test_no_disk_cache_flag(self):
        config = config_from_args(_parse(["--no-disk-cache"]))
        assert config.cache_dir is None
        assert config.provenance["cache_dir"] == "flag:--no-disk-cache"

    def test_config_file_layers_between_env_and_flags(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SERVICE_PORT", "9999")
        monkeypatch.setenv("REPRO_SERVICE_CONCURRENCY", "2")
        cfg = tmp_path / "repro.json"
        cfg.write_text('{"port": 8888, "workers": 7}', encoding="utf-8")
        config = config_from_args(_parse(["--config", str(cfg), "--port", "7777"]))
        assert config.port == 7777        # flag beats file beats env
        assert config.workers == 7        # file beats default
        assert config.concurrency == 2    # env beats default
        assert config.provenance["port"] == "flag:--port"
        assert config.provenance["workers"] == f"file:{cfg}"
        assert config.provenance["concurrency"] == "env:REPRO_SERVICE_CONCURRENCY"

    def test_loadgen_shares_the_config(self, monkeypatch):
        # The load generator resolves its target from the same config
        # (the satellite requirement: no scattered argparse defaults).
        monkeypatch.setenv("REPRO_SERVICE_HOST", "10.1.2.3")
        monkeypatch.setenv("REPRO_SERVICE_PORT", "4321")
        config = RuntimeConfig.from_env()
        assert (config.host, config.port) == ("10.1.2.3", 4321)


class TestDeprecationShims:
    def test_service_config_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="ServiceConfig is deprecated"):
            config = ServiceConfig(port=1234)
        assert isinstance(config, RuntimeConfig)
        assert config.port == 1234

    def test_service_config_from_env_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_PORT", "9999")
        with pytest.warns(DeprecationWarning, match="ServiceConfig is deprecated"):
            assert ServiceConfig.from_env().port == 9999

    def test_old_cache_dir_env_var_warns_and_applies(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SERVICE_CACHE_DIR", str(tmp_path / "old"))
        with pytest.warns(DeprecationWarning, match="REPRO_SERVICE_CACHE_DIR"):
            config = RuntimeConfig.from_env()
        assert config.cache_dir == str(tmp_path / "old")
        assert config.provenance["cache_dir"] == "env:REPRO_SERVICE_CACHE_DIR"

    def test_empty_old_cache_dir_still_disables_disk_layer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_CACHE_DIR", "")
        with pytest.warns(DeprecationWarning, match="REPRO_SERVICE_CACHE_DIR"):
            assert RuntimeConfig.from_env().cache_dir is None

    def test_runtime_config_does_not_warn(self, recwarn):
        warnings.simplefilter("error", DeprecationWarning)
        RuntimeConfig(port=1234)
        RuntimeConfig.from_env()
        assert not [w for w in recwarn if w.category is DeprecationWarning]
