"""Tests of the shared ServiceConfig (defaults, env, CLI precedence)."""

import argparse

import pytest

from repro.service.config import (
    ServiceConfig,
    add_service_arguments,
    config_from_args,
)


def _parse(argv):
    parser = argparse.ArgumentParser()
    add_service_arguments(parser)
    return parser.parse_args(argv)


class TestDefaults:
    def test_backend_defaults_to_fast(self):
        assert ServiceConfig().backend == "fast"

    def test_cache_dir_follows_engine_convention(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "engine"))
        assert ServiceConfig().cache_dir == str(tmp_path / "engine")

    def test_admission_limit(self):
        config = ServiceConfig(concurrency=3, queue_limit=5)
        assert config.admission_limit == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(backend="warp")
        with pytest.raises(ValueError):
            ServiceConfig(executor="fiber")
        with pytest.raises(ValueError):
            ServiceConfig(workers=0)
        with pytest.raises(ValueError):
            ServiceConfig(queue_limit=-1)
        with pytest.raises(ValueError):
            ServiceConfig(drain_timeout=-0.1)


class TestEnvOverrides:
    def test_env_patches_fields(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_PORT", "9999")
        monkeypatch.setenv("REPRO_SERVICE_BACKEND", "reference")
        monkeypatch.setenv("REPRO_SERVICE_CONCURRENCY", "2")
        monkeypatch.setenv("REPRO_SERVICE_DRAIN_TIMEOUT", "2.5")
        config = ServiceConfig.from_env()
        assert config.port == 9999
        assert config.backend == "reference"
        assert config.concurrency == 2
        assert config.drain_timeout == 2.5

    def test_empty_cache_dir_disables_disk_layer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_CACHE_DIR", "")
        assert ServiceConfig.from_env().cache_dir is None

    def test_explicit_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_PORT", "9999")
        assert ServiceConfig.from_env(port=1234).port == 1234

    def test_none_overrides_are_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_PORT", "9999")
        assert ServiceConfig.from_env(port=None).port == 9999


class TestCliPrecedence:
    def test_flags_override_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_PORT", "9999")
        monkeypatch.setenv("REPRO_SERVICE_BACKEND", "reference")
        config = config_from_args(_parse(["--port", "7777"]))
        assert config.port == 7777          # flag beats env
        assert config.backend == "reference"  # env beats default

    def test_unset_flags_fall_through_to_defaults(self):
        config = config_from_args(_parse([]))
        defaults = ServiceConfig()
        assert config.backend == defaults.backend
        assert config.concurrency == defaults.concurrency

    def test_no_disk_cache_flag(self):
        config = config_from_args(_parse(["--no-disk-cache"]))
        assert config.cache_dir is None

    def test_loadgen_shares_the_config(self, monkeypatch):
        # The load generator resolves its target from the same config
        # (the satellite requirement: no scattered argparse defaults).
        monkeypatch.setenv("REPRO_SERVICE_HOST", "10.1.2.3")
        monkeypatch.setenv("REPRO_SERVICE_PORT", "4321")
        config = ServiceConfig.from_env()
        assert (config.host, config.port) == ("10.1.2.3", 4321)
