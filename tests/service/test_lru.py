"""Tests of the in-memory LRU payload cache."""

import pytest

from repro.service.lru import LRUCache


class TestBasics:
    def test_get_miss_then_hit(self):
        lru = LRUCache(4)
        assert lru.get("a") is None
        lru.put("a", {"v": 1})
        assert lru.get("a") == {"v": 1}
        assert lru.hits == 1 and lru.misses == 1

    def test_put_overwrites(self):
        lru = LRUCache(4)
        lru.put("a", {"v": 1})
        lru.put("a", {"v": 2})
        assert lru.get("a") == {"v": 2}
        assert len(lru) == 1

    def test_contains_and_len(self):
        lru = LRUCache(4)
        lru.put("a", {})
        assert "a" in lru and "b" not in lru
        assert len(lru) == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_clear(self):
        lru = LRUCache(4)
        lru.put("a", {})
        lru.put("b", {})
        assert lru.clear() == 2
        assert len(lru) == 0 and lru.get("a") is None


class TestEviction:
    def test_capacity_bound_holds(self):
        lru = LRUCache(3)
        for index in range(10):
            lru.put(f"k{index}", {"v": index})
            assert len(lru) <= 3
        assert lru.evictions == 7

    def test_evicts_least_recently_used(self):
        lru = LRUCache(2)
        lru.put("a", {"v": 1})
        lru.put("b", {"v": 2})
        assert lru.get("a") is not None  # refresh a; b is now oldest
        lru.put("c", {"v": 3})
        assert lru.get("b") is None
        assert lru.get("a") is not None and lru.get("c") is not None

    def test_put_refreshes_recency(self):
        lru = LRUCache(2)
        lru.put("a", {"v": 1})
        lru.put("b", {"v": 2})
        lru.put("a", {"v": 10})  # rewrite refreshes a; b is oldest
        lru.put("c", {"v": 3})
        assert "b" not in lru and "a" in lru

    def test_eviction_order_is_oldest_first(self):
        lru = LRUCache(3)
        for name in ("a", "b", "c"):
            lru.put(name, {})
        evicted = []
        for name in ("d", "e", "f"):
            before = {key for key, _ in lru.items()}
            lru.put(name, {})
            after = {key for key, _ in lru.items()}
            evicted.extend(before - after)
        assert evicted == ["a", "b", "c"]


class TestDisabled:
    def test_zero_capacity_stores_nothing(self):
        lru = LRUCache(0)
        lru.put("a", {"v": 1})
        assert lru.get("a") is None
        assert len(lru) == 0
        assert lru.evictions == 0

    def test_stats_shape(self):
        lru = LRUCache(2)
        lru.put("a", {})
        lru.get("a")
        lru.get("b")
        assert lru.stats == {
            "entries": 1, "capacity": 2, "hits": 1, "misses": 1, "evictions": 0,
        }
