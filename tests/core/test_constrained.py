"""Tests of power-constrained design (the paper's alternative strategy)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DesignSpace,
    GatingModel,
    GatingStyle,
    ParameterError,
    bips,
    calibrate_leakage,
    constrained_optimum,
    pareto_frontier,
    performance_only_optimum,
    power_cap_depth,
    total_power,
)


@pytest.fixture()
def space():
    base = DesignSpace()
    return base.with_power(calibrate_leakage(base, 0.15, 8.0))


class TestPowerCap:
    def test_cap_is_budget_crossing(self, space):
        budget = float(total_power(8.0, space))
        cap = power_cap_depth(space, budget)
        assert cap == pytest.approx(8.0, rel=1e-6)

    def test_everything_fits_large_budget(self, space):
        cap = power_cap_depth(space, 1e12, max_depth=40.0)
        assert cap == 40.0

    def test_nothing_fits_tiny_budget(self, space):
        assert power_cap_depth(space, 1e-9) is None

    def test_budget_validation(self, space):
        with pytest.raises(ParameterError):
            power_cap_depth(space, 0.0)


class TestConstrainedOptimum:
    def test_binding_budget_sits_on_the_budget_line(self, space):
        budget = float(total_power(8.0, space))
        result = constrained_optimum(space, budget)
        assert result.binding
        assert result.watts == pytest.approx(budget, rel=1e-6)
        assert result.depth == pytest.approx(8.0, rel=1e-6)

    def test_generous_budget_recovers_eq2(self, space):
        result = constrained_optimum(space, 1e12)
        expected = performance_only_optimum(space.technology, space.workload)
        assert not result.binding
        assert result.depth == pytest.approx(expected, rel=1e-6)

    def test_infeasible_budget_reported(self, space):
        result = constrained_optimum(space, 1e-9)
        assert not result.feasible
        assert result.depth == 1.0

    def test_more_budget_never_hurts(self, space):
        budgets = [float(total_power(p, space)) for p in (4.0, 8.0, 16.0)]
        performances = [constrained_optimum(space, b).bips for b in budgets]
        assert performances == sorted(performances)

    def test_headroom(self, space):
        tight = constrained_optimum(space, float(total_power(8.0, space)))
        assert tight.headroom == pytest.approx(0.0, abs=1e-6)
        loose = constrained_optimum(space, 1e9)
        assert loose.headroom > 0.5

    @given(budget_scale=st.floats(0.2, 50.0))
    @settings(max_examples=40, deadline=None)
    def test_constraint_always_respected(self, budget_scale):
        base = DesignSpace()
        space = base.with_power(calibrate_leakage(base, 0.15, 8.0))
        budget = budget_scale * float(total_power(8.0, space))
        result = constrained_optimum(space, budget)
        if result.feasible:
            assert result.watts <= budget * (1.0 + 1e-6)

    def test_gated_solver(self, space):
        gated = space.with_gating(GatingModel(GatingStyle.PERFECT))
        budget = 2.0 * float(total_power(8.0, gated))
        result = constrained_optimum(gated, budget)
        assert result.feasible
        assert result.watts <= budget * (1.0 + 1e-6)
        # Must beat the naive shallowest design.
        assert result.bips > float(bips(2.0, gated))

    def test_gated_infeasible(self, space):
        gated = space.with_gating(GatingModel(GatingStyle.PERFECT))
        result = constrained_optimum(gated, 1e-9)
        assert not result.feasible


class TestParetoFrontier:
    def test_monotone_tradeoff(self, space):
        _depths, perf, watts = pareto_frontier(space)
        assert np.all(np.diff(watts) > 0)
        assert np.all(np.diff(perf) > 0)

    def test_dominated_deep_designs_excluded(self, space):
        depths, _perf, _watts = pareto_frontier(space, max_depth=40.0)
        p_perf = performance_only_optimum(space.technology, space.workload)
        assert depths[-1] <= p_perf + 0.5

    def test_strategies_agree_on_the_frontier(self, space):
        """A budget-constrained design always lands on the Pareto set."""
        depths, _perf, watts = pareto_frontier(space, points=400)
        budget = float(total_power(10.0, space))
        result = constrained_optimum(space, budget)
        distance = np.min(np.abs(depths - result.depth))
        assert distance < 0.25
