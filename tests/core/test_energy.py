"""Tests of the energy-delay formalism and its duality with BIPS^m/W."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DesignSpace,
    ParameterError,
    calibrate_leakage,
    metric,
    optimum_depth,
    time_per_instruction,
    total_power,
)
from repro.core.energy import (
    ed_product,
    energy_delay_product,
    energy_delay_squared,
    energy_per_instruction,
)


@pytest.fixture()
def space():
    base = DesignSpace()
    return base.with_power(calibrate_leakage(base, 0.15, 8.0))


class TestDefinitions:
    def test_energy_is_power_times_delay(self, space):
        p = 8.0
        expected = float(total_power(p, space)) * time_per_instruction(
            p, space.technology, space.workload
        )
        assert energy_per_instruction(p, space) == pytest.approx(expected)

    def test_edp_and_ed2p(self, space):
        p = 8.0
        delay = time_per_instruction(p, space.technology, space.workload)
        assert energy_delay_product(p, space) == pytest.approx(
            energy_per_instruction(p, space) * delay
        )
        assert energy_delay_squared(p, space) == pytest.approx(
            energy_per_instruction(p, space) * delay**2
        )

    def test_negative_exponent_rejected(self, space):
        with pytest.raises(ParameterError):
            ed_product(8.0, space, -1.0)

    def test_vectorised(self, space):
        depths = np.asarray([2.0, 8.0, 20.0])
        values = energy_per_instruction(depths, space)
        assert values.shape == (3,)


class TestDuality:
    @given(m=st.sampled_from([1.0, 2.0, 3.0, 4.0]), p=st.floats(1.0, 30.0))
    @settings(max_examples=40, deadline=None)
    def test_identity_everywhere(self, m, p):
        """E * D^(m-1) == 1 / (BIPS^m/W) at every depth, for every m."""
        base = DesignSpace()
        space = base.with_power(calibrate_leakage(base, 0.15, 8.0))
        lhs = ed_product(p, space, m - 1.0)
        rhs = 1.0 / float(metric(p, space, m))
        assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_ed2p_minimum_is_bips3_maximum(self, space):
        """The paper's metric choice in the energy vocabulary."""
        m3 = optimum_depth(space, 3.0).depth
        grid = np.linspace(1.0, 28.0, 541)
        ed2 = energy_delay_squared(grid, space)
        assert grid[int(np.argmin(ed2))] == pytest.approx(m3, abs=0.1)

    def test_pure_energy_prefers_shallow(self, space):
        """Minimum energy per instruction sits at the shallowest design —
        the energy-side statement of 'BIPS/W never pipelines'."""
        grid = np.linspace(1.0, 28.0, 109)
        energy = energy_per_instruction(grid, space)
        assert int(np.argmin(energy)) == 0

    def test_metric_ordering_in_energy_terms(self, space):
        """Deeper optima as the delay exponent grows — Fig. 5, restated."""
        grid = np.linspace(1.0, 28.0, 1081)
        argmins = [
            grid[int(np.argmin(ed_product(grid, space, k)))] for k in (0.0, 1.0, 2.0)
        ]
        assert argmins == sorted(argmins)
