"""Tests of cubic-peak and scale fitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ParameterError, cubic_fit_peak, fit_scale


class TestCubicFit:
    def test_recovers_exact_cubic(self):
        depths = np.arange(2.0, 26.0)
        # Peak of -(p - 9)^2 scaled; embed in a cubic with tiny cubic term.
        values = 100.0 - (depths - 9.0) ** 2 + 0.001 * depths**3
        fit = cubic_fit_peak(depths, values)
        fitted = fit(depths)
        assert np.allclose(fitted, values, rtol=1e-6, atol=1e-6)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)

    def test_peak_of_pure_parabola(self):
        depths = np.arange(2.0, 26.0)
        values = -(depths - 9.0) ** 2
        fit = cubic_fit_peak(depths, values)
        assert fit.peak_depth == pytest.approx(9.0, abs=1e-6)
        assert fit.peak_value == pytest.approx(0.0, abs=1e-6)
        assert fit.smooth

    def test_monotone_data_has_no_interior_peak(self):
        depths = np.arange(2.0, 26.0)
        fit = cubic_fit_peak(depths, depths * 2.0)
        assert fit.peak_depth is None
        assert not fit.smooth

    def test_minimum_is_not_reported_as_peak(self):
        depths = np.arange(2.0, 26.0)
        values = (depths - 9.0) ** 2  # interior *minimum*
        fit = cubic_fit_peak(depths, values)
        assert fit.peak_depth is None

    def test_peak_outside_range_excluded(self):
        depths = np.arange(2.0, 10.0)
        values = -(depths - 30.0) ** 2  # vertex far to the right
        fit = cubic_fit_peak(depths, values)
        assert fit.peak_depth is None

    @given(
        peak=st.floats(5.0, 20.0),
        width=st.floats(0.5, 5.0),
        scale=st.floats(0.1, 100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_parabola_peak_recovery_property(self, peak, width, scale):
        depths = np.arange(2.0, 26.0)
        values = scale * (1.0 - ((depths - peak) / (10.0 * width)) ** 2)
        fit = cubic_fit_peak(depths, values)
        assert fit.peak_depth is not None
        assert fit.peak_depth == pytest.approx(peak, abs=0.05)

    def test_callable_scalar(self):
        depths = np.arange(2.0, 26.0)
        fit = cubic_fit_peak(depths, -(depths - 9.0) ** 2)
        assert isinstance(fit(9.0), float)

    def test_noise_tolerance(self):
        rng = np.random.default_rng(7)
        depths = np.arange(2.0, 26.0)
        values = -(depths - 9.0) ** 2 + rng.normal(0, 2.0, depths.size)
        fit = cubic_fit_peak(depths, values)
        assert fit.peak_depth == pytest.approx(9.0, abs=1.5)

    def test_too_few_points_rejected(self):
        with pytest.raises(ParameterError):
            cubic_fit_peak([1.0, 2.0, 3.0], [1.0, 2.0, 1.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ParameterError):
            cubic_fit_peak([1.0, 2.0, 3.0, 4.0], [1.0, 2.0])

    def test_nonfinite_rejected(self):
        with pytest.raises(ParameterError):
            cubic_fit_peak([1.0, 2.0, 3.0, float("nan")], [1.0, 2.0, 3.0, 4.0])


class TestScaleFit:
    def test_exact_scale_recovery(self):
        theory = np.asarray([1.0, 2.0, 3.0, 4.0])
        fit = fit_scale(2.5 * theory, theory)
        assert fit.scale == pytest.approx(2.5)
        assert fit.r_squared == pytest.approx(1.0)

    def test_apply(self):
        theory = np.asarray([1.0, 2.0])
        fit = fit_scale(3.0 * theory, theory)
        assert np.allclose(fit.apply(theory), 3.0 * theory)

    def test_least_squares_optimality(self):
        rng = np.random.default_rng(11)
        theory = np.linspace(1.0, 5.0, 20)
        sim = 1.7 * theory + rng.normal(0, 0.1, 20)
        fit = fit_scale(sim, theory)
        base_error = float(np.sum((sim - fit.scale * theory) ** 2))
        for delta in (0.99, 1.01):
            worse = float(np.sum((sim - fit.scale * delta * theory) ** 2))
            assert worse >= base_error

    def test_zero_theory_rejected(self):
        with pytest.raises(ParameterError):
            fit_scale([1.0, 2.0], [0.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            fit_scale([], [])

    def test_mismatched_rejected(self):
        with pytest.raises(ParameterError):
            fit_scale([1.0], [1.0, 2.0])
