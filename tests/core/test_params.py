"""Unit tests for the theory parameter objects."""


import pytest

from repro.core import (
    DesignSpace,
    GatingModel,
    GatingStyle,
    ParameterError,
    PowerParams,
    TechnologyParams,
    WorkloadParams,
)


class TestTechnologyParams:
    def test_defaults_match_paper(self):
        tech = TechnologyParams()
        assert tech.total_logic_depth == 140.0
        assert tech.latch_overhead == 2.5

    def test_aliases(self):
        tech = TechnologyParams(100.0, 2.0)
        assert tech.t_p == 100.0
        assert tech.t_o == 2.0

    def test_cycle_time_formula(self):
        tech = TechnologyParams(140.0, 2.5)
        assert tech.cycle_time(10) == pytest.approx(2.5 + 14.0)

    def test_cycle_time_at_unit_depth_is_full_logic(self):
        tech = TechnologyParams(140.0, 2.5)
        assert tech.cycle_time(1) == pytest.approx(142.5)

    def test_frequency_is_reciprocal(self):
        tech = TechnologyParams()
        assert tech.frequency(8) == pytest.approx(1.0 / tech.cycle_time(8))

    def test_fo4_per_stage_alias(self):
        tech = TechnologyParams()
        assert tech.fo4_per_stage(7) == tech.cycle_time(7)

    def test_depth_for_fo4_round_trip(self):
        tech = TechnologyParams()
        for depth in (2.0, 7.0, 22.0):
            assert tech.depth_for_fo4(tech.fo4_per_stage(depth)) == pytest.approx(depth)

    def test_depth_for_fo4_below_overhead_rejected(self):
        tech = TechnologyParams()
        with pytest.raises(ParameterError):
            tech.depth_for_fo4(2.0)

    def test_paper_design_points(self):
        # 22 stages ~ 8.9 FO4 and 7 stages ~ 22.5 FO4 (paper Secs. 4-5).
        tech = TechnologyParams()
        assert tech.fo4_per_stage(22) == pytest.approx(8.86, abs=0.05)
        assert tech.fo4_per_stage(7) == pytest.approx(22.5, abs=0.1)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid_logic_depth(self, bad):
        with pytest.raises(ParameterError):
            TechnologyParams(total_logic_depth=bad)

    @pytest.mark.parametrize("bad", [0.0, -2.5])
    def test_invalid_latch_overhead(self, bad):
        with pytest.raises(ParameterError):
            TechnologyParams(latch_overhead=bad)

    def test_cycle_time_rejects_nonpositive_depth(self):
        with pytest.raises(ParameterError):
            TechnologyParams().cycle_time(0)


class TestWorkloadParams:
    def test_aliases(self):
        wl = WorkloadParams(0.1, 2.0, 0.5)
        assert wl.alpha == 2.0
        assert wl.beta == 0.5

    def test_hazard_pressure_product(self):
        wl = WorkloadParams(hazard_rate=0.1, superscalar_degree=2.0, hazard_stall_fraction=0.5)
        assert wl.hazard_pressure == pytest.approx(0.1)

    def test_from_counts(self):
        wl = WorkloadParams.from_counts(1000, 50, 2.0, 0.5, name="t")
        assert wl.hazard_rate == pytest.approx(0.05)
        assert wl.name == "t"

    def test_from_counts_rejects_empty(self):
        with pytest.raises(ParameterError):
            WorkloadParams.from_counts(0, 5, 2.0, 0.5)

    def test_beta_above_one_rejected(self):
        with pytest.raises(ParameterError):
            WorkloadParams(hazard_stall_fraction=1.5)

    @pytest.mark.parametrize("field", ["hazard_rate", "superscalar_degree"])
    def test_nonpositive_rejected(self, field):
        with pytest.raises(ParameterError):
            WorkloadParams(**{field: 0.0})


class TestPowerParams:
    def test_default_gamma_is_overall_growth(self):
        assert PowerParams().latch_growth_exponent == pytest.approx(1.1)

    def test_latch_count_power_law(self):
        power = PowerParams(latches_per_stage=10.0, latch_growth_exponent=1.5)
        assert power.latch_count(4) == pytest.approx(10.0 * 4**1.5)

    def test_latch_count_rejects_nonpositive_depth(self):
        with pytest.raises(ParameterError):
            PowerParams().latch_count(0)

    def test_with_gamma_copies(self):
        base = PowerParams()
        other = base.with_gamma(1.8)
        assert other.gamma == 1.8
        assert base.gamma == pytest.approx(1.1)
        assert other.dynamic_per_latch == base.dynamic_per_latch

    def test_with_leakage_copies(self):
        other = PowerParams().with_leakage(0.5)
        assert other.p_l == 0.5

    def test_zero_leakage_allowed(self):
        assert PowerParams(leakage_per_latch=0.0).p_l == 0.0

    def test_negative_leakage_rejected(self):
        with pytest.raises(ParameterError):
            PowerParams(leakage_per_latch=-0.1)

    def test_nonpositive_dynamic_rejected(self):
        with pytest.raises(ParameterError):
            PowerParams(dynamic_per_latch=0.0)


class TestGatingModel:
    def test_ungated_fraction(self):
        assert GatingModel(GatingStyle.UNGATED).effective_fraction() == 1.0

    def test_partial_fraction(self):
        assert GatingModel(GatingStyle.PARTIAL, fraction=0.4).effective_fraction() == 0.4

    def test_partial_fraction_out_of_range(self):
        with pytest.raises(ParameterError):
            GatingModel(GatingStyle.PARTIAL, fraction=0.0)
        with pytest.raises(ParameterError):
            GatingModel(GatingStyle.PARTIAL, fraction=1.5)

    def test_perfect_has_no_constant_fraction(self):
        with pytest.raises(ParameterError):
            GatingModel(GatingStyle.PERFECT).effective_fraction()

    def test_is_perfect(self):
        assert GatingModel(GatingStyle.PERFECT).is_perfect
        assert not GatingModel(GatingStyle.UNGATED).is_perfect

    def test_activity_scale_must_be_positive(self):
        with pytest.raises(ParameterError):
            GatingModel(GatingStyle.PERFECT, activity_scale=0.0)


class TestDesignSpace:
    def test_with_methods_replace_only_target(self):
        space = DesignSpace()
        gated = space.with_gating(GatingModel(GatingStyle.PERFECT))
        assert gated.gating.is_perfect
        assert gated.technology == space.technology
        assert gated.workload == space.workload

        new_power = PowerParams(leakage_per_latch=0.5)
        assert space.with_power(new_power).power.p_l == 0.5

        new_wl = WorkloadParams(hazard_rate=0.2)
        assert space.with_workload(new_wl).workload.hazard_rate == 0.2

        new_tech = TechnologyParams(total_logic_depth=70.0)
        assert space.with_technology(new_tech).technology.t_p == 70.0

    def test_frozen(self):
        space = DesignSpace()
        with pytest.raises(AttributeError):
            space.technology = TechnologyParams()
