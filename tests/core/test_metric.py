"""Tests of the generalised metric family BIPS**m/W (Eq. 4)."""

import numpy as np
import pytest

from repro.core import (
    MetricFamily,
    ParameterError,
    bips,
    metric,
    metric_curve,
    time_per_instruction,
    total_power,
    watts,
)


class TestMetricFamily:
    def test_exponents(self):
        assert MetricFamily.BIPS_PER_WATT.exponent == 1.0
        assert MetricFamily.BIPS2_PER_WATT.exponent == 2.0
        assert MetricFamily.BIPS3_PER_WATT.exponent == 3.0
        assert np.isinf(MetricFamily.PERFORMANCE_ONLY.exponent)

    def test_labels(self):
        assert MetricFamily.BIPS_PER_WATT.label == "BIPS/W"
        assert MetricFamily.BIPS3_PER_WATT.label == "BIPS3/W"
        assert MetricFamily.PERFORMANCE_ONLY.label == "BIPS"


class TestMetricValues:
    def test_definition(self, typical_space):
        p = 8.0
        expected = bips(p, typical_space) ** 3 / total_power(p, typical_space)
        assert metric(p, typical_space, 3.0) == pytest.approx(expected)

    def test_enum_and_float_agree(self, typical_space):
        assert metric(8.0, typical_space, MetricFamily.BIPS2_PER_WATT) == pytest.approx(
            metric(8.0, typical_space, 2.0)
        )

    def test_infinite_exponent_returns_bips(self, typical_space):
        assert metric(8.0, typical_space, float("inf")) == pytest.approx(
            bips(8.0, typical_space)
        )

    def test_bips_is_reciprocal_time(self, typical_space):
        p = 8.0
        tpi = time_per_instruction(p, typical_space.technology, typical_space.workload)
        assert bips(p, typical_space) == pytest.approx(1.0 / tpi)

    def test_watts_alias(self, typical_space):
        assert watts(8.0, typical_space) == pytest.approx(total_power(8.0, typical_space))

    def test_m_zero_is_inverse_power(self, typical_space):
        assert metric(8.0, typical_space, 0.0) == pytest.approx(
            1.0 / total_power(8.0, typical_space)
        )

    def test_negative_exponent_rejected(self, typical_space):
        with pytest.raises(ParameterError):
            metric(8.0, typical_space, -1.0)

    def test_vectorised(self, typical_space):
        depths = np.asarray([2.0, 8.0, 20.0])
        values = metric(depths, typical_space, 3.0)
        assert values.shape == (3,)
        for i, p in enumerate(depths):
            assert values[i] == pytest.approx(metric(float(p), typical_space, 3.0))


class TestMetricCurve:
    def test_normalised_peak_is_one(self, typical_space):
        depths = np.linspace(1.0, 25.0, 49)
        curve = metric_curve(depths, typical_space, 3.0, normalize=True)
        assert curve.max() == pytest.approx(1.0)
        assert np.all(curve > 0)

    def test_unnormalised_matches_metric(self, typical_space):
        depths = np.linspace(2.0, 10.0, 5)
        curve = metric_curve(depths, typical_space, 3.0)
        assert np.allclose(curve, metric(depths, typical_space, 3.0))

    def test_bips_per_watt_monotone_decreasing(self, typical_space):
        """The paper's BIPS/W result: no interior optimum — the curve only
        falls as the pipeline deepens."""
        depths = np.linspace(1.0, 25.0, 49)
        curve = metric_curve(depths, typical_space, 1.0)
        assert np.all(np.diff(curve) < 0)

    def test_bips3_has_interior_peak(self, typical_space):
        depths = np.linspace(1.0, 25.0, 97)
        curve = metric_curve(depths, typical_space, 3.0)
        k = int(np.argmax(curve))
        assert 0 < k < len(depths) - 1
