"""Tests of the Hartstein-Puzak performance model (Eqs. 1 and 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ParameterError,
    TechnologyParams,
    WorkloadParams,
    busy_time_per_instruction,
    cycles_per_instruction,
    performance_only_optimum,
    stall_time_per_instruction,
    throughput,
    time_per_instruction,
)

TECH = TechnologyParams()
WL = WorkloadParams(hazard_rate=0.09, superscalar_degree=2.0, hazard_stall_fraction=0.55)


class TestEq1Structure:
    def test_total_is_busy_plus_stall(self):
        for p in (2.0, 7.0, 22.0):
            total = time_per_instruction(p, TECH, WL)
            busy = busy_time_per_instruction(p, TECH, WL)
            stall = stall_time_per_instruction(p, TECH, WL)
            assert total == pytest.approx(busy + stall)

    def test_busy_term_formula(self):
        p = 10.0
        expected = (TECH.t_o + TECH.t_p / p) / WL.alpha
        assert busy_time_per_instruction(p, TECH, WL) == pytest.approx(expected)

    def test_stall_term_formula(self):
        p = 10.0
        expected = WL.beta * WL.hazard_rate * (TECH.t_o * p + TECH.t_p)
        assert stall_time_per_instruction(p, TECH, WL) == pytest.approx(expected)

    def test_busy_decreases_with_depth(self):
        depths = np.arange(1.0, 40.0)
        busy = busy_time_per_instruction(depths, TECH, WL)
        assert np.all(np.diff(busy) < 0)

    def test_stall_increases_with_depth(self):
        depths = np.arange(1.0, 40.0)
        stall = stall_time_per_instruction(depths, TECH, WL)
        assert np.all(np.diff(stall) > 0)

    def test_vectorised_matches_scalar(self):
        depths = np.asarray([2.0, 5.0, 9.0, 20.0])
        vec = time_per_instruction(depths, TECH, WL)
        for i, p in enumerate(depths):
            assert vec[i] == pytest.approx(time_per_instruction(float(p), TECH, WL))

    def test_throughput_is_reciprocal(self):
        p = 12.0
        assert throughput(p, TECH, WL) == pytest.approx(1.0 / time_per_instruction(p, TECH, WL))

    def test_cpi_consistent_with_time(self):
        p = 12.0
        cpi = cycles_per_instruction(p, TECH, WL)
        assert cpi * TECH.cycle_time(p) == pytest.approx(time_per_instruction(p, TECH, WL))

    def test_cpi_floor_is_inverse_alpha_without_hazards(self):
        hazardless = WorkloadParams(hazard_rate=1e-12, superscalar_degree=2.0,
                                    hazard_stall_fraction=0.5)
        assert cycles_per_instruction(10.0, TECH, hazardless) == pytest.approx(0.5, rel=1e-6)

    def test_rejects_nonpositive_depth(self):
        with pytest.raises(ParameterError):
            time_per_instruction(0.0, TECH, WL)
        with pytest.raises(ParameterError):
            time_per_instruction(np.asarray([2.0, -1.0]), TECH, WL)


class TestEq2Optimum:
    def test_closed_form(self):
        expected = np.sqrt(TECH.t_p / (WL.hazard_pressure * TECH.t_o))
        assert performance_only_optimum(TECH, WL) == pytest.approx(expected)

    def test_is_minimum_of_eq1(self):
        p_opt = performance_only_optimum(TECH, WL)
        t_opt = time_per_instruction(p_opt, TECH, WL)
        for delta in (0.9, 0.95, 1.05, 1.1):
            assert time_per_instruction(p_opt * delta, TECH, WL) > t_opt

    def test_defaults_near_paper_22_stages(self):
        assert performance_only_optimum(TECH, WL) == pytest.approx(22.0, abs=2.5)

    @given(
        hazard_rate=st.floats(0.01, 0.5),
        alpha=st.floats(1.0, 4.0),
        beta=st.floats(0.1, 1.0),
        t_p=st.floats(50.0, 400.0),
        t_o=st.floats(1.0, 5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_stationarity_property(self, hazard_rate, alpha, beta, t_p, t_o):
        """Eq. 2's root really is a stationary point of Eq. 1 for any
        physically meaningful parameter combination."""
        tech = TechnologyParams(t_p, t_o)
        wl = WorkloadParams(hazard_rate, alpha, beta)
        p_opt = performance_only_optimum(tech, wl)
        eps = max(p_opt * 1e-6, 1e-9)
        derivative = (
            time_per_instruction(p_opt + eps, tech, wl)
            - time_per_instruction(p_opt - eps, tech, wl)
        ) / (2 * eps)
        scale = time_per_instruction(p_opt, tech, wl) / p_opt
        assert abs(derivative) < 1e-3 * scale

    def test_more_hazards_shallower(self):
        light = WorkloadParams(hazard_rate=0.02)
        heavy = WorkloadParams(hazard_rate=0.2)
        assert performance_only_optimum(TECH, heavy) < performance_only_optimum(TECH, light)

    def test_wider_issue_shallower(self):
        narrow = WorkloadParams(superscalar_degree=1.0)
        wide = WorkloadParams(superscalar_degree=4.0)
        assert performance_only_optimum(TECH, wide) < performance_only_optimum(TECH, narrow)

    def test_more_logic_deeper(self):
        small = TechnologyParams(total_logic_depth=70.0)
        large = TechnologyParams(total_logic_depth=280.0)
        assert performance_only_optimum(large, WL) > performance_only_optimum(small, WL)
