"""Tests of the latch-centric power model (Eq. 3)."""

import numpy as np
import pytest

from repro.core import (
    DesignSpace,
    GatingModel,
    GatingStyle,
    ParameterError,
    PowerParams,
    TechnologyParams,
    WorkloadParams,
    calibrate_leakage,
    dynamic_power,
    leakage_fraction,
    leakage_power,
    time_per_instruction,
    total_power,
)

TECH = TechnologyParams()
WL = WorkloadParams()
UNGATED = GatingModel(GatingStyle.UNGATED)
PERFECT = GatingModel(GatingStyle.PERFECT)


class TestDynamicPower:
    def test_ungated_formula(self):
        power = PowerParams(dynamic_per_latch=2.0, latches_per_stage=3.0,
                            latch_growth_exponent=1.1)
        p = 8.0
        expected = TECH.frequency(p) * 2.0 * 3.0 * p**1.1
        assert dynamic_power(p, TECH, WL, power, UNGATED) == pytest.approx(expected)

    def test_partial_gating_scales_linearly(self):
        power = PowerParams()
        full = dynamic_power(8.0, TECH, WL, power, UNGATED)
        half = dynamic_power(8.0, TECH, WL, power, GatingModel(GatingStyle.PARTIAL, 0.5))
        assert half == pytest.approx(0.5 * full)

    def test_perfect_gating_tracks_throughput(self):
        """With perfect gating the switching rate is (T/N_I)**-1."""
        power = PowerParams()
        p = 8.0
        rate = 1.0 / time_per_instruction(p, TECH, WL)
        expected = rate * power.p_d * power.latches_per_stage * p**power.gamma
        assert dynamic_power(p, TECH, WL, power, PERFECT) == pytest.approx(expected)

    def test_perfect_gating_never_exceeds_ungated(self):
        """Useful work per unit time cannot exceed the clock rate times
        issue width; with alpha >= 1 the per-latch switching rate under
        perfect gating is below f_s."""
        power = PowerParams()
        depths = np.linspace(1.0, 30.0, 50)
        gated = dynamic_power(depths, TECH, WL, power, PERFECT)
        ungated = dynamic_power(depths, TECH, WL, power, UNGATED)
        assert np.all(gated <= ungated * WL.alpha)

    def test_rejects_nonpositive_depth(self):
        with pytest.raises(ParameterError):
            dynamic_power(0.0, TECH, WL, PowerParams(), UNGATED)


class TestLeakagePower:
    def test_scales_with_latch_count_only(self):
        power = PowerParams(leakage_per_latch=0.1, latches_per_stage=2.0,
                            latch_growth_exponent=1.3)
        assert leakage_power(5.0, power) == pytest.approx(0.1 * 2.0 * 5.0**1.3)

    def test_independent_of_frequency(self):
        power = PowerParams(leakage_per_latch=0.1)
        # Same depth, different technology: leakage identical.
        assert leakage_power(5.0, power) == leakage_power(5.0, power)

    def test_total_is_sum(self, typical_space):
        p = 8.0
        total = total_power(p, typical_space)
        dyn = dynamic_power(p, typical_space.technology, typical_space.workload,
                            typical_space.power, typical_space.gating)
        leak = leakage_power(p, typical_space.power)
        assert total == pytest.approx(dyn + leak)


class TestLeakageCalibration:
    @pytest.mark.parametrize("fraction", [0.0, 0.15, 0.5, 0.9])
    def test_hits_requested_fraction(self, fraction):
        space = DesignSpace()
        calibrated = space.with_power(calibrate_leakage(space, fraction, 8.0))
        assert leakage_fraction(8.0, calibrated) == pytest.approx(fraction, abs=1e-9)

    def test_gated_calibration_uses_gated_dynamic(self):
        space = DesignSpace(gating=PERFECT)
        calibrated = space.with_power(calibrate_leakage(space, 0.15, 8.0))
        assert leakage_fraction(8.0, calibrated) == pytest.approx(0.15, abs=1e-9)

    def test_dynamic_power_held_fixed(self):
        space = DesignSpace()
        before = dynamic_power(8.0, space.technology, space.workload, space.power, space.gating)
        calibrated = space.with_power(calibrate_leakage(space, 0.5, 8.0))
        after = dynamic_power(
            8.0, calibrated.technology, calibrated.workload, calibrated.power, calibrated.gating
        )
        assert after == pytest.approx(before)

    def test_rejects_bad_fraction(self):
        space = DesignSpace()
        with pytest.raises(ParameterError):
            calibrate_leakage(space, 1.0, 8.0)
        with pytest.raises(ParameterError):
            calibrate_leakage(space, -0.1, 8.0)

    def test_leakage_share_falls_with_depth_ungated(self):
        """Un-gated dynamic power grows with frequency while leakage only
        grows with latches, so the share anchored at p=8 shrinks deeper."""
        space = DesignSpace()
        space = space.with_power(calibrate_leakage(space, 0.3, 8.0))
        assert leakage_fraction(20.0, space) < 0.3
        assert leakage_fraction(3.0, space) > 0.3


class TestPowerShape:
    def test_ungated_power_strictly_increasing(self, typical_space):
        depths = np.linspace(1.0, 30.0, 60)
        watts = total_power(depths, typical_space)
        assert np.all(np.diff(watts) > 0)

    def test_deeper_pipelines_burn_superlinear_power(self, typical_space):
        w8 = total_power(8.0, typical_space)
        w16 = total_power(16.0, typical_space)
        assert w16 / w8 > 2.0  # frequency x latch growth beats linear
