"""Tests of the sensitivity sweeps (paper Figs. 8/9 and Sec. 2.2)."""

import pytest

from repro.core import (
    DesignSpace,
    ParameterError,
    calibrate_leakage,
    gamma_sweep,
    gating_comparison,
    hazard_rate_sweep,
    leakage_sweep,
    logic_depth_sweep,
    superscalar_sweep,
)


@pytest.fixture()
def space():
    base = DesignSpace()
    return base.with_power(calibrate_leakage(base, 0.15, 8.0))


class TestLeakageSweep:
    def test_optimum_monotone_deeper(self, space):
        curves = leakage_sweep(space, fractions=(0.0, 0.3, 0.5, 0.9))
        depths = [c.optimum.depth for c in curves]
        assert depths == sorted(depths)
        assert depths[-1] > depths[0]

    def test_curves_normalised(self, space):
        for curve in leakage_sweep(space):
            assert curve.values.max() == pytest.approx(1.0)

    def test_labels_and_settings(self, space):
        curves = leakage_sweep(space, fractions=(0.0, 0.5))
        assert curves[0].label == "leakage 0%"
        assert curves[1].setting == 0.5

    def test_paper_magnitude(self, space):
        """Fig. 8: 0% -> 90% roughly doubles the optimum depth."""
        curves = leakage_sweep(space, fractions=(0.0, 0.9))
        ratio = curves[1].optimum.depth / curves[0].optimum.depth
        assert 1.5 <= ratio <= 4.0


class TestGammaSweep:
    def test_optimum_monotone_shallower(self, space):
        curves = gamma_sweep(space, gammas=(1.0, 1.3, 1.5, 1.8))
        depths = [c.optimum.depth for c in curves]
        assert depths == sorted(depths, reverse=True)

    def test_gamma_two_kills_pipelining(self, space):
        # m = 3 still > gamma = 2 is violated well before gamma reaches 3;
        # the paper notes the optimum collapses to a single stage past ~2.
        curves = gamma_sweep(space, gammas=(2.6,))
        assert not curves[0].optimum.pipelined

    def test_curve_grid_bounds(self, space):
        curves = gamma_sweep(space, gammas=(1.1,), min_depth=2.0, max_depth=20.0, points=10)
        assert curves[0].depths[0] == pytest.approx(2.0)
        assert curves[0].depths[-1] == pytest.approx(20.0)

    def test_invalid_grid_rejected(self, space):
        with pytest.raises(ParameterError):
            gamma_sweep(space, gammas=(1.1,), points=1)
        with pytest.raises(ParameterError):
            gamma_sweep(space, gammas=(1.1,), min_depth=5.0, max_depth=4.0)


class TestGatingComparison:
    def test_gated_optimum_deeper(self, space):
        ungated, gated = gating_comparison(space)
        assert gated.optimum.depth > ungated.optimum.depth

    def test_labels(self, space):
        ungated, gated = gating_comparison(space)
        assert "non" in ungated.label
        assert gated.label == "clock-gated"


class TestWorkloadSweeps:
    def test_more_hazards_shallower(self, space):
        curves = hazard_rate_sweep(space, hazard_rates=(0.02, 0.08, 0.2))
        depths = [c.optimum.depth for c in curves]
        assert depths == sorted(depths, reverse=True)

    def test_wider_issue_shallower(self, space):
        curves = superscalar_sweep(space, degrees=(1.0, 2.0, 4.0))
        depths = [c.optimum.depth for c in curves]
        assert depths == sorted(depths, reverse=True)

    def test_more_logic_deeper(self, space):
        curves = logic_depth_sweep(space, logic_depths=(70.0, 140.0, 280.0))
        depths = [c.optimum.depth for c in curves]
        assert depths == sorted(depths)


class TestGatingFractionSweep:
    def test_less_switching_deeper_optimum(self, space):
        from repro.core import gating_fraction_sweep

        curves = gating_fraction_sweep(space, fractions=(1.0, 0.5, 0.1))
        depths = [c.optimum.depth for c in curves]
        assert depths == sorted(depths)

    def test_fraction_one_is_ungated(self, space):
        from repro.core import gating_fraction_sweep, gating_comparison

        curves = gating_fraction_sweep(space, fractions=(1.0,))
        ungated, _gated = gating_comparison(space)
        assert curves[0].optimum.depth == pytest.approx(ungated.optimum.depth)

    def test_labels(self, space):
        from repro.core import gating_fraction_sweep

        curves = gating_fraction_sweep(space, fractions=(0.3,))
        assert curves[0].label == "f_cg 0.3"
        assert curves[0].setting == 0.3
