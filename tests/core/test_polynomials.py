"""Tests (incl. property-based) of the exact polynomial algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Poly, divide_linear

coeff_lists = st.lists(
    st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False), min_size=1, max_size=6
)


class TestConstruction:
    def test_trailing_zeros_trimmed(self):
        assert Poly([1.0, 2.0, 0.0, 0.0]).coeffs == (1.0, 2.0)

    def test_zero_polynomial(self):
        assert Poly([0.0, 0.0]).coeffs == (0.0,)
        assert Poly([]).coeffs == (0.0,)

    def test_constant(self):
        assert Poly.constant(5.0).coeffs == (5.0,)

    def test_linear(self):
        poly = Poly.linear(3.0, 2.0)
        assert poly(0.0) == 3.0
        assert poly(1.0) == 5.0

    def test_monomial(self):
        assert Poly.monomial(3, 2.0).coeffs == (0.0, 0.0, 0.0, 2.0)

    def test_monomial_negative_degree(self):
        with pytest.raises(ValueError):
            Poly.monomial(-1)

    def test_degree(self):
        assert Poly([1.0, 0.0, 3.0]).degree == 2
        assert Poly([7.0]).degree == 0

    def test_immutable(self):
        poly = Poly([1.0, 2.0])
        with pytest.raises(AttributeError):
            poly.coeffs = (3.0,)


class TestArithmetic:
    def test_addition(self):
        assert (Poly([1.0, 2.0]) + Poly([3.0, 0.0, 1.0])).coeffs == (4.0, 2.0, 1.0)

    def test_scalar_addition(self):
        assert (Poly([1.0, 2.0]) + 5.0).coeffs == (6.0, 2.0)
        assert (5.0 + Poly([1.0, 2.0])).coeffs == (6.0, 2.0)

    def test_subtraction(self):
        assert (Poly([4.0, 2.0]) - Poly([1.0, 2.0])).coeffs == (3.0,)

    def test_rsub(self):
        assert (1.0 - Poly([0.0, 1.0])).coeffs == (1.0, -1.0)

    def test_multiplication(self):
        # (1 + x)(1 - x) = 1 - x^2
        assert (Poly([1.0, 1.0]) * Poly([1.0, -1.0])).coeffs == (1.0, 0.0, -1.0)

    def test_scalar_multiplication(self):
        assert (2.0 * Poly([1.0, 3.0])).coeffs == (2.0, 6.0)

    def test_negation(self):
        assert (-Poly([1.0, -2.0])).coeffs == (-1.0, 2.0)

    @given(a=coeff_lists, b=coeff_lists, x=st.floats(-3.0, 3.0))
    @settings(max_examples=80, deadline=None)
    def test_product_evaluation_homomorphism(self, a, b, x):
        pa, pb = Poly(a), Poly(b)
        lhs = (pa * pb)(x)
        rhs = pa(x) * pb(x)
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-6)

    @given(a=coeff_lists, b=coeff_lists, x=st.floats(-3.0, 3.0))
    @settings(max_examples=80, deadline=None)
    def test_sum_evaluation_homomorphism(self, a, b, x):
        pa, pb = Poly(a), Poly(b)
        assert (pa + pb)(x) == pytest.approx(pa(x) + pb(x), rel=1e-9, abs=1e-6)


class TestCalculus:
    def test_derivative(self):
        # d/dx (1 + 2x + 3x^2) = 2 + 6x
        assert Poly([1.0, 2.0, 3.0]).derivative().coeffs == (2.0, 6.0)

    def test_derivative_of_constant(self):
        assert Poly([5.0]).derivative().coeffs == (0.0,)

    def test_evaluation_vectorised(self):
        poly = Poly([1.0, 0.0, 1.0])  # 1 + x^2
        xs = np.asarray([0.0, 1.0, 2.0])
        assert np.allclose(poly(xs), [1.0, 2.0, 5.0])


class TestRoots:
    def test_quadratic_roots(self):
        # (x - 1)(x - 3) = 3 - 4x + x^2
        roots = Poly([3.0, -4.0, 1.0]).real_roots()
        assert np.allclose(roots, [1.0, 3.0])

    def test_complex_roots_excluded(self):
        # x^2 + 1 has no real roots
        assert Poly([1.0, 0.0, 1.0]).real_roots().size == 0

    def test_positive_real_roots(self):
        roots = Poly([3.0, -4.0, 1.0]) * Poly.linear(2.0, 1.0)  # extra root at -2
        positive = roots.positive_real_roots()
        assert np.allclose(positive, [1.0, 3.0])

    def test_constant_has_no_roots(self):
        assert Poly([5.0]).roots().size == 0

    def test_monic(self):
        assert Poly([2.0, 4.0]).monic().coeffs == (0.5, 1.0)

    def test_monic_of_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            Poly([0.0]).monic()


class TestDivision:
    def test_exact_division(self):
        # (2 + x)(5 + 3x) = 10 + 11x + 3x^2
        product = Poly([10.0, 11.0, 3.0])
        quotient, remainder = divide_linear(product, 2.0, 1.0)
        assert remainder == pytest.approx(0.0)
        assert np.allclose(quotient.coeffs, (5.0, 3.0))

    def test_remainder_value(self):
        # x^2 divided by (x - 1): quotient x + 1, remainder 1
        quotient, remainder = divide_linear(Poly([0.0, 0.0, 1.0]), -1.0, 1.0)
        assert remainder == pytest.approx(1.0)
        assert np.allclose(quotient.coeffs, (1.0, 1.0))

    def test_zero_slope_rejected(self):
        with pytest.raises(ZeroDivisionError):
            divide_linear(Poly([1.0, 1.0]), 1.0, 0.0)

    @given(
        coeffs=st.lists(st.floats(-50.0, 50.0, allow_nan=False), min_size=2, max_size=6),
        intercept=st.floats(-10.0, 10.0),
        slope=st.floats(0.5, 5.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_division_identity(self, coeffs, intercept, slope):
        """quotient * divisor + remainder == original, everywhere."""
        poly = Poly(coeffs)
        quotient, remainder = divide_linear(poly, intercept, slope)
        reconstructed = quotient * Poly.linear(intercept, slope) + remainder
        for x in (-2.0, 0.0, 1.5):
            assert reconstructed(x) == pytest.approx(poly(x), rel=1e-7, abs=1e-5)
