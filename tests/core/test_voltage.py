"""Tests of voltage scaling and the BIPS^3/W invariance argument."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DesignSpace,
    ParameterError,
    bips,
    calibrate_leakage,
    metric,
    optimum_depth,
    total_power,
)
from repro.core.voltage import invariant_exponent, scale_voltage, voltage_sensitivity


@pytest.fixture()
def space():
    base = DesignSpace()
    return base.with_power(calibrate_leakage(base, 0.15, 8.0))


class TestScaleVoltage:
    def test_identity_at_ratio_one(self, space):
        scaled = scale_voltage(space, 1.0)
        assert scaled.technology == space.technology
        assert scaled.power == space.power

    def test_higher_voltage_faster_and_hotter(self, space):
        scaled = scale_voltage(space, 1.2)
        assert bips(8.0, scaled) > bips(8.0, space)
        assert total_power(8.0, scaled) > total_power(8.0, space)

    def test_delay_scales_inversely(self, space):
        scaled = scale_voltage(space, 1.25)
        assert bips(8.0, scaled) == pytest.approx(1.25 * float(bips(8.0, space)))

    def test_rejects_nonpositive_ratio(self, space):
        with pytest.raises(ParameterError):
            scale_voltage(space, 0.0)

    def test_workload_and_gating_untouched(self, space):
        scaled = scale_voltage(space, 1.3)
        assert scaled.workload == space.workload
        assert scaled.gating == space.gating


class TestInvariance:
    @given(ratio=st.floats(0.7, 1.4))
    @settings(max_examples=30, deadline=None)
    def test_bips3_per_watt_is_voltage_invariant(self, ratio):
        """The Zyuban-Strenski argument the paper's metric choice rests on:
        under first-order scaling (leakage energy per op like dynamic),
        BIPS^3/W at any fixed design is unchanged by the voltage knob."""
        base = DesignSpace()
        space = base.with_power(calibrate_leakage(base, 0.15, 8.0))
        scaled = scale_voltage(space, ratio, leakage_exponent=3.0)
        for depth in (4.0, 8.0, 16.0):
            assert float(metric(depth, scaled, 3.0)) == pytest.approx(
                float(metric(depth, space, 3.0)), rel=1e-9
            )

    def test_sensitivity_is_m_minus_three(self, space):
        for m in (1.0, 2.0, 3.0, 4.0):
            sensitivity = voltage_sensitivity(space, m, leakage_exponent=3.0)
            assert sensitivity == pytest.approx(m - 3.0, abs=1e-6)

    def test_bips_per_watt_gamed_by_undervolting(self, space):
        """m=1 always improves at lower voltage: it cannot distinguish a
        better microarchitecture from a slower knob setting."""
        low_v = scale_voltage(space, 0.8, leakage_exponent=3.0)
        assert float(metric(8.0, low_v, 1.0)) > float(metric(8.0, space, 1.0))

    def test_invariant_exponent_is_three(self, space):
        assert invariant_exponent(space) == pytest.approx(3.0, abs=1e-6)

    def test_non_cubic_leakage_breaks_exact_invariance(self, space):
        """When leakage power departs from the cubic law (its energy per
        op no longer scales like dynamic's V^2), the invariance holds
        only approximately — measurable here."""
        sensitivity = voltage_sensitivity(space, 3.0, leakage_exponent=2.0)
        assert sensitivity != pytest.approx(0.0, abs=1e-4)
        assert abs(sensitivity) < 0.5  # but still nearly invariant

    def test_optimum_depth_invariant_too(self, space):
        """Because the whole BIPS^3/W curve shifts by a V-independent
        factor, the optimal *depth* is voltage-independent as well."""
        base_opt = optimum_depth(space, 3.0).depth
        scaled_opt = optimum_depth(
            scale_voltage(space, 1.3, leakage_exponent=3.0), 3.0
        ).depth
        assert scaled_opt == pytest.approx(base_opt, rel=1e-9)
