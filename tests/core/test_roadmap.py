"""Tests of the technology roadmap projection."""

import pytest

from repro.core import (
    CLASSIC_ROADMAP,
    DesignSpace,
    GatingModel,
    GatingStyle,
    ParameterError,
    TechnologyNode,
    roadmap_study,
)


class TestTechnologyNode:
    def test_leakage_bounds(self):
        with pytest.raises(ParameterError):
            TechnologyNode("bad", latch_overhead=2.5, leakage_fraction=1.0)

    def test_classic_roadmap_monotone_leakage(self):
        fractions = [node.leakage_fraction for node in CLASSIC_ROADMAP]
        assert fractions == sorted(fractions)

    def test_classic_roadmap_improving_latches(self):
        overheads = [node.latch_overhead for node in CLASSIC_ROADMAP]
        assert overheads == sorted(overheads, reverse=True)


class TestRoadmapStudy:
    def test_deeper_across_the_roadmap(self):
        """Falling latch overhead and rising leakage both deepen the
        power-aware optimum across the classic roadmap."""
        space = DesignSpace(gating=GatingModel(GatingStyle.PERFECT))
        results = roadmap_study(space)
        depths = [row.depth for row in results]
        assert depths == sorted(depths)
        assert depths[-1] > depths[0] * 1.2

    def test_node_carried_in_result(self):
        space = DesignSpace()
        results = roadmap_study(space, nodes=CLASSIC_ROADMAP[:2])
        assert [row.node.name for row in results] == [
            CLASSIC_ROADMAP[0].name,
            CLASSIC_ROADMAP[1].name,
        ]

    def test_custom_nodes(self):
        lean = TechnologyNode("x", latch_overhead=2.0, leakage_fraction=0.0)
        fat = TechnologyNode("y", latch_overhead=4.0, leakage_fraction=0.0)
        space = DesignSpace()
        lean_result, fat_result = roadmap_study(space, nodes=(lean, fat))
        assert lean_result.depth > fat_result.depth  # cheaper latches, deeper

    def test_metric_respected(self):
        space = DesignSpace()
        m1 = roadmap_study(space, nodes=CLASSIC_ROADMAP[:1], m=1.0)[0]
        assert not m1.optimum.pipelined  # BIPS/W still never pipelines

    def test_empty_nodes_rejected(self):
        with pytest.raises(ParameterError):
            roadmap_study(DesignSpace(), nodes=())

    def test_fo4_consistency(self):
        space = DesignSpace()
        row = roadmap_study(space, nodes=CLASSIC_ROADMAP[:1])[0]
        node = row.node
        expected = node.latch_overhead + node.total_logic_depth / row.depth
        assert row.fo4_per_stage == pytest.approx(expected)
