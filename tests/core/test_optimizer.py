"""Tests of the analytic optimiser — the paper's Eqs. 5-8.

The backbone is a property-based cross-check: over random (but physical)
parameter spaces, the exact polynomial solution must agree with a dense
numerical optimisation of the metric itself, for both gating models.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DesignSpace,
    GatingModel,
    GatingStyle,
    ParameterError,
    PowerParams,
    WorkloadParams,
    calibrate_leakage,
    feasibility,
    metric,
    numeric_optimum,
    optimum_depth,
    optimum_depth_quadratic,
    paper_quartic,
    performance_only_optimum,
    quadratic_coefficients,
    spurious_roots,
    stationarity_polynomial,
)

UNGATED = GatingModel(GatingStyle.UNGATED)
PERFECT = GatingModel(GatingStyle.PERFECT)


def random_space(draw_hr, draw_alpha, draw_beta, draw_gamma, draw_leak, gating):
    wl = WorkloadParams(draw_hr, draw_alpha, draw_beta)
    power = PowerParams(latch_growth_exponent=draw_gamma, leakage_per_latch=draw_leak)
    return DesignSpace(workload=wl, power=power, gating=gating)


class TestExactVsNumeric:
    @given(
        hr=st.floats(0.01, 0.3),
        alpha=st.floats(1.0, 4.0),
        beta=st.floats(0.1, 1.0),
        gamma=st.floats(0.8, 1.8),
        leak=st.one_of(st.just(0.0), st.floats(1e-6, 0.05)),
        m=st.sampled_from([2.0, 2.5, 3.0, 4.0]),
    )
    @settings(max_examples=60, deadline=None)
    def test_ungated_agreement(self, hr, alpha, beta, gamma, leak, m):
        space = random_space(hr, alpha, beta, gamma, leak, UNGATED)
        exact = optimum_depth(space, m, max_depth=64.0)
        numeric = numeric_optimum(space, m, max_depth=64.0)
        assert exact.depth == pytest.approx(numeric.depth, rel=2e-2, abs=0.05)

    @given(
        hr=st.floats(0.01, 0.3),
        alpha=st.floats(1.0, 4.0),
        beta=st.floats(0.1, 1.0),
        gamma=st.floats(0.8, 1.8),
        leak=st.one_of(st.just(0.0), st.floats(1e-6, 0.05)),
        m=st.sampled_from([2.5, 3.0, 4.0]),
    )
    @settings(max_examples=60, deadline=None)
    def test_gated_agreement(self, hr, alpha, beta, gamma, leak, m):
        space = random_space(hr, alpha, beta, gamma, leak, PERFECT)
        exact = optimum_depth(space, m, max_depth=64.0)
        numeric = numeric_optimum(space, m, max_depth=64.0)
        assert exact.depth == pytest.approx(numeric.depth, rel=2e-2, abs=0.05)

    def test_metric_value_reported(self, typical_space):
        result = optimum_depth(typical_space, 3.0)
        assert result.metric_value == pytest.approx(
            float(metric(result.depth, typical_space, 3.0))
        )


class TestPaperClaims:
    def test_bips_per_watt_never_pipelines(self, typical_space):
        assert not optimum_depth(typical_space, 1.0).pipelined

    def test_bips3_pipelines(self, typical_space):
        result = optimum_depth(typical_space, 3.0)
        assert result.pipelined
        assert result.depth > 2.0

    def test_gating_moves_optimum_deeper(self):
        ungated = DesignSpace()
        ungated = ungated.with_power(calibrate_leakage(ungated, 0.15, 8.0))
        gated = DesignSpace(gating=PERFECT)
        gated = gated.with_power(calibrate_leakage(gated, 0.15, 8.0))
        assert optimum_depth(gated, 3.0).depth > optimum_depth(ungated, 3.0).depth

    def test_metric_family_ordering(self, typical_space):
        """Fig. 5: optima deepen with the metric exponent."""
        depths = [optimum_depth(typical_space, m).depth for m in (1.0, 2.0, 3.0, 5.0)]
        depths.append(performance_only_optimum(typical_space.technology,
                                               typical_space.workload))
        assert depths == sorted(depths)

    def test_m_infinity_recovers_eq2(self, typical_space):
        result = optimum_depth(typical_space, float("inf"))
        expected = performance_only_optimum(typical_space.technology, typical_space.workload)
        assert result.depth == pytest.approx(expected)
        assert result.method == "limit"

    def test_fo4_reported(self, typical_space):
        result = optimum_depth(typical_space, 3.0)
        assert result.fo4_per_stage == pytest.approx(
            typical_space.technology.fo4_per_stage(result.depth)
        )


class TestStationarityPolynomial:
    def test_ungated_is_cubic(self, typical_space):
        assert stationarity_polynomial(typical_space, 3.0).degree == 3

    def test_gated_is_quartic(self, typical_space):
        gated = typical_space.with_gating(PERFECT)
        assert stationarity_polynomial(gated, 3.0).degree == 4

    def test_constant_term_sign_condition(self):
        """A_0 ∝ (gamma - m): negative iff m > gamma (paper Sec. 2)."""
        space = DesignSpace(power=PowerParams(leakage_per_latch=0.01,
                                              latch_growth_exponent=1.1))
        assert stationarity_polynomial(space, 3.0).coeffs[0] < 0
        assert stationarity_polynomial(space, 1.05).coeffs[0] > 0

    def test_rejects_infinite_m(self, typical_space):
        with pytest.raises(ParameterError):
            stationarity_polynomial(typical_space, float("inf"))

    def test_quartic_contains_eq6a_root_exactly(self, typical_space):
        """Paper Eq. 6a: p = -t_p/t_o is an exact root of the quartic."""
        quartic = paper_quartic(typical_space, 3.0)
        root = -typical_space.technology.t_p / typical_space.technology.t_o
        # Normalise by the quartic's scale near the root.
        scale = max(abs(c) * abs(root) ** i for i, c in enumerate(quartic.coeffs))
        assert abs(quartic(root)) < 1e-9 * scale

    def test_quartic_has_single_positive_root(self, typical_space):
        """Fig. 1: four real zero crossings, exactly one positive."""
        quartic = paper_quartic(typical_space, 3.0)
        real = quartic.real_roots()
        assert real.size == 4
        assert np.count_nonzero(real > 0) == 1

    def test_spurious_roots_values(self, typical_space):
        tech, power = typical_space.technology, typical_space.power
        first, second = spurious_roots(typical_space)
        assert first == pytest.approx(-tech.t_p / tech.t_o)
        expected_second = -power.p_l * tech.t_p / (power.p_d + tech.t_o * power.p_l)
        assert second == pytest.approx(expected_second)

    def test_limit_roots_approach_eq2(self):
        """As m grows, the positive root approaches the Eq. 2 optimum."""
        space = DesignSpace()
        space = space.with_power(calibrate_leakage(space, 0.15, 8.0))
        eq2 = performance_only_optimum(space.technology, space.workload)
        previous_gap = None
        for m in (5.0, 20.0, 100.0):
            root = optimum_depth(space, m, max_depth=200.0).depth
            gap = abs(root - eq2)
            if previous_gap is not None:
                assert gap < previous_gap
            previous_gap = gap
        assert previous_gap < 0.05 * eq2


class TestQuadraticApproximation:
    def test_close_to_exact_at_low_leakage(self):
        space = DesignSpace()
        space = space.with_power(calibrate_leakage(space, 0.05, 8.0))
        exact = optimum_depth(space, 3.0).depth
        approx = optimum_depth_quadratic(space, 3.0).depth
        assert approx == pytest.approx(exact, rel=0.25)

    def test_exact_when_leakless(self):
        """With P_l = 0 the Eq. 6b factor is exactly p = 0, so dividing it
        out loses nothing and the quadratic is exact."""
        space = DesignSpace(power=PowerParams(leakage_per_latch=0.0))
        exact = optimum_depth(space, 3.0).depth
        approx = optimum_depth_quadratic(space, 3.0).depth
        assert approx == pytest.approx(exact, rel=1e-9)

    def test_coefficient_signs(self, typical_space):
        b2, b1, b0 = quadratic_coefficients(typical_space, 3.0)
        assert b2 > 0  # (m + gamma) a t_o Q
        assert b0 < 0  # needed for a positive root

    def test_b0_positive_when_m_below_gamma(self):
        space = DesignSpace(power=PowerParams(latch_growth_exponent=1.5,
                                              leakage_per_latch=0.01))
        _b2, _b1, b0 = quadratic_coefficients(space, 1.2)
        assert b0 > 0  # no positive root -> no pipelined optimum

    def test_rejects_perfect_gating(self, typical_space):
        with pytest.raises(ParameterError):
            optimum_depth_quadratic(typical_space.with_gating(PERFECT), 3.0)


class TestFeasibility:
    def test_m_below_gamma_fails_necessary(self):
        space = DesignSpace(power=PowerParams(latch_growth_exponent=1.5))
        report = feasibility(space, 1.0)
        assert not report.necessary_condition
        assert not report.has_interior_optimum
        assert "non-pipelined" in report.explanation

    def test_zero_leakage_condition(self):
        space = DesignSpace(power=PowerParams(leakage_per_latch=0.0,
                                              latch_growth_exponent=1.1))
        report = feasibility(space, 2.0)
        # m = 2 fails the tightened leakless condition m > gamma + 1 = 2.1.
        assert report.zero_leakage_condition is False
        ok = feasibility(space, 3.0)
        assert ok.zero_leakage_condition is True

    def test_zero_leakage_condition_none_with_leakage(self, typical_space):
        assert feasibility(typical_space, 3.0).zero_leakage_condition is None

    def test_m3_typically_feasible(self, typical_space):
        report = feasibility(typical_space, 3.0)
        assert report.necessary_condition
        assert report.has_interior_optimum


class TestBoundaries:
    def test_min_depth_validation(self, typical_space):
        with pytest.raises(ParameterError):
            optimum_depth(typical_space, 3.0, min_depth=0.0)

    def test_max_depth_validation(self, typical_space):
        with pytest.raises(ParameterError):
            optimum_depth(typical_space, 3.0, min_depth=5.0, max_depth=4.0)

    def test_max_depth_clamps(self, typical_space):
        free = optimum_depth(typical_space, 3.0)
        clamped = optimum_depth(typical_space, 3.0, max_depth=free.depth / 2)
        assert clamped.depth <= free.depth / 2

    def test_nonpositive_m_rejected(self, typical_space):
        with pytest.raises(ParameterError):
            optimum_depth(typical_space, 0.0)

    def test_numeric_boundary_detection(self):
        space = DesignSpace()  # m=1 -> boundary at min depth
        result = numeric_optimum(space, 1.0)
        assert not result.pipelined
        assert result.depth == pytest.approx(1.0)


class TestClosedFormQuadratic:
    def test_matches_division_when_leakless(self):
        from repro.core import quadratic_coefficients_closed_form

        space = DesignSpace(power=PowerParams(leakage_per_latch=0.0))
        division = quadratic_coefficients(space, 3.0)
        closed = quadratic_coefficients_closed_form(space, 3.0)
        for a, b in zip(division, closed):
            assert a == pytest.approx(b, rel=1e-9)

    def test_root_close_at_moderate_leakage(self):
        from repro.core import Poly, quadratic_coefficients_closed_form

        space = DesignSpace()
        space = space.with_power(calibrate_leakage(space, 0.15, 8.0))
        b2, b1, b0 = quadratic_coefficients_closed_form(space, 3.0)
        closed_root = Poly([b0, b1, b2]).positive_real_roots()
        division_root = optimum_depth_quadratic(space, 3.0).depth
        assert closed_root.size == 1
        assert closed_root[0] == pytest.approx(division_root, rel=0.25)

    def test_published_structure(self):
        """B2 = (m + gamma)*a*t_o exactly, per the paper's Eq. 8."""
        from repro.core import quadratic_coefficients_closed_form

        space = DesignSpace()
        b2, _b1, _b0 = quadratic_coefficients_closed_form(space, 3.0)
        wl, tech, pw = space.workload, space.technology, space.power
        expected = (3.0 + pw.gamma) * wl.hazard_pressure * tech.latch_overhead
        assert b2 == pytest.approx(expected)

    def test_rejects_perfect_gating_and_infinite_m(self, typical_space):
        from repro.core import quadratic_coefficients_closed_form

        with pytest.raises(ParameterError):
            quadratic_coefficients_closed_form(typical_space.with_gating(PERFECT), 3.0)
        with pytest.raises(ParameterError):
            quadratic_coefficients_closed_form(typical_space, float("inf"))
