"""Public-API hygiene: every exported name exists, is documented, and the
package surface stays consistent."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.isa",
    "repro.trace",
    "repro.uarch",
    "repro.pipeline",
    "repro.power",
    "repro.analysis",
    "repro.report",
    "repro.experiments",
    "repro.runtime",
]


@pytest.mark.parametrize("package", PACKAGES)
class TestExports:
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"

    def test_all_has_no_duplicates(self, package):
        module = importlib.import_module(package)
        names = list(getattr(module, "__all__", []))
        assert len(names) == len(set(names))

    def test_module_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 20


@pytest.mark.parametrize("package", PACKAGES)
def test_public_callables_documented(package):
    """Every public class and function carries a real docstring."""
    module = importlib.import_module(package)
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            doc = inspect.getdoc(obj)
            if not doc or len(doc) < 15:
                undocumented.append(f"{package}.{name}")
    assert not undocumented, f"missing docstrings: {undocumented}"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


def test_layering_core_independent_of_simulator():
    """The theory layer must not import the simulator (strict layering)."""
    import sys
    import subprocess

    code = (
        "import sys; import repro.core; "
        "bad = [m for m in sys.modules if m.startswith(('repro.pipeline', "
        "'repro.trace', 'repro.uarch', 'repro.power', 'repro.analysis'))]; "
        "print(','.join(bad))"
    )
    result = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, check=True
    )
    assert result.stdout.strip() == "", (
        f"repro.core transitively imports: {result.stdout.strip()}"
    )
