"""Fast-kernel equivalence: fastsim must be indistinguishable from the
reference interpreter.

The contract under test is the one ``repro validate-kernel`` enforces in
CI: for every (workload, machine, depth) point the analytic backends
(``fast``, ``batched``) reproduce the reference
:class:`SimulationResult` field-for-field — CPI within 1e-9, hazard
counts exactly — and the optimum depth extracted through the
power-accounting path is identical; the independent ``cycle`` backend
keeps every hazard count exact while its timing stays within
``CYCLE_CPI_RTOL``.  The machine grid crosses the model's behavioural
switches (in-order/out-of-order, BTB pressure, cold bimodal predictor,
oracle + multi-entry MSHR) so every event path of the trace analysis is
exercised.
"""

import dataclasses

import pytest

from repro.analysis.optimum import optimum_from_sweep
from repro.analysis.sweep import sweep_from_results
from repro.analysis.validate import (
    CANDIDATE_BACKENDS,
    TOLERANCE_BACKENDS,
    default_machine_grid,
    format_report,
    validate_kernel,
)
from repro.pipeline.batched import BatchedPipelineSimulator, simulate_batched
from repro.pipeline.cycle import CYCLE_CPI_RTOL, CyclePipelineSimulator
from repro.pipeline.fastsim import (
    BACKENDS,
    DEFAULT_BACKEND,
    FastPipelineSimulator,
    analyze_trace,
    make_simulator,
    simulate_fast,
)
from repro.pipeline.simulator import MachineConfig, PipelineSimulator
from repro.trace import generate_trace
from repro.trace.trace import Trace

DEPTHS = (2, 3, 4, 6, 8, 13, 20)

MACHINES = sorted(default_machine_grid(small=False).items())

EXACT_BACKENDS = tuple(b for b in CANDIDATE_BACKENDS if b not in TOLERANCE_BACKENDS)

GRID = [
    (backend, label, machine)
    for backend in EXACT_BACKENDS
    for label, machine in MACHINES
]

#: SimulationResult fields a tolerance backend must still match exactly
#: (everything the shared trace analysis determines).
HAZARD_FIELDS = (
    "instructions",
    "branches",
    "mispredicts",
    "icache_misses",
    "dcache_accesses",
    "dcache_misses",
    "store_misses",
    "l2_misses",
    "memory_ops",
    "fp_ops",
)


def _assert_results_equal(reference, fast, context):
    for field in dataclasses.fields(reference):
        a = getattr(reference, field.name)
        b = getattr(fast, field.name)
        assert a == b, f"{context}: field {field.name!r} diverges: {a!r} != {b!r}"
    assert fast.cpi == pytest.approx(reference.cpi, rel=1e-9, abs=0.0)


@pytest.mark.parametrize(
    ("backend", "label", "machine"), GRID, ids=[f"{g[0]}-{g[1]}" for g in GRID]
)
def test_backend_matches_reference_everywhere(
    backend, label, machine, modern_trace, float_trace
):
    """Every SimulationResult field matches on every machine variant."""
    reference_sim = PipelineSimulator(machine)
    candidate = make_simulator(machine, backend)
    for trace in (modern_trace, float_trace):
        reference = reference_sim.simulate_depths(trace, DEPTHS)
        results = candidate.simulate_depths(trace, DEPTHS)
        for depth, r, f in zip(DEPTHS, reference, results):
            _assert_results_equal(
                r, f, f"{backend}/{trace.name}/{label}/depth={depth}"
            )


@pytest.mark.parametrize(
    ("label", "machine"), MACHINES, ids=[label for label, _ in MACHINES]
)
def test_cycle_backend_tracks_reference(label, machine, modern_trace, float_trace):
    """Cycle backend: hazard counts exact, CPI within CYCLE_CPI_RTOL."""
    reference_sim = PipelineSimulator(machine)
    candidate = CyclePipelineSimulator(machine)
    for trace in (modern_trace, float_trace):
        reference = reference_sim.simulate_depths(trace, DEPTHS)
        results = candidate.simulate_depths(trace, DEPTHS)
        for depth, r, c in zip(DEPTHS, reference, results):
            context = f"cycle/{trace.name}/{label}/depth={depth}"
            for field in HAZARD_FIELDS:
                a = getattr(r, field)
                b = getattr(c, field)
                assert a == b, f"{context}: hazard field {field!r}: {a} != {b}"
            assert c.cpi == pytest.approx(r.cpi, rel=CYCLE_CPI_RTOL), context
            assert c.issue_cycles == pytest.approx(
                r.issue_cycles, rel=CYCLE_CPI_RTOL
            ), context
            assert set(c.unit_occupancy) == set(r.unit_occupancy), context


@pytest.mark.parametrize("in_order", [True, False], ids=["in-order", "out-of-order"])
def test_fast_reproduces_optimum_depth(in_order, modern_spec):
    """The extracted optimum is identical through the power-accounting path."""
    machine = MachineConfig(in_order=in_order)
    trace = generate_trace(modern_spec, 2000)
    reference = [PipelineSimulator(machine).simulate(trace, d) for d in DEPTHS]
    fast = FastPipelineSimulator(machine).simulate_depths(trace, DEPTHS)
    opt_ref = optimum_from_sweep(
        sweep_from_results(reference, DEPTHS, spec=modern_spec), 3.0
    )
    opt_fast = optimum_from_sweep(
        sweep_from_results(fast, DEPTHS, spec=modern_spec), 3.0
    )
    assert opt_fast.depth == opt_ref.depth


def test_trace_analysis_is_shared_across_depths(modern_trace):
    """One trace analysis serves every depth: the sweep's raison d'etre."""
    sim = FastPipelineSimulator()
    events = sim.events_for(modern_trace)
    assert sim.events_for(modern_trace) is events  # cached, not recomputed
    sim.simulate(modern_trace, 4)
    sim.simulate(modern_trace, 20)
    assert sim.events_for(modern_trace) is events  # still the same analysis


def test_trace_events_aggregates_match_reference(modern_trace):
    """The analysis counters equal the reference simulator's counters."""
    machine = MachineConfig()
    events = analyze_trace(modern_trace, machine)
    reference = PipelineSimulator(machine).simulate(modern_trace, 8)
    assert events.n == reference.instructions
    assert len(events.stream) == events.n
    assert events.branches == reference.branches
    assert events.mispredicts == reference.mispredicts
    assert events.icache_misses == reference.icache_misses
    assert events.dcache_accesses == reference.dcache_accesses
    assert events.dcache_misses == reference.dcache_misses
    assert events.store_misses == reference.store_misses
    assert events.l2_misses == reference.l2_misses
    assert events.memory_ops == reference.memory_ops
    assert events.fp_ops == reference.fp_ops


def test_analyze_trace_rejects_empty_trace():
    empty = Trace.from_instructions("empty", [])
    with pytest.raises(ValueError):
        analyze_trace(empty, MachineConfig())


def test_make_simulator_dispatch():
    assert isinstance(make_simulator(backend="reference"), PipelineSimulator)
    assert isinstance(make_simulator(backend="fast"), FastPipelineSimulator)
    batched = make_simulator(backend="batched")
    assert isinstance(batched, BatchedPipelineSimulator)
    assert isinstance(batched, FastPipelineSimulator)  # drop-in subtype
    assert isinstance(make_simulator(backend="cycle"), CyclePipelineSimulator)
    assert DEFAULT_BACKEND in BACKENDS
    assert set(CANDIDATE_BACKENDS) == set(BACKENDS) - {"reference"}
    assert set(TOLERANCE_BACKENDS) == {"cycle"}
    with pytest.raises(ValueError):
        make_simulator(backend="warp")


def test_simulate_fast_wrapper(modern_trace):
    result = simulate_fast(modern_trace, 8)
    assert result == PipelineSimulator().simulate(modern_trace, 8)


def test_simulate_batched_wrapper(modern_trace):
    result = simulate_batched(modern_trace, 8)
    assert result == PipelineSimulator().simulate(modern_trace, 8)


def test_simulate_depths_orders_and_counts(modern_trace):
    """simulate_depths returns one result per depth, in request order."""
    depths = (20, 2, 8)
    results = BatchedPipelineSimulator().simulate_depths(modern_trace, depths)
    assert len(results) == len(depths)
    singles = [simulate_batched(modern_trace, d) for d in depths]
    assert list(results) == singles
    assert BatchedPipelineSimulator().simulate_depths(modern_trace, ()) == ()


def test_validate_kernel_small_passes():
    """The CI gate itself: the reduced validation grid is clean."""
    report = validate_kernel(small=True, trace_length=600)
    assert report.passed, format_report(report)
    assert report.points == len(report.workloads) * len(report.machines) * len(
        report.depths
    )
    assert report.backends == CANDIDATE_BACKENDS
    assert "PASS" in format_report(report)
    assert "batched" in format_report(report)


def test_validate_kernel_rejects_unknown_backend():
    with pytest.raises(ValueError):
        validate_kernel(small=True, trace_length=200, backends=("warp",))
    with pytest.raises(ValueError):
        validate_kernel(small=True, trace_length=200, backends=("reference",))
