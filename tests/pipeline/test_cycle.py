"""Cycle-backend unit tests: the state machine's own behaviour.

``test_fastsim_equivalence`` pins the cross-backend contract (hazard
counts exact, timing within CYCLE_CPI_RTOL); this module covers what is
specific to the cycle simulator — determinism, monotonicity against its
machine parameters, the shared-analysis path, and the divergence-probe
hook the fuzzer's minimized bundles are debugged with.
"""

import dataclasses

import pytest

from repro.pipeline.cycle import CYCLE_CPI_RTOL, CyclePipelineSimulator, simulate_cycle
from repro.pipeline.simulator import MachineConfig, PipelineSimulator

DEPTHS = (2, 8, 20)


def test_repeated_runs_are_identical(modern_trace):
    sim = CyclePipelineSimulator()
    first = sim.simulate_depths(modern_trace, DEPTHS)
    second = sim.simulate_depths(modern_trace, DEPTHS)
    assert list(first) == list(second)
    fresh = CyclePipelineSimulator().simulate_depths(modern_trace, DEPTHS)
    assert list(first) == list(fresh)


def test_simulate_cycle_wrapper(modern_trace):
    result = simulate_cycle(modern_trace, 8)
    assert result == CyclePipelineSimulator().simulate(modern_trace, 8)
    assert result.plan.depth == 8


def test_out_of_order_beats_in_order(modern_trace):
    """Dynamic scheduling must not lose cycles on the same trace."""
    in_order = CyclePipelineSimulator(MachineConfig()).simulate(modern_trace, 8)
    ooo = CyclePipelineSimulator(MachineConfig(in_order=False)).simulate(
        modern_trace, 8
    )
    assert ooo.cycles < in_order.cycles


def test_tiny_window_throttles_out_of_order(modern_trace):
    """A 1-entry issue queue serialises issue; a big window restores ILP."""
    tiny = CyclePipelineSimulator(
        MachineConfig(in_order=False, issue_window=1)
    ).simulate(modern_trace, 8)
    wide = CyclePipelineSimulator(
        MachineConfig(in_order=False, issue_window=64)
    ).simulate(modern_trace, 8)
    assert tiny.cycles > wide.cycles


def test_window_does_not_bind_in_order(modern_trace):
    """issue_window/rob_size are OoO structures; in-order ignores them."""
    small = CyclePipelineSimulator(
        MachineConfig(issue_window=1, rob_size=1)
    ).simulate(modern_trace, 8)
    large = CyclePipelineSimulator(
        MachineConfig(issue_window=64, rob_size=256)
    ).simulate(modern_trace, 8)
    assert small == large


def test_tiny_rob_throttles_out_of_order(modern_trace):
    rob4 = CyclePipelineSimulator(
        MachineConfig(in_order=False, rob_size=4)
    ).simulate(modern_trace, 8)
    rob128 = CyclePipelineSimulator(
        MachineConfig(in_order=False, rob_size=128)
    ).simulate(modern_trace, 8)
    assert rob4.cycles > rob128.cycles


def test_cycles_grow_with_depth(modern_trace):
    """Deeper pipes re-pay hazards more cycles; total cycles are monotone."""
    results = CyclePipelineSimulator().simulate_depths(modern_trace, (2, 8, 20, 40))
    cycles = [r.cycles for r in results]
    assert cycles == sorted(cycles)
    assert cycles[0] < cycles[-1]


def test_analysis_is_shared_across_depths(modern_trace):
    sim = CyclePipelineSimulator()
    events = sim.events_for(modern_trace)
    sim.simulate(modern_trace, 4)
    sim.simulate(modern_trace, 20)
    assert sim.events_for(modern_trace) is events


def test_hazards_match_reference_on_defaults(modern_trace):
    """The shared analysis feeds the result: hazard fields are bit-equal."""
    reference = PipelineSimulator().simulate(modern_trace, 8)
    cycle = CyclePipelineSimulator().simulate(modern_trace, 8)
    for field in dataclasses.fields(reference):
        value = getattr(reference, field.name)
        if isinstance(value, int):
            assert getattr(cycle, field.name) == value, field.name
    assert cycle.cpi == pytest.approx(reference.cpi, rel=CYCLE_CPI_RTOL)


def test_debug_log_hook(modern_trace):
    """The divergence probe records one entry per agen/execute issue."""
    sim = CyclePipelineSimulator()
    sim.debug_log = []
    result = sim.simulate(modern_trace, 8)
    kinds = {entry[0] for entry in sim.debug_log}
    assert kinds <= {"A", "E"}
    executes = [e for e in sim.debug_log if e[0] == "E"]
    assert len(executes) == result.instructions
    agens = [e for e in sim.debug_log if e[0] == "A"]
    assert len(agens) == result.memory_ops
