"""Property-based fuzzing of the whole trace->simulate pipeline.

Hypothesis drives random workload specifications and machine knobs
through trace generation and both execution engines, asserting the
invariants that must hold for *any* input — the checks that catch
logic regressions no example-based test anticipates.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import OpClass
from repro.pipeline import MachineConfig, Unit, simulate
from repro.trace import Trace, WorkloadClass, WorkloadSpec, generate_trace

MIXES = st.sampled_from([
    # (rr, load, store, rxalu, branch, fp, complex)
    (0.4, 0.15, 0.1, 0.15, 0.15, 0.03, 0.02),
    (0.2, 0.2, 0.1, 0.2, 0.25, 0.03, 0.02),
    (0.25, 0.2, 0.1, 0.05, 0.05, 0.3, 0.05),
    (0.6, 0.1, 0.05, 0.1, 0.1, 0.03, 0.02),
])


def build_spec(mix, bias, locality, dep, chase, seed):
    classes = (OpClass.RR_ALU, OpClass.RX_LOAD, OpClass.RX_STORE, OpClass.RX_ALU,
               OpClass.BRANCH, OpClass.FP, OpClass.COMPLEX)
    return WorkloadSpec(
        name=f"fuzz-{seed}",
        workload_class=WorkloadClass.MODERN,
        mix=dict(zip(classes, mix)),
        branch_sites=128,
        branch_bias=bias,
        taken_rate=0.6,
        data_working_set=128 * 1024,
        data_locality=locality,
        code_footprint=32 * 1024,
        dependency_distance=dep,
        pointer_chase=chase,
        seed=seed,
    )


@st.composite
def fuzz_cases(draw):
    mix = draw(MIXES)
    bias = draw(st.floats(0.5, 1.0))
    locality = draw(st.floats(0.5, 0.99))
    dep = draw(st.floats(1.0, 9.0))
    chase = draw(st.floats(0.0, 0.3))
    seed = draw(st.integers(0, 2**16))
    depth = draw(st.integers(2, 30))
    in_order = draw(st.booleans())
    return build_spec(mix, bias, locality, dep, chase, seed), depth, in_order


class TestPipelineInvariants:
    @given(case=fuzz_cases())
    @settings(max_examples=25, deadline=None)
    def test_simulation_invariants(self, case):
        spec, depth, in_order = case
        trace = generate_trace(spec, 600)
        machine = MachineConfig(in_order=in_order)
        result = simulate(trace, depth, machine)

        # Work conservation: every instruction fetched, executed, retired.
        assert result.instructions == 600
        # Bandwidth floor: cannot retire faster than the issue width.
        assert result.cycles >= 600 / machine.issue_width
        # Counts bounded by their populations.
        assert 0 <= result.mispredicts <= result.branches <= 600
        assert 0 <= result.dcache_misses <= result.dcache_accesses
        assert result.memory_ops <= 600
        assert result.issue_cycles <= result.cycles
        # Measured alpha within the machine's capability.
        assert 0.9 <= result.superscalar_degree <= machine.issue_width + 1e-9
        # Time accounting is self-consistent.
        assert result.busy_time + result.stall_time == pytest.approx(result.total_time)
        # Occupancy never exceeds availability for single-occupancy units.
        for unit in (Unit.DECODE, Unit.AGEN, Unit.RETIRE):
            assert result.occupancy_fraction(unit) <= 1.0

    @given(case=fuzz_cases())
    @settings(max_examples=10, deadline=None)
    def test_determinism(self, case):
        spec, depth, in_order = case
        trace = generate_trace(spec, 400)
        machine = MachineConfig(in_order=in_order)
        first = simulate(trace, depth, machine)
        second = simulate(trace, depth, machine)
        assert first.cycles == second.cycles
        assert first.mispredicts == second.mispredicts
        assert first.unit_occupancy == second.unit_occupancy

    @given(
        seed=st.integers(0, 2**16),
        length_a=st.integers(200, 800),
    )
    @settings(max_examples=10, deadline=None)
    def test_longer_traces_take_longer(self, seed, length_a):
        # The invariant must compare a trace against a true prefix of the
        # SAME instruction stream: generate_trace(spec, n) shapes content by
        # total length, so two independently generated traces of different
        # lengths are not comparable (a longer one can legitimately simulate
        # in fewer cycles).
        spec = build_spec((0.4, 0.15, 0.1, 0.15, 0.15, 0.03, 0.02),
                          0.9, 0.9, 4.0, 0.1, seed)
        full = generate_trace(spec, length_a * 2)
        prefix = Trace(
            name=full.name,
            opclass=full.opclass[:length_a],
            pc=full.pc[:length_a],
            dest=full.dest[:length_a],
            src1=full.src1[:length_a],
            src2=full.src2[:length_a],
            address=full.address[:length_a],
            taken=full.taken[:length_a],
            fp_cycles=full.fp_cycles[:length_a],
        )
        short = simulate(prefix, 10)
        long = simulate(full, 10)
        assert long.cycles > short.cycles

    @given(case=fuzz_cases())
    @settings(max_examples=10, deadline=None)
    def test_power_accounting_invariants(self, case):
        from repro.power import UnitPowerModel, power_report

        spec, depth, in_order = case
        trace = generate_trace(spec, 500)
        result = simulate(trace, depth, MachineConfig(in_order=in_order))
        report = power_report(result, UnitPowerModel())
        assert report.gated_dynamic > 0
        assert report.gated_dynamic <= report.ungated_dynamic * (1 + 1e-9)
        assert report.leakage >= 0
        assert report.latch_count > 0
