"""Behavioural tests of the cycle-accurate simulator, built on hand-made
micro-traces whose timing is analytically known."""

import numpy as np
import pytest

from repro.isa import NO_REGISTER, OpClass
from repro.pipeline import MachineConfig, simulate
from repro.trace.trace import Trace
from repro.uarch import CacheConfig

HUGE = CacheConfig(size=16 * 1024 * 1024, line_size=128, associativity=16,
                   miss_latency_fo4=0.0)
IDEAL = MachineConfig(icache=HUGE, dcache=HUGE, l2=HUGE, predictor_kind="oracle",
                      warmup=True)


def make_trace(name, codes, dest=None, src1=None, src2=None, addr=None, taken=None,
               fp_cycles=None, pcs=None):
    n = len(codes)
    none8 = np.full(n, NO_REGISTER, dtype=np.int8)
    return Trace(
        name=name,
        opclass=np.asarray(codes, dtype=np.int8),
        pc=np.asarray(pcs, dtype=np.int64) if pcs is not None
        else np.arange(n, dtype=np.int64) * 4,
        dest=np.asarray(dest, dtype=np.int8) if dest is not None else none8.copy(),
        src1=np.asarray(src1, dtype=np.int8) if src1 is not None else none8.copy(),
        src2=np.asarray(src2, dtype=np.int8) if src2 is not None else none8.copy(),
        address=np.asarray(addr, dtype=np.int64) if addr is not None
        else np.zeros(n, dtype=np.int64),
        taken=np.asarray(taken, dtype=bool) if taken is not None
        else np.zeros(n, dtype=bool),
        fp_cycles=np.asarray(fp_cycles, dtype=np.int16) if fp_cycles is not None
        else np.zeros(n, dtype=np.int16),
    )


RR = OpClass.RR_ALU.value
LD = OpClass.RX_LOAD.value
ST = OpClass.RX_STORE.value
BR = OpClass.BRANCH.value
FP = OpClass.FP.value
CX = OpClass.COMPLEX.value


def rr_stream(n=2000, distinct=8):
    return make_trace("rr", [RR] * n, dest=[4 + (i % distinct) for i in range(n)])


class TestIdealThroughput:
    def test_independent_stream_hits_issue_width(self):
        result = simulate(rr_stream(), 8, IDEAL)
        assert result.cpi == pytest.approx(0.25, abs=0.05)

    def test_issue_width_respected(self):
        narrow = MachineConfig(icache=HUGE, dcache=HUGE, l2=HUGE,
                               predictor_kind="oracle", warmup=True, issue_width=2)
        result = simulate(rr_stream(), 8, narrow)
        assert result.cpi == pytest.approx(0.5, abs=0.05)

    def test_cpi_flat_across_depths_without_hazards(self):
        trace = rr_stream()
        cpis = [simulate(trace, d, IDEAL).cpi for d in (2, 6, 12, 20, 25)]
        assert max(cpis) - min(cpis) < 0.05

    def test_superscalar_degree_measured(self):
        result = simulate(rr_stream(), 8, IDEAL)
        assert result.superscalar_degree == pytest.approx(4.0, abs=0.2)


class TestDependencies:
    def test_serial_chain_limits_ipc(self):
        n = 1000
        trace = make_trace("chain", [RR] * n, dest=[4] * n, src1=[4] * n)
        result = simulate(trace, 8, IDEAL)
        # Fully serial: one instruction per cycle at best (1-cycle ALU).
        assert result.cpi == pytest.approx(1.0, abs=0.1)

    def test_alu_forwarding_latency_grows_at_deep_pipes(self):
        n = 1000
        trace = make_trace("chain", [RR] * n, dest=[4] * n, src1=[4] * n)
        shallow = simulate(trace, 8, IDEAL)   # t_s = 20 FO4 -> 1-cycle ALU
        deep = simulate(trace, 30, IDEAL)     # t_s ~ 7.2 FO4 -> 2-cycle ALU
        assert deep.cpi > shallow.cpi * 1.5

    def test_distant_dependencies_free(self):
        n = 1000
        trace = make_trace(
            "far", [RR] * n, dest=[4 + (i % 12) for i in range(n)],
            src1=[4 + ((i + 6) % 12) for i in range(n)],
        )
        result = simulate(trace, 8, IDEAL)
        assert result.cpi < 0.4


class TestMemory:
    def test_pointer_chase_serialises_on_cache_transit(self):
        """Each load's address comes from the previous load: the chain
        pays the agen+cache transit per link, growing with depth."""
        n = 1000
        chase = make_trace("chase", [LD] * n, dest=[4] * n, src1=[4] * n,
                           addr=[(i * 8) % 4096 for i in range(n)])
        streaming = make_trace("stream", [LD] * n, dest=[4 + i % 8 for i in range(n)],
                               src1=[0] * n, addr=[(i * 8) % 4096 for i in range(n)])
        chase_deep = simulate(chase, 20, IDEAL)
        stream_deep = simulate(streaming, 20, IDEAL)
        assert chase_deep.cycles > stream_deep.cycles * 3
        # And the chase cost grows with pipeline depth.
        chase_shallow = simulate(chase, 6, IDEAL)
        assert chase_deep.cycles > chase_shallow.cycles * 1.5

    def test_dcache_miss_counted_and_costly(self):
        n = 400
        # Strided far apart: every access a distinct line, tiny cache.
        tiny = MachineConfig(
            icache=HUGE,
            dcache=CacheConfig(size=4 * 1024, line_size=128, associativity=1,
                               miss_latency_fo4=200.0),
            l2=CacheConfig(size=8 * 1024, line_size=128, associativity=1,
                           miss_latency_fo4=400.0),
            predictor_kind="oracle",
            warmup=False,
        )
        codes = [LD] * n
        trace = make_trace("miss", codes, dest=[4] * n, src1=[0] * n,
                           addr=[i * 4096 for i in range(n)])
        result = simulate(trace, 8, tiny)
        assert result.dcache_misses == n
        hit_trace = make_trace("hit", codes, dest=[4] * n, src1=[0] * n,
                               addr=[0] * n)
        hit = simulate(hit_trace, 8, tiny)
        assert result.cycles > hit.cycles * 2

    def test_store_misses_do_not_stall(self):
        n = 400
        tiny = MachineConfig(
            icache=HUGE,
            dcache=CacheConfig(size=4 * 1024, line_size=128, associativity=1,
                               miss_latency_fo4=400.0),
            predictor_kind="oracle",
            warmup=False,
        )
        stores = make_trace("st", [ST] * n, src1=[0] * n,
                            addr=[i * 4096 for i in range(n)])
        loads = make_trace("ld", [LD] * n, dest=[4] * n, src1=[0] * n,
                           addr=[i * 4096 for i in range(n)])
        st_result = simulate(stores, 8, tiny)
        ld_result = simulate(loads, 8, tiny)
        assert st_result.store_misses == n
        assert st_result.dcache_misses == 0
        assert st_result.cycles < ld_result.cycles / 3

    def test_agen_interlock(self):
        """A load whose base register was just computed stalls at agen."""
        n = 1000
        codes = [RR if i % 2 == 0 else LD for i in range(n)]
        dest = [4 if i % 2 == 0 else 5 for i in range(n)]
        src1 = [6 if i % 2 == 0 else 4 for i in range(n)]  # load base = RR dest
        trace = make_trace("agi", codes, dest=dest, src1=src1,
                           addr=[8 * i % 4096 for i in range(n)])
        baseline = make_trace("no-agi", codes, dest=dest,
                              src1=[6 if i % 2 == 0 else 0 for i in range(n)],
                              addr=[8 * i % 4096 for i in range(n)])
        assert simulate(trace, 16, IDEAL).cycles > simulate(baseline, 16, IDEAL).cycles


class TestBranches:
    def _biased_branch_trace(self, n=3000, period=10):
        codes = [BR if i % period == 0 else RR for i in range(n)]
        dest = [NO_REGISTER if i % period == 0 else 4 + i % 8 for i in range(n)]
        taken = [False] * n  # never taken: a bimodal/gshare learns this
        # All branches share a few PCs so the predictor trains quickly.
        pcs = [(i % 64) * 4 for i in range(n)]
        return make_trace("br", codes, dest=dest, taken=taken, pcs=pcs)

    def test_predictable_branches_learned(self):
        trace = self._biased_branch_trace()
        config = MachineConfig(icache=HUGE, dcache=HUGE, warmup=True)
        result = simulate(trace, 8, config)
        assert result.branches == 300
        assert result.misprediction_rate < 0.05

    def test_oracle_never_mispredicts(self):
        trace = self._biased_branch_trace()
        result = simulate(trace, 8, IDEAL)
        assert result.mispredicts == 0

    def test_mispredict_penalty_grows_with_depth(self):
        """The core hazard mechanism: flush cost scales with the front end."""
        n = 3000
        rng = np.random.default_rng(3)
        codes = [BR if i % 5 == 0 else RR for i in range(n)]
        dest = [NO_REGISTER if i % 5 == 0 else 4 + i % 8 for i in range(n)]
        taken = rng.random(n) < 0.5  # coin flips: unlearnable
        taken[np.asarray(codes) != BR] = False
        trace = make_trace("coin", codes, dest=dest, taken=taken.tolist(),
                           pcs=[(i % 16) * 4 for i in range(n)])
        config = MachineConfig(icache=HUGE, dcache=HUGE, warmup=False)
        shallow = simulate(trace, 4, config)
        deep = simulate(trace, 20, config)
        assert shallow.misprediction_rate > 0.2
        penalty_shallow = (shallow.cycles - 0.25 * n) / max(shallow.mispredicts, 1)
        penalty_deep = (deep.cycles - 0.25 * n) / max(deep.mispredicts, 1)
        assert penalty_deep > penalty_shallow * 1.8


class TestLongOps:
    def test_fp_serialisation(self):
        n = 600
        trace = make_trace("fp", [FP] * n, dest=[4 + i % 8 for i in range(n)],
                           fp_cycles=[6] * n)
        result = simulate(trace, 8, IDEAL)
        # One FP at a time, 6 + exec_latency - 1 cycles each.
        assert result.cpi == pytest.approx(6.0, abs=0.5)

    def test_fp_and_complex_units_are_independent(self):
        n = 600
        alternating = make_trace(
            "fpcx", [FP if i % 2 == 0 else CX for i in range(n)],
            dest=[4 + i % 8 for i in range(n)], fp_cycles=[6] * n,
        )
        pure_fp = make_trace("fp", [FP] * n, dest=[4 + i % 8 for i in range(n)],
                             fp_cycles=[6] * n)
        mixed = simulate(alternating, 8, IDEAL)
        serial = simulate(pure_fp, 8, IDEAL)
        assert mixed.cycles < serial.cycles * 0.7

    def test_fp_occupancy_includes_pipe_drain(self):
        n = 400
        trace = make_trace("fp", [FP] * n, dest=[4] * n, fp_cycles=[6] * n)
        shallow = simulate(trace, 6, IDEAL)   # exec pipe 1 deep
        deep = simulate(trace, 24, IDEAL)     # exec pipe 7 deep
        assert deep.cpi > shallow.cpi + 4     # ~ exec_latency - 1 extra

    def test_fp_ops_counted(self):
        trace = make_trace("fp", [FP, RR, FP], dest=[4, 5, 6], fp_cycles=[4, 0, 4])
        assert simulate(trace, 8, IDEAL).fp_ops == 2


class TestAccounting:
    def test_determinism(self, modern_trace):
        a = simulate(modern_trace, 10)
        b = simulate(modern_trace, 10)
        assert a.cycles == b.cycles
        assert a.unit_occupancy == b.unit_occupancy

    def test_occupancy_positive_for_active_units(self, modern_trace):
        result = simulate(modern_trace, 8)
        from repro.pipeline import Unit

        for unit in (Unit.FETCH, Unit.DECODE, Unit.EXECUTE, Unit.RETIRE):
            assert result.unit_occupancy[unit] > 0

    def test_occupancy_bounded_by_transit(self, modern_trace):
        """Decode occupancy is exactly stages * instructions (no holds)."""
        result = simulate(modern_trace, 12)
        from repro.pipeline import Unit

        stages = result.plan.unit_stages[Unit.DECODE]
        assert result.unit_occupancy[Unit.DECODE] == pytest.approx(
            stages * result.instructions
        )

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            simulate(Trace.empty(), 8)

    def test_plan_accepted_directly(self, modern_trace):
        from repro.pipeline import StagePlan

        direct = simulate(modern_trace, StagePlan.for_depth(9))
        by_depth = simulate(modern_trace, 9)
        assert direct.cycles == by_depth.cycles

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(predictor_kind="psychic")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(issue_width=0)
        with pytest.raises(ValueError):
            MachineConfig(agen_width=0)

    def test_warmup_reduces_cold_misses(self, modern_trace):
        cold = MachineConfig(warmup=False)
        warm = MachineConfig(warmup=True)
        cold_result = simulate(modern_trace, 8, cold)
        warm_result = simulate(modern_trace, 8, warm)
        assert warm_result.mispredicts <= cold_result.mispredicts
        assert warm_result.dcache_misses <= cold_result.dcache_misses

    def test_hazard_counts_depth_invariant(self, modern_trace):
        """Hazard *counts* come from the trace + structures, not timing."""
        r1 = simulate(modern_trace, 4)
        r2 = simulate(modern_trace, 20)
        assert r1.mispredicts == r2.mispredicts
        assert r1.dcache_misses == r2.dcache_misses
        assert r1.icache_misses == r2.icache_misses
