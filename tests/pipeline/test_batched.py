"""The depth-batched backend: one timing pass, reference-identical lanes.

The batched kernel walks the event stream once with one state lane per
requested depth; these tests pin its contract from three directions —
hypothesis-driven cross-backend equivalence (random machines, random
depth sets, random traces: ``batched == fast == reference``
field-for-field), the Python fallback when the C kernel cannot run, and
the lane-independence property that makes batching legal in the first
place (a depth priced alone equals the same depth priced inside any
batch).
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import OpClass
from repro.pipeline import batched as batched_mod
from repro.pipeline.batched import BatchedPipelineSimulator
from repro.pipeline.fastsim import FastPipelineSimulator
from repro.pipeline.simulator import MachineConfig, PipelineSimulator
from repro.trace import WorkloadClass, WorkloadSpec, generate_trace

MIXES = st.sampled_from([
    # (rr, load, store, rxalu, branch, fp, complex)
    (0.4, 0.15, 0.1, 0.15, 0.15, 0.03, 0.02),
    (0.2, 0.2, 0.1, 0.2, 0.25, 0.03, 0.02),
    (0.25, 0.2, 0.1, 0.05, 0.05, 0.3, 0.05),
])


def _build_spec(mix, seed):
    classes = (OpClass.RR_ALU, OpClass.RX_LOAD, OpClass.RX_STORE, OpClass.RX_ALU,
               OpClass.BRANCH, OpClass.FP, OpClass.COMPLEX)
    return WorkloadSpec(
        name=f"batched-fuzz-{seed}",
        workload_class=WorkloadClass.MODERN,
        mix=dict(zip(classes, mix)),
        branch_sites=128,
        branch_bias=0.85,
        taken_rate=0.6,
        data_working_set=128 * 1024,
        data_locality=0.9,
        code_footprint=32 * 1024,
        dependency_distance=4.0,
        pointer_chase=0.1,
        seed=seed,
    )


@st.composite
def machine_configs(draw):
    return MachineConfig(
        issue_width=draw(st.integers(1, 6)),
        agen_width=draw(st.integers(1, 3)),
        in_order=draw(st.booleans()),
        predictor_kind=draw(
            st.sampled_from(["gshare", "bimodal", "taken", "oracle"])
        ),
        mshr_entries=draw(st.sampled_from([1, 4])),
        btb_entries=draw(st.sampled_from([None, 64])),
        issue_window=draw(st.sampled_from([8, 32])),
        rob_size=draw(st.sampled_from([24, 64])),
        warmup=draw(st.booleans()),
    )


@st.composite
def batched_cases(draw):
    spec = _build_spec(draw(MIXES), draw(st.integers(0, 2**16)))
    machine = draw(machine_configs())
    depths = tuple(sorted(draw(
        st.sets(st.integers(2, 30), min_size=1, max_size=5)
    )))
    return spec, machine, depths


def _assert_equal(reference, candidate, context):
    for field in dataclasses.fields(reference):
        a = getattr(reference, field.name)
        b = getattr(candidate, field.name)
        assert a == b, f"{context}: field {field.name!r} diverges: {a!r} != {b!r}"


class TestCrossBackendProperty:
    @given(case=batched_cases())
    @settings(max_examples=20, deadline=None)
    def test_batched_equals_fast_equals_reference(self, case):
        """Random machine, random depth set: all three backends agree."""
        spec, machine, depths = case
        trace = generate_trace(spec, 300)
        reference = PipelineSimulator(machine).simulate_depths(trace, depths)
        fast = FastPipelineSimulator(machine).simulate_depths(trace, depths)
        batched = BatchedPipelineSimulator(machine).simulate_depths(trace, depths)
        for depth, r, f, b in zip(depths, reference, fast, batched):
            context = f"{machine!r} depth={depth}"
            _assert_equal(r, f, f"fast {context}")
            _assert_equal(r, b, f"batched {context}")

    @given(case=batched_cases())
    @settings(max_examples=10, deadline=None)
    def test_lane_independence(self, case):
        """A depth priced alone equals the same depth inside any batch."""
        spec, machine, depths = case
        trace = generate_trace(spec, 250)
        sim = BatchedPipelineSimulator(machine)
        together = sim.simulate_depths(trace, depths)
        for depth, result in zip(depths, together):
            assert sim.simulate(trace, depth) == result


def test_python_fallback_matches_kernel(modern_trace, monkeypatch):
    """With the C kernel unavailable the scalar fallback is identical."""
    depths = (2, 5, 8, 13, 20)
    for machine in (MachineConfig(), MachineConfig(in_order=False)):
        with_kernel = BatchedPipelineSimulator(machine).simulate_depths(
            modern_trace, depths
        )
        monkeypatch.setattr(batched_mod, "batched_kernel", lambda: None)
        without = BatchedPipelineSimulator(machine).simulate_depths(
            modern_trace, depths
        )
        monkeypatch.undo()
        assert list(with_kernel) == list(without)


def test_wide_machine_falls_back(modern_trace):
    """issue_width beyond the kernel's uint8 slots still simulates."""
    machine = MachineConfig(issue_width=300)
    sim = BatchedPipelineSimulator(machine)
    assert sim._run_batched(sim.events_for(modern_trace), []) is None
    results = sim.simulate_depths(modern_trace, (4, 12))
    reference = PipelineSimulator(machine).simulate_depths(modern_trace, (4, 12))
    assert list(results) == list(reference)


def test_empty_trace_rejected():
    from repro.trace.trace import Trace

    empty = Trace.from_instructions("empty", [])
    with pytest.raises(ValueError):
        BatchedPipelineSimulator().simulate_depths(empty, (4,))
