"""Tests of the pipeline diagram renderer."""


from repro.pipeline import StagePlan, render_depth_table, render_plan


class TestRenderPlan:
    def test_base_pipeline_all_units(self):
        text = render_plan(StagePlan.for_depth(6))
        for name in ("Fetch", "Decode", "AgenQ", "Agen", "Cache", "ExecQ",
                     "E-Unit", "Compl", "Retire"):
            assert name in text

    def test_merged_units_share_a_box(self):
        text = render_plan(StagePlan.for_depth(2))
        assert "Decode+AgenQ+Agen" in text
        assert "Cache+ExecQ+E-Unit" in text
        assert "merged cycles" in text

    def test_stage_multipliers_shown(self):
        text = render_plan(StagePlan.for_depth(12))
        assert "Decode x3" in text
        assert "Cache x3" in text
        assert "E-Unit x3" in text

    def test_no_merge_note_when_unmerged(self):
        assert "merged cycles" not in render_plan(StagePlan.for_depth(8))

    def test_rr_path_note(self):
        text = render_plan(StagePlan.for_depth(8))
        assert "RR path" in text


class TestDepthTable:
    def test_one_row_per_depth(self):
        table = render_depth_table(range(2, 26))
        assert len(table.splitlines()) == 1 + 24

    def test_expansion_visible(self):
        table = render_depth_table(range(24, 26))
        row25 = table.splitlines()[-1].split()
        assert row25[0] == "25"
        assert int(row25[1]) == 8  # decode stages at depth 25
