"""Tests of SimulationResult derived quantities."""

import pytest

from repro.core import TechnologyParams
from repro.pipeline import Unit, simulate


@pytest.fixture(scope="module")
def result(modern_trace):
    return simulate(modern_trace, 8)


class TestDerived:
    def test_depth(self, result):
        assert result.depth == 8

    def test_cycle_time(self, result):
        assert result.cycle_time == pytest.approx(TechnologyParams().cycle_time(8))

    def test_total_time(self, result):
        assert result.total_time == pytest.approx(result.cycles * result.cycle_time)

    def test_time_per_instruction(self, result):
        assert result.time_per_instruction == pytest.approx(
            result.total_time / result.instructions
        )

    def test_bips_reciprocal(self, result):
        assert result.bips == pytest.approx(1.0 / result.time_per_instruction)

    def test_cpi_ipc(self, result):
        assert result.cpi * result.ipc == pytest.approx(1.0)

    def test_rates_bounded(self, result):
        assert 0.0 <= result.misprediction_rate <= 1.0
        assert 0.0 <= result.dcache_miss_rate <= 1.0

    def test_hazards_composition(self, result):
        assert result.hazards == (
            result.mispredicts + result.icache_misses + result.dcache_misses
        )
        assert result.hazard_rate == pytest.approx(result.hazards / result.instructions)

    def test_superscalar_degree_bounds(self, result):
        assert 1.0 <= result.superscalar_degree <= 4.0

    def test_busy_plus_stall_is_total(self, result):
        assert result.busy_time + result.stall_time == pytest.approx(result.total_time)

    def test_occupancy_fraction_bounds(self, result):
        for unit in Unit:
            assert 0.0 <= result.occupancy_fraction(unit) <= 1.0
        assert result.occupancy_fraction(Unit.RENAME) == 0.0

    def test_summary_mentions_workload(self, result):
        text = result.summary()
        assert result.trace_name in text
        assert "CPI" in text
