"""The on-disk trace-analysis cache: content addressing, atomicity, sharing.

The cache's promise is that one (trace, machine) analysis is computed
once per *cluster of processes* sharing a cache directory — workers,
daemon, CLI — and that a stale or corrupt entry can never poison a
simulation (corruption is a miss, schema changes re-key).  The
cross-process test at the bottom asserts the headline behaviour
end-to-end: a second Python process with a warm cache performs zero
analyses and reproduces identical results.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.pipeline import fastsim
from repro.pipeline.batched import BatchedPipelineSimulator
from repro.pipeline.events_cache import (
    TraceEventsCache,
    default_events_cache,
    default_events_cache_dir,
    events_cache_enabled,
)
from repro.pipeline.fastsim import FastPipelineSimulator, analyze_trace
from repro.pipeline.simulator import MachineConfig

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


@pytest.fixture()
def cache(tmp_path):
    return TraceEventsCache(tmp_path / "analysis")


def test_key_is_content_addressed():
    key = TraceEventsCache.key_for("aaa", "bbb")
    assert key == TraceEventsCache.key_for("aaa", "bbb")
    assert key != TraceEventsCache.key_for("aab", "bbb")
    assert key != TraceEventsCache.key_for("aaa", "bbc")
    assert len(key) == 64 and key.isalnum()


def test_path_rejects_implausible_keys(cache):
    with pytest.raises(ValueError):
        cache.path_for("../escape")
    with pytest.raises(ValueError):
        cache.path_for("ab")


def test_round_trip_preserves_analysis(cache, modern_trace):
    machine = MachineConfig(in_order=False)
    events = analyze_trace(modern_trace, machine)
    assert cache.get("t", "m") is None
    path = cache.put("t", "m", events)
    assert path.exists()
    loaded = cache.get("t", "m")
    assert loaded is not None
    assert loaded.n == events.n
    assert (loaded.columns == events.columns).all()
    assert loaded.aggregates() == events.aggregates()
    assert cache.stats.hits == 1 and cache.stats.writes == 1


def test_corrupt_entry_is_a_deleted_miss(cache, modern_trace):
    events = analyze_trace(modern_trace, MachineConfig())
    path = cache.put("t", "m", events)
    path.write_bytes(b"not an npz file")
    assert cache.get("t", "m") is None
    assert not path.exists()
    assert cache.stats.corrupt == 1


def test_clear_len_and_size(cache, modern_trace, float_trace):
    events = analyze_trace(modern_trace, MachineConfig())
    cache.put("t1", "m", events)
    cache.put("t2", "m", analyze_trace(float_trace, MachineConfig()))
    assert len(cache) == 2
    assert cache.size_bytes() > 0
    assert cache.clear() == 2
    assert len(cache) == 0 and cache.size_bytes() == 0


def test_environment_resolution(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_ANALYSIS_CACHE_DIR", str(tmp_path / "explicit"))
    assert default_events_cache_dir() == tmp_path / "explicit"
    monkeypatch.delenv("REPRO_ANALYSIS_CACHE_DIR")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shared"))
    assert default_events_cache_dir() == tmp_path / "shared" / "analysis"

    assert events_cache_enabled()
    assert default_events_cache() is not None
    monkeypatch.setenv("REPRO_ANALYSIS_CACHE", "off")
    assert not events_cache_enabled()
    assert default_events_cache() is None


def test_simulator_reuses_disk_entries(cache, modern_trace, monkeypatch):
    """A fresh simulator instance loads the analysis instead of redoing it."""
    first = FastPipelineSimulator(events_cache=cache)
    r1 = first.simulate(modern_trace, 8)
    assert cache.stats.misses == 1 and cache.stats.writes == 1

    calls = []
    monkeypatch.setattr(
        fastsim, "analyze_trace",
        lambda *a, **k: calls.append(1) or pytest.fail("analysis recomputed"),
    )
    second = BatchedPipelineSimulator(events_cache=cache)
    r2 = second.simulate(modern_trace, 8)
    assert cache.stats.hits == 1
    assert r1 == r2 and not calls


_SUBPROCESS_SCRIPT = """
import json
import repro.pipeline.fastsim as fastsim
from repro.pipeline.batched import BatchedPipelineSimulator
from repro.pipeline.events_cache import default_events_cache
from repro.trace import generate_trace
from repro.trace.suite import small_suite

calls = {"n": 0}
real = fastsim.analyze_trace
def counting(trace, cfg):
    calls["n"] += 1
    return real(trace, cfg)
fastsim.analyze_trace = counting

trace = generate_trace(small_suite(1)[0], 400)
sim = BatchedPipelineSimulator(events_cache=default_events_cache())
results = sim.simulate_depths(trace, (2, 8, 20))
print(json.dumps({
    "analyses": calls["n"],
    "cycles": [r.cycles for r in results],
    "stats": vars(sim.events_cache.stats),
}))
"""


def test_warm_cache_shared_across_processes(tmp_path):
    """The headline contract: process two performs zero analyses."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_ANALYSIS_CACHE_DIR"] = str(tmp_path / "analysis")

    def run():
        proc = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SCRIPT],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        return json.loads(proc.stdout)

    cold = run()
    warm = run()
    assert cold["analyses"] == 1
    assert cold["stats"]["misses"] == 1 and cold["stats"]["writes"] == 1
    assert warm["analyses"] == 0  # the analysis crossed the process boundary
    assert warm["stats"]["hits"] == 1 and warm["stats"]["writes"] == 0
    assert warm["cycles"] == cold["cycles"]
