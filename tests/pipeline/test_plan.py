"""Tests of stage planning (depth expansion/contraction)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline import MAX_DEPTH, MIN_DEPTH, RR_PATH, RX_PATH, StagePlan, Unit


class TestConstruction:
    def test_depth_bounds(self):
        with pytest.raises(ValueError):
            StagePlan.for_depth(MIN_DEPTH - 1)
        with pytest.raises(ValueError):
            StagePlan.for_depth(MAX_DEPTH + 1)

    def test_type_checked(self):
        with pytest.raises(TypeError):
            StagePlan.for_depth(8.0)

    def test_cached_identity(self):
        assert StagePlan.for_depth(8) is StagePlan.for_depth(8)

    @given(depth=st.integers(MIN_DEPTH, MAX_DEPTH))
    @settings(max_examples=39, deadline=None)
    def test_rx_path_total_equals_depth(self, depth):
        """The defining invariant: decode-to-execute cycles == depth."""
        plan = StagePlan.for_depth(depth)
        assert plan.path_offsets(RX_PATH).total == depth

    @given(depth=st.integers(MIN_DEPTH, MAX_DEPTH))
    @settings(max_examples=39, deadline=None)
    def test_rr_path_not_longer_than_rx(self, depth):
        plan = StagePlan.for_depth(depth)
        assert plan.path_offsets(RR_PATH).total <= depth

    def test_base_structure_at_six(self):
        plan = StagePlan.for_depth(6)
        assert plan.merges == ()
        for unit in RX_PATH:
            assert plan.unit_stages[unit] == 1

    def test_rename_skipped_in_order(self):
        assert StagePlan.for_depth(10).unit_stages[Unit.RENAME] == 0


class TestExpansion:
    def test_expansion_targets(self):
        """Extra stages go to decode, cache and execute simultaneously."""
        plan = StagePlan.for_depth(12)  # 6 extra
        assert plan.unit_stages[Unit.DECODE] == 3
        assert plan.unit_stages[Unit.CACHE] == 3
        assert plan.unit_stages[Unit.EXECUTE] == 3
        assert plan.unit_stages[Unit.AGEN] == 1
        assert plan.unit_stages[Unit.EXEC_QUEUE] == 1

    def test_round_robin_order(self):
        plan = StagePlan.for_depth(7)  # one extra -> decode first
        assert plan.unit_stages[Unit.DECODE] == 2
        assert plan.unit_stages[Unit.CACHE] == 1
        plan = StagePlan.for_depth(8)
        assert plan.unit_stages[Unit.CACHE] == 2

    def test_depth_25(self):
        plan = StagePlan.for_depth(25)
        assert plan.unit_stages[Unit.DECODE] == 8
        assert plan.unit_stages[Unit.CACHE] == 7
        assert plan.unit_stages[Unit.EXECUTE] == 7

    def test_no_merges_above_six(self):
        for depth in (6, 10, 20):
            assert StagePlan.for_depth(depth).merges == ()


class TestContraction:
    def test_depth_5_merges_agen_queue(self):
        plan = StagePlan.for_depth(5)
        assert plan.group_of(Unit.AGEN_QUEUE) == plan.group_of(Unit.AGEN)

    def test_depth_4_also_merges_exec_queue(self):
        plan = StagePlan.for_depth(4)
        assert plan.group_of(Unit.EXEC_QUEUE) == plan.group_of(Unit.EXECUTE)

    def test_depth_2_maximal_merging(self):
        plan = StagePlan.for_depth(2)
        assert plan.group_of(Unit.DECODE) == plan.group_of(Unit.AGEN)
        assert plan.group_of(Unit.CACHE) == plan.group_of(Unit.EXECUTE)

    def test_unmerged_unit_is_singleton_group(self):
        plan = StagePlan.for_depth(4)
        assert plan.group_of(Unit.CACHE) == frozenset({Unit.CACHE})

    def test_group_latency_is_max_of_members(self):
        plan = StagePlan.for_depth(5)
        assert plan.group_latency(Unit.AGEN_QUEUE) == 1


class TestDerived:
    def test_offsets_monotone_along_path(self):
        for depth in (2, 4, 6, 9, 25):
            plan = StagePlan.for_depth(depth)
            offsets = plan.path_offsets(RX_PATH)
            starts = [offsets.starts[u] for u in RX_PATH]
            assert starts == sorted(starts)

    def test_merged_units_share_start(self):
        plan = StagePlan.for_depth(2)
        offsets = plan.path_offsets(RX_PATH)
        assert offsets.starts[Unit.DECODE] == offsets.starts[Unit.AGEN]
        assert offsets.starts[Unit.CACHE] == offsets.starts[Unit.EXECUTE]

    def test_cycle_groups_cover_all_active_units(self):
        for depth in (2, 5, 6, 12):
            plan = StagePlan.for_depth(depth)
            covered = set().union(*plan.cycle_groups())
            active = {u for u in Unit if plan.unit_stages[u] > 0}
            assert covered == active

    def test_cycle_groups_disjoint(self):
        for depth in (2, 3, 4, 5, 6):
            groups = StagePlan.for_depth(depth).cycle_groups()
            seen = set()
            for group in groups:
                assert not (group & seen)
                seen |= group

    def test_front_end_cycles_grow_with_depth(self):
        shallow = StagePlan.for_depth(6).front_end_cycles
        deep = StagePlan.for_depth(25).front_end_cycles
        assert deep > shallow

    def test_total_stage_count_grows(self):
        counts = [StagePlan.for_depth(d).total_stage_count() for d in range(2, 26)]
        assert counts == sorted(counts)
        assert counts[0] >= 4  # fetch + merged core + complete + retire
