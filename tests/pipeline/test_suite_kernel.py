"""The suite backend: many (trace, machine) jobs in one ragged kernel call.

These tests pin the cross-job contract from the same three directions the
batched tests use — hypothesis-driven equivalence (random job sets,
random machines, random depth sets: every lane of a suite batch equals
the batched and fast backends field for field), the fallbacks (kernel
off, machines wider than the kernel), and the lane-independence argument
that makes cross-job packing legal (a job priced alone, or duplicated,
or run under a different thread count, prices identically).  The packed
tensor's ``prepacked`` shortcut is validated here too, since the engine's
suite tensor cache rides on it.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import OpClass
from repro.pipeline import suite as suite_mod
from repro.pipeline._ckernel import JM_N, JM_OFFSET, batched_kernel
from repro.pipeline.batched import BatchedPipelineSimulator
from repro.pipeline.fastsim import FastPipelineSimulator
from repro.pipeline.plan import StagePlan
from repro.pipeline.simulator import MachineConfig
from repro.pipeline.suite import (
    SuiteLanes,
    SuitePipelineSimulator,
    pack_suite,
    run_suite,
)
from repro.pipeline.timing import DepthConstants
from repro.trace import WorkloadClass, WorkloadSpec, generate_trace

MIXES = st.sampled_from([
    # (rr, load, store, rxalu, branch, fp, complex)
    (0.4, 0.15, 0.1, 0.15, 0.15, 0.03, 0.02),
    (0.2, 0.2, 0.1, 0.2, 0.25, 0.03, 0.02),
    (0.25, 0.2, 0.1, 0.05, 0.05, 0.3, 0.05),
])


def _build_spec(mix, seed):
    classes = (OpClass.RR_ALU, OpClass.RX_LOAD, OpClass.RX_STORE, OpClass.RX_ALU,
               OpClass.BRANCH, OpClass.FP, OpClass.COMPLEX)
    return WorkloadSpec(
        name=f"suite-fuzz-{seed}",
        workload_class=WorkloadClass.MODERN,
        mix=dict(zip(classes, mix)),
        branch_sites=128,
        branch_bias=0.85,
        taken_rate=0.6,
        data_working_set=128 * 1024,
        data_locality=0.9,
        code_footprint=32 * 1024,
        dependency_distance=4.0,
        pointer_chase=0.1,
        seed=seed,
    )


@st.composite
def machine_configs(draw):
    return MachineConfig(
        issue_width=draw(st.integers(1, 6)),
        agen_width=draw(st.integers(1, 3)),
        in_order=draw(st.booleans()),
        predictor_kind=draw(
            st.sampled_from(["gshare", "bimodal", "taken", "oracle"])
        ),
        mshr_entries=draw(st.sampled_from([1, 4])),
        btb_entries=draw(st.sampled_from([None, 64])),
        issue_window=draw(st.sampled_from([8, 32])),
        rob_size=draw(st.sampled_from([24, 64])),
        warmup=draw(st.booleans()),
    )


@st.composite
def suite_batches(draw):
    """A heterogeneous batch: each job its own trace, machine and depths."""
    entries = []
    for _ in range(draw(st.integers(1, 4))):
        spec = _build_spec(draw(MIXES), draw(st.integers(0, 2**16)))
        machine = draw(machine_configs())
        depths = tuple(sorted(draw(
            st.sets(st.integers(2, 30), min_size=1, max_size=4)
        )))
        entries.append((spec, machine, depths))
    return entries


def _assert_equal(reference, candidate, context):
    for field in dataclasses.fields(reference):
        a = getattr(reference, field.name)
        b = getattr(candidate, field.name)
        assert a == b, f"{context}: field {field.name!r} diverges: {a!r} != {b!r}"


def _price_batch(cases, threads=None, prepacked=None):
    """Results for ``[(machine, trace, depths), ...]`` via one suite call.

    Returns None when the kernel cannot run the batch (mirrors
    :func:`run_suite`); otherwise one result tuple per job.
    """
    lanes, sims = [], []
    for machine, trace, depths in cases:
        sim = SuitePipelineSimulator(machine)
        events = sim.events_for(trace)
        cons_list = [
            DepthConstants.for_plan(machine, StagePlan.for_depth(depth))
            for depth in depths
        ]
        lanes.append(SuiteLanes(machine, events, cons_list))
        sims.append(sim)
    raw_all = run_suite(lanes, threads=threads, prepacked=prepacked)
    if raw_all is None:
        return None
    out = []
    for (machine, trace, depths), sim, lane, raw in zip(cases, sims, lanes, raw_all):
        events = lane.events
        occ_rename = 0 if machine.in_order else events.n
        out.append(tuple(
            sim._build_result(
                trace, StagePlan.for_depth(depth), cons, events,
                int(cycles), int(issue_cycles), occ_rename,
                int(occ_agenq), int(occ_execq),
            )
            for depth, cons, (cycles, issue_cycles, occ_agenq, occ_execq)
            in zip(depths, lane.cons_list, raw)
        ))
    return out


needs_kernel = pytest.mark.skipif(
    batched_kernel() is None, reason="C kernel unavailable"
)


class TestCrossJobProperty:
    @needs_kernel
    @given(entries=suite_batches())
    @settings(max_examples=15, deadline=None)
    def test_suite_equals_batched_equals_fast(self, entries):
        """Every lane of a random batch agrees with the per-job backends."""
        cases = [
            (machine, generate_trace(spec, 300), depths)
            for spec, machine, depths in entries
        ]
        suite_results = _price_batch(cases)
        assert suite_results is not None
        for (machine, trace, depths), priced in zip(cases, suite_results):
            fast = FastPipelineSimulator(machine).simulate_depths(trace, depths)
            batched = BatchedPipelineSimulator(machine).simulate_depths(trace, depths)
            for depth, s, f, b in zip(depths, priced, fast, batched):
                context = f"{machine!r} depth={depth}"
                _assert_equal(f, s, f"suite-vs-fast {context}")
                _assert_equal(b, s, f"suite-vs-batched {context}")

    @needs_kernel
    @given(entries=suite_batches())
    @settings(max_examples=10, deadline=None)
    def test_job_independence(self, entries):
        """A job priced alone equals the same job inside any batch."""
        cases = [
            (machine, generate_trace(spec, 250), depths)
            for spec, machine, depths in entries
        ]
        together = _price_batch(cases)
        assert together is not None
        for case, priced in zip(cases, together):
            [alone] = _price_batch([case])
            assert list(alone) == list(priced)


@needs_kernel
def test_duplicate_jobs_price_identically(modern_trace):
    """The same job twice in one batch yields two identical lanes."""
    machine = MachineConfig()
    case = (machine, modern_trace, (2, 7, 15))
    first, second = _price_batch([case, case])
    assert list(first) == list(second)


@needs_kernel
def test_more_lanes_than_threads(modern_trace):
    """Thread count never changes results — lanes are independent."""
    cases = [
        (MachineConfig(), modern_trace, tuple(range(2, 12))),
        (MachineConfig(in_order=True), modern_trace, tuple(range(2, 12))),
    ]
    serial = _price_batch(cases, threads=1)
    wide = _price_batch(cases, threads=8)  # far more threads than cores
    assert serial == wide


@needs_kernel
def test_prepacked_tensor_skips_copy(modern_trace):
    """A prepacked column tensor round-trips bit-identically."""
    machine = MachineConfig()
    sim = SuitePipelineSimulator(machine)
    events = sim.events_for(modern_trace)
    cons_list = [
        DepthConstants.for_plan(machine, StagePlan.for_depth(depth))
        for depth in (3, 9)
    ]
    lanes = [SuiteLanes(machine, events, cons_list)] * 2
    columns, job_rows, lane_job, cons = pack_suite(lanes)
    repacked, job_rows2, lane_job2, cons2 = pack_suite(lanes, prepacked=columns)
    assert repacked is columns  # the copy was skipped, not redone
    assert np.array_equal(job_rows, job_rows2)
    assert job_rows[1, JM_OFFSET] == events.n and job_rows[1, JM_N] == events.n
    direct = run_suite(lanes)
    via_prepacked = run_suite(lanes, prepacked=columns)
    assert all(np.array_equal(a, b) for a, b in zip(direct, via_prepacked))


def test_prepacked_shape_validated(modern_trace):
    """A tensor that does not match the batch is rejected loudly."""
    machine = MachineConfig()
    sim = SuitePipelineSimulator(machine)
    events = sim.events_for(modern_trace)
    cons_list = [DepthConstants.for_plan(machine, StagePlan.for_depth(4))]
    lanes = [SuiteLanes(machine, events, cons_list)]
    wrong = np.zeros((12, events.n + 1), dtype=np.int32)
    with pytest.raises(ValueError, match="prepacked"):
        pack_suite(lanes, prepacked=wrong)


def test_kernel_off_returns_none_and_simulator_falls_back(
    modern_trace, monkeypatch
):
    """Without the kernel, run_suite declines and the facade still prices."""
    machine = MachineConfig()
    depths = (2, 6, 11)
    expected = FastPipelineSimulator(machine).simulate_depths(modern_trace, depths)
    monkeypatch.setattr(suite_mod, "batched_kernel", lambda: None)
    sim = SuitePipelineSimulator(machine)
    events = sim.events_for(modern_trace)
    cons_list = [
        DepthConstants.for_plan(machine, StagePlan.for_depth(d)) for d in depths
    ]
    assert run_suite([SuiteLanes(machine, events, cons_list)]) is None
    fallback = sim.simulate_depths(modern_trace, depths)
    assert list(fallback) == list(expected)


def test_wide_machine_declines_whole_batch(modern_trace):
    """One lane beyond the kernel's width makes run_suite decline."""
    narrow = MachineConfig()
    wide = MachineConfig(issue_width=300)
    lanes = []
    for machine in (narrow, wide):
        sim = SuitePipelineSimulator(machine)
        lanes.append(SuiteLanes(
            machine,
            sim.events_for(modern_trace),
            [DepthConstants.for_plan(machine, StagePlan.for_depth(5))],
        ))
    assert run_suite(lanes) is None
    # The facade still prices the wide machine via the reference fallback.
    results = SuitePipelineSimulator(wide).simulate_depths(modern_trace, (4, 12))
    assert len(results) == 2


def test_empty_batch():
    assert run_suite([]) == []
