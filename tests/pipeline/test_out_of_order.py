"""Tests of the out-of-order execution engine."""

import numpy as np
import pytest

from repro.isa import NO_REGISTER, OpClass
from repro.pipeline import MachineConfig, Unit, simulate
from repro.uarch import CacheConfig

from .test_simulator import HUGE, IDEAL, make_trace, rr_stream

RR = OpClass.RR_ALU.value
LD = OpClass.RX_LOAD.value
ST = OpClass.RX_STORE.value
FP = OpClass.FP.value

OOO_IDEAL = MachineConfig(icache=HUGE, dcache=HUGE, l2=HUGE, predictor_kind="oracle",
                          warmup=True, in_order=False)


class TestBasics:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(in_order=False, issue_window=0)
        with pytest.raises(ValueError):
            MachineConfig(in_order=False, rob_size=0)

    def test_independent_stream_hits_issue_width(self):
        result = simulate(rr_stream(), 8, OOO_IDEAL)
        assert result.cpi == pytest.approx(0.25, abs=0.05)

    def test_determinism(self, modern_trace):
        config = MachineConfig(in_order=False)
        a = simulate(modern_trace, 10, config)
        b = simulate(modern_trace, 10, config)
        assert a.cycles == b.cycles

    def test_rename_stage_active_and_powered(self, modern_trace):
        from repro.power import power_report

        result = simulate(modern_trace, 8, MachineConfig(in_order=False))
        assert result.unit_occupancy[Unit.RENAME] > 0
        assert power_report(result).per_unit_gated[Unit.RENAME] > 0

    def test_in_order_rename_idle(self, modern_trace):
        result = simulate(modern_trace, 8, MachineConfig(in_order=True))
        assert result.unit_occupancy[Unit.RENAME] == 0


class TestReordering:
    def test_ooo_hides_cache_misses_under_compute(self):
        """The decisive difference: an in-order machine blocks issue for a
        missing load's full latency; out of order, younger independent work
        proceeds underneath the miss."""
        n = 2000
        period = 16
        codes = [LD if i % period == 0 else RR for i in range(n)]
        dest = [4 if i % period == 0 else 8 + i % 8 for i in range(n)]
        src1 = [0 if i % period == 0 else NO_REGISTER for i in range(n)]
        addr = [(i // period) * 4096 for i in range(n)]  # every load misses
        trace = make_trace("misses", codes, dest=dest, src1=src1, addr=addr)
        missy = dict(
            icache=HUGE,
            dcache=CacheConfig(size=4 * 1024, line_size=128, associativity=1,
                               miss_latency_fo4=400.0),
            l2=CacheConfig(size=8 * 1024, line_size=128, associativity=1,
                           miss_latency_fo4=400.0),
            predictor_kind="oracle",
            warmup=False,
        )
        in_order = simulate(trace, 12, MachineConfig(in_order=True, **missy))
        ooo = simulate(trace, 12, MachineConfig(in_order=False, mshr_entries=8, **missy))
        assert in_order.dcache_misses > 0
        assert ooo.cycles < in_order.cycles * 0.75

    def test_ooo_never_much_worse(self):
        """On hazard-free code the OOO engine matches in-order throughput
        (the rename stage costs one transit cycle, not bandwidth)."""
        trace = rr_stream()
        in_order = simulate(trace, 12, IDEAL)
        ooo = simulate(trace, 12, OOO_IDEAL)
        assert ooo.cycles <= in_order.cycles + 8

    def test_window_limits_reordering(self):
        """A tiny window degenerates toward in-order behaviour."""
        n = 2000
        codes = [RR] * n
        dest = [4 if i % 2 == 0 else 5 + (i % 8) for i in range(n)]
        src1 = [4 if i % 2 == 0 else NO_REGISTER for i in range(n)]
        trace = make_trace("mix", codes, dest=dest, src1=src1)
        tiny = MachineConfig(icache=HUGE, dcache=HUGE, l2=HUGE, predictor_kind="oracle",
                             warmup=True, in_order=False, issue_window=1)
        wide = MachineConfig(icache=HUGE, dcache=HUGE, l2=HUGE, predictor_kind="oracle",
                             warmup=True, in_order=False, issue_window=64)
        assert simulate(trace, 30, wide).cycles <= simulate(trace, 30, tiny).cycles

    def test_rob_backpressure(self):
        """A tiny ROB throttles dispatch behind a long-latency op."""
        n = 1200
        codes = [FP if i % 100 == 0 else RR for i in range(n)]
        dest = [4 + i % 8 for i in range(n)]
        fp_cycles = [40 if i % 100 == 0 else 0 for i in range(n)]
        trace = make_trace("fpstall", codes, dest=dest, fp_cycles=fp_cycles)
        small_rob = MachineConfig(icache=HUGE, dcache=HUGE, l2=HUGE,
                                  predictor_kind="oracle", warmup=True,
                                  in_order=False, rob_size=8)
        big_rob = MachineConfig(icache=HUGE, dcache=HUGE, l2=HUGE,
                                predictor_kind="oracle", warmup=True,
                                in_order=False, rob_size=256)
        assert simulate(trace, 12, big_rob).cycles < simulate(trace, 12, small_rob).cycles

    def test_loads_wait_for_older_store_addresses(self):
        """Conservative disambiguation: a load cannot access the cache
        before an older store has generated its address."""
        n = 1000
        codes = [ST if i % 2 == 0 else LD for i in range(n)]
        dest = [NO_REGISTER if i % 2 == 0 else 4 + i % 8 for i in range(n)]
        # Store base registers depend on a slow chain through r5.
        src1 = [5 if i % 2 == 0 else 0 for i in range(n)]
        addr = [(i * 8) % 8192 for i in range(n)]
        trace = make_trace("st-ld", codes, dest=dest, src1=src1, addr=addr)
        free = make_trace("ld-only", [LD] * n, dest=[4 + i % 8 for i in range(n)],
                          src1=[0] * n, addr=addr)
        assert simulate(trace, 16, OOO_IDEAL).cycles >= simulate(free, 16, OOO_IDEAL).cycles


class TestPaperClaim:
    def test_minor_difference_in_depth_optimisation(self, modern_spec):
        """Paper Sec. 3: in-order vs out-of-order show 'only minor
        differences in the pipeline depth optimization'."""
        from repro.analysis import optimum_from_sweep, run_depth_sweep

        depths = (2, 4, 6, 8, 10, 12, 16, 20, 25)
        in_order = run_depth_sweep(modern_spec, depths=depths, trace_length=3000,
                                   machine=MachineConfig(in_order=True),
                                   reference_depth=8)
        ooo = run_depth_sweep(modern_spec, depths=depths, trace_length=3000,
                              machine=MachineConfig(in_order=False),
                              reference_depth=8)
        opt_io = optimum_from_sweep(in_order, 3.0, gated=True).depth
        opt_ooo = optimum_from_sweep(ooo, 3.0, gated=True).depth
        assert abs(opt_io - opt_ooo) <= 3.0
        # OOO is uniformly faster but scales with depth the same way.
        speedups = in_order.bips() / ooo.bips()
        assert np.all(speedups < 1.05)
        assert speedups.max() / speedups.min() < 1.4
