"""Resolver: the tiered memory → single-flight → disk → compute path."""

import asyncio

import pytest

from repro.runtime import Resolver, RuntimeConfig


class FakeJob:
    """The resolver only needs ``cache_key()`` from a job."""

    def __init__(self, key: str):
        self._key = key

    def cache_key(self) -> str:
        return self._key


def make_resolver(tmp_path, recorder=None, **kwargs):
    calls = []

    def compute(job):
        calls.append(job.cache_key())
        return {"key": job.cache_key(), "value": len(calls)}

    kwargs.setdefault("compute", compute)
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    kwargs.setdefault("events_cache", None)
    resolver = Resolver(
        RuntimeConfig.load(),
        observer=recorder.append2 if recorder is not None else None,
        **kwargs,
    )
    resolver.compute_calls = calls
    return resolver


class Recorder:
    def __init__(self):
        self.events = []

    def append2(self, event, **fields):
        self.events.append((event, fields))

    def names(self):
        return [event for event, _ in self.events]


class TestSyncTiers:
    def test_miss_then_compute_then_memory_hit(self, tmp_path):
        resolver = make_resolver(tmp_path)
        job = FakeJob("k1" * 32)

        first = resolver.resolve(job)
        assert first.source == "computed"
        assert resolver.compute_calls == [job.cache_key()]

        second = resolver.resolve(job)
        assert second.source == "memory"
        assert second.payload is first.payload
        assert resolver.compute_calls == [job.cache_key()]  # no recompute
        assert resolver.stats.computed == 1
        assert resolver.stats.memory_hits == 1
        assert resolver.stats.misses == 1

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        make_resolver(tmp_path).resolve(FakeJob("k2" * 32))

        fresh = make_resolver(tmp_path)  # same directory, cold memory
        job = FakeJob("k2" * 32)
        assert fresh.resolve(job).source == "disk"
        assert fresh.resolve(job).source == "memory"  # promoted
        assert fresh.compute_calls == []

    def test_foreign_disk_payload_is_rejected(self, tmp_path):
        resolver = make_resolver(tmp_path)
        job = FakeJob("k3" * 32)
        resolver.disk.put(job.cache_key(), {"key": "somebody-else", "value": 1})

        resolution = resolver.resolve(job)
        assert resolution.source == "computed"
        assert resolver.stats.disk_hits == 0

    def test_invalidate_drops_both_tiers(self, tmp_path):
        resolver = make_resolver(tmp_path)
        job = FakeJob("k4" * 32)
        resolver.resolve(job)

        resolver.invalidate(job.cache_key())
        assert resolver.stats.invalidations == 1
        assert resolver.lookup(job) is None
        assert resolver.resolve(job).source == "computed"
        assert len(resolver.compute_calls) == 2

    def test_memory_tier_can_be_disabled(self, tmp_path):
        resolver = make_resolver(tmp_path, memory_entries=0)
        job = FakeJob("k5" * 32)
        resolver.resolve(job)
        assert resolver.resolve(job).source == "disk"  # never memory
        assert resolver.stats.memory_hits == 0

    def test_disk_tier_can_be_disabled(self, tmp_path):
        resolver = make_resolver(tmp_path, cache_dir=None)
        assert resolver.disk is None
        job = FakeJob("k6" * 32)
        resolver.resolve(job)
        assert resolver.resolve(job).source == "memory"

    def test_disk_write_failure_degrades_to_memory(self, tmp_path, monkeypatch):
        resolver = make_resolver(tmp_path)

        def refuse(key, payload):
            raise OSError("disk full")

        monkeypatch.setattr(resolver.disk, "put", refuse)
        job = FakeJob("k7" * 32)
        assert resolver.resolve(job).source == "computed"  # no exception
        assert resolver.resolve(job).source == "memory"
        assert resolver.stats.stores == 0

    def test_observer_sees_the_event_stream(self, tmp_path):
        recorder = Recorder()
        resolver = make_resolver(tmp_path, recorder=recorder)
        job = FakeJob("k8" * 32)
        resolver.resolve(job)
        resolver.resolve(job)
        assert recorder.names() == ["miss", "computed", "hit"]
        assert recorder.events[2][1] == {"layer": "memory"}
        assert recorder.events[1][1]["seconds"] >= 0.0

    def test_hit_ratio(self, tmp_path):
        resolver = make_resolver(tmp_path)
        job = FakeJob("k9" * 32)
        resolver.resolve(job)
        resolver.resolve(job)
        resolver.resolve(job)
        assert resolver.stats.hit_ratio() == pytest.approx(2 / 3)


class TestAsyncPath:
    def test_computed_then_memory(self, tmp_path):
        async def scenario():
            resolver = make_resolver(tmp_path)
            job = FakeJob("a1" * 32)
            first = await resolver.resolve_async(job)
            second = await resolver.resolve_async(job)
            await resolver.shutdown()
            return first, second

        first, second = asyncio.run(scenario())
        assert (first.source, second.source) == ("computed", "memory")

    def test_concurrent_same_key_coalesces(self, tmp_path):
        import threading

        release = threading.Event()

        def slow_compute(job):
            release.wait(timeout=5)
            return {"key": job.cache_key(), "value": 1}

        async def scenario():
            resolver = make_resolver(tmp_path, compute=slow_compute)
            job = FakeJob("a2" * 32)
            tasks = [
                asyncio.create_task(resolver.resolve_async(job)) for _ in range(3)
            ]
            while resolver.inflight() == 0:
                await asyncio.sleep(0.005)
            release.set()
            resolutions = await asyncio.gather(*tasks)
            await resolver.shutdown()
            return resolver, resolutions

        resolver, resolutions = asyncio.run(scenario())
        sources = sorted(r.source for r in resolutions)
        assert sources == ["coalesced", "coalesced", "computed"]
        assert resolver.stats.computed == 1
        assert resolver.stats.coalesced == 2
        payloads = {id(r.payload) for r in resolutions}
        assert len(payloads) == 1  # everyone shares the leader's payload

    def test_disk_hit_skips_compute(self, tmp_path):
        make_resolver(tmp_path).resolve(FakeJob("a3" * 32))

        async def scenario():
            resolver = make_resolver(tmp_path)
            resolution = await resolver.resolve_async(FakeJob("a3" * 32))
            await resolver.shutdown()
            return resolver, resolution

        resolver, resolution = asyncio.run(scenario())
        assert resolution.source == "disk"
        assert resolver.compute_calls == []

    def test_admission_rejection_propagates(self, tmp_path):
        class Closed:
            def admit(self):
                raise RuntimeError("overloaded")

            def release(self):
                raise AssertionError("release without admit")

            def enqueue(self):
                pass

            def dequeue(self):
                pass

        async def scenario():
            resolver = make_resolver(tmp_path)
            try:
                with pytest.raises(RuntimeError, match="overloaded"):
                    await resolver.resolve_async(FakeJob("a4" * 32), admission=Closed())
            finally:
                await resolver.shutdown()

        asyncio.run(scenario())

    def test_admission_brackets_the_compute(self, tmp_path):
        calls = []

        class Counting:
            def admit(self):
                calls.append("admit")

            def release(self):
                calls.append("release")

            def enqueue(self):
                calls.append("enqueue")

            def dequeue(self):
                calls.append("dequeue")

        async def scenario():
            resolver = make_resolver(tmp_path)
            await resolver.resolve_async(FakeJob("a5" * 32), admission=Counting())
            # A memory hit must bypass admission entirely.
            await resolver.resolve_async(FakeJob("a5" * 32), admission=Counting())
            await resolver.shutdown()

        asyncio.run(scenario())
        assert calls == ["admit", "enqueue", "dequeue", "release"]
