"""Tests of the shared execution runtime (repro.runtime)."""
