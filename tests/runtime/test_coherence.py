"""Cross-entry-point cache coherence (the runtime refactor's acceptance test).

A sweep computed through the CLI must be a *disk hit* — zero recompute,
proven by counters — for the serving daemon and for the experiments
runner's engine, because all entry points resolve the same
content-addressed :class:`SimJob` through the same
:class:`repro.runtime.Resolver` tier stack.
"""

import argparse
import asyncio
import json

import pytest

from repro.analysis.sweep import DEFAULT_DEPTHS
from repro.cli import main as cli_main
from repro.engine.cache import ResultCache
from repro.engine.scheduler import jobs_for_specs
from repro.experiments.runner import engine_from_args
from repro.pipeline.simulator import MachineConfig
from repro.runtime import RuntimeConfig
from repro.service.app import ServiceState, job_from_request

TRACE_LENGTH = 500
BACKEND = "fast"


@pytest.fixture()
def shared_cache(tmp_path, monkeypatch):
    directory = tmp_path / "shared-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(directory))
    return directory


def the_job(spec):
    [job] = jobs_for_specs(
        [spec],
        DEFAULT_DEPTHS,
        trace_length=TRACE_LENGTH,
        machine=MachineConfig(in_order=True),
        backend=BACKEND,
    )
    return job


def test_cli_sweep_is_a_disk_hit_everywhere(shared_cache, modern_spec, capsys):
    job = the_job(modern_spec)
    key = job.cache_key()
    assert ResultCache(shared_cache).get(key) is None  # genuinely cold

    # -- entry point 1: the CLI computes the sweep ---------------------------
    rc = cli_main(
        [
            "sweep", modern_spec.name,
            "--length", str(TRACE_LENGTH),
            "--backend", BACKEND,
            "--no-chart",
        ]
    )
    assert rc == 0
    capsys.readouterr()
    stored = ResultCache(shared_cache).get(key)
    assert stored is not None and stored["key"] == key

    # -- entry point 2: the daemon serves it from disk, computing nothing ----
    state = ServiceState(RuntimeConfig.load())
    body = {"workload": modern_spec.name, "length": TRACE_LENGTH, "backend": BACKEND}
    daemon_job, _params = job_from_request(body, state.config)
    assert daemon_job.cache_key() == key  # same job identity across layers

    async def daemon_lookup():
        try:
            return await state.resolve(daemon_job)
        finally:
            await state.shutdown()

    resolution = asyncio.run(daemon_lookup())
    assert resolution.source == "disk"
    assert resolution.key == key
    assert state.computed_total.value() == 0
    assert state.cache_misses.value() == 0
    assert state.cache_hits.value(layer="disk") == 1
    assert state.resolver.stats.computed == 0

    # -- entry point 3: the experiments runner's engine — pure cache hits ----
    engine = engine_from_args(
        argparse.Namespace(
            jobs=None, cache_dir=None, no_cache=False, progress=False, backend=BACKEND
        )
    )
    [result] = engine.run([job])
    assert result.cache_hit is True
    assert result.attempts == 0
    assert engine.report.cache_hits == 1
    assert engine.report.executed == 0
    assert engine.resolver.stats.computed == 0

    # -- one payload, byte-identical however it is reached -------------------
    canonical = json.dumps(stored, sort_keys=True)
    assert json.dumps(resolution.payload, sort_keys=True) == canonical
    assert (
        json.dumps(engine.resolver.disk.get(key), sort_keys=True) == canonical
    )


def test_daemon_computation_is_a_hit_for_the_cli(
    shared_cache, modern_spec, capsys, monkeypatch
):
    """The reverse direction: daemon-computed payloads serve the CLI."""
    state = ServiceState(RuntimeConfig.load())
    body = {
        "workload": modern_spec.name,
        "length": TRACE_LENGTH,
        "backend": BACKEND,
        "depths": [4],
    }
    daemon_job, _params = job_from_request(body, state.config)

    async def daemon_compute():
        try:
            return await state.resolve(daemon_job)
        finally:
            await state.shutdown()

    assert asyncio.run(daemon_compute()).source == "computed"

    # Any recompute below would be a coherence bug, so make it loud.
    def recompute_forbidden(job, events_cache=None):
        raise AssertionError(f"unexpected recompute of {job.name!r}")

    monkeypatch.setattr("repro.engine.worker.execute_job", recompute_forbidden)

    # 'repro simulate' resolves the same (spec, depth, length, backend) job.
    rc = cli_main(
        [
            "simulate", modern_spec.name,
            "--depth", "4",
            "--length", str(TRACE_LENGTH),
            "--backend", BACKEND,
        ]
    )
    assert rc == 0
    assert modern_spec.name in capsys.readouterr().out
    # The CLI's resolver found the daemon's payload on disk: the disk
    # cache still holds exactly one entry and its stats saw a hit.
    cache = ResultCache(shared_cache)
    assert cache.get(daemon_job.cache_key()) is not None
