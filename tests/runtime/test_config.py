"""RuntimeConfig: layering (defaults < env < file < flags) and provenance."""

import json

import pytest

from repro.runtime import (
    RuntimeConfig,
    current_config,
    reset_config,
    set_config,
    use_config,
)


class TestLayering:
    def test_defaults_when_nothing_is_set(self):
        config = RuntimeConfig.load(environ={})
        assert config.backend == "fast"
        assert config.jobs == 1
        assert config.analysis_cache is True
        assert config.provenance["backend"] == "default"

    def test_env_beats_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        monkeypatch.setenv("REPRO_SERVICE_BACKEND", "reference")
        config = RuntimeConfig.load()
        assert config.jobs == 6
        assert config.backend == "reference"
        assert config.provenance["jobs"] == "env:REPRO_JOBS"
        assert config.provenance["backend"] == "env:REPRO_SERVICE_BACKEND"

    def test_file_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_JOBS", "6")
        cfg = tmp_path / "repro.json"
        cfg.write_text(json.dumps({"jobs": 2, "progress": True}), encoding="utf-8")
        config = RuntimeConfig.load(file=cfg)
        assert config.jobs == 2
        assert config.progress is True
        assert config.provenance["jobs"] == f"file:{cfg}"

    def test_flags_beat_file(self, monkeypatch, tmp_path):
        cfg = tmp_path / "repro.json"
        cfg.write_text(json.dumps({"jobs": 2}), encoding="utf-8")
        config = RuntimeConfig.load(file=cfg, flags={"jobs": 9, "port": None})
        assert config.jobs == 9
        assert config.provenance["jobs"] == "flag:--jobs"
        assert config.provenance["port"] == "default"  # None flags are ignored

    def test_repro_config_env_names_the_file(self, monkeypatch, tmp_path):
        cfg = tmp_path / "named.json"
        cfg.write_text(json.dumps({"workers": 11}), encoding="utf-8")
        monkeypatch.setenv("REPRO_CONFIG", str(cfg))
        config = RuntimeConfig.load()
        assert config.workers == 11
        assert config.provenance["workers"] == f"file:{cfg}"

    def test_unknown_file_key_rejected(self, tmp_path):
        cfg = tmp_path / "repro.json"
        cfg.write_text(json.dumps({"warp_drive": True}), encoding="utf-8")
        with pytest.raises(ValueError, match="warp_drive"):
            RuntimeConfig.load(file=cfg)

    def test_malformed_file_rejected(self, tmp_path):
        cfg = tmp_path / "repro.json"
        cfg.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            RuntimeConfig.load(file=cfg)

    def test_toml_file_when_supported(self, tmp_path):
        try:
            import tomllib  # noqa: F401
        except ImportError:
            pytest.skip("tomllib needs Python >= 3.11")
        cfg = tmp_path / "repro.toml"
        cfg.write_text('jobs = 3\nbackend = "batched"\n', encoding="utf-8")
        config = RuntimeConfig.load(file=cfg)
        assert (config.jobs, config.backend) == (3, "batched")

    def test_invalid_env_value_is_a_clear_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_PORT", "not-a-port")
        with pytest.raises(ValueError, match="REPRO_SERVICE_PORT"):
            RuntimeConfig.load()


class TestSwitches:
    def test_analysis_cache_off_values(self, monkeypatch):
        for raw in ("0", "off", "no", "false", "OFF"):
            monkeypatch.setenv("REPRO_ANALYSIS_CACHE", raw)
            assert RuntimeConfig.load().analysis_cache is False
        monkeypatch.setenv("REPRO_ANALYSIS_CACHE", "on")
        assert RuntimeConfig.load().analysis_cache is True

    def test_kernel_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "off")
        assert RuntimeConfig.load().kernel is False

    def test_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "d"))
        config = RuntimeConfig.load()
        assert config.cache_dir == str(tmp_path / "d")
        assert config.provenance["cache_dir"] == "env:REPRO_CACHE_DIR"

    def test_events_cache_nests_under_explicit_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "d"))
        config = RuntimeConfig.load()
        assert config.events_cache_dir() == tmp_path / "d" / "analysis"

    def test_explicit_analysis_dir_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_ANALYSIS_CACHE_DIR", str(tmp_path / "a"))
        assert RuntimeConfig.load().events_cache_dir() == tmp_path / "a"


class TestClusterKnobs:
    def test_defaults(self):
        config = RuntimeConfig.load(environ={})
        assert config.cluster_shards == 3
        assert config.cluster_vnodes == 64
        assert config.cluster_replicas == 2
        assert config.provenance["cluster_shards"] == "default"

    def test_env_layer(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_SHARDS", "8")
        monkeypatch.setenv("REPRO_CLUSTER_BASE_PORT", "9200")
        monkeypatch.setenv("REPRO_CLUSTER_HEALTH_INTERVAL", "0.25")
        config = RuntimeConfig.load()
        assert config.cluster_shards == 8
        assert config.cluster_base_port == 9200
        assert config.cluster_health_interval == 0.25
        assert config.provenance["cluster_shards"] == "env:REPRO_CLUSTER_SHARDS"
        assert config.provenance["cluster_health_interval"] == (
            "env:REPRO_CLUSTER_HEALTH_INTERVAL"
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="cluster_shards"):
            RuntimeConfig(cluster_shards=0)
        with pytest.raises(ValueError, match="cluster_replicas"):
            RuntimeConfig(cluster_replicas=0)
        with pytest.raises(ValueError, match="cluster_health_interval"):
            RuntimeConfig(cluster_health_interval=0.0)
        with pytest.raises(ValueError, match="cluster_restart_limit"):
            RuntimeConfig(cluster_restart_limit=-1)


class TestProcessWideState:
    def test_current_config_tracks_env_until_installed(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert current_config().jobs == 4
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert current_config().jobs == 5  # no import-time caching

    def test_set_config_pins_and_reset_unpins(self, monkeypatch):
        pinned = RuntimeConfig.load().with_values(jobs=7)
        set_config(pinned)
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert current_config().jobs == 7
        reset_config()
        assert current_config().jobs == 2

    def test_use_config_restores_previous(self):
        with use_config(RuntimeConfig.load().with_values(jobs=3)):
            assert current_config().jobs == 3
        assert current_config().jobs == 1

    def test_export_propagates_cache_knobs_to_environ(self, monkeypatch, tmp_path):
        import os

        # Pre-touch so monkeypatch restores the pre-test state afterwards:
        # set_config(export=True) writes os.environ directly.
        monkeypatch.setenv("REPRO_ANALYSIS_CACHE", "on")
        monkeypatch.setenv("REPRO_KERNEL", "on")
        config = RuntimeConfig.load().with_values(
            cache_dir=str(tmp_path / "c"), analysis_cache=False
        )
        set_config(config, export=True)
        assert os.environ["REPRO_CACHE_DIR"] == str(tmp_path / "c")
        assert os.environ["REPRO_ANALYSIS_CACHE"] == "off"

    def test_with_values_merges_provenance(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        config = RuntimeConfig.load().with_values(backend="batched")
        assert config.provenance["jobs"] == "env:REPRO_JOBS"
        assert config.provenance["backend"] == "override"
