"""Shared fixtures: small traces, sweeps and design spaces.

Session-scoped where construction is expensive (sweeps) so the suite stays
fast; every fixture is deterministic.
"""

import pytest

from repro.analysis import run_depth_sweep
from repro.core import DesignSpace, calibrate_leakage
from repro.trace import WorkloadClass, by_class, generate_trace

TEST_TRACE_LENGTH = 3000
TEST_DEPTHS = (2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 20, 25)


@pytest.fixture(scope="session")
def _engine_cache_root(tmp_path_factory):
    return tmp_path_factory.mktemp("engine-cache")


@pytest.fixture(autouse=True)
def _isolated_engine_cache(_engine_cache_root, monkeypatch):
    """Keep engine-backed tests out of the user's ~/.cache caches.

    The analysis cache nests under ``REPRO_CACHE_DIR`` by default, so one
    variable isolates both; the two overrides are scrubbed because CLI
    commands mutate ``os.environ`` (``--no-cache``) and would otherwise
    leak between tests sharing this process.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(_engine_cache_root))
    monkeypatch.delenv("REPRO_ANALYSIS_CACHE", raising=False)
    monkeypatch.delenv("REPRO_ANALYSIS_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_CONFIG", raising=False)
    monkeypatch.delenv("REPRO_SEARCH_STATE_DIR", raising=False)
    monkeypatch.delenv("REPRO_SEARCH_BUDGET", raising=False)
    monkeypatch.delenv("REPRO_SEARCH_SEED", raising=False)
    monkeypatch.delenv("REPRO_SEARCH_CONCURRENCY", raising=False)
    monkeypatch.delenv("REPRO_FUZZ_STATE_DIR", raising=False)
    monkeypatch.delenv("REPRO_FUZZ_BUDGET", raising=False)
    monkeypatch.delenv("REPRO_FUZZ_SEED", raising=False)


@pytest.fixture(autouse=True)
def _reset_runtime_config():
    """Drop any process-wide RuntimeConfig installed by the code under test.

    ``repro.runtime.set_config`` is process-global (the experiment runner
    installs the flag-resolved config, for example); without this reset
    one test's installed config would shadow the next test's monkeypatched
    environment.
    """
    from repro.runtime import reset_config

    reset_config()
    yield
    reset_config()


@pytest.fixture(scope="session")
def modern_spec():
    return by_class(WorkloadClass.MODERN)[0]


@pytest.fixture(scope="session")
def float_spec():
    return by_class(WorkloadClass.FLOAT)[0]


@pytest.fixture(scope="session")
def legacy_spec():
    return by_class(WorkloadClass.LEGACY)[0]


@pytest.fixture(scope="session")
def modern_trace(modern_spec):
    return generate_trace(modern_spec, TEST_TRACE_LENGTH)


@pytest.fixture(scope="session")
def float_trace(float_spec):
    return generate_trace(float_spec, TEST_TRACE_LENGTH)


@pytest.fixture(scope="session")
def modern_sweep(modern_spec):
    return run_depth_sweep(
        modern_spec, depths=TEST_DEPTHS, trace_length=TEST_TRACE_LENGTH, reference_depth=8
    )


@pytest.fixture(scope="session")
def float_sweep(float_spec):
    return run_depth_sweep(
        float_spec, depths=TEST_DEPTHS, trace_length=TEST_TRACE_LENGTH, reference_depth=8
    )


@pytest.fixture()
def typical_space():
    """The paper's typical design point: defaults + 15% leakage at p=8."""
    space = DesignSpace()
    return space.with_power(calibrate_leakage(space, 0.15, 8.0))
