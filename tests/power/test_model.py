"""Tests of power accounting over simulation results."""

import pytest

from repro.pipeline import StagePlan, Unit, simulate
from repro.power import (
    UnitPowerModel,
    calibrate_global_leakage,
    calibrate_unit_leakage,
    latch_growth_exponent,
    plan_latch_count,
    power_report,
)


class TestLatchCounts:
    def test_monotone_in_depth(self):
        model = UnitPowerModel()
        counts = [plan_latch_count(StagePlan.for_depth(d), model) for d in range(2, 26)]
        assert counts == sorted(counts)

    def test_merge_rule_reduces_latches(self):
        """At depth 5 the agen queue merges into agen: the merged cycle
        counts only the larger unit's latches."""
        model = UnitPowerModel()
        merged = plan_latch_count(StagePlan.for_depth(5), model)
        unmerged = plan_latch_count(StagePlan.for_depth(6), model)
        budgets = model.unit_powers
        expected_drop = min(budgets[Unit.AGEN_QUEUE].latches, budgets[Unit.AGEN].latches)
        assert unmerged - merged == pytest.approx(expected_drop)

    def test_overall_exponent_near_paper(self):
        """Fig. 3: per-unit 1.3 aggregates to roughly 1.1 overall."""
        exponent, _counts = latch_growth_exponent(range(2, 26))
        assert 0.9 <= exponent <= 1.2

    def test_local_exponent_in_optimum_region(self):
        exponent, _counts = latch_growth_exponent(range(6, 14))
        assert 1.0 <= exponent <= 1.3

    def test_needs_two_depths(self):
        with pytest.raises(ValueError):
            latch_growth_exponent([8])


class TestPowerReport:
    def test_gated_never_exceeds_ungated(self, modern_trace):
        model = UnitPowerModel()
        for depth in (2, 5, 8, 16, 25):
            report = power_report(simulate(modern_trace, depth), model)
            assert report.gated_dynamic <= report.ungated_dynamic * (1 + 1e-9)

    def test_totals(self, modern_trace):
        report = power_report(simulate(modern_trace, 8))
        assert report.total_gated == pytest.approx(report.gated_dynamic + report.leakage)
        assert report.total_ungated == pytest.approx(report.ungated_dynamic + report.leakage)
        assert report.total(True) == report.total_gated
        assert report.total(False) == report.total_ungated

    def test_per_unit_breakdown_sums_to_gated(self, modern_trace):
        report = power_report(simulate(modern_trace, 8))
        assert sum(report.per_unit_gated.values()) == pytest.approx(report.gated_dynamic)

    def test_rename_consumes_nothing_in_order(self, modern_trace):
        report = power_report(simulate(modern_trace, 8))
        assert report.per_unit_gated[Unit.RENAME] == 0.0

    def test_ungated_power_grows_with_depth(self, modern_trace):
        model = UnitPowerModel()
        watts = [
            power_report(simulate(modern_trace, d), model).ungated_dynamic
            for d in (4, 8, 16, 25)
        ]
        assert watts == sorted(watts)

    def test_leakage_independent_of_activity(self, modern_trace, float_trace):
        model = UnitPowerModel()
        a = power_report(simulate(modern_trace, 8), model)
        b = power_report(simulate(float_trace, 8), model)
        assert a.leakage == pytest.approx(b.leakage)

    def test_latch_count_reported(self, modern_trace):
        report = power_report(simulate(modern_trace, 8))
        assert report.latch_count == pytest.approx(
            plan_latch_count(StagePlan.for_depth(8), UnitPowerModel())
        )


class TestCalibration:
    def test_unit_leakage_hits_fraction(self, modern_trace):
        result = simulate(modern_trace, 8)
        model = calibrate_unit_leakage(UnitPowerModel(), result, 0.15, gated=True)
        assert power_report(result, model).leakage_fraction(True) == pytest.approx(0.15)

    def test_ungated_calibration(self, modern_trace):
        result = simulate(modern_trace, 8)
        model = calibrate_unit_leakage(UnitPowerModel(), result, 0.3, gated=False)
        assert power_report(result, model).leakage_fraction(False) == pytest.approx(0.3)

    def test_fraction_bounds(self, modern_trace):
        result = simulate(modern_trace, 8)
        with pytest.raises(ValueError):
            calibrate_unit_leakage(UnitPowerModel(), result, 1.0)

    def test_global_calibration_averages(self, modern_trace, float_trace):
        results = [simulate(modern_trace, 8), simulate(float_trace, 8)]
        model = calibrate_global_leakage(UnitPowerModel(), results, 0.15, gated=True)
        shares = [power_report(r, model).leakage_fraction(True) for r in results]
        # Neither workload individually needs to hit 15%, but they must
        # bracket it (stall-heavy one above, busy one below or equal).
        assert min(shares) <= 0.15 + 1e-9 <= max(shares) + 0.1

    def test_global_calibration_validation(self, modern_trace):
        with pytest.raises(ValueError):
            calibrate_global_leakage(UnitPowerModel(), [], 0.15)
        with pytest.raises(ValueError):
            calibrate_global_leakage(UnitPowerModel(), [simulate(modern_trace, 8)], -0.1)
