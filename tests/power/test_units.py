"""Tests of per-unit power factors and latch budgets."""

import pytest

from repro.pipeline import Unit
from repro.power import DEFAULT_UNIT_POWERS, PER_UNIT_GAMMA, UnitPower, UnitPowerModel


class TestUnitPower:
    def test_defaults_cover_every_unit(self):
        assert set(DEFAULT_UNIT_POWERS) == set(Unit)

    def test_queues_have_capacity(self):
        assert DEFAULT_UNIT_POWERS[Unit.AGEN_QUEUE].capacity > 1
        assert DEFAULT_UNIT_POWERS[Unit.EXEC_QUEUE].capacity > 1
        assert DEFAULT_UNIT_POWERS[Unit.EXECUTE].capacity == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            UnitPower(latches=-1.0)
        with pytest.raises(ValueError):
            UnitPower(latches=10.0, dynamic_weight=-0.5)
        with pytest.raises(ValueError):
            UnitPower(latches=10.0, capacity=0.5)


class TestUnitPowerModel:
    def test_per_unit_gamma_matches_paper(self):
        assert UnitPowerModel().gamma_unit == PER_UNIT_GAMMA == 1.3

    def test_unit_latches_power_law(self):
        model = UnitPowerModel()
        base = model.unit_powers[Unit.DECODE].latches
        assert model.unit_latches(Unit.DECODE, 1) == pytest.approx(base)
        assert model.unit_latches(Unit.DECODE, 4) == pytest.approx(base * 4**1.3)

    def test_zero_stages_zero_latches(self):
        assert UnitPowerModel().unit_latches(Unit.RENAME, 0) == 0.0

    def test_negative_stages_rejected(self):
        with pytest.raises(ValueError):
            UnitPowerModel().unit_latches(Unit.DECODE, -1)

    def test_with_leakage(self):
        model = UnitPowerModel().with_leakage(0.42)
        assert model.leakage_per_latch == 0.42
        assert model.gamma_unit == PER_UNIT_GAMMA

    def test_with_gamma(self):
        model = UnitPowerModel().with_gamma(1.5)
        assert model.gamma_unit == 1.5

    def test_missing_unit_rejected(self):
        partial = {Unit.FETCH: UnitPower(latches=10.0)}
        with pytest.raises(ValueError):
            UnitPowerModel(unit_powers=partial)

    def test_validation(self):
        with pytest.raises(ValueError):
            UnitPowerModel(gamma_unit=0.0)
        with pytest.raises(ValueError):
            UnitPowerModel(dynamic_per_latch=0.0)
        with pytest.raises(ValueError):
            UnitPowerModel(leakage_per_latch=-0.1)
