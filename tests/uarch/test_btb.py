"""Tests of the branch target buffer."""

import pytest

from repro.uarch import BranchTargetBuffer


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=64)
        assert btb.lookup_and_update(0x400) is False
        assert btb.lookup_and_update(0x400) is True

    def test_aliasing_evicts(self):
        btb = BranchTargetBuffer(entries=64)
        a = 0x0
        b = 64 * 4  # same index, different tag
        btb.lookup_and_update(a)
        btb.lookup_and_update(b)
        assert btb.lookup_and_update(a) is False

    def test_distinct_slots_coexist(self):
        btb = BranchTargetBuffer(entries=64)
        btb.lookup_and_update(0x0)
        btb.lookup_and_update(0x4)
        assert btb.probe(0x0) and btb.probe(0x4)

    def test_probe_does_not_install(self):
        btb = BranchTargetBuffer(entries=64)
        assert btb.probe(0x400) is False
        assert btb.lookup_and_update(0x400) is False  # still a miss

    def test_stats_and_reset(self):
        btb = BranchTargetBuffer(entries=64)
        btb.lookup_and_update(0x0)
        btb.lookup_and_update(0x0)
        assert btb.hits == 1 and btb.misses == 1
        assert btb.miss_rate == pytest.approx(0.5)
        btb.reset()
        assert btb.miss_rate == 0.0
        assert btb.probe(0x0) is False

    def test_entries_power_of_two(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=100)


class TestBTBInMachine:
    def test_smaller_btb_never_faster(self, modern_trace):
        from repro.pipeline import MachineConfig, simulate

        perfect = simulate(modern_trace, 16, MachineConfig())
        finite = simulate(modern_trace, 16, MachineConfig(btb_entries=64))
        assert finite.cycles >= perfect.cycles

    def test_bubble_grows_with_decode_depth(self):
        """The BTB-miss bubble is a front-end refill: deeper decode, more
        cycles lost per missing target."""
        import numpy as np

        from repro.isa import NO_REGISTER, OpClass
        from repro.pipeline import MachineConfig, simulate
        from repro.trace.trace import Trace

        n = 4000
        BR, RR = OpClass.BRANCH.value, OpClass.RR_ALU.value
        period = 8
        codes = [BR if i % period == 0 else RR for i in range(n)]
        dest = [NO_REGISTER if i % period == 0 else 4 + i % 8 for i in range(n)]
        taken = [i % period == 0 for i in range(n)]
        # Cycle through many branch PCs so a small BTB always misses.
        pcs = [(i % 2048) * 4 for i in range(n)]
        trace = Trace(
            name="btb-stress",
            opclass=np.asarray(codes, dtype=np.int8),
            pc=np.asarray(pcs, dtype=np.int64),
            dest=np.asarray(dest, dtype=np.int8),
            src1=np.full(n, NO_REGISTER, dtype=np.int8),
            src2=np.full(n, NO_REGISTER, dtype=np.int8),
            address=np.zeros(n, dtype=np.int64),
            taken=np.asarray(taken, dtype=bool),
            fp_cycles=np.zeros(n, dtype=np.int16),
        )
        tiny = MachineConfig(btb_entries=16, predictor_kind="taken")
        shallow = simulate(trace, 6, tiny)
        deep = simulate(trace, 24, tiny)
        bubble_shallow = shallow.cycles - simulate(trace, 6, MachineConfig(
            predictor_kind="taken")).cycles
        bubble_deep = deep.cycles - simulate(trace, 24, MachineConfig(
            predictor_kind="taken")).cycles
        assert bubble_deep > bubble_shallow * 2

    def test_config_validation(self):
        from repro.pipeline import MachineConfig

        with pytest.raises(ValueError):
            MachineConfig(btb_entries=100)
