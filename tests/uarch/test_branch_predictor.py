"""Tests of the branch predictor substrate."""

import pytest

from repro.uarch import BimodalPredictor, GsharePredictor, StaticTakenPredictor


class TestBimodal:
    def test_learns_taken_bias(self):
        predictor = BimodalPredictor(entries=256)
        pc = 0x400
        for _ in range(4):
            predictor.update(pc, True)
        assert predictor.predict(pc) is True

    def test_learns_not_taken_bias(self):
        predictor = BimodalPredictor(entries=256)
        pc = 0x400
        for _ in range(4):
            predictor.update(pc, False)
        assert predictor.predict(pc) is False

    def test_hysteresis_survives_one_flip(self):
        predictor = BimodalPredictor(entries=256)
        pc = 0x400
        for _ in range(4):
            predictor.update(pc, True)
        predictor.update(pc, False)  # one anomaly
        assert predictor.predict(pc) is True

    def test_observe_returns_correctness(self):
        predictor = BimodalPredictor(entries=256)
        pc = 0x100
        for _ in range(4):
            predictor.update(pc, True)
        assert predictor.observe(pc, True) is True
        # Now train the other way until flipped.
        for _ in range(4):
            predictor.update(pc, False)
        assert predictor.observe(pc, True) is False

    def test_distinct_pcs_distinct_entries(self):
        predictor = BimodalPredictor(entries=256)
        for _ in range(4):
            predictor.update(0x100, True)
            predictor.update(0x200, False)
        assert predictor.predict(0x100) is True
        assert predictor.predict(0x200) is False

    def test_reset(self):
        predictor = BimodalPredictor(entries=256)
        for _ in range(4):
            predictor.update(0x100, False)
        predictor.reset()
        assert predictor.predict(0x100) is True  # back to weakly-taken init

    @pytest.mark.parametrize("bad", [0, 3, 100])
    def test_entries_must_be_power_of_two(self, bad):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=bad)

    def test_accuracy_on_biased_stream(self):
        import random

        rng = random.Random(5)
        predictor = BimodalPredictor(entries=1024)
        correct = 0
        n = 2000
        for _ in range(n):
            pc = rng.randrange(16) * 4
            taken = rng.random() < 0.9
            correct += predictor.observe(pc, taken)
        assert correct / n > 0.8


class TestGshare:
    def test_learns_alternating_pattern(self):
        """History indexing lets gshare learn what bimodal cannot:
        a strictly alternating branch."""
        gshare = GsharePredictor(entries=1024, history_bits=4)
        bimodal = BimodalPredictor(entries=1024)
        pattern = [True, False] * 400
        g_correct = b_correct = 0
        for taken in pattern:
            g_correct += gshare.observe(0x40, taken)
            b_correct += bimodal.observe(0x40, taken)
        assert g_correct > b_correct
        assert g_correct / len(pattern) > 0.9

    def test_reset_clears_history(self):
        gshare = GsharePredictor(entries=256, history_bits=4)
        for taken in [True, False] * 50:
            gshare.update(0x40, taken)
        gshare.reset()
        assert gshare._history == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            GsharePredictor(entries=100)
        with pytest.raises(ValueError):
            GsharePredictor(entries=256, history_bits=0)


class TestStaticTaken:
    def test_always_taken(self):
        predictor = StaticTakenPredictor()
        assert predictor.predict(0x1234) is True
        predictor.update(0x1234, False)
        assert predictor.predict(0x1234) is True

    def test_observe(self):
        predictor = StaticTakenPredictor()
        assert predictor.observe(0, True) is True
        assert predictor.observe(0, False) is False
