"""Tests of the set-associative LRU cache substrate."""

import pytest

from repro.uarch import Cache, CacheConfig


def small_cache(assoc: int = 2, sets: int = 4, line: int = 64) -> Cache:
    return Cache(CacheConfig(size=line * assoc * sets, line_size=line, associativity=assoc))


class TestConfig:
    def test_sets_computation(self):
        config = CacheConfig(size=64 * 1024, line_size=128, associativity=4)
        assert config.sets == 128

    def test_line_size_power_of_two(self):
        with pytest.raises(ValueError):
            CacheConfig(size=1024, line_size=96, associativity=1)

    def test_size_must_hold_one_set(self):
        with pytest.raises(ValueError):
            CacheConfig(size=64, line_size=64, associativity=4)

    def test_size_must_be_whole_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(size=64 * 3, line_size=64, associativity=2)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size=1024, line_size=64, associativity=1, miss_latency_fo4=-1.0)

    def test_nonpositive_associativity_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size=1024, line_size=64, associativity=0)


class TestBehaviour:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True

    def test_same_line_hits(self):
        cache = small_cache(line=64)
        cache.access(0x1000)
        assert cache.access(0x1000 + 63) is True

    def test_adjacent_line_misses(self):
        cache = small_cache(line=64)
        cache.access(0x1000)
        assert cache.access(0x1000 + 64) is False

    def test_lru_eviction_order(self):
        cache = small_cache(assoc=2, sets=1, line=64)
        a, b, c = 0x000, 0x040, 0x080  # all map to the single set
        cache.access(a)
        cache.access(b)
        cache.access(c)  # evicts a (LRU)
        assert cache.access(b) is True
        assert cache.access(a) is False  # a was evicted

    def test_touch_refreshes_lru(self):
        cache = small_cache(assoc=2, sets=1, line=64)
        a, b, c = 0x000, 0x040, 0x080
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a becomes most recent
        cache.access(c)  # evicts b now
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_conflict_misses_with_low_associativity(self):
        """Three lines mapping to one 2-way set thrash forever."""
        cache = small_cache(assoc=2, sets=4, line=64)
        set_stride = 4 * 64  # same set every stride
        addresses = [0, set_stride, 2 * set_stride]
        for _ in range(5):
            for addr in addresses:
                cache.access(addr)
        assert cache.stats.miss_rate > 0.9

    def test_full_associativity_holds_working_set(self):
        cache = Cache(CacheConfig(size=8 * 64, line_size=64, associativity=8))
        addresses = [i * 64 for i in range(8)]
        for addr in addresses:
            cache.access(addr)
        assert all(cache.access(addr) for addr in addresses)

    def test_probe_does_not_mutate(self):
        cache = small_cache()
        cache.access(0x1000)
        before = cache.stats.accesses
        assert cache.probe(0x1000) is True
        assert cache.probe(0x9000) is False
        assert cache.stats.accesses == before

    def test_stats_counting(self):
        cache = small_cache()
        cache.access(0x0)
        cache.access(0x0)
        cache.access(0x4000)
        assert cache.stats.accesses == 3
        assert cache.stats.misses == 2
        assert cache.stats.hits == 1
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    def test_reset(self):
        cache = small_cache()
        cache.access(0x1000)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.access(0x1000) is False  # cold again

    def test_empty_stats_miss_rate(self):
        assert small_cache().stats.miss_rate == 0.0

    def test_non_power_of_two_sets_supported(self):
        config = CacheConfig(size=3 * 2 * 64, line_size=64, associativity=2)
        cache = Cache(config)
        assert config.sets == 3
        cache.access(0x0)
        assert cache.access(0x0) is True
