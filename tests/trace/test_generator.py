"""Tests of the synthetic trace generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import NO_REGISTER, OpClass
from repro.trace import WorkloadClass, WorkloadSpec, generate_trace

BASE_MIX = {
    OpClass.RR_ALU: 0.35,
    OpClass.RX_LOAD: 0.15,
    OpClass.RX_STORE: 0.10,
    OpClass.RX_ALU: 0.18,
    OpClass.BRANCH: 0.18,
    OpClass.FP: 0.02,
    OpClass.COMPLEX: 0.02,
}


def make_spec(**overrides) -> WorkloadSpec:
    defaults = dict(
        name="gen-test",
        workload_class=WorkloadClass.MODERN,
        mix=BASE_MIX,
        branch_sites=64,
        branch_bias=0.9,
        taken_rate=0.6,
        data_working_set=64 * 1024,
        data_locality=0.9,
        code_footprint=16 * 1024,
        dependency_distance=4.0,
        pointer_chase=0.1,
        seed=1,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestDeterminism:
    def test_same_inputs_same_trace(self):
        a = generate_trace(make_spec(), 2000)
        b = generate_trace(make_spec(), 2000)
        assert np.array_equal(a.opclass, b.opclass)
        assert np.array_equal(a.pc, b.pc)
        assert np.array_equal(a.taken, b.taken)
        assert np.array_equal(a.address, b.address)

    def test_different_seeds_differ(self):
        a = generate_trace(make_spec(seed=1), 2000)
        b = generate_trace(make_spec(seed=2), 2000)
        assert not np.array_equal(a.taken, b.taken)

    def test_different_names_differ(self):
        a = generate_trace(make_spec(name="x"), 2000)
        b = generate_trace(make_spec(name="y"), 2000)
        assert not np.array_equal(a.opclass, b.opclass)


class TestStructure:
    def test_length(self):
        assert len(generate_trace(make_spec(), 1234)) == 1234

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            generate_trace(make_spec(), 0)

    def test_mix_approximately_respected(self):
        trace = generate_trace(make_spec(), 20000)
        stats = trace.stats()
        for cls, frac in BASE_MIX.items():
            assert stats.mix[cls] == pytest.approx(frac, abs=0.05)

    def test_branch_taken_rate_ordering(self):
        """Dynamic taken share exceeds the static rate (taken backward
        branches re-execute themselves), but the knob still orders it."""
        rarely = generate_trace(make_spec(taken_rate=0.2, name="rare"), 20000)
        often = generate_trace(make_spec(taken_rate=0.8, name="often"), 20000)
        assert often.stats().taken_fraction > rarely.stats().taken_fraction + 0.2

    def test_pcs_within_code_footprint(self):
        spec = make_spec(code_footprint=16 * 1024)
        trace = generate_trace(spec, 5000)
        assert int(trace.pc.max()) < 16 * 1024
        assert int(trace.pc.min()) >= 0

    def test_addresses_within_working_set(self):
        spec = make_spec(data_working_set=32 * 1024)
        trace = generate_trace(spec, 5000)
        assert int(trace.address.max()) < 32 * 1024

    def test_branch_pcs_recur(self):
        """Static-image property: dynamic branches revisit static PCs."""
        trace = generate_trace(make_spec(), 20000)
        branch_pcs = trace.pc[trace.opclass == OpClass.BRANCH.value]
        assert np.unique(branch_pcs).size < branch_pcs.size / 2

    def test_same_pc_same_opclass(self):
        """A static program slot always decodes to the same instruction."""
        trace = generate_trace(make_spec(), 10000)
        seen = {}
        for pc, code in zip(trace.pc.tolist(), trace.opclass.tolist()):
            assert seen.setdefault(pc, code) == code

    def test_taken_only_on_branches(self):
        trace = generate_trace(make_spec(), 10000)
        non_branch_taken = trace.taken & (trace.opclass != OpClass.BRANCH.value)
        assert not non_branch_taken.any()

    def test_fp_cycles_only_on_long_ops(self):
        trace = generate_trace(make_spec(), 10000)
        long_mask = (trace.opclass == OpClass.FP.value) | (
            trace.opclass == OpClass.COMPLEX.value
        )
        assert (trace.fp_cycles[~long_mask] == 0).all()
        assert (trace.fp_cycles[long_mask] > 0).all()

    def test_memory_ops_have_base_register(self):
        trace = generate_trace(make_spec(), 10000)
        memory = np.isin(
            trace.opclass,
            [OpClass.RX_LOAD.value, OpClass.RX_STORE.value, OpClass.RX_ALU.value],
        )
        assert (trace.src1[memory] != NO_REGISTER).all()

    def test_branches_write_no_register(self):
        trace = generate_trace(make_spec(), 10000)
        branches = trace.opclass == OpClass.BRANCH.value
        assert (trace.dest[branches] == NO_REGISTER).all()

    def test_low_chase_uses_base_register_pool(self):
        trace = generate_trace(make_spec(pointer_chase=0.0), 10000)
        memory = np.isin(
            trace.opclass,
            [OpClass.RX_LOAD.value, OpClass.RX_STORE.value, OpClass.RX_ALU.value],
        )
        bases = trace.src1[memory]
        assert (bases < 4).all()  # the long-lived pool is registers 0..3


class TestLocalityKnobs:
    def test_higher_locality_fewer_distinct_lines(self):
        low = generate_trace(make_spec(data_locality=0.5, name="lo"), 10000)
        high = generate_trace(make_spec(data_locality=0.99, name="hi"), 10000)
        assert high.stats().distinct_lines < low.stats().distinct_lines

    def test_bias_controls_predictability(self):
        """Higher site bias means dynamic outcomes repeat per PC more."""

        def agreement(trace):
            by_pc = {}
            agree = total = 0
            for pc, code, taken in zip(
                trace.pc.tolist(), trace.opclass.tolist(), trace.taken.tolist()
            ):
                if code != OpClass.BRANCH.value:
                    continue
                if pc in by_pc:
                    total += 1
                    agree += by_pc[pc] == taken
                by_pc[pc] = taken
            return agree / total if total else 0.0

        noisy = generate_trace(make_spec(branch_bias=0.6, name="noisy"), 20000)
        steady = generate_trace(make_spec(branch_bias=0.98, name="steady"), 20000)
        assert agreement(steady) > agreement(noisy) + 0.15

    @given(
        locality=st.floats(0.5, 0.99),
        bias=st.floats(0.5, 1.0),
        dep=st.floats(1.0, 10.0),
        length=st.integers(64, 3000),
    )
    @settings(max_examples=20, deadline=None)
    def test_generator_always_produces_valid_traces(self, locality, bias, dep, length):
        spec = make_spec(
            data_locality=locality, branch_bias=bias, dependency_distance=dep, name="hyp"
        )
        trace = generate_trace(spec, length)
        assert len(trace) == length
        # Every instruction must survive the record-level validation.
        trace.instruction(0)
        trace.instruction(length - 1)
        assert trace.stats().instructions == length
