"""Cross-process determinism: the contract the engine's cache rests on.

The cache keys a job by its :class:`WorkloadSpec` (not by the generated
trace), which is only sound if ``generate_trace(spec, length)`` is
bit-identical in every process — including fresh interpreters with
different hash seeds and import orders.  These tests pin that contract:
the same spec and length must produce the same trace digest and the same
``SimJob`` cache key in a clean subprocess as in this one.
"""

import hashlib
import json
import pathlib
import subprocess
import sys


from repro.engine import SimJob
from repro.trace import Trace, generate_trace, get_workload

WORKLOAD = "gzip"
LENGTH = 700
DEPTHS = (2, 6, 10)

_SRC_ROOT = pathlib.Path(__file__).resolve().parents[2] / "src"

_SUBPROCESS_SCRIPT = """
import json, sys
from tests.trace.test_determinism import subprocess_probe
print(json.dumps(subprocess_probe(sys.argv[1], int(sys.argv[2]))))
"""


def trace_digest(trace: Trace) -> str:
    """SHA-256 over every array of the structure-of-arrays trace."""
    digest = hashlib.sha256()
    for name in ("opclass", "pc", "dest", "src1", "src2", "address",
                 "taken", "fp_cycles"):
        digest.update(name.encode())
        digest.update(getattr(trace, name).tobytes())
    return digest.hexdigest()


def subprocess_probe(workload: str, length: int) -> dict:
    """Computed in-process here, and re-computed in a fresh interpreter."""
    spec = get_workload(workload)
    return {
        "trace": trace_digest(generate_trace(spec, length)),
        "key": SimJob(spec, DEPTHS, trace_length=length).cache_key(),
    }


class TestInProcess:
    def test_repeated_generation_is_identical(self):
        spec = get_workload(WORKLOAD)
        assert trace_digest(generate_trace(spec, LENGTH)) == trace_digest(
            generate_trace(spec, LENGTH)
        )

    def test_length_changes_trace(self):
        spec = get_workload(WORKLOAD)
        assert trace_digest(generate_trace(spec, LENGTH)) != trace_digest(
            generate_trace(spec, LENGTH + 1)
        )


class TestCrossProcess:
    def test_fresh_interpreter_reproduces_trace_and_key(self):
        expected = subprocess_probe(WORKLOAD, LENGTH)
        repo_root = _SRC_ROOT.parent
        proc = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SCRIPT, WORKLOAD, str(LENGTH)],
            capture_output=True,
            text=True,
            cwd=repo_root,
            env={
                "PYTHONPATH": f"{_SRC_ROOT}:{repo_root}",
                "PYTHONHASHSEED": "random",  # hashing must not leak into traces
                "PATH": "/usr/bin:/bin",
            },
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        fresh = json.loads(proc.stdout)
        assert fresh == expected
