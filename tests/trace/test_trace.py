"""Tests of the Trace container."""

import numpy as np
import pytest

from repro.isa import Instruction, OpClass
from repro.trace import Trace


def simple_trace() -> Trace:
    return Trace.from_instructions(
        "t",
        [
            Instruction(0, OpClass.RR_ALU, pc=0, dest=4, src1=5),
            Instruction(1, OpClass.RX_LOAD, pc=4, dest=6, src1=0, address=64),
            Instruction(2, OpClass.BRANCH, pc=8, src1=6, taken=True),
            Instruction(3, OpClass.FP, pc=12, dest=7, fp_cycles=5),
        ],
    )


class TestConstruction:
    def test_round_trip(self):
        trace = simple_trace()
        assert len(trace) == 4
        load = trace.instruction(1)
        assert load.opclass is OpClass.RX_LOAD
        assert load.dest == 6
        assert load.address == 64

    def test_iteration(self):
        classes = [i.opclass for i in simple_trace()]
        assert classes == [OpClass.RR_ALU, OpClass.RX_LOAD, OpClass.BRANCH, OpClass.FP]

    def test_index_bounds(self):
        trace = simple_trace()
        with pytest.raises(IndexError):
            trace.instruction(4)
        with pytest.raises(IndexError):
            trace.instruction(-1)

    def test_arrays_read_only(self):
        trace = simple_trace()
        with pytest.raises(ValueError):
            trace.opclass[0] = 3

    def test_immutable_attributes(self):
        trace = simple_trace()
        with pytest.raises(AttributeError):
            trace.name = "other"

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace(
                name="bad",
                opclass=np.zeros(3, dtype=np.int8),
                pc=np.zeros(2, dtype=np.int64),
                dest=np.zeros(3, dtype=np.int8),
                src1=np.zeros(3, dtype=np.int8),
                src2=np.zeros(3, dtype=np.int8),
                address=np.zeros(3, dtype=np.int64),
                taken=np.zeros(3, dtype=bool),
                fp_cycles=np.zeros(3, dtype=np.int16),
            )

    def test_empty(self):
        trace = Trace.empty("e")
        assert len(trace) == 0
        assert trace.name == "e"

    def test_from_empty_list(self):
        assert len(Trace.from_instructions("e", [])) == 0


class TestStats:
    def test_mix_fractions(self):
        stats = simple_trace().stats()
        assert stats.instructions == 4
        assert stats.mix[OpClass.RR_ALU] == pytest.approx(0.25)
        assert stats.branch_fraction == pytest.approx(0.25)
        assert stats.memory_fraction == pytest.approx(0.25)
        assert stats.fp_fraction == pytest.approx(0.25)

    def test_taken_fraction(self):
        stats = simple_trace().stats()
        assert stats.taken_fraction == pytest.approx(1.0)

    def test_distinct_counts(self):
        stats = simple_trace().stats()
        assert stats.distinct_pcs == 4
        assert stats.distinct_lines == 1

    def test_empty_trace_stats_rejected(self):
        with pytest.raises(ValueError):
            Trace.empty().stats()
