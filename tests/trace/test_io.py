"""Tests of trace persistence."""

import numpy as np
import pytest

from repro.trace import generate_trace
from repro.trace.io import TRACE_FORMAT_VERSION, load_trace, save_trace


class TestRoundTrip:
    def test_identical_after_round_trip(self, modern_spec, tmp_path):
        trace = generate_trace(modern_spec, 1000)
        path = save_trace(trace, tmp_path / "t.npz")
        loaded = load_trace(path)
        assert loaded.name == trace.name
        for column in ("opclass", "pc", "dest", "src1", "src2", "address",
                       "taken", "fp_cycles"):
            assert np.array_equal(getattr(loaded, column), getattr(trace, column))

    def test_simulation_identical(self, modern_spec, tmp_path):
        from repro.pipeline import simulate

        trace = generate_trace(modern_spec, 1000)
        loaded = load_trace(save_trace(trace, tmp_path / "t"))
        assert simulate(loaded, 8).cycles == simulate(trace, 8).cycles

    def test_suffix_added(self, modern_spec, tmp_path):
        trace = generate_trace(modern_spec, 100)
        path = save_trace(trace, tmp_path / "plain")
        assert path.suffix == ".npz"

    def test_parent_dirs_created(self, modern_spec, tmp_path):
        trace = generate_trace(modern_spec, 100)
        path = save_trace(trace, tmp_path / "a" / "b" / "t.npz")
        assert path.exists()


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "nope.npz")

    def test_not_a_trace(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(ValueError, match="version"):
            load_trace(path)

    def test_wrong_version(self, modern_spec, tmp_path):
        trace = generate_trace(modern_spec, 100)
        path = save_trace(trace, tmp_path / "t.npz")
        with np.load(path) as archive:
            data = dict(archive)
        data["version"] = np.asarray([TRACE_FORMAT_VERSION + 1])
        np.savez(path, **data)
        with pytest.raises(ValueError, match="format version"):
            load_trace(path)

    def test_missing_column(self, modern_spec, tmp_path):
        trace = generate_trace(modern_spec, 100)
        path = save_trace(trace, tmp_path / "t.npz")
        with np.load(path) as archive:
            data = dict(archive)
        del data["taken"]
        np.savez(path, **data)
        with pytest.raises(ValueError, match="missing trace columns"):
            load_trace(path)
