"""Validation tests for WorkloadSpec."""

import pytest

from repro.isa import OpClass
from repro.trace import WorkloadClass, WorkloadSpec

GOOD_MIX = {
    OpClass.RR_ALU: 0.4,
    OpClass.RX_LOAD: 0.2,
    OpClass.RX_STORE: 0.1,
    OpClass.RX_ALU: 0.1,
    OpClass.BRANCH: 0.18,
    OpClass.FP: 0.02,
}


def make(**overrides):
    kwargs = dict(name="spec-test", workload_class=WorkloadClass.MODERN, mix=GOOD_MIX)
    kwargs.update(overrides)
    return WorkloadSpec(**kwargs)


class TestValidation:
    def test_valid_spec(self):
        spec = make()
        assert spec.branch_fraction == pytest.approx(0.18)
        assert spec.memory_fraction == pytest.approx(0.4)
        assert spec.fp_fraction == pytest.approx(0.02)

    def test_empty_name(self):
        with pytest.raises(ValueError):
            make(name="")

    def test_mix_must_sum_to_one(self):
        bad = dict(GOOD_MIX)
        bad[OpClass.RR_ALU] = 0.9
        with pytest.raises(ValueError, match="sum to 1"):
            make(mix=bad)

    def test_negative_mix_entry(self):
        bad = dict(GOOD_MIX)
        bad[OpClass.RR_ALU] = 0.6
        bad[OpClass.RX_LOAD] = -0.0000001
        with pytest.raises(ValueError):
            make(mix=bad)

    @pytest.mark.parametrize("field,value", [
        ("branch_sites", 0),
        ("branch_bias", 0.4),
        ("branch_bias", 1.1),
        ("taken_rate", -0.1),
        ("taken_rate", 1.1),
        ("data_locality", 1.5),
        ("data_working_set", 10),
        ("code_footprint", 10),
        ("dependency_distance", 0.5),
        ("pointer_chase", 1.2),
        ("fp_latency", 0),
    ])
    def test_out_of_range_fields(self, field, value):
        with pytest.raises(ValueError):
            make(**{field: value})

    def test_frozen(self):
        spec = make()
        with pytest.raises(AttributeError):
            spec.branch_bias = 0.99

    def test_missing_classes_default_to_zero(self):
        sparse = {OpClass.RR_ALU: 0.85, OpClass.BRANCH: 0.15}
        spec = make(mix=sparse)
        assert spec.memory_fraction == 0.0
        assert spec.fp_fraction == 0.0
