"""Tests of the 55-workload suite."""

import pytest

from repro.trace import (
    SUITE_SIZE,
    WorkloadClass,
    by_class,
    generate_trace,
    get_workload,
    small_suite,
    suite,
    suite_names,
)


class TestSuiteShape:
    def test_size_is_55(self):
        assert len(suite()) == SUITE_SIZE == 55

    def test_names_unique(self):
        names = suite_names()
        assert len(set(names)) == len(names)

    def test_every_class_represented(self):
        for workload_class in WorkloadClass:
            assert len(by_class(workload_class)) >= 8

    def test_class_counts_sum(self):
        assert sum(len(by_class(c)) for c in WorkloadClass) == SUITE_SIZE

    def test_specint95_has_real_suite_names(self):
        names = {s.name for s in by_class(WorkloadClass.SPECINT95)}
        assert {"go", "gcc95", "li", "compress95"} <= names

    def test_deterministic_across_calls(self):
        assert suite() == suite()

    def test_specs_are_valid(self):
        for spec in suite():
            assert abs(sum(spec.mix.values()) - 1.0) < 1e-9
            assert 0.5 <= spec.branch_bias <= 1.0


class TestLookup:
    def test_get_workload(self):
        spec = get_workload("gzip")
        assert spec.workload_class is WorkloadClass.SPECINT2000

    def test_unknown_name_raises_with_hint(self):
        with pytest.raises(KeyError, match="gcc"):
            get_workload("gcc")

    def test_small_suite(self):
        reduced = small_suite(2)
        assert len(reduced) == 2 * len(WorkloadClass)
        classes = {s.workload_class for s in reduced}
        assert classes == set(WorkloadClass)

    def test_small_suite_validation(self):
        with pytest.raises(ValueError):
            small_suite(0)


class TestClassCharacter:
    """The knob ranges must actually produce the class separation the
    paper's Fig. 7 relies on (checked at spec level; the behavioural
    check lives in the integration tests)."""

    def test_legacy_has_biggest_code(self):
        legacy = min(s.code_footprint for s in by_class(WorkloadClass.LEGACY))
        spec95 = max(s.code_footprint for s in by_class(WorkloadClass.SPECINT95))
        assert legacy > spec95

    def test_float_has_most_fp(self):
        float_fp = min(s.fp_fraction for s in by_class(WorkloadClass.FLOAT))
        other_fp = max(
            s.fp_fraction for c in WorkloadClass if c is not WorkloadClass.FLOAT
            for s in by_class(c)
        )
        assert float_fp > other_fp

    def test_float_fp_fraction_varies(self):
        """The paper's FP optima spread 6-16; FP intensity must vary."""
        fps = [s.fp_fraction for s in by_class(WorkloadClass.FLOAT)]
        assert max(fps) / min(fps) > 1.8

    def test_legacy_has_tightest_dependencies(self):
        legacy = max(s.dependency_distance for s in by_class(WorkloadClass.LEGACY))
        float_dep = min(s.dependency_distance for s in by_class(WorkloadClass.FLOAT))
        assert legacy < float_dep

    def test_branch_density_ordering(self):
        legacy = min(s.branch_fraction for s in by_class(WorkloadClass.LEGACY))
        float_br = max(s.branch_fraction for s in by_class(WorkloadClass.FLOAT))
        assert legacy > float_br

    def test_all_specs_generate(self):
        for spec in small_suite(1):
            trace = generate_trace(spec, 256)
            assert len(trace) == 256
