"""FuzzStore: content-addressed bundles with the shared cache surface."""

from repro.fuzz import FUZZ_SCHEMA, FuzzBundle, FuzzStore, bundle_identity, probe_for
from repro.fingerprint import fingerprint_digest


def _bundle(index=0):
    probe = probe_for(7, index)
    return FuzzBundle.for_failure(
        probe,
        ("reference", "fast"),
        trace_length=64,
        depths=(8,),
        mismatches=["fast/depth=8: field cycles: 1 != 2"],
    )


def test_bundle_id_is_content_addressed():
    probe = probe_for(7, 0)
    bundle = _bundle()
    identity = bundle_identity(probe, ("reference", "fast"), 64, (8,))
    assert bundle.bundle_id == fingerprint_digest(identity)
    # The mismatch text and writing version are not part of the identity.
    other = _bundle()
    other.mismatches = ["different text"]
    other.version = "0.0.0"
    assert other.bundle_id == bundle.bundle_id


def test_roundtrip(tmp_path):
    store = FuzzStore(tmp_path)
    bundle = _bundle()
    path = store.save(bundle)
    assert path == store.path_for(bundle.bundle_id)
    assert path.parent.name == f"v{FUZZ_SCHEMA}"
    loaded = store.load(bundle.bundle_id)
    assert loaded == bundle


def test_rewrite_is_byte_identical(tmp_path):
    store = FuzzStore(tmp_path)
    bundle = _bundle()
    first = store.save(bundle).read_bytes()
    second = store.save(bundle).read_bytes()
    assert first == second


def test_load_missing_corrupt_or_stale(tmp_path):
    store = FuzzStore(tmp_path)
    assert store.load("0" * 64) is None
    bundle = _bundle()
    path = store.save(bundle)
    path.write_text("{not json", encoding="utf-8")
    assert store.load(bundle.bundle_id) is None
    # A file whose recorded id disagrees with its name is rejected too.
    other = _bundle(index=1)
    store.path_for(other.bundle_id).write_text(
        store.save(bundle).read_text(encoding="utf-8"), encoding="utf-8"
    )
    assert store.load(other.bundle_id) is None


def test_ids_find_and_cache_surface(tmp_path):
    store = FuzzStore(tmp_path)
    assert len(store) == 0 and store.size_bytes() == 0
    bundles = [_bundle(i) for i in range(3)]
    for bundle in bundles:
        store.save(bundle)
    assert store.ids() == sorted(b.bundle_id for b in bundles)
    assert len(store) == 3
    assert store.size_bytes() > 0
    target = bundles[0]
    assert store.find(target.bundle_id[:12]) == target
    assert store.find("") is None  # ambiguous prefix
    assert store.clear() == 3
    assert len(store) == 0
