"""Differential runner: agreement, fault finding, minimization, replay.

The injected fault perturbs one backend's timing through the runner's
``simulate`` injection point — the fuzzer must find it, shrink the
failing probe to the minimization floor and a single depth, store a
replayable bundle, and report the failure fixed once the fault is gone.
"""

import dataclasses

import pytest

from repro.fuzz import (
    DEFAULT_FUZZ_BACKENDS,
    FuzzStore,
    minimize_probe,
    probe_for,
    replay_bundle,
    run_fuzz,
    run_probe,
)
from repro.fuzz.runner import MIN_TRACE_LENGTH, _simulate

ALL_BACKENDS = ("reference", "fast", "batched", "suite", "cycle")


def _faulty(probe, backend, trace_length, depths):
    """The 'fast' backend mis-prices every depth by one cycle."""
    results = _simulate(probe, backend, trace_length, depths)
    if backend != "fast":
        return results
    return [dataclasses.replace(r, cycles=r.cycles + 1) for r in results]


def test_backends_agree_on_probes():
    report = run_fuzz(7, 5, ALL_BACKENDS)
    assert report.passed
    assert report.probes == 5
    assert report.backends == ALL_BACKENDS


def test_default_backends_cover_registry():
    assert "reference" in DEFAULT_FUZZ_BACKENDS
    assert "cycle" in DEFAULT_FUZZ_BACKENDS


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown backends"):
        run_fuzz(7, 1, ("reference", "warp"))


def test_injected_fault_is_found_and_minimized(tmp_path):
    store = FuzzStore(tmp_path)
    report = run_fuzz(7, 2, ALL_BACKENDS, store=store, simulate=_faulty)
    assert not report.passed
    assert len(report.failures) == 2  # the fault fires on every probe
    bundle = store.load(report.failures[0])
    assert bundle is not None
    # Minimized: the fault persists at any length/depth, so the shrink
    # runs all the way down.
    assert bundle.trace_length == MIN_TRACE_LENGTH
    assert len(bundle.depths) == 1
    assert bundle.mismatches
    assert all("fast" in line for line in bundle.mismatches)


def test_fuzz_campaign_is_deterministic(tmp_path):
    a = run_fuzz(7, 2, ALL_BACKENDS, simulate=_faulty)
    b = run_fuzz(7, 2, ALL_BACKENDS, simulate=_faulty)
    assert a.to_doc() == b.to_doc()


def test_bundle_replays_and_reports_fixed(tmp_path):
    store = FuzzStore(tmp_path)
    report = run_fuzz(7, 1, ALL_BACKENDS, store=store, simulate=_faulty)
    bundle = store.load(report.failures[0])
    # With the fault still in place the bundle reproduces...
    broken = replay_bundle(bundle, simulate=_faulty)
    assert not broken.fixed
    assert not broken.generator_drift
    # ...and with the real backends it is fixed.
    fixed = replay_bundle(bundle)
    assert fixed.fixed
    assert not fixed.generator_drift


def test_replay_detects_generator_drift(tmp_path):
    store = FuzzStore(tmp_path)
    report = run_fuzz(7, 1, ALL_BACKENDS, store=store, simulate=_faulty)
    bundle = store.load(report.failures[0])
    bundle.probe_digest = "0" * 64
    outcome = replay_bundle(bundle)
    assert outcome.generator_drift


def test_minimize_keeps_failure_reproducible():
    probe = probe_for(7, 0)
    length, depths, mismatches = minimize_probe(probe, ALL_BACKENDS, _faulty)
    assert mismatches
    assert length <= probe.trace_length
    assert set(depths) <= set(probe.depths)
    assert run_probe(probe, ALL_BACKENDS, length, depths, _faulty)


def test_run_probe_clean_without_fault():
    probe = probe_for(7, 0)
    assert run_probe(probe, ALL_BACKENDS) == []
