"""Seed-corpus regression suite.

Two pinned artifacts guard the fuzzer's long-term promises:

* ``fixtures/corpus.json`` — probe digests for pinned seeds.  A pinned
  seed must replay a byte-identical probe sequence forever; if a change
  to the generator is intentional, regenerate the corpus in the same
  commit and call out that old bundles' coordinates are invalidated.
* ``fixtures/bundles/`` — a repro bundle from a previously-found
  mismatch (an injected fast-backend mis-pricing, minimized by the
  fuzzer).  Replaying it against today's backends must report *fixed*;
  if it ever reports still-failing, a real cross-backend divergence has
  been (re)introduced.
"""

import json
import pathlib

from repro.fuzz import FuzzStore, probe_digest, probe_for, replay_bundle

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def test_pinned_seeds_replay_byte_identical_probes():
    corpus = json.loads((FIXTURES / "corpus.json").read_text(encoding="utf-8"))
    assert corpus  # the fixture exists and is non-empty
    for seed, digests in corpus.items():
        for index, expected in enumerate(digests):
            actual = probe_digest(probe_for(int(seed), index))
            assert actual == expected, (
                f"probe ({seed}, {index}) changed: {actual} != {expected}; "
                "the generator is no longer deterministic with history "
                "(or was changed without regenerating the corpus)"
            )


def test_committed_bundle_replays_as_fixed():
    store = FuzzStore(FIXTURES / "bundles")
    ids = store.ids()
    assert ids, "fixture bundle missing"
    for bundle_id in ids:
        bundle = store.load(bundle_id)
        assert bundle is not None
        outcome = replay_bundle(bundle)
        assert not outcome.generator_drift, (
            f"bundle {bundle_id[:16]}: generator drift — its (seed, index) "
            "no longer regenerate the original probe"
        )
        assert outcome.fixed, (
            f"bundle {bundle_id[:16]} reproduces again:\n"
            + "\n".join(outcome.mismatches)
        )
