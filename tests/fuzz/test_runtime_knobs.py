"""The REPRO_FUZZ_* configuration knobs and the fourth cache family path."""

import pathlib

from repro.runtime import RuntimeConfig


def test_fuzz_env_knobs():
    config = RuntimeConfig.load(
        environ={
            "REPRO_FUZZ_STATE_DIR": "/tmp/bundles",
            "REPRO_FUZZ_BUDGET": "25",
            "REPRO_FUZZ_SEED": "42",
        }
    )
    assert config.fuzz_state_dir == "/tmp/bundles"
    assert config.fuzz_budget == 25
    assert config.fuzz_seed == 42
    assert config.provenance["fuzz_budget"] == "env:REPRO_FUZZ_BUDGET"
    assert config.fuzz_state_path() == pathlib.Path("/tmp/bundles")


def test_fuzz_state_nests_under_relocated_cache_dir():
    config = RuntimeConfig.load(environ={"REPRO_CACHE_DIR": "/tmp/relocated"})
    assert config.fuzz_state_path() == pathlib.Path("/tmp/relocated/fuzz")


def test_fuzz_defaults():
    config = RuntimeConfig.load(environ={})
    assert config.fuzz_state_dir is None
    assert config.fuzz_budget == 100
    assert config.fuzz_seed == 0
    assert config.fuzz_state_path().name == "fuzz"


def test_negative_fuzz_knobs_rejected():
    import pytest

    with pytest.raises(ValueError):
        RuntimeConfig(fuzz_budget=-1)
    with pytest.raises(ValueError):
        RuntimeConfig(fuzz_seed=-1)
