"""Probe generation: deterministic, valid and diverse by construction."""

from repro.fuzz import probe_digest, probe_for
from repro.pipeline.plan import MAX_DEPTH, MIN_DEPTH
from repro.pipeline.simulator import MachineConfig
from repro.trace.spec import WorkloadSpec


def test_same_coordinates_same_probe():
    a = probe_for(7, 3)
    b = probe_for(7, 3)
    assert a == b
    assert probe_digest(a) == probe_digest(b)


def test_coordinates_are_independent():
    """Probe k does not depend on probes 0..k-1 having been generated."""
    direct = probe_for(7, 9)
    after_others = [probe_for(7, i) for i in range(10)][9]
    assert direct == after_others


def test_distinct_coordinates_distinct_probes():
    digests = {probe_digest(probe_for(7, i)) for i in range(32)}
    assert len(digests) == 32
    assert probe_digest(probe_for(7, 0)) != probe_digest(probe_for(8, 0))


def test_probes_satisfy_model_validators():
    """Construction passes WorkloadSpec/MachineConfig __post_init__ checks;
    the sampled ranges stay inside the simulators' contract."""
    for index in range(64):
        probe = probe_for(7, index)
        assert isinstance(probe.spec, WorkloadSpec)
        assert isinstance(probe.machine, MachineConfig)
        assert probe.depths == tuple(sorted(set(probe.depths)))
        assert all(MIN_DEPTH <= d <= MAX_DEPTH for d in probe.depths)
        assert probe.trace_length >= 300
        assert probe.spec.name == f"fuzz-7-{index}"


def test_probe_mix_covers_every_op_class():
    probe = probe_for(7, 0)
    assert all(frac > 0.0 for frac in probe.spec.mix.values())
    assert abs(sum(probe.spec.mix.values()) - 1.0) < 1e-9
