"""The CI env-isolation gate: os.environ reads stay inside repro.runtime."""

import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
GATE = REPO_ROOT / "tools" / "check_env_isolation.py"

sys.path.insert(0, str(REPO_ROOT / "tools"))
from check_env_isolation import findings  # noqa: E402


def test_the_tree_is_clean():
    assert findings(REPO_ROOT) == []


def test_an_offending_module_is_reported(tmp_path):
    package = tmp_path / "src" / "repro" / "somewhere"
    package.mkdir(parents=True)
    (package / "mod.py").write_text(
        'import os\nHOME = os.environ["HOME"]\n', encoding="utf-8"
    )
    runtime = tmp_path / "src" / "repro" / "runtime"
    runtime.mkdir()
    (runtime / "config.py").write_text(
        "import os\nALLOWED = os.getenv('PATH')\n", encoding="utf-8"
    )

    offending = findings(tmp_path)
    assert len(offending) == 1  # runtime/ is exempt; 'import os' alone is fine
    assert offending[0].startswith("src/repro/somewhere/mod.py:2:")
    assert "os.environ" in offending[0]


def test_cli_exit_codes(tmp_path):
    clean = subprocess.run(
        [sys.executable, str(GATE), "--root", str(REPO_ROOT)],
        capture_output=True, text=True,
    )
    assert clean.returncode == 0, clean.stderr
    assert "env isolation OK" in clean.stdout

    package = tmp_path / "src" / "repro"
    package.mkdir(parents=True)
    (package / "bad.py").write_text("import os\nX = os.getenv('X')\n", encoding="utf-8")
    dirty = subprocess.run(
        [sys.executable, str(GATE), "--root", str(tmp_path)],
        capture_output=True, text=True,
    )
    assert dirty.returncode == 1
    assert "bad.py:2" in dirty.stderr
