"""On-disk result cache: atomicity, corruption tolerance, bookkeeping."""

import json

import pytest

from repro.engine import ResultCache, default_cache_dir

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62
PAYLOAD = {"schema": 1, "key": KEY, "results": [1, 2, 3]}


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestRoundTrip:
    def test_put_then_get(self, cache):
        cache.put(KEY, PAYLOAD)
        assert cache.get(KEY) == PAYLOAD
        assert cache.stats.writes == 1
        assert cache.stats.hits == 1

    def test_missing_is_a_miss(self, cache):
        assert cache.get(KEY) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_entries_shard_by_prefix(self, cache):
        path = cache.put(KEY, PAYLOAD)
        assert path.parent.name == KEY[:2]
        assert path.name == f"{KEY}.json"

    def test_no_temp_files_left_behind(self, cache):
        cache.put(KEY, PAYLOAD)
        cache.put(OTHER, PAYLOAD)
        leftovers = [p for p in cache.directory.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []

    def test_len_counts_entries(self, cache):
        assert len(cache) == 0
        cache.put(KEY, PAYLOAD)
        cache.put(OTHER, PAYLOAD)
        assert len(cache) == 2

    def test_overwrite_replaces(self, cache):
        cache.put(KEY, PAYLOAD)
        cache.put(KEY, {"schema": 2})
        assert cache.get(KEY) == {"schema": 2}
        assert len(cache) == 1


class TestCorruption:
    def test_truncated_json_is_discarded(self, cache):
        path = cache.put(KEY, PAYLOAD)
        path.write_text(json.dumps(PAYLOAD)[:15], encoding="utf-8")
        assert cache.get(KEY) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()  # the bad entry is removed, not retried

    def test_non_object_json_is_discarded(self, cache):
        path = cache.put(KEY, PAYLOAD)
        path.write_text("[1, 2, 3]", encoding="utf-8")
        assert cache.get(KEY) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()

    def test_recovers_after_discard(self, cache):
        path = cache.put(KEY, PAYLOAD)
        path.write_text("garbage", encoding="utf-8")
        assert cache.get(KEY) is None
        cache.put(KEY, PAYLOAD)
        assert cache.get(KEY) == PAYLOAD


class TestMaintenance:
    def test_invalidate_removes_entry(self, cache):
        cache.put(KEY, PAYLOAD)
        cache.invalidate(KEY)
        assert cache.get(KEY) is None

    def test_invalidate_missing_is_quiet(self, cache):
        cache.invalidate(KEY)

    def test_clear(self, cache):
        cache.put(KEY, PAYLOAD)
        cache.put(OTHER, PAYLOAD)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.clear() == 0

    def test_clear_on_missing_directory(self, tmp_path):
        assert ResultCache(tmp_path / "never-created").clear() == 0

    def test_implausible_keys_rejected(self, cache):
        for bad in ("", "ab", "../../../etc/passwd", "a/b"):
            with pytest.raises(ValueError):
                cache.path_for(bad)


class TestDefaultDirectory:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro" / "engine"

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        path = default_cache_dir()
        assert path.parts[-3:] == (".cache", "repro", "engine")


class TestConcurrentWrites:
    def test_same_key_hammered_from_threads_never_tears(self, cache):
        """Concurrent same-pid writers (the serving daemon's thread pool)
        must never collide on a temp file or leave a torn entry."""
        import threading

        errors = []

        def writer(ordinal):
            payload = {"writer": ordinal, "filler": "x" * 2000}
            try:
                for _ in range(20):
                    cache.put(KEY, payload)
                    read = cache.get(KEY)
                    assert read is not None and "writer" in read
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        final = cache.get(KEY)
        assert final is not None and len(final["filler"]) == 2000

    def test_no_temp_files_left_behind(self, cache):
        for _ in range(5):
            cache.put(KEY, PAYLOAD)
        leftovers = [
            p for p in cache.directory.rglob("*") if p.name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_unique_temp_names_per_call(self, cache, monkeypatch):
        """The temp path must differ call-to-call even within one process."""
        import os

        seen = []
        original = os.replace

        def spying_replace(src, dst):
            seen.append(str(src))
            return original(src, dst)

        monkeypatch.setattr(os, "replace", spying_replace)
        cache.put(KEY, PAYLOAD)
        cache.put(KEY, PAYLOAD)
        assert len(seen) == 2 and seen[0] != seen[1]


class TestSizeBytes:
    def test_empty_and_missing_directory(self, tmp_path, cache):
        assert ResultCache(tmp_path / "never-created").size_bytes() == 0
        assert cache.size_bytes() == 0

    def test_size_tracks_entries(self, cache):
        cache.put(KEY, PAYLOAD)
        one = cache.size_bytes()
        assert one > 0
        cache.put(OTHER, PAYLOAD)
        assert cache.size_bytes() > one
        cache.clear()
        assert cache.size_bytes() == 0
