"""Tests of the batch-execution engine (repro.engine)."""
