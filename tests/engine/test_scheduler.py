"""Scheduler behaviour: cache-first resolution, retries, parallel determinism."""

import time

import pytest

from repro.engine import (
    EngineConfig,
    ExecutionEngine,
    JobExecutionError,
    SimJob,
    default_engine,
    execute_job,
    payload_for,
)
from repro.engine.scheduler import jobs_for_specs
from repro.engine.serialize import result_to_dict
from repro.trace import get_workload, small_suite

DEPTHS = (2, 4, 8)
LENGTH = 600


@pytest.fixture(scope="module")
def spec():
    return get_workload("gzip")


@pytest.fixture(scope="module")
def job(spec):
    return SimJob(spec, DEPTHS, trace_length=LENGTH)


def cached_engine(tmp_path, **overrides) -> ExecutionEngine:
    config = EngineConfig(cache_dir=tmp_path / "cache", **overrides)
    return ExecutionEngine(config)


def payload_dicts(job_result):
    return [result_to_dict(r) for r in job_result.results]


class TestConfig:
    def test_defaults_serial_uncached(self):
        engine = default_engine()
        assert engine.config.workers == 1
        assert engine.cache is None

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(workers=-1)
        with pytest.raises(ValueError):
            EngineConfig(timeout=0)
        with pytest.raises(ValueError):
            EngineConfig(retries=-1)


class TestCaching:
    def test_cold_run_executes_then_warm_run_hits(self, tmp_path, job):
        cold = cached_engine(tmp_path)
        [first] = cold.run([job])
        assert not first.cache_hit
        assert first.attempts == 1
        assert cold.report.executed == 1
        assert cold.report.cache_hits == 0

        warm = cached_engine(tmp_path)  # fresh engine, same directory
        [second] = warm.run([job])
        assert second.cache_hit
        assert second.attempts == 0
        assert warm.report.executed == 0
        assert warm.report.cache_hits == 1
        assert payload_dicts(second) == payload_dicts(first)

    def test_parameter_change_misses(self, tmp_path, spec, job):
        cached_engine(tmp_path).run([job])
        other = SimJob(spec, DEPTHS, trace_length=LENGTH + 1)
        engine = cached_engine(tmp_path)
        [result] = engine.run([other])
        assert not result.cache_hit
        assert engine.report.executed == 1

    def test_version_change_misses(self, tmp_path, job, monkeypatch):
        cached_engine(tmp_path).run([job])
        monkeypatch.setattr("repro.__version__", "999.0.0-test")
        engine = cached_engine(tmp_path)
        [result] = engine.run([job])
        assert not result.cache_hit  # the key embeds the code version

    def test_semantically_corrupt_payload_recomputed(self, tmp_path, job):
        engine = cached_engine(tmp_path)
        engine.run([job])
        key = job.cache_key()
        stored = engine.cache.get(key)
        stored["depths"] = [99]  # decodes fine, fails job validation
        engine.cache.put(key, stored)

        fresh = cached_engine(tmp_path)
        [result] = fresh.run([job])
        assert not result.cache_hit
        assert fresh.cache.stats.corrupt == 1
        # the recomputation healed the entry:
        warm = cached_engine(tmp_path)
        [again] = warm.run([job])
        assert again.cache_hit

    def test_unwritable_cache_degrades_to_uncached(self, tmp_path, job):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("in the way", encoding="utf-8")
        engine = ExecutionEngine(EngineConfig(cache_dir=blocker))
        [result] = engine.run([job])  # must not raise
        assert not result.cache_hit
        assert result.attempts == 1  # the write failure consumed no retries
        assert engine.report.executed == 1
        assert engine.report.failures == 0

    def test_uncached_engine_always_executes(self, job):
        engine = default_engine()
        engine.run([job])
        engine.run([job])
        assert engine.report.executed == 2
        assert engine.report.cache_hits == 0


class TestBackends:
    def test_fast_backend_executes_and_matches_reference(self, tmp_path, spec):
        engine = cached_engine(tmp_path)
        (reference,) = engine.run(
            jobs_for_specs([spec], DEPTHS, trace_length=LENGTH, backend="reference")
        )
        (fast,) = engine.run(
            jobs_for_specs([spec], DEPTHS, trace_length=LENGTH, backend="fast")
        )
        assert payload_dicts(fast) == payload_dicts(reference)
        # Backend-aware keys: the fast job executed, it was not served the
        # reference job's cache entry.
        assert not fast.cache_hit
        assert engine.report.executed == 2

    def test_fast_backend_cache_round_trip(self, tmp_path, spec):
        job = SimJob(spec, DEPTHS, trace_length=LENGTH, backend="fast")
        cold = cached_engine(tmp_path).run([job])[0]
        warm = cached_engine(tmp_path).run([job])[0]
        assert not cold.cache_hit and warm.cache_hit
        assert payload_dicts(warm) == payload_dicts(cold)


class TestRetries:
    def test_flaky_job_retries_then_succeeds(self, tmp_path, job):
        failures = {"left": 1}

        def flaky(j):
            if failures["left"]:
                failures["left"] -= 1
                raise RuntimeError("transient")
            return execute_job(j)

        engine = cached_engine(tmp_path, retries=1)
        [result] = engine.run([job], runner=flaky)
        assert result.attempts == 2
        assert engine.report.retries == 1
        assert engine.report.failures == 0

    def test_exhausted_retries_raise(self, tmp_path, job):
        def broken(_job):
            raise RuntimeError("permanent")

        engine = cached_engine(tmp_path, retries=2)
        with pytest.raises(JobExecutionError) as excinfo:
            engine.run([job], runner=broken)
        assert excinfo.value.attempts == 3
        assert engine.report.failures == 1
        assert engine.report.records[-1].error is not None
        assert len(engine.cache) == 0  # nothing bogus was cached

    def test_zero_retries_fail_fast(self, tmp_path, job):
        def broken(_job):
            raise RuntimeError("permanent")

        engine = cached_engine(tmp_path, retries=0)
        with pytest.raises(JobExecutionError) as excinfo:
            engine.run([job], runner=broken)
        assert excinfo.value.attempts == 1


class TestDeterminism:
    def test_parallel_equals_serial(self, tmp_path):
        specs = small_suite(1)
        depths = (2, 4, 8, 12)
        jobs = jobs_for_specs(specs, depths, trace_length=LENGTH)

        serial = default_engine().run(jobs)
        parallel = ExecutionEngine(EngineConfig(workers=2)).run(jobs)

        assert [r.job.name for r in serial] == [s.name for s in specs]
        assert [r.job.name for r in parallel] == [s.name for s in specs]
        for a, b in zip(serial, parallel):
            assert payload_dicts(a) == payload_dicts(b)

    def test_warm_cache_equals_direct_simulation(self, tmp_path, job):
        cached_engine(tmp_path).run([job])
        [warm] = cached_engine(tmp_path).run([job])
        direct = payload_for(job, warm.results)  # re-serialises reconstructed results
        assert direct == execute_job(job)

    def test_results_in_submission_order(self, tmp_path):
        specs = list(reversed(small_suite(1)))
        engine = cached_engine(tmp_path)
        results = engine.run(jobs_for_specs(specs, DEPTHS, trace_length=LENGTH))
        assert [r.job.name for r in results] == [s.name for s in specs]

    def test_run_specs_convenience(self, spec):
        engine = default_engine()
        results = engine.run_specs([spec], DEPTHS, trace_length=LENGTH)
        assert len(results) == 1
        assert results[0].job.depths == DEPTHS


def _sleeper(_job) -> dict:  # must be module-level: shipped to worker processes
    time.sleep(60)
    return {}


@pytest.mark.slow
class TestTimeout:
    def test_timed_out_job_fails_after_retries(self, spec):
        job = SimJob(spec, (2,), trace_length=100)
        engine = ExecutionEngine(EngineConfig(workers=2, timeout=1.0, retries=0))
        with pytest.raises(JobExecutionError) as excinfo:
            engine.run([job, job], runner=_sleeper)
        assert isinstance(excinfo.value.cause, TimeoutError)
