"""Batch manifests: parsing, selector resolution, end-to-end execution."""

import io
import json

import pytest

from repro.engine import EngineConfig, ExecutionEngine
from repro.engine.manifest import (
    BatchManifest,
    ManifestError,
    load_manifest,
    run_manifest,
)
from repro.trace import WorkloadClass, by_class, small_suite, suite


def write_manifest(tmp_path, data) -> str:
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps(data), encoding="utf-8")
    return str(path)


TINY = {
    "defaults": {"depths": [2, 4, 8, 12], "trace_length": 500},
    "sweeps": [
        {"label": "named", "workloads": ["gzip", "mcf"]},
        {"label": "override", "workloads": ["gzip"], "trace_length": 600,
         "metric": 2.0, "gated": False},
    ],
}


class TestLoad:
    def test_tiny_manifest(self, tmp_path):
        manifest = load_manifest(write_manifest(tmp_path, TINY))
        first, second = manifest.requests
        assert first.label == "named"
        assert [s.name for s in first.specs] == ["gzip", "mcf"]
        assert first.depths == (2, 4, 8, 12)
        assert first.trace_length == 500
        assert first.metric == 3.0 and first.gated  # package defaults
        assert second.trace_length == 600
        assert second.metric == 2.0 and not second.gated

    def test_selectors(self, tmp_path):
        data = {
            "defaults": {"depths": [2, 4]},
            "sweeps": [
                {"workloads": "small:1"},
                {"workloads": "class:float"},
                {"workloads": "suite"},
            ],
        }
        manifest = load_manifest(write_manifest(tmp_path, data))
        small, floats, full = manifest.requests
        assert small.specs == small_suite(1)
        assert floats.specs == by_class(WorkloadClass.FLOAT)
        assert full.specs == suite()
        assert small.label == "sweep-0"  # positional default label

    @pytest.mark.parametrize(
        "data, match",
        [
            ({"sweeps": []}, "non-empty"),
            ({"sweeps": [{"label": "x"}]}, "missing 'workloads'"),
            ({"sweeps": [{"workloads": "nonsense"}]}, "unknown workload selector"),
            ({"sweeps": [{"workloads": "class:cobol"}]}, "unknown workload class"),
            ({"sweeps": [{"workloads": "small:many"}]}, "bad selector"),
            ({"sweeps": [{"workloads": ["no-such-trace"]}]}, "unknown workload"),
            ({"sweeps": [{"workloads": 7}]}, "string selector or a list"),
            ({"sweeps": ["not-an-object"]}, "must be an object"),
            ({"sweeps": [{"workloads": ["gzip"], "depths": "deep"}]}, "invalid parameters"),
            ({"defaults": [], "sweeps": [{"workloads": ["gzip"]}]}, "'defaults' must"),
        ],
    )
    def test_invalid_contents(self, tmp_path, data, match):
        with pytest.raises(ManifestError, match=match):
            load_manifest(write_manifest(tmp_path, data))

    def test_backend_inherits_and_overrides(self, tmp_path):
        data = {
            "defaults": {"depths": [2, 4], "backend": "fast"},
            "sweeps": [
                {"workloads": ["gzip"]},
                {"workloads": ["mcf"], "backend": "reference"},
            ],
        }
        manifest = load_manifest(write_manifest(tmp_path, data))
        assert manifest.requests[0].backend == "fast"
        assert manifest.requests[1].backend == "reference"

    def test_backend_cli_default_fills_unset(self, tmp_path):
        path = write_manifest(tmp_path, TINY)
        assert all(
            r.backend == "fast"
            for r in load_manifest(path, default_backend="fast").requests
        )
        assert all(
            r.backend == "reference" for r in load_manifest(path).requests
        )

    def test_unknown_backend_rejected(self, tmp_path):
        data = {"sweeps": [{"workloads": ["gzip"], "backend": "warp"}]}
        with pytest.raises(ManifestError, match="unknown backend"):
            load_manifest(write_manifest(tmp_path, data))

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ManifestError, match="not valid JSON"):
            load_manifest(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ManifestError, match="cannot read"):
            load_manifest(tmp_path / "absent.json")

    def test_empty_manifest_object_rejected(self):
        with pytest.raises(ManifestError, match="no sweeps"):
            BatchManifest(requests=())


class TestRun:
    def test_run_prints_tables_and_summary(self, tmp_path):
        manifest = load_manifest(write_manifest(tmp_path, TINY))
        engine = ExecutionEngine(EngineConfig(cache_dir=tmp_path / "cache"))
        stream = io.StringIO()
        tables = run_manifest(manifest, engine=engine, stream=stream)
        out = stream.getvalue()

        assert len(tables) == 2
        assert "batch sweep 'named': 2 workloads" in tables[0]
        assert "gzip" in tables[0] and "mcf" in tables[0]
        assert "BIPS^2/W (un-gated, reference backend)" in tables[1]
        assert "engine: " in out  # the closing RunReport summary
        # gzip appears at two trace lengths -> 3 distinct jobs, none cached.
        assert engine.report.jobs == 3
        assert engine.report.executed == 3

    def test_rerun_is_fully_cached(self, tmp_path):
        manifest = load_manifest(write_manifest(tmp_path, TINY))
        cache_dir = tmp_path / "cache"
        first = ExecutionEngine(EngineConfig(cache_dir=cache_dir))
        cold = run_manifest(manifest, engine=first, stream=io.StringIO())

        second = ExecutionEngine(EngineConfig(cache_dir=cache_dir))
        warm = run_manifest(manifest, engine=second, stream=io.StringIO())
        assert second.report.executed == 0
        assert second.report.cache_hits == 3
        assert warm == cold  # byte-identical tables off the warm cache
