"""Engine-level suite dispatch: batching, caching, tensor reuse, retries.

The scheduler routes ``backend="suite"`` misses through one
:func:`~repro.engine.worker.execute_suite_batch` call.  These tests pin
the engine-visible contract: suite payloads equal the per-job batched
engine's, a fully cache-hit run never touches the C kernel, the packed
suite tensor is stored on the first batch and reused (no per-job ``.npz``
loads) on the next, corrupt tensors degrade to a re-pack, and the batch
retries as a unit.
"""

import numpy as np
import pytest

import repro.engine.worker as worker_mod
import repro.pipeline._ckernel as ckernel_mod
from repro.engine import EngineConfig, ExecutionEngine, SimJob
from repro.engine.serialize import result_to_dict
from repro.engine.worker import execute_suite_batch
from repro.pipeline.events_cache import TraceEventsCache
from repro.runtime.resolver import Resolver
from repro.trace import get_workload, small_suite

DEPTHS = (2, 5, 9)
LENGTH = 600


def suite_engine(tmp_path, name="cache", events=None, **overrides):
    cache_dir = tmp_path / name
    resolver = Resolver(
        cache_dir=cache_dir,
        memory_entries=0,
        events_cache=events if events is not None else TraceEventsCache(tmp_path / "events"),
    )
    config = EngineConfig(cache_dir=cache_dir, **overrides)
    return ExecutionEngine(config, resolver=resolver)


def suite_jobs(backend="suite", specs=None):
    specs = specs if specs is not None else small_suite(1)
    return [
        SimJob(spec, DEPTHS, trace_length=LENGTH, backend=backend)
        for spec in specs
    ]


def payload_dicts(job_result):
    return [result_to_dict(r) for r in job_result.results]


class TestSuiteDispatch:
    def test_suite_engine_matches_batched_engine(self, tmp_path):
        batched = suite_engine(tmp_path, "batched-cache").run(suite_jobs("batched"))
        suite = suite_engine(tmp_path, "suite-cache").run(suite_jobs("suite"))
        assert len(batched) == len(suite)
        for b, s in zip(batched, suite):
            assert payload_dicts(b) == payload_dicts(s)

    def test_mixed_backend_run(self, tmp_path):
        spec = get_workload("gzip")
        jobs = [
            SimJob(spec, DEPTHS, trace_length=LENGTH, backend="suite"),
            SimJob(spec, DEPTHS, trace_length=LENGTH, backend="batched"),
        ]
        results = suite_engine(tmp_path).run(jobs)
        assert [r.job.backend for r in results] == ["suite", "batched"]
        assert payload_dicts(results[0]) == payload_dicts(results[1])

    def test_report_accounting_cold_then_warm(self, tmp_path):
        jobs = suite_jobs()
        events = TraceEventsCache(tmp_path / "events")
        cold = suite_engine(tmp_path, events=events)
        cold.run(jobs)
        assert cold.report.executed == len(jobs)
        assert cold.report.cache_hits == 0
        warm = suite_engine(tmp_path, events=events)
        warm.run(jobs)
        assert warm.report.executed == 0
        assert warm.report.cache_hits == len(jobs)


class TestWarmRunNeverLoadsKernel:
    def test_fully_cached_run_skips_batch_and_kernel(self, tmp_path, monkeypatch):
        jobs = suite_jobs()
        events = TraceEventsCache(tmp_path / "events")
        cold = suite_engine(tmp_path, events=events)
        expected = [payload_dicts(r) for r in cold.run(jobs)]

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("a fully cache-hit run reached the kernel path")

        monkeypatch.setattr(worker_mod, "execute_suite_batch", boom)
        monkeypatch.setattr(ckernel_mod, "batched_kernel", boom)
        warm = suite_engine(tmp_path, events=events)
        results = warm.run(jobs)
        assert all(r.cache_hit for r in results)
        assert [payload_dicts(r) for r in results] == expected


class TestSuiteTensorCache:
    def test_cold_batch_stores_tensor_warm_batch_reads_it(
        self, tmp_path, monkeypatch
    ):
        jobs = suite_jobs(specs=small_suite(2))
        events = TraceEventsCache(tmp_path / "events")
        cold = execute_suite_batch(jobs, events_cache=events)
        tensors = list((tmp_path / "events" / "suite").glob("*/*.bin"))
        assert len(tensors) == 1

        # The warm batch must resolve through the tensor, not per-job .npz
        # loads — make any analysis load a hard failure.
        def no_npz(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("tensor-warm batch loaded a per-job analysis")

        monkeypatch.setattr(events, "get", no_npz)
        warm = execute_suite_batch(jobs, events_cache=events)
        assert warm == cold

    def test_corrupt_tensor_degrades_to_repack(self, tmp_path):
        jobs = suite_jobs(specs=small_suite(2))
        events = TraceEventsCache(tmp_path / "events")
        cold = execute_suite_batch(jobs, events_cache=events)
        [tensor] = (tmp_path / "events" / "suite").glob("*/*.bin")
        tensor.write_bytes(b"not a tensor")
        again = execute_suite_batch(jobs, events_cache=events)
        assert again == cold
        assert events.stats.corrupt >= 1
        # The unusable entry was dropped and rewritten by the re-pack.
        [rewritten] = (tmp_path / "events" / "suite").glob("*/*.bin")
        assert rewritten.read_bytes() != b"not a tensor"

    def test_tensor_key_is_order_sensitive(self, tmp_path):
        events = TraceEventsCache(tmp_path / "events")
        keys = ["a" * 64, "b" * 64]
        assert events.suite_tensor_key(keys) != events.suite_tensor_key(keys[::-1])

    def test_tensor_roundtrip_and_clear(self, tmp_path):
        events = TraceEventsCache(tmp_path / "events")
        columns = np.arange(24, dtype=np.int32).reshape(12, 2)
        offsets = np.array([0, 1], dtype=np.int64)
        scalars = np.ones((2, 14), dtype=np.int64)
        key = events.suite_tensor_key(["x" * 64, "y" * 64])
        events.put_suite_tensor(key, columns, offsets, scalars)
        got = events.get_suite_tensor(key)
        assert got is not None
        for expected, actual in zip((columns, offsets, scalars), got):
            assert np.array_equal(expected, actual)
        events.clear()  # removes suite tensors alongside analyses
        assert events.get_suite_tensor(key) is None
        assert not any((tmp_path / "events" / "suite").glob("*/*.bin"))


class TestRetries:
    def test_batch_retries_as_a_unit(self, tmp_path, monkeypatch):
        jobs = suite_jobs()
        calls = {"n": 0}
        real = worker_mod.execute_suite_batch

        def flaky(batch, events_cache=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient batch failure")
            return real(batch, events_cache=events_cache)

        monkeypatch.setattr(worker_mod, "execute_suite_batch", flaky)
        engine = suite_engine(tmp_path, retries=1)
        results = engine.run(jobs)
        assert calls["n"] == 2
        assert all(r.attempts == 2 for r in results)

    def test_exhausted_retries_raise(self, tmp_path, monkeypatch):
        from repro.engine import JobExecutionError

        def always_fails(batch, events_cache=None):
            raise RuntimeError("permanent batch failure")

        monkeypatch.setattr(worker_mod, "execute_suite_batch", always_fails)
        engine = suite_engine(tmp_path, retries=1)
        with pytest.raises(JobExecutionError):
            engine.run(suite_jobs())
