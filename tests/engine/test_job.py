"""Job identity: canonical fingerprints and content-addressed keys."""

import dataclasses

import pytest

from repro.engine import CACHE_SCHEMA, SimJob
from repro.engine.job import canonical_fingerprint
from repro.pipeline import MachineConfig
from repro.trace import get_workload

DEPTHS = (2, 4, 8, 12)


@pytest.fixture(scope="module")
def spec():
    return get_workload("gzip")


class TestCanonicalFingerprint:
    def test_primitives_pass_through(self):
        assert canonical_fingerprint(3) == 3
        assert canonical_fingerprint(0.25) == 0.25
        assert canonical_fingerprint("x") == "x"
        assert canonical_fingerprint(None) is None
        assert canonical_fingerprint(True) is True

    def test_mapping_key_order_is_irrelevant(self):
        assert canonical_fingerprint({"a": 1, "b": 2}) == canonical_fingerprint(
            {"b": 2, "a": 1}
        )

    def test_tuples_and_lists_normalise(self):
        assert canonical_fingerprint((1, 2)) == canonical_fingerprint([1, 2])

    def test_non_finite_floats_are_distinct(self):
        values = {
            canonical_fingerprint(float("nan")),
            canonical_fingerprint(float("inf")),
            canonical_fingerprint(float("-inf")),
        }
        assert len(values) == 3

    def test_dataclass_encodes_every_field(self, spec):
        encoded = canonical_fingerprint(spec)
        assert set(encoded) == {f.name for f in dataclasses.fields(spec)}

    def test_unhashable_type_rejected(self):
        with pytest.raises(TypeError):
            canonical_fingerprint(object())


class TestCacheKey:
    def test_key_shape(self, spec):
        key = SimJob(spec, DEPTHS).cache_key()
        assert len(key) == 64
        assert all(c in "0123456789abcdef" for c in key)

    def test_equal_jobs_hash_equally(self, spec):
        a = SimJob(spec, DEPTHS, trace_length=1000)
        b = SimJob(get_workload("gzip"), (2, 4, 8, 12), trace_length=1000)
        assert a.cache_key() == b.cache_key()

    def test_trace_length_changes_key(self, spec):
        assert (
            SimJob(spec, DEPTHS, trace_length=1000).cache_key()
            != SimJob(spec, DEPTHS, trace_length=1001).cache_key()
        )

    def test_depths_change_key(self, spec):
        assert SimJob(spec, (2, 4)).cache_key() != SimJob(spec, (2, 4, 8)).cache_key()

    def test_spec_changes_key(self, spec):
        other = get_workload("mcf")
        assert SimJob(spec, DEPTHS).cache_key() != SimJob(other, DEPTHS).cache_key()

    def test_machine_changes_key(self, spec):
        ooo = MachineConfig(in_order=False)
        assert (
            SimJob(spec, DEPTHS).cache_key()
            != SimJob(spec, DEPTHS, machine=ooo).cache_key()
        )

    def test_code_version_changes_key(self, spec, monkeypatch):
        before = SimJob(spec, DEPTHS).cache_key()
        monkeypatch.setattr("repro.__version__", "999.0.0-test")
        assert SimJob(spec, DEPTHS).cache_key() != before

    def test_backend_changes_key(self, spec):
        reference = SimJob(spec, DEPTHS, backend="reference")
        fast = SimJob(spec, DEPTHS, backend="fast")
        assert reference.cache_key() != fast.cache_key()
        assert SimJob(spec, DEPTHS).cache_key() == reference.cache_key()

    def test_fingerprint_names_backend(self, spec):
        assert SimJob(spec, DEPTHS, backend="fast").fingerprint()["backend"] == "fast"

    def test_fingerprint_names_schema_and_version(self, spec):
        import repro

        fingerprint = SimJob(spec, DEPTHS).fingerprint()
        assert fingerprint["schema"] == CACHE_SCHEMA
        assert fingerprint["version"] == repro.__version__
        assert fingerprint["depths"] == list(DEPTHS)


class TestSimJobValidation:
    def test_depths_must_be_ascending(self, spec):
        with pytest.raises(ValueError, match="ascending"):
            SimJob(spec, (4, 2))
        with pytest.raises(ValueError, match="ascending"):
            SimJob(spec, (2, 2, 4))

    def test_depths_must_be_nonempty(self, spec):
        with pytest.raises(ValueError, match="at least one depth"):
            SimJob(spec, ())

    def test_trace_length_positive(self, spec):
        with pytest.raises(ValueError, match="trace_length"):
            SimJob(spec, DEPTHS, trace_length=0)

    def test_depths_coerced_to_ints(self, spec):
        job = SimJob(spec, [2.0, 4.0])
        assert job.depths == (2, 4)
        assert all(isinstance(d, int) for d in job.depths)

    def test_backend_must_be_known(self, spec):
        with pytest.raises(ValueError, match="backend"):
            SimJob(spec, DEPTHS, backend="warp")
