"""Tests of the performance-only revalidation experiment."""

import pytest

from repro.experiments import perf_only
from repro.trace import small_suite

DEPTHS = (2, 4, 6, 8, 10, 12, 16, 20, 25)


@pytest.fixture(scope="module")
def data():
    return perf_only.run(specs=small_suite(1), depths=DEPTHS, trace_length=2500)


class TestPerfOnly:
    def test_row_per_workload(self, data):
        assert len(data.rows) == len(small_suite(1))

    def test_eq1_fits_the_simulated_curve(self, data):
        assert all(row.curve_r_squared > 0.6 for row in data.rows)

    def test_deep_regime(self, data):
        assert data.mean_simulated > 9.0
        assert data.mean_eq2 > 12.0

    def test_parameters_physical(self, data):
        for row in data.rows:
            assert 1.0 <= row.alpha <= 4.0
            assert row.hazard_pressure > 0

    def test_table(self, data):
        table = perf_only.format_table(data)
        assert "Eq. 2" in table
        assert "suite mean" in table
