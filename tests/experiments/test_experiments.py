"""Tests of the per-figure experiment drivers (reduced settings)."""

import numpy as np
import pytest

from repro.experiments import (
    fig1_quartic,
    fig3_latch_growth,
    fig4_theory_vs_sim,
    fig5_metric_family,
    fig6_distribution,
    fig7_by_class,
    fig8_leakage,
    fig9_gamma,
    fig10_technodes,
    headline,
)
from repro.trace import WorkloadClass, small_suite

SMALL_DEPTHS = tuple(range(2, 26, 3)) + (25,)
LENGTH = 2500


class TestFig1:
    def test_single_positive_root(self):
        data = fig1_quartic.run()
        assert len(data.positive_roots) == 1
        assert len(data.real_roots) == 4

    def test_spurious_root_6a_present(self):
        data = fig1_quartic.run()
        assert any(r == pytest.approx(data.expected_spurious[0], rel=1e-6)
                   for r in data.real_roots)

    def test_optimum_is_the_positive_root(self):
        data = fig1_quartic.run()
        assert data.optimum_depth == pytest.approx(data.positive_roots[0], rel=1e-6)

    def test_table(self):
        assert "zero crossings" in fig1_quartic.format_table(fig1_quartic.run())


class TestFig3:
    def test_exponent_near_1_1(self):
        data = fig3_latch_growth.run()
        assert 0.9 <= data.fitted_exponent <= 1.2
        assert data.per_unit_exponent == pytest.approx(1.3)

    def test_counts_monotone(self):
        data = fig3_latch_growth.run()
        assert np.all(np.diff(data.latch_counts) > 0)

    def test_table(self):
        assert "1.1" in fig3_latch_growth.format_table(fig3_latch_growth.run())


class TestFig4:
    @pytest.fixture(scope="class")
    def data(self):
        return fig4_theory_vs_sim.run(
            workloads=("web-java-catalog", "gcc95"),
            depths=SMALL_DEPTHS,
            trace_length=LENGTH,
        )

    def test_panels(self, data):
        assert [p.workload for p in data.panels] == ["web-java-catalog", "gcc95"]

    def test_gated_above_ungated(self, data):
        for panel in data.panels:
            assert np.all(panel.gated_metric >= panel.ungated_metric * 0.999)

    def test_gated_optimum_not_shallower(self, data):
        for panel in data.panels:
            assert panel.gated_optimum >= panel.ungated_optimum - 1.5

    def test_table(self, data):
        table = fig4_theory_vs_sim.format_table(data)
        assert "gated" in table and "R^2" in table


class TestFig5:
    @pytest.fixture(scope="class")
    def data(self):
        return fig5_metric_family.run(depths=SMALL_DEPTHS, trace_length=LENGTH)

    def test_family_ordering(self, data):
        """BIPS/W <= BIPS^2/W <= BIPS^3/W <= BIPS optima."""
        m1, m2, m3 = data.optima[1.0], data.optima[2.0], data.optima[3.0]
        perf = data.optima[float("inf")]
        assert m1 <= m2 + 0.75
        assert m2 <= m3 + 0.75
        assert m3 <= perf + 0.75

    def test_bips_per_watt_not_interior(self, data):
        assert not data.interior[1.0]

    def test_bips3_interior(self, data):
        assert data.interior[3.0]

    def test_curves_normalised(self, data):
        for curve in data.curves.values():
            assert curve.max() == pytest.approx(1.0)


class TestFig6And7:
    @pytest.fixture(scope="class")
    def specs(self):
        return small_suite(1)

    def test_fig6_mean_in_paper_band(self, specs):
        data = fig6_distribution.run(specs=specs, depths=SMALL_DEPTHS, trace_length=LENGTH)
        assert 5.0 <= data.mean_depth <= 13.0
        assert "distribution" in fig6_distribution.format_table(data)

    def test_fig7_class_summaries(self, specs):
        data = fig7_by_class.run(specs=specs, depths=SMALL_DEPTHS, trace_length=LENGTH)
        assert set(data.class_summary) == set(WorkloadClass)
        table = fig7_by_class.format_table(data)
        assert "Legacy" in table


class TestFig8:
    def test_monotone_deeper_with_leakage(self):
        data = fig8_leakage.run(trace_length=LENGTH)
        depths = [d for _f, d in data.optima]
        assert depths == sorted(depths)
        assert depths[-1] > depths[0] * 1.3

    def test_table(self):
        data = fig8_leakage.run(trace_length=LENGTH)
        assert "leakage" in fig8_leakage.format_table(data)


class TestFig9:
    def test_monotone_shallower_with_gamma(self):
        data = fig9_gamma.run(trace_length=LENGTH)
        depths = [d for _g, d in data.optima]
        assert depths == sorted(depths, reverse=True)

    def test_single_stage_found(self):
        data = fig9_gamma.run(trace_length=LENGTH)
        assert 2.0 <= data.single_stage_gamma <= 3.0

    def test_table(self):
        data = fig9_gamma.run(trace_length=LENGTH)
        assert "gamma" in fig9_gamma.format_table(data)


class TestHeadline:
    @pytest.fixture(scope="class")
    def data(self):
        return headline.run(specs=small_suite(1), depths=SMALL_DEPTHS, trace_length=LENGTH)

    def test_all_rows_present(self, data):
        assert len(data.rows) == 7

    def test_core_claims_hold(self, data):
        by_claim = {row.claim: row for row in data.rows}
        assert by_claim["power optimum much shallower than perf optimum"].holds
        assert by_claim["BIPS/W: no pipelined optimum"].holds

    def test_table(self, data):
        table = headline.format_table(data)
        assert "paper" in table and "here" in table


class TestFig10:
    NODES = ("cmos-hp-45", "cmos-lp-22", "tfet-homo-22")

    @pytest.fixture(scope="class")
    def data(self):
        return fig10_technodes.run(
            workloads=("gzip",), nodes=self.NODES, depths=SMALL_DEPTHS,
            trace_length=LENGTH,
        )

    def test_one_row_per_node(self, data):
        assert tuple(row.node for row in data.rows) == self.NODES
        for row in data.rows:
            assert len(row.curve) == len(SMALL_DEPTHS)
            assert max(row.curve) == pytest.approx(1.0)

    def test_base_row_matches_a_nodeless_sweep(self, data):
        from repro.analysis.optimum import optimum_from_sweep
        from repro.analysis.sweep import run_depth_sweep
        from repro.trace import get_workload

        sweep = run_depth_sweep(
            get_workload("gzip"), depths=SMALL_DEPTHS, trace_length=LENGTH
        )
        plain = float(optimum_from_sweep(sweep, 3.0, gated=True).depth)
        assert data.base_row.optima == (("gzip", plain),)

    def test_leakage_dominated_node_moves_the_optimum_deeper(self, data):
        by_node = {row.node: row for row in data.rows}
        lp, base = by_node["cmos-lp-22"], data.base_row
        assert lp.leakage_share > base.leakage_share
        assert lp.mean_depth > base.mean_depth

    def test_table(self, data):
        table = fig10_technodes.format_table(data)
        assert "Fig. 10" in table
        assert "cmos-lp-22" in table and "vs base" in table


class TestFigureCharts:
    """Every figure with a chart renderer produces a plottable grid."""

    def test_fig5_chart(self):
        data = fig5_metric_family.run(depths=SMALL_DEPTHS, trace_length=LENGTH)
        chart = fig5_metric_family.format_chart(data)
        assert "Fig. 5" in chart
        for label in ("BIPS", "BIPS3/W", "BIPS/W"):
            assert label in chart

    def test_fig6_chart(self):
        data = fig6_distribution.run(
            specs=small_suite(1), depths=SMALL_DEPTHS, trace_length=LENGTH
        )
        chart = fig6_distribution.format_chart(data)
        assert "Fig. 6" in chart
        assert "#" in chart

    def test_fig10_chart(self):
        data = fig10_technodes.run(
            workloads=("gzip",), nodes=("cmos-hp-45", "cmos-lp-22"),
            depths=SMALL_DEPTHS, trace_length=LENGTH,
        )
        chart = fig10_technodes.format_chart(data)
        assert "Fig. 10" in chart
        assert "cmos-lp-22" in chart

    def test_fig8_chart(self):
        data = fig8_leakage.run(trace_length=LENGTH)
        chart = fig8_leakage.format_chart(data)
        assert "leakage 0%" in chart and "leakage 90%" in chart

    def test_fig9_chart(self):
        data = fig9_gamma.run(trace_length=LENGTH)
        chart = fig9_gamma.format_chart(data)
        assert "gamma 1" in chart

    def test_fig4_chart(self):
        data = fig4_theory_vs_sim.run(
            workloads=("gcc95",), depths=SMALL_DEPTHS, trace_length=LENGTH
        )
        chart = fig4_theory_vs_sim.format_chart(data)
        assert "gcc95" in chart
        assert "theory gated" in chart
