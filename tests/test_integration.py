"""End-to-end integration tests: the paper's shape claims, emergent.

These tests run the whole stack — synthetic trace, cycle-accurate
simulation, power accounting, fitting, theory — and assert the qualitative
results the paper reports.  None of these outcomes is hard-coded anywhere;
they emerge from the machine model and the workload knobs (see DESIGN.md
Sec. 5's checklist).
"""

import numpy as np
import pytest

from repro.analysis import (
    optimum_from_sweep,
    run_depth_sweep,
    theory_fit_from_sweep,
)
from repro.trace import WorkloadClass, by_class


class TestPowerChangesTheOptimum:
    """The headline story: power moves the optimum from ~20+ to ~7-9."""

    def test_power_aware_optimum_much_shallower(self, modern_sweep):
        perf = optimum_from_sweep(modern_sweep, float("inf"), gated=True).depth
        power_aware = optimum_from_sweep(modern_sweep, 3.0, gated=True).depth
        assert power_aware < perf * 0.7
        assert 4.0 <= power_aware <= 13.0
        assert perf >= 12.0

    def test_optimum_in_fo4_band(self, modern_sweep):
        estimate = optimum_from_sweep(modern_sweep, 3.0, gated=True)
        # Paper band: 17-25 FO4 per stage for power-aware designs.
        assert 12.0 <= estimate.fo4_per_stage <= 32.0

    def test_metric_family_ordering(self, modern_sweep):
        depths = [
            optimum_from_sweep(modern_sweep, m, gated=True).depth
            for m in (1.0, 2.0, 3.0, float("inf"))
        ]
        assert depths[0] <= depths[1] + 0.75
        assert depths[1] <= depths[2] + 0.75
        assert depths[2] <= depths[3] + 0.75


class TestGatingEffect:
    def test_gated_metric_above_ungated(self, modern_sweep):
        gated = modern_sweep.metric(3.0, gated=True)
        ungated = modern_sweep.metric(3.0, gated=False)
        assert np.all(gated >= ungated * 0.999)

    def test_gated_optimum_not_shallower(self, modern_sweep):
        gated = optimum_from_sweep(modern_sweep, 3.0, gated=True).depth
        ungated = optimum_from_sweep(modern_sweep, 3.0, gated=False).depth
        assert gated >= ungated - 1.0


class TestTheorySimAgreement:
    def test_integer_workload_r_squared(self, modern_sweep):
        fit = theory_fit_from_sweep(modern_sweep, 3.0, gated=True)
        assert fit.r_squared > 0.3

    def test_theory_optimum_same_regime(self, modern_sweep):
        sim = optimum_from_sweep(modern_sweep, 3.0, gated=True).depth
        theory = theory_fit_from_sweep(modern_sweep, 3.0, gated=True).optimum.depth
        assert theory == pytest.approx(sim, abs=5.0)

    def test_theory_tracks_both_gating_models(self, modern_sweep):
        for gated in (True, False):
            fit = theory_fit_from_sweep(modern_sweep, 3.0, gated=gated)
            assert fit.optimum.depth > 1.0


class TestClassBehaviour:
    def test_float_workloads_prefer_deeper_pipes(self, modern_sweep, float_sweep):
        modern_opt = optimum_from_sweep(modern_sweep, 3.0, gated=True).depth
        float_opt = optimum_from_sweep(float_sweep, 3.0, gated=True).depth
        assert float_opt > modern_opt

    def test_spec_less_stressful_than_legacy(self):
        """Paper Sec. 6: SPEC integer is less stressful than real
        (legacy/modern) workloads — fewer hazards per instruction."""
        legacy = run_depth_sweep(
            by_class(WorkloadClass.LEGACY)[0], depths=(8,), trace_length=3000,
            reference_depth=8,
        ).reference
        spec = run_depth_sweep(
            by_class(WorkloadClass.SPECINT95)[0], depths=(8,), trace_length=3000,
            reference_depth=8,
        ).reference
        assert legacy.hazard_rate > spec.hazard_rate

    def test_hazard_counts_scale_with_trace_length(self, modern_spec):
        short = run_depth_sweep(modern_spec, depths=(8,), trace_length=2000,
                                reference_depth=8).reference
        long = run_depth_sweep(modern_spec, depths=(8,), trace_length=4000,
                               reference_depth=8).reference
        assert long.hazards > short.hazards
        assert long.hazard_rate == pytest.approx(short.hazard_rate, abs=0.05)


class TestSimulationVsTheoryTimePerInstruction:
    def test_shapes_correlate(self, modern_sweep):
        """Simulated and theoretical T/N_I curves must be strongly
        correlated across the depth range (same U shape)."""
        from repro.core import time_per_instruction
        from repro.analysis import extract_workload_params

        params = extract_workload_params(modern_sweep.reference).params
        depths = modern_sweep.depth_array()
        theory = np.asarray(
            time_per_instruction(depths, modern_sweep.reference.technology, params)
        )
        sim = modern_sweep.time_per_instruction()
        correlation = np.corrcoef(theory, sim)[0, 1]
        assert correlation > 0.8
