"""Smoke tests: every example script runs end-to-end and says something.

Examples are executed in-process (``runpy``) with reduced workloads so the
whole file stays test-suite fast; assertions check the output carries the
content each example promises.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list, capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", [], capsys)
        assert "BIPS3/W" in out
        assert "clock gating" in out
        assert "BIPS/W" in out

    def test_workload_study(self, capsys):
        out = run_example("workload_study.py", ["--length", "2000"], capsys)
        assert "cubic-fit" in out
        for cls in ("legacy", "modern", "specint95", "specint2000", "float"):
            assert cls in out
        assert "|" in out  # the ASCII metric curve

    def test_technology_exploration(self, capsys):
        out = run_example("technology_exploration.py", [], capsys)
        assert "Leakage share" in out
        assert "gamma" in out
        assert "t_p" in out

    def test_design_advisor(self, capsys):
        out = run_example(
            "design_advisor.py", ["--length", "2000", "--branch", "0.15"], capsys
        )
        assert "Recommendation" in out
        assert "suggested design" in out

    def test_power_budget(self, capsys):
        out = run_example("power_budget.py", [], capsys)
        assert "Strategy 1" in out and "Strategy 2" in out
        assert "Pareto" in out
        assert "cap-limited" in out

    def test_suite_characterization(self, capsys):
        out = run_example("suite_characterization.py", ["--length", "1000"], capsys)
        assert "workload" in out
        assert "Class summary" in out

    def test_design_advisor_rejects_bad_mix(self, capsys):
        with pytest.raises(SystemExit):
            run_example(
                "design_advisor.py",
                ["--branch", "0.6", "--memory", "0.5"],
                capsys,
            )
