"""Tests of the ASCII chart renderer."""

import pytest

from repro.report import Series, histogram_chart, line_chart


class TestSeries:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Series("s", [1, 2], [1])

    def test_empty(self):
        with pytest.raises(ValueError):
            Series("s", [], [])


class TestLineChart:
    def test_dimensions(self):
        chart = line_chart([Series("a", [1, 2, 3], [1, 4, 9])], width=40, height=10)
        lines = chart.splitlines()
        plot_lines = [ln for ln in lines if "|" in ln and ln.strip().endswith("|")]
        assert len(plot_lines) == 10
        assert all(len(ln.split("|")[1]) == 40 for ln in plot_lines)

    def test_title_and_legend(self):
        chart = line_chart(
            [Series("gated", [1, 2], [1, 2]), Series("ungated", [1, 2], [2, 1])],
            title="metric vs depth",
        )
        assert "metric vs depth" in chart
        assert "gated" in chart and "ungated" in chart

    def test_markers_distinct(self):
        chart = line_chart(
            [Series("a", [1, 2], [1, 1]), Series("b", [1, 2], [2, 2])]
        )
        assert "*" in chart and "o" in chart

    def test_peak_placed_at_top_row(self):
        series = Series("a", [1, 2, 3, 4, 5], [0, 1, 5, 1, 0])
        chart = line_chart([series], width=20, height=8)
        rows = [ln for ln in chart.splitlines() if "|" in ln]
        assert "*" in rows[0]  # maximum lands on the first (top) plot row

    def test_constant_series_handled(self):
        chart = line_chart([Series("flat", [1, 2, 3], [5, 5, 5])])
        assert "flat" in chart

    def test_axis_labels(self):
        chart = line_chart([Series("a", [2, 25], [0, 1])], x_label="depth")
        assert "(depth)" in chart
        assert "25" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([])
        with pytest.raises(ValueError):
            line_chart([Series("a", [1], [1])], width=4)
        with pytest.raises(ValueError):
            line_chart([Series("a", [1.0], [float("nan")])])


class TestHistogramChart:
    def test_bars_proportional(self):
        chart = histogram_chart([1, 2], [2, 4], max_width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_counts_shown(self):
        chart = histogram_chart([7, 8], [3, 9])
        assert chart.splitlines()[0].endswith("3")
        assert chart.splitlines()[1].endswith("9")

    def test_title(self):
        assert histogram_chart([1], [1], title="Fig 6").startswith("Fig 6")

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram_chart([1, 2], [1])
        with pytest.raises(ValueError):
            histogram_chart([], [])

    def test_zero_counts(self):
        chart = histogram_chart([1, 2], [0, 0])
        assert "#" not in chart
