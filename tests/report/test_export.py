"""Tests of CSV export."""

import csv

import pytest

from repro.core import DesignSpace, calibrate_leakage, leakage_sweep
from repro.report import distribution_rows, sensitivity_rows, sweep_rows, write_csv


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        path = write_csv(tmp_path / "x.csv", ["a", "b"], [(1, 2), (3, 4)])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_creates_parent_dirs(self, tmp_path):
        path = write_csv(tmp_path / "deep" / "dir" / "x.csv", ["a"], [(1,)])
        assert path.exists()


class TestRowBuilders:
    def test_sweep_rows(self, modern_sweep):
        header, rows = sweep_rows(modern_sweep)
        assert header[0] == "depth"
        assert len(rows) == len(modern_sweep)
        assert all(len(row) == len(header) for row in rows)
        depths = [row[0] for row in rows]
        assert depths == list(modern_sweep.depths)

    def test_sweep_rows_metric_columns(self, modern_sweep):
        header, rows = sweep_rows(modern_sweep, metrics=(3.0,))
        assert header[-1] == "bips3_per_watt_gated"
        expected = modern_sweep.metric(3.0, gated=True)
        assert rows[0][-1] == pytest.approx(expected[0])

    def test_distribution_rows(self, modern_sweep):
        from repro.analysis import optimum_from_sweep
        from repro.analysis.distribution import OptimumDistribution, WorkloadOptimum
        from repro.trace import WorkloadClass

        estimate = optimum_from_sweep(modern_sweep, 3.0, True)
        dist = OptimumDistribution(
            optima=(
                WorkloadOptimum("w1", WorkloadClass.MODERN, estimate),
            ),
            metric_exponent=3.0,
            gated=True,
        )
        header, rows = distribution_rows(dist)
        assert rows[0][0] == "w1"
        assert rows[0][2] == pytest.approx(estimate.depth)

    def test_sensitivity_rows(self):
        space = DesignSpace()
        space = space.with_power(calibrate_leakage(space, 0.15, 8.0))
        curves = leakage_sweep(space, fractions=(0.0, 0.5), points=11)
        header, rows = sensitivity_rows(curves)
        assert len(rows) == 2 * 11
        settings = {row[0] for row in rows}
        assert settings == {0.0, 0.5}
