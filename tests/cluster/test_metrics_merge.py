"""Merging Prometheus expositions: identical series sum, families unify."""

from repro.cluster.metrics import merge_expositions, parse_samples, sample_value

SHARD_A = """\
# HELP repro_requests_total HTTP requests by endpoint and status.
# TYPE repro_requests_total counter
repro_requests_total{endpoint="/v1/sweep",status="200"} 3
repro_computed_jobs_total 2
# HELP repro_request_seconds Latency.
# TYPE repro_request_seconds histogram
repro_request_seconds_bucket{le="0.1"} 2
repro_request_seconds_bucket{le="+Inf"} 3
repro_request_seconds_sum 0.5
repro_request_seconds_count 3
"""

SHARD_B = """\
# HELP repro_requests_total HTTP requests by endpoint and status.
# TYPE repro_requests_total counter
repro_requests_total{endpoint="/v1/sweep",status="200"} 4
repro_requests_total{endpoint="/v1/optimum",status="200"} 1
repro_computed_jobs_total 5
# TYPE repro_request_seconds histogram
repro_request_seconds_bucket{le="0.1"} 1
repro_request_seconds_bucket{le="+Inf"} 1
repro_request_seconds_sum 0.25
repro_request_seconds_count 1
"""


class TestParse:
    def test_samples_and_families(self):
        families, samples = parse_samples(SHARD_A)
        assert families["repro_requests_total"] == (
            "counter", "HTTP requests by endpoint and status.")
        assert samples['repro_requests_total{endpoint="/v1/sweep",status="200"}'] == 3
        assert samples["repro_computed_jobs_total"] == 2

    def test_sample_value_defaults_to_zero(self):
        assert sample_value(SHARD_A, "repro_computed_jobs_total") == 2
        assert sample_value(SHARD_A, "no_such_series") == 0.0

    def test_inf_values_parse(self):
        _, samples = parse_samples("x_bucket{le=\"+Inf\"} 7\n")
        assert samples['x_bucket{le="+Inf"}'] == 7


class TestMerge:
    def test_identical_series_sum(self):
        merged = merge_expositions([SHARD_A, SHARD_B])
        assert sample_value(
            merged, 'repro_requests_total{endpoint="/v1/sweep",status="200"}'
        ) == 7
        assert sample_value(merged, "repro_computed_jobs_total") == 7
        # A series only one shard reports passes through unchanged.
        assert sample_value(
            merged, 'repro_requests_total{endpoint="/v1/optimum",status="200"}'
        ) == 1

    def test_histogram_series_stay_in_one_family(self):
        merged = merge_expositions([SHARD_A, SHARD_B])
        assert merged.count("# TYPE repro_request_seconds histogram") == 1
        assert sample_value(merged, 'repro_request_seconds_bucket{le="+Inf"}') == 4
        assert sample_value(merged, "repro_request_seconds_count") == 4
        assert sample_value(merged, "repro_request_seconds_sum") == 0.75

    def test_help_and_type_render_once_per_family(self):
        merged = merge_expositions([SHARD_A, SHARD_B])
        assert merged.count("# HELP repro_requests_total") == 1
        assert merged.count("# TYPE repro_requests_total counter") == 1

    def test_merged_document_reparses_to_the_same_values(self):
        merged = merge_expositions([SHARD_A, SHARD_B])
        again = merge_expositions([merged])
        assert parse_samples(again)[1] == parse_samples(merged)[1]
