"""End-to-end router tests over real sockets and in-process shards.

Each test boots N ordinary :class:`ServiceServer` shards on OS-assigned
ports plus a :class:`RouterServer` in front, inside one event loop —
the exact production topology minus the subprocess boundary (the
supervisor's own lifecycle is covered in ``test_supervisor.py``).
"""

import asyncio
import contextlib
import json
import threading

from repro.cluster.metrics import sample_value
from repro.cluster.router import Router, RouterServer
from repro.engine.worker import execute_job
from repro.runtime import RuntimeConfig
from repro.service.app import ServiceState
from repro.service.http import ServiceServer
from repro.service.loadgen import HttpClient

LENGTH = 1200


def shard_config(tmp_path, **overrides) -> RuntimeConfig:
    settings = dict(
        host="127.0.0.1",
        port=0,
        backend="fast",
        executor="thread",
        workers=4,
        concurrency=4,
        queue_limit=8,
        memory_entries=32,
        cache_dir=str(tmp_path / "shared-disk"),
        drain_timeout=5.0,
    )
    settings.update(overrides)
    return RuntimeConfig(**settings)


@contextlib.asynccontextmanager
async def cluster(tmp_path, shards=3, compute=None, on_down=None, **overrides):
    servers = []
    for _ in range(shards):
        server = ServiceServer(ServiceState(shard_config(tmp_path), compute=compute))
        await server.start()
        servers.append(server)
    settings = dict(
        host="127.0.0.1",
        cluster_port=0,
        cluster_shards=shards,
        cluster_health_interval=0.1,
    )
    settings.update(overrides)
    router = Router(
        RuntimeConfig(**settings),
        {f"shard-{i}": ("127.0.0.1", server.port)
         for i, server in enumerate(servers)},
        on_down=on_down,
    )
    front = RouterServer(router)
    await front.start()
    client = HttpClient("127.0.0.1", front.port)
    try:
        yield front, router, servers, client
    finally:
        await client.close()
        await front.drain(timeout=5.0)
        for server in servers:
            with contextlib.suppress(Exception):
                await server.drain(timeout=5.0)


def sweep_body(workload="gzip", **extra):
    body = {"workload": workload, "length": LENGTH}
    body.update(extra)
    return body


class TestRouting:
    def test_keys_stick_to_their_shard(self, tmp_path):
        """Repeats of a key hit one shard's LRU; the cluster computes once."""
        workloads = ["gzip", "gcc95", "art", "crafty"]

        async def scenario():
            async with cluster(tmp_path) as (front, _router, _servers, client):
                for _round in range(3):
                    for name in workloads:
                        status, response = await client.request_json(
                            "POST", "/v1/sweep", sweep_body(name)
                        )
                        assert status == 200, response
                _status, _headers, raw = await client.request("GET", "/metrics")
                return raw.decode("utf-8")

        merged = asyncio.run(scenario())
        # 4 distinct keys x 3 rounds: each key computes on exactly one
        # shard once, and every repeat is that shard's memory hit.
        assert sample_value(merged, "repro_computed_jobs_total") == len(workloads)
        assert sample_value(
            merged, 'repro_cache_hits_total{layer="memory"}'
        ) == len(workloads) * 2

    def test_owner_is_deterministic_across_routers(self, tmp_path):
        async def scenario():
            async with cluster(tmp_path) as (_front, router, _servers, client):
                _status, response = await client.request_json(
                    "POST", "/v1/sweep", sweep_body()
                )
                key = response["key"]
                twin = Router(router.config, {
                    shard_id: (state.host, state.port)
                    for shard_id, state in router.shards.items()
                })
                return router.ring.route(key), twin.ring.route(key)

        owner, twin_owner = asyncio.run(scenario())
        assert owner == twin_owner


class TestValidationAndErrors:
    def test_bad_bodies_answer_400_at_the_edge(self, tmp_path):
        async def scenario():
            async with cluster(tmp_path, shards=1) as (_f, _r, _servers, client):
                unknown = await client.request_json(
                    "POST", "/v1/sweep", sweep_body("no-such-workload")
                )
                garbage = await client.request("POST", "/v1/sweep", b"not json")
                missing = await client.request_json("POST", "/v1/sweep", {})
                return unknown, garbage, missing

        unknown, garbage, missing = asyncio.run(scenario())
        assert unknown[0] == 400 and "error" in unknown[1]
        assert garbage[0] == 400
        assert missing[0] == 400

    def test_unknown_paths_and_methods(self, tmp_path):
        async def scenario():
            async with cluster(tmp_path, shards=1) as (_f, _r, _servers, client):
                not_found = await client.request_json("POST", "/v1/nope", {})
                wrong_verb = await client.request_json("GET", "/v1/sweep")
                return not_found, wrong_verb

        (nf_status, nf_body), (verb_status, _) = asyncio.run(scenario())
        assert nf_status == 404 and "error" in nf_body
        assert verb_status == 405


class TestFailover:
    def test_killed_shard_serves_from_replica_with_no_5xx(self, tmp_path):
        """Losing a shard mid-run must stay invisible to clients."""
        workloads = ["gzip", "gcc95", "art", "crafty", "eon", "parser"]
        downs = []

        async def scenario():
            async with cluster(tmp_path, on_down=downs.append) as (
                _front, router, servers, client
            ):
                owners = {}
                for name in workloads:
                    status, response = await client.request_json(
                        "POST", "/v1/sweep", sweep_body(name)
                    )
                    assert status == 200
                    owners[name] = router.ring.route(response["key"])

                # Kill the shard owning the first workload, mid-run.
                victim = owners[workloads[0]]
                index = int(victim.rsplit("-", 1)[1])
                await servers[index].drain(timeout=5.0)

                statuses = []
                for _round in range(2):
                    for name in workloads:
                        status, _response = await client.request_json(
                            "POST", "/v1/sweep", sweep_body(name)
                        )
                        statuses.append(status)

                # Health loop notices the corpse and reports degraded.
                for _ in range(50):
                    s, health = await client.request_json("GET", "/healthz")
                    if health["status"] == "degraded":
                        break
                    await asyncio.sleep(0.05)
                failovers = router.failovers_total
                total_failovers = sum(
                    failovers.value(shard=shard_id) for shard_id in router.shards
                )
                return statuses, health, total_failovers, victim

        statuses, health, failovers, victim = asyncio.run(scenario())
        assert all(status == 200 for status in statuses)  # zero client 5xx
        assert failovers > 0
        assert health["status"] == "degraded"
        assert health["shards"][victim]["healthy"] is False
        assert downs == [victim]  # restart hook fired exactly once


class TestAdmission:
    def test_router_sheds_past_the_inflight_limit(self, tmp_path):
        release = threading.Event()

        def gated_compute(job):
            release.wait(timeout=10)
            return execute_job(job)

        async def scenario():
            async with cluster(
                tmp_path, shards=1, compute=gated_compute,
                cluster_inflight_limit=1,
            ) as (front, router, _servers, _client):
                blocked_client = HttpClient("127.0.0.1", front.port)
                shed_client = HttpClient("127.0.0.1", front.port)
                blocked = asyncio.create_task(
                    blocked_client.request_json(
                        "POST", "/v1/sweep", sweep_body("gzip")
                    )
                )
                while router.shards["shard-0"].inflight < 1:
                    await asyncio.sleep(0.002)
                status, headers, raw = await shed_client.request(
                    "POST", "/v1/sweep",
                    json.dumps(sweep_body("gcc95")).encode("utf-8"),
                )
                release.set()
                blocked_status, _ = await blocked
                await blocked_client.close()
                await shed_client.close()
                rejected = router.rejected_total.value(shard="shard-0")
                return status, headers, raw, blocked_status, rejected

        status, headers, raw, blocked_status, rejected = asyncio.run(scenario())
        assert status == 429
        assert "retry-after" in headers
        assert b"shard overloaded" in raw
        assert blocked_status == 200  # the admitted request still finishes
        assert rejected == 1


class TestObservability:
    def test_healthz_aggregates_every_shard(self, tmp_path):
        async def scenario():
            async with cluster(tmp_path) as (_front, _router, _servers, client):
                return await client.request_json("GET", "/healthz")

        status, health = asyncio.run(scenario())
        assert status == 200
        assert health["status"] == "ok"
        assert health["ring"] == {"shards": 3, "vnodes": 64}
        assert health["healthy_shards"] == 3
        assert sorted(health["shards"]) == ["shard-0", "shard-1", "shard-2"]
        for shard in health["shards"].values():
            assert shard["healthy"] is True

    def test_merged_metrics_sum_shards_and_add_router_families(self, tmp_path):
        async def scenario():
            async with cluster(tmp_path) as (_front, _router, _servers, client):
                for name in ("gzip", "gcc95", "art"):
                    await client.request_json("POST", "/v1/sweep", sweep_body(name))
                _status, _headers, raw = await client.request("GET", "/metrics")
                return raw.decode("utf-8")

        merged = asyncio.run(scenario())
        # Shard families merged across all three shards...
        assert sample_value(
            merged, 'repro_requests_total{endpoint="/v1/sweep",status="200"}'
        ) == 3
        # ...plus the router's own families on top.
        assert sample_value(merged, "repro_cluster_ring_shards") == 3
        assert sample_value(merged, "repro_cluster_healthy_shards") == 3
        assert sample_value(
            merged,
            'repro_cluster_requests_total{endpoint="/v1/sweep",status="200"}',
        ) == 3
        assert sample_value(
            merged,
            'repro_cluster_proxied_total{shard="shard-0",status="200"}'
        ) + sample_value(
            merged,
            'repro_cluster_proxied_total{shard="shard-1",status="200"}'
        ) + sample_value(
            merged,
            'repro_cluster_proxied_total{shard="shard-2",status="200"}'
        ) == 3
