"""The consistent-hash ring: determinism, balance, minimal remapping."""

import pytest

from repro.cluster.ring import HashRing, ring_hash

KEYS = [f"key-{i:05d}" for i in range(5000)]
SHARDS = [f"shard-{i}" for i in range(5)]


class TestDeterminism:
    def test_same_members_route_identically(self):
        first = HashRing(SHARDS)
        second = HashRing(reversed(SHARDS))  # insertion order must not matter
        assert [first.route(k) for k in KEYS] == [second.route(k) for k in KEYS]

    def test_ring_hash_is_stable(self):
        # A pinned value: routing must survive process restarts unchanged.
        assert ring_hash("shard-0#0") == ring_hash("shard-0#0")
        assert ring_hash("a") != ring_hash("b")

    def test_replicas_are_distinct_and_start_with_the_owner(self):
        ring = HashRing(SHARDS)
        for key in KEYS[:200]:
            replicas = ring.replicas(key, 3)
            assert len(replicas) == len(set(replicas)) == 3
            assert replicas[0] == ring.route(key)

    def test_replica_count_is_capped_by_ring_size(self):
        ring = HashRing(["a", "b"])
        assert len(ring.replicas("k", 10)) == 2


class TestMembership:
    def test_add_and_remove_are_idempotent(self):
        ring = HashRing(["a", "b"])
        ring.add("a")
        assert len(ring) == 2
        ring.remove("missing")
        ring.remove("b")
        ring.remove("b")
        assert ring.shards == ("a",)
        assert "a" in ring and "b" not in ring

    def test_empty_ring_refuses_to_route(self):
        with pytest.raises(LookupError):
            HashRing().route("key")


class TestBalanceAndRemap:
    def test_vnodes_spread_keys_roughly_evenly(self):
        ring = HashRing(SHARDS, vnodes=64)
        counts = {shard: 0 for shard in SHARDS}
        for key in KEYS:
            counts[ring.route(key)] += 1
        expected = len(KEYS) / len(SHARDS)
        for shard, count in counts.items():
            assert count > expected * 0.5, (shard, counts)
            assert count < expected * 1.6, (shard, counts)

    def test_removing_one_shard_remaps_only_its_keys(self):
        ring = HashRing(SHARDS)
        before = {key: ring.route(key) for key in KEYS}
        ring.remove("shard-2")
        moved = sum(1 for key in KEYS if ring.route(key) != before[key])
        owned = sum(1 for owner in before.values() if owner == "shard-2")
        # Exactly the removed shard's keys move — consistent hashing's
        # defining property — and that is ~1/N of the sample.
        assert moved == owned
        assert moved == pytest.approx(len(KEYS) / len(SHARDS), rel=0.5)

    def test_adding_one_shard_remaps_about_one_nth(self):
        ring = HashRing(SHARDS)
        before = {key: ring.route(key) for key in KEYS}
        ring.add("shard-new")
        moved = sum(1 for key in KEYS if ring.route(key) != before[key])
        # Every moved key must have moved *to* the new shard.
        for key in KEYS:
            owner = ring.route(key)
            if owner != before[key]:
                assert owner == "shard-new"
        assert moved == pytest.approx(len(KEYS) / (len(SHARDS) + 1), rel=0.5)

    def test_survivors_keep_their_keys_after_a_leave(self):
        ring = HashRing(SHARDS)
        before = {key: ring.route(key) for key in KEYS}
        ring.remove("shard-0")
        for key, owner in before.items():
            if owner != "shard-0":
                assert ring.route(key) == owner
