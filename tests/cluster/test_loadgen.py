"""The open-loop generator: seeded schedules, ungated arrivals, stats."""

import asyncio
import math
import random
import threading

import pytest

from repro.engine.worker import execute_job

from repro.cluster.loadgen import (
    OpenLoopReport,
    PhaseStats,
    arrival_schedule,
    percentile,
    run_open_loop,
)
from repro.runtime import RuntimeConfig
from repro.service.app import ServiceState
from repro.service.http import ServiceServer

WORKLOADS = ["gzip", "gcc95", "art", "crafty"]


class TestSchedule:
    def test_same_seed_means_the_identical_schedule(self):
        kwargs = dict(rate=200.0, duration=1.0, workloads=WORKLOADS,
                      burst_factor=2.0, burst_duration=0.5)
        first = arrival_schedule(seed=7, **kwargs)
        second = arrival_schedule(seed=7, **kwargs)
        assert first == second
        assert first != arrival_schedule(seed=8, **kwargs)

    def test_schedule_never_touches_the_global_rng(self):
        random.seed(123)
        state = random.getstate()
        arrival_schedule(seed=7, rate=100.0, duration=1.0, workloads=WORKLOADS)
        assert random.getstate() == state

    def test_phases_partition_the_timeline(self):
        schedule = arrival_schedule(
            seed=3, rate=300.0, duration=1.0, workloads=WORKLOADS,
            burst_factor=3.0, burst_duration=1.0,
        )
        sustained = [a for a in schedule if a.phase == "sustained"]
        burst = [a for a in schedule if a.phase == "burst"]
        assert all(a.at < 1.0 for a in sustained)
        assert all(1.0 <= a.at < 2.0 for a in burst)
        # Burst arrivals come ~3x as fast as sustained ones.
        assert len(burst) > len(sustained) * 1.5
        assert [a.at for a in schedule] == sorted(a.at for a in schedule)

    def test_rate_controls_arrival_count(self):
        schedule = arrival_schedule(
            seed=11, rate=500.0, duration=2.0, workloads=WORKLOADS
        )
        assert len(schedule) == pytest.approx(1000, rel=0.2)

    def test_zipf_popularity_is_skewed(self):
        schedule = arrival_schedule(
            seed=5, rate=1000.0, duration=1.0, workloads=WORKLOADS,
            zipf_skew=1.2,
        )
        counts = {name: 0 for name in WORKLOADS}
        for arrival in schedule:
            counts[arrival.workload] += 1
        assert counts[WORKLOADS[0]] > counts[WORKLOADS[-1]] * 2

    def test_invalid_inputs_are_rejected(self):
        with pytest.raises(ValueError):
            arrival_schedule(seed=1, rate=0.0, duration=1.0, workloads=WORKLOADS)
        with pytest.raises(ValueError):
            arrival_schedule(seed=1, rate=10.0, duration=1.0, workloads=[])


class TestStats:
    def test_percentiles_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0.50) == 51.0
        assert percentile(values, 0.99) == 100.0
        assert math.isnan(percentile([], 0.5))

    def test_shed_rate_and_doc(self):
        stats = PhaseStats(phase="sustained", offered=10, completed=8, shed=2,
                           latencies=[0.01] * 8)
        assert stats.shed_rate == pytest.approx(0.2)
        doc = stats.to_doc()
        assert doc["p50_ms"] == pytest.approx(10.0)
        assert doc["p999_ms"] == pytest.approx(10.0)

    def test_report_aggregates_phases(self):
        report = OpenLoopReport(seed=1, rate=10.0)
        report.phase("sustained").offered = 5
        report.phase("burst").offered = 7
        report.phase("burst").errors = 1
        assert report.offered == 12
        assert report.errors == 1
        assert "sustained" in report.summary()


class TestOpenLoopRun:
    def _config(self, tmp_path):
        return RuntimeConfig(
            host="127.0.0.1", port=0, backend="fast", executor="thread",
            workers=2, concurrency=4, queue_limit=8, memory_entries=16,
            cache_dir=str(tmp_path / "disk"),
        )

    def test_arrivals_are_not_gated_on_completions(self, tmp_path):
        """A slow server must not slow the offered schedule down."""
        release = threading.Event()
        started = []

        def slow_compute(job):
            started.append(job.cache_key())
            release.wait(timeout=10)
            return execute_job(job)

        async def scenario():
            state = ServiceState(self._config(tmp_path), compute=slow_compute)
            server = ServiceServer(state)
            await server.start()
            schedule = arrival_schedule(
                seed=2, rate=40.0, duration=0.5, workloads=["gzip", "gcc95"]
            )
            task = asyncio.create_task(run_open_loop(
                "127.0.0.1", server.port, schedule, seed=2, rate=40.0,
            ))
            # Give the schedule time to fully fire while nothing completes.
            await asyncio.sleep(1.0)
            offered_before_any_completion = len(started) > 1
            release.set()
            report = await task
            await server.drain(timeout=5.0)
            return offered_before_any_completion, report, len(schedule)

        gated_free, report, offered = asyncio.run(scenario())
        # Both distinct keys reached the compute stage while request #1
        # was still blocked — a closed loop could never do that.
        assert gated_free
        assert report.offered == offered
        assert report.errors == 0

    def test_measures_a_real_server(self, tmp_path):
        async def scenario():
            state = ServiceState(self._config(tmp_path))
            server = ServiceServer(state)
            await server.start()
            schedule = arrival_schedule(
                seed=4, rate=30.0, duration=1.0, workloads=["gzip"],
            )
            report = await run_open_loop(
                "127.0.0.1", server.port, schedule,
                depths=[4, 8], length=600, seed=4, rate=30.0,
            )
            await server.drain(timeout=5.0)
            return report

        report = asyncio.run(scenario())
        sustained = report.phases["sustained"]
        assert sustained.offered > 0
        assert sustained.completed == sustained.offered
        assert sustained.shed == 0 and report.errors == 0
        assert math.isfinite(sustained.p99)
        assert sustained.latencies and min(sustained.latencies) > 0
        # One cold compute, then the LRU serves the rest.
        assert sustained.sources.get("computed", 0) == 1
