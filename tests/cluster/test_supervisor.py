"""The shard supervisor: real subprocess workers, restart policy, CLI argv.

The subprocess-boot tests are ``slow`` (they spawn real ``repro serve``
daemons); the argv/spec tests run in tier 1.
"""

import asyncio
import signal
import sys

import pytest

from repro.cluster.shards import ShardSpec, ShardSupervisor, shard_specs
from repro.runtime import RuntimeConfig


def make_config(tmp_path, **overrides) -> RuntimeConfig:
    settings = dict(
        host="127.0.0.1",
        backend="fast",
        executor="thread",
        workers=2,
        concurrency=4,
        queue_limit=8,
        memory_entries=16,
        cache_dir=str(tmp_path / "shared-disk"),
        cluster_shards=2,
        cluster_base_port=0,
        cluster_restart_limit=2,
        cluster_health_interval=0.2,
    )
    settings.update(overrides)
    return RuntimeConfig(**settings)


class TestSpecs:
    def test_shard_specs_enumerate_base_port(self, tmp_path):
        config = make_config(tmp_path, cluster_shards=3, cluster_base_port=9000)
        specs = shard_specs(config)
        assert [spec.shard_id for spec in specs] == [
            "shard-0", "shard-1", "shard-2"
        ]
        assert [spec.port for spec in specs] == [9000, 9001, 9002]
        assert specs[0].address == ("127.0.0.1", 9000)

    def test_command_passes_the_serving_knobs(self, tmp_path):
        config = make_config(tmp_path)
        supervisor = ShardSupervisor(config)
        argv = supervisor.command(ShardSpec("shard-0", "127.0.0.1", 9100))
        assert argv[:4] == [sys.executable, "-m", "repro", "serve"]
        assert argv[argv.index("--port") + 1] == "9100"
        assert argv[argv.index("--backend") + 1] == "fast"
        assert argv[argv.index("--memory-entries") + 1] == "16"
        assert argv[argv.index("--cache-dir") + 1] == str(tmp_path / "shared-disk")

    def test_no_disk_cache_spelling(self, tmp_path):
        config = make_config(tmp_path).with_values(cache_dir=None)
        supervisor = ShardSupervisor(config)
        argv = supervisor.command(ShardSpec("shard-0", "127.0.0.1", 9100))
        assert "--no-disk-cache" in argv and "--cache-dir" not in argv

    def test_addresses_follow_the_specs(self, tmp_path):
        supervisor = ShardSupervisor(make_config(tmp_path, cluster_shards=2,
                                                 cluster_base_port=8100))
        assert supervisor.addresses == {
            "shard-0": ("127.0.0.1", 8100),
            "shard-1": ("127.0.0.1", 8101),
        }


def _free_ports(count):
    import socket

    sockets, ports = [], []
    for _ in range(count):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sockets.append(sock)
        ports.append(sock.getsockname()[1])
    for sock in sockets:
        sock.close()
    return ports


@pytest.mark.slow
class TestSubprocessFleet:
    def test_boot_restart_and_stop(self, tmp_path):
        base_port = _free_ports(1)[0]
        config = make_config(tmp_path, cluster_shards=2, cluster_base_port=base_port)
        supervisor = ShardSupervisor(config)
        supervisor.start()
        try:
            asyncio.run(supervisor.wait_ready(timeout=60.0))
            assert supervisor.running("shard-0")
            assert supervisor.running("shard-1")

            # Kill one worker; the restart policy must bring it back.
            supervisor._procs["shard-0"].send_signal(signal.SIGKILL)
            supervisor._procs["shard-0"].wait()
            restarted = supervisor.poll_and_restart()
            assert restarted == ["shard-0"]
            assert supervisor.restarts["shard-0"] == 1
            asyncio.run(supervisor.wait_ready(timeout=60.0))

            # Past the budget the corpse stays down.
            supervisor.restarts["shard-0"] = config.cluster_restart_limit
            supervisor._procs["shard-0"].send_signal(signal.SIGKILL)
            supervisor._procs["shard-0"].wait()
            assert supervisor.poll_and_restart() == []
        finally:
            supervisor.stop()
        assert not supervisor.running("shard-0")
        assert not supervisor.running("shard-1")
