"""Optimum-depth extraction from simulation sweeps, and theory overlays.

The paper extracts each workload's optimum design point two ways and
reports both:

1. **Blind least-squares cubic fit** over the simulated metric curve,
   taking the interior peak (its Figs. 6/7 histograms).  Short-pipeline
   merge boundaries make the raw curves lumpy — the paper notes "the real
   pipeline boundaries chosen give discontinuous results, particularly for
   short pipelines" — so when the global cubic has no usable interior peak
   this module falls back to a local parabola around the best sampled
   point (documented in the returned ``method``).
2. **Theory fit**: extract ``(N_H/N_I, alpha, beta)`` from the reference
   run, scale-fit the analytic curve to the simulated points, and read the
   optimum off the theory (about 20 % shorter than the cubic estimate in
   the paper's data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.fitting import cubic_fit_peak, fit_scale
from ..core.metric import MetricFamily, metric_curve
from ..core.optimizer import TheoryOptimum, optimum_depth
from ..core.params import DesignSpace, GatingModel, GatingStyle, PowerParams
from ..core.power import calibrate_leakage
from .extraction import extract_workload_params, fit_workload_params
from .sweep import DepthSweep

__all__ = ["OptimumEstimate", "TheoryFit", "optimum_from_sweep", "theory_fit_from_sweep"]


@dataclass(frozen=True)
class OptimumEstimate:
    """An optimum design point extracted from simulated data.

    Attributes:
        depth: estimated optimal depth (continuous).
        fo4_per_stage: cycle time at that depth.
        method: "cubic-fit", "parabolic" or "boundary".
        r_squared: goodness of the global cubic fit (diagnostic).
        metric_peak: fitted metric value at the optimum.
    """

    depth: float
    fo4_per_stage: float
    method: str
    r_squared: float
    metric_peak: float


def _parabolic_refine(
    depths: np.ndarray, values: np.ndarray, window: int = 3
) -> Tuple[float, float, str]:
    """Vertex of a parabola fitted around the best sampled point."""
    k = int(np.argmax(values))
    lo = max(k - window, 0)
    hi = min(k + window + 1, len(depths))
    x, y = depths[lo:hi], values[lo:hi]
    if len(x) < 3:
        return float(depths[k]), float(values[k]), "boundary"
    c = np.polyfit(x, y, 2)
    if c[0] >= 0:  # not concave; trust the sample
        return float(depths[k]), float(values[k]), "boundary"
    vertex = -c[1] / (2.0 * c[0])
    vertex = float(min(max(vertex, x[0]), x[-1]))
    peak = float(np.polyval(c, vertex))
    return vertex, peak, "parabolic"


def optimum_from_sweep(
    sweep: DepthSweep,
    m: "float | MetricFamily" = 3.0,
    gated: bool = True,
) -> OptimumEstimate:
    """The paper's cubic-fit optimum for one workload sweep.

    Falls back to a local parabolic refinement when the global cubic has
    no interior maximum inside the sampled range (and to the raw best
    sample when even that fails); the ``method`` field records which
    estimator produced the number.
    """
    depths = sweep.depth_array()
    values = sweep.metric(m, gated)
    fit = cubic_fit_peak(depths, values)
    margin = 0.5
    if (
        fit.peak_depth is not None
        and depths[0] + margin <= fit.peak_depth <= depths[-1] - margin
    ):
        depth, peak, method = float(fit.peak_depth), float(fit.peak_value), "cubic-fit"
    else:
        depth, peak, method = _parabolic_refine(depths, values)
    tech = sweep.reference.technology
    return OptimumEstimate(
        depth=depth,
        fo4_per_stage=tech.fo4_per_stage(depth),
        method=method,
        r_squared=fit.r_squared,
        metric_peak=peak,
    )


def _power_gamma(sweep: DepthSweep) -> float:
    """Latch-growth exponent implied by the sweep's measured power.

    Eq. 3's un-gated dynamic power is ``f_s * P_d * N_L * p**gamma``, so
    ``gamma`` is the log-log slope of (un-gated dynamic power x cycle
    time) against depth.
    """
    tech = sweep.reference.technology
    depths = sweep.depth_array()
    dynamic = np.asarray([rep.ungated_dynamic for rep in sweep.reports])
    cycle_times = tech.latch_overhead + tech.total_logic_depth / depths
    latch_proxy = dynamic * cycle_times
    slope, _ = np.polyfit(np.log(depths), np.log(latch_proxy), 1)
    return float(slope)


@dataclass(frozen=True)
class TheoryFit:
    """The analytic curve fitted (scale only) to one simulated sweep.

    Attributes:
        space: the design space built from the extracted parameters.
        optimum: the analytic optimum for that space.
        scale: the fitted overall scale factor (the paper's only
            adjustable parameter).
        r_squared: fit quality of ``scale * theory`` against simulation.
        theory_values: the scaled theory metric at the sweep's depths.
        gamma: the latch-growth exponent used for the theory's Eq. 3.
    """

    space: DesignSpace
    optimum: TheoryOptimum
    scale: float
    r_squared: float
    theory_values: np.ndarray
    gamma: float


def theory_fit_from_sweep(
    sweep: DepthSweep,
    m: "float | MetricFamily" = 3.0,
    gated: bool = True,
    gamma: "float | None" = None,
    extraction: str = "reference",
) -> TheoryFit:
    """Extract parameters, build the analytic metric, scale-fit it.

    ``gamma`` defaults to the exponent of the sweep's own *measured*
    un-gated dynamic power (which by Eq. 3 scales as ``f_s * p**gamma``),
    so the simulation and theory share the same latch-growth behaviour
    exactly where the simulator produced it — merge-rule lumps included.

    ``extraction`` selects how the workload parameters are obtained:
    ``"reference"`` (the paper's method — one detailed run at the
    reference depth predicts the whole curve) or ``"curve"`` (least-squares
    fit of Eq. 1's two coefficients over all simulated depths; much less
    sensitive to single-depth noise).
    """
    reference = sweep.reference
    technology = reference.technology
    if extraction == "reference":
        params = extract_workload_params(reference).params
    elif extraction == "curve":
        params = fit_workload_params(sweep.results)
    else:
        raise ValueError(
            f"extraction must be 'reference' or 'curve', got {extraction!r}"
        )
    if gamma is None:
        gamma = _power_gamma(sweep)
    gating = (
        GatingModel(GatingStyle.PERFECT) if gated else GatingModel(GatingStyle.UNGATED)
    )
    space = DesignSpace(
        technology=technology,
        workload=params,
        power=PowerParams(latch_growth_exponent=gamma),
        gating=gating,
    )
    # Match the simulated leakage share at the reference depth.
    leak_share = sweep.reports[sweep.depths.index(sweep.reference_depth)].leakage_fraction(
        gated
    )
    space = space.with_power(
        calibrate_leakage(space, leak_share, float(sweep.reference_depth))
    )
    theory = metric_curve(sweep.depth_array(), space, m)
    sim = sweep.metric(m, gated)
    scale = fit_scale(sim, theory)
    optimum = optimum_depth(space, m)
    return TheoryFit(
        space=space,
        optimum=optimum,
        scale=scale.scale,
        r_squared=scale.r_squared,
        theory_values=scale.apply(theory),
        gamma=float(gamma),
    )
