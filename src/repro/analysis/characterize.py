"""Workload characterisation: the suite table a paper artifact would carry.

The paper describes its 55 traces qualitatively ("carefully selected to
accurately reflect the instruction mix, module mix and branch prediction
characteristics").  This module produces the quantitative equivalent for
our synthetic suite: per workload, the static mix and the behavioural
rates measured on a reference simulation — the numbers that determine
each workload's position in the Figs. 6/7 distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..pipeline.simulator import MachineConfig, PipelineSimulator
from ..trace.generator import generate_trace
from ..trace.spec import WorkloadClass, WorkloadSpec

__all__ = ["WorkloadCharacter", "characterize", "characterize_suite", "format_table"]


@dataclass(frozen=True)
class WorkloadCharacter:
    """Static and behavioural characterisation of one workload."""

    name: str
    workload_class: WorkloadClass
    branch_fraction: float
    memory_fraction: float
    fp_fraction: float
    misprediction_rate: float
    dcache_miss_rate: float
    icache_misses_per_kinstr: float
    hazard_rate: float
    superscalar_degree: float
    cpi: float

    @property
    def stressfulness(self) -> float:
        """A single hazard-pressure figure: ``alpha * N_H/N_I`` scaled by
        the stall share; the theory's shallow-optimum driver."""
        return self.superscalar_degree * self.hazard_rate


def characterize(
    spec: WorkloadSpec,
    trace_length: int = 8000,
    reference_depth: int = 8,
    machine: "MachineConfig | None" = None,
) -> WorkloadCharacter:
    """Measure one workload's character on a reference simulation."""
    trace = generate_trace(spec, trace_length)
    stats = trace.stats()
    result = PipelineSimulator(machine).simulate(trace, reference_depth)
    return WorkloadCharacter(
        name=spec.name,
        workload_class=spec.workload_class,
        branch_fraction=stats.branch_fraction,
        memory_fraction=stats.memory_fraction,
        fp_fraction=stats.fp_fraction,
        misprediction_rate=result.misprediction_rate,
        dcache_miss_rate=result.dcache_miss_rate,
        icache_misses_per_kinstr=1000.0 * result.icache_misses / result.instructions,
        hazard_rate=result.hazard_rate,
        superscalar_degree=result.superscalar_degree,
        cpi=result.cpi,
    )


def characterize_suite(
    specs: Sequence[WorkloadSpec],
    trace_length: int = 8000,
    reference_depth: int = 8,
    machine: "MachineConfig | None" = None,
) -> Tuple[WorkloadCharacter, ...]:
    """Characterise a whole suite (55 workloads in the full run)."""
    return tuple(
        characterize(spec, trace_length, reference_depth, machine) for spec in specs
    )


def format_table(characters: Sequence[WorkloadCharacter]) -> str:
    """A fixed-width suite characterisation table."""
    lines = [
        f"{'workload':20s} {'class':12s} {'br%':>5s} {'mem%':>5s} {'fp%':>5s} "
        f"{'mpred%':>7s} {'d$mr%':>6s} {'i$/ki':>6s} {'NH/NI':>6s} {'alpha':>6s} {'CPI':>5s}"
    ]
    for c in characters:
        lines.append(
            f"{c.name:20s} {c.workload_class.value:12s} "
            f"{100 * c.branch_fraction:5.1f} {100 * c.memory_fraction:5.1f} "
            f"{100 * c.fp_fraction:5.1f} {100 * c.misprediction_rate:7.1f} "
            f"{100 * c.dcache_miss_rate:6.1f} {c.icache_misses_per_kinstr:6.1f} "
            f"{c.hazard_rate:6.3f} {c.superscalar_degree:6.2f} {c.cpi:5.2f}"
        )
    return "\n".join(lines)
