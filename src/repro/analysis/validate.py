"""Cross-validation harness: the fast kernels against the reference simulator.

The fast backend (:mod:`repro.pipeline.fastsim`) and the depth-batched
backend (:mod:`repro.pipeline.batched`) are only useful if they are
*indistinguishable* from the reference interpreter, so this module runs
every candidate backend over a grid of (workload, machine configuration,
depth) points and compares

* every field of each :class:`~repro.pipeline.results.SimulationResult`
  — CPI follows from ``instructions``/``cycles``, the hazard counts
  (mispredicts, cache and L2 misses) are compared exactly, and the
  per-unit occupancies feed the clock-gated power model;
* the extracted optimum depth per (workload, configuration), through the
  same power-accounting path the figures use
  (:func:`~repro.analysis.sweep.sweep_from_results` +
  :func:`~repro.analysis.optimum.optimum_from_sweep`).

``repro validate-kernel`` exposes it on the command line (``--small`` is
the CI configuration, ``--backend`` narrows the candidate set) and exits
non-zero on any divergence;
``tests/pipeline/test_fastsim_equivalence.py`` asserts the same
properties inside the test suite.

The ``cycle`` backend (:mod:`repro.pipeline.cycle`) is validated under a
different contract: it shares the trace analysis, so every hazard count
must still match *exactly*, but its timing comes from an independent
cycle-driven state machine — ``cycles`` and ``issue_cycles`` are held
within :data:`~repro.pipeline.cycle.CYCLE_CPI_RTOL` of the reference
(CPI follows, since the instruction counts are equal), the queue
occupancies are structural rather than analytic and are checked for
shape only, and the optimum-depth extraction is not required to agree.

The machine grid deliberately crosses the model's behavioural switches:
in-order and out-of-order cores, a small BTB (taken-branch stalls), a
bimodal predictor without structure warm-up, and an oracle predictor
with a multi-entry MSHR — each exercises a different event path in the
kernel's trace analysis.

When ``suite`` is among the candidates, the harness additionally packs
*every* (workload, machine) point of the grid into one ragged tensor and
prices the whole cross-product through a single
``run_suite_batched`` kernel call (:func:`repro.pipeline.suite.run_suite`)
— the multi-job packing path the per-point loop cannot reach — and
compares each lane field-wise against the reference, tagging mismatches
``suite-batch``.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

from ..pipeline.cycle import CYCLE_CPI_RTOL
from ..pipeline.fastsim import BACKENDS, make_simulator
from ..pipeline.simulator import MachineConfig, PipelineSimulator
from ..trace.generator import generate_trace
from ..trace.spec import WorkloadSpec
from ..trace.suite import small_suite

__all__ = [
    "CANDIDATE_BACKENDS",
    "TOLERANCE_BACKENDS",
    "FieldMismatch",
    "ValidationReport",
    "default_machine_grid",
    "validate_kernel",
    "format_report",
]

CANDIDATE_BACKENDS: Tuple[str, ...] = tuple(
    b for b in BACKENDS if b != "reference"
)
"""Backends validated against the reference by default."""

TOLERANCE_BACKENDS: Mapping[str, float] = {"cycle": CYCLE_CPI_RTOL}
"""Backends whose timing is independent of the analytic recurrence,
mapped to the relative tolerance applied to their ``cycles`` and
``issue_cycles`` fields.  Hazard counts stay exact for these backends
too — they consume the same trace analysis."""

#: Relative tolerance for float fields.  The analytic backends are
#: exactly equal in practice (all compute in exact integer cycle
#: arithmetic); the tolerance only guards the float-valued occupancy map.
FLOAT_RTOL = 1e-9

#: Result fields priced by the timing loop, not the trace analysis —
#: the only fields a tolerance backend may legitimately move.
_TIMING_FIELDS = frozenset({"cycles", "issue_cycles"})

SMALL_DEPTHS: Tuple[int, ...] = (2, 3, 4, 6, 8, 13, 20)
FULL_DEPTHS: Tuple[int, ...] = (2, 3, 4, 5, 6, 8, 10, 13, 16, 20, 25, 32, 40)


@dataclass(frozen=True)
class FieldMismatch:
    """One diverging result field at one (workload, machine, depth) point."""

    workload: str
    machine: str
    depth: int
    field: str
    reference: object
    fast: object
    backend: str = "fast"


@dataclass(frozen=True)
class OptimumMismatch:
    """Diverging extracted optimum for one (workload, machine) sweep."""

    workload: str
    machine: str
    reference_depth: float
    fast_depth: float
    backend: str = "fast"


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one cross-validation run.

    ``points`` counts the (workload, machine, depth) grid points checked;
    every point compares the full :class:`SimulationResult` field set.
    """

    workloads: Tuple[str, ...]
    machines: Tuple[str, ...]
    depths: Tuple[int, ...]
    trace_length: int
    points: int
    mismatches: Tuple[FieldMismatch, ...]
    optimum_mismatches: Tuple[OptimumMismatch, ...]
    backends: Tuple[str, ...] = ("fast",)

    @property
    def passed(self) -> bool:
        return not self.mismatches and not self.optimum_mismatches


def default_machine_grid(small: bool = False) -> Mapping[str, MachineConfig]:
    """The machine configurations the harness crosses.

    ``small`` keeps the two paper machines (in-order and out-of-order);
    the full grid adds the predictor/BTB/MSHR variants.
    """
    grid = {
        "in-order": MachineConfig(),
        "out-of-order": MachineConfig(in_order=False),
    }
    if not small:
        grid.update(
            {
                "small-btb": MachineConfig(btb_entries=64),
                "bimodal-cold": MachineConfig(predictor_kind="bimodal", warmup=False),
                "oracle-mshr4": MachineConfig(
                    predictor_kind="oracle", mshr_entries=4, in_order=False
                ),
            }
        )
    return grid


def _compare_fields(
    reference, fast, workload, machine, depth, backend, out, rtol=None
) -> None:
    """Append a :class:`FieldMismatch` per diverging field.

    ``rtol`` is None for the analytic backends (exact contract) and the
    backend's timing tolerance for :data:`TOLERANCE_BACKENDS` — timing
    fields are then compared within ``rtol``, the occupancy map by key
    set only, and everything else stays exact.
    """
    for field in dataclasses.fields(reference):
        a = getattr(reference, field.name)
        b = getattr(fast, field.name)
        if rtol is not None and field.name in _TIMING_FIELDS:
            equal = math.isclose(float(a), float(b), rel_tol=rtol, abs_tol=0.0)
        elif isinstance(a, Mapping):
            equal = set(a) == set(b) and (
                rtol is not None
                or all(
                    math.isclose(
                        float(a[k]), float(b[k]), rel_tol=FLOAT_RTOL, abs_tol=0.0
                    )
                    for k in a
                )
            )
        elif isinstance(a, float) or isinstance(b, float):
            equal = math.isclose(float(a), float(b), rel_tol=FLOAT_RTOL, abs_tol=0.0)
        else:
            equal = a == b
        if not equal:
            out.append(
                FieldMismatch(
                    workload=workload,
                    machine=machine,
                    depth=depth,
                    field=field.name,
                    reference=a,
                    fast=b,
                    backend=backend,
                )
            )


def validate_kernel(
    specs: "Sequence[WorkloadSpec] | None" = None,
    depths: "Sequence[int] | None" = None,
    machines: "Mapping[str, MachineConfig] | None" = None,
    trace_length: "int | None" = None,
    small: bool = False,
    reference_depth: int = 8,
    metric: float = 3.0,
    backends: "Sequence[str] | None" = None,
    tech_node: "str | None" = None,
) -> ValidationReport:
    """Run every candidate backend over the validation grid and compare.

    Args:
        specs: workloads (default: one per class for ``--small``, two per
            class otherwise).
        depths: depth set (must contain ``reference_depth``; defaults
            scale with ``small``).
        machines: named machine configurations (default:
            :func:`default_machine_grid`).
        trace_length: dynamic instructions (default 1500 small / 4000 full).
        small: the reduced CI grid.
        reference_depth: power-calibration anchor for the optimum check.
        metric: metric exponent for the optimum check (paper: m = 3).
        backends: candidate backends to hold against the reference
            (default: every non-reference backend — ``fast`` and
            ``batched``).  ``points`` counts (workload, machine, depth)
            grid points; every point is checked under every backend.
        tech_node: when set, every grid machine is re-noded at this
            :mod:`repro.tech` node (``repro validate-kernel
            --tech-node``), so the cross-backend contract is exercised
            away from the base node's constants too.
    """
    from .optimum import optimum_from_sweep
    from .sweep import sweep_from_results

    specs = tuple(specs) if specs is not None else small_suite(1 if small else 2)
    depths = tuple(depths) if depths is not None else (
        SMALL_DEPTHS if small else FULL_DEPTHS
    )
    machines = dict(machines) if machines is not None else dict(
        default_machine_grid(small)
    )
    if tech_node is not None:
        machines = {
            label: MachineConfig.for_node(tech_node, machine)
            for label, machine in machines.items()
        }
    trace_length = trace_length or (1500 if small else 4000)
    if reference_depth not in depths:
        raise ValueError(
            f"reference_depth {reference_depth} must be one of the depths {depths}"
        )
    backends = tuple(backends) if backends is not None else CANDIDATE_BACKENDS
    for backend in backends:
        if backend not in BACKENDS or backend == "reference":
            raise ValueError(
                f"cannot validate backend {backend!r}; "
                f"choose from {CANDIDATE_BACKENDS}"
            )

    mismatches: list = []
    optimum_mismatches: list = []
    points = 0
    suite_points: list = []
    for spec in specs:
        trace = generate_trace(spec, trace_length)
        for label, machine in machines.items():
            reference_results = PipelineSimulator(machine).simulate_depths(
                trace, depths
            )
            if "suite" in backends:
                suite_points.append(
                    (spec.name, label, machine, trace, reference_results)
                )
            opt_ref = optimum_from_sweep(
                sweep_from_results(
                    reference_results, depths, spec=spec,
                    reference_depth=reference_depth,
                    tech_node=machine.tech_node,
                ),
                metric,
            ).depth
            points += len(depths)
            for backend in backends:
                rtol = TOLERANCE_BACKENDS.get(backend)
                candidate = make_simulator(machine, backend)
                candidate_results = candidate.simulate_depths(trace, depths)
                for depth, r, f in zip(depths, reference_results,
                                       candidate_results):
                    _compare_fields(
                        r, f, spec.name, label, depth, backend, mismatches,
                        rtol=rtol,
                    )
                if rtol is not None:
                    # A tolerance backend's CPI curve may legitimately
                    # move the extracted optimum; the per-depth bound
                    # above is its whole contract.
                    continue
                opt_fast = optimum_from_sweep(
                    sweep_from_results(
                        list(candidate_results), depths, spec=spec,
                        reference_depth=reference_depth,
                        tech_node=machine.tech_node,
                    ),
                    metric,
                ).depth
                if opt_ref != opt_fast:
                    optimum_mismatches.append(
                        OptimumMismatch(
                            workload=spec.name,
                            machine=label,
                            reference_depth=opt_ref,
                            fast_depth=opt_fast,
                            backend=backend,
                        )
                    )
    if suite_points:
        _validate_suite_batch(suite_points, depths, mismatches)
    return ValidationReport(
        workloads=tuple(spec.name for spec in specs),
        machines=tuple(machines),
        depths=depths,
        trace_length=trace_length,
        points=points,
        mismatches=tuple(mismatches),
        optimum_mismatches=tuple(optimum_mismatches),
        backends=backends,
    )


def _validate_suite_batch(points, depths, out) -> None:
    """Cross-check the multi-job ragged packing path against the reference.

    Every (workload, machine) point is packed into ONE suite tensor and
    priced by a single kernel call — heterogeneous machines side by side,
    which the per-point ``suite`` candidate loop (one-job batches) never
    exercises.  Mismatches are tagged ``suite-batch``.  A missing kernel
    is not a failure: the per-point loop has already validated the scalar
    fallback, and there is no batch path to diverge.
    """
    from ..pipeline.plan import StagePlan
    from ..pipeline.suite import SuiteLanes, run_suite
    from ..pipeline.timing import DepthConstants

    lanes = []
    simulators = []
    for _, _, machine, trace, _ in points:
        simulator = make_simulator(machine, "suite")
        cons_list = [
            DepthConstants.for_plan(machine, StagePlan.for_depth(depth))
            for depth in depths
        ]
        lanes.append(SuiteLanes(machine, simulator.events_for(trace), cons_list))
        simulators.append(simulator)
    raw_all = run_suite(lanes)
    if raw_all is None:
        return
    for (workload, label, machine, trace, reference_results), simulator, lane, raw \
            in zip(points, simulators, lanes, raw_all):
        occ_rename = 0 if machine.in_order else lane.events.n
        for depth, cons, r, (cycles, issue_cycles, occ_agenq, occ_execq) in zip(
            depths, lane.cons_list, reference_results, raw
        ):
            candidate = simulator._build_result(
                trace, StagePlan.for_depth(depth), cons, lane.events,
                int(cycles), int(issue_cycles),
                occ_rename, int(occ_agenq), int(occ_execq),
            )
            _compare_fields(
                r, candidate, workload, label, depth, "suite-batch", out
            )


def format_report(report: ValidationReport) -> str:
    """Human-readable validation summary (the CLI output)."""
    lines = [
        "kernel cross-validation: "
        f"{len(report.workloads)} workloads x {len(report.machines)} machines "
        f"x {len(report.depths)} depths ({report.points} points, "
        f"{report.trace_length} instructions)",
        f"  backends : {', '.join(report.backends)} (vs reference)",
        f"  machines : {', '.join(report.machines)}",
        f"  depths   : {', '.join(str(d) for d in report.depths)}",
    ]
    if report.passed:
        toleranced = [b for b in report.backends if b in TOLERANCE_BACKENDS]
        lines.append(
            "  PASS: every SimulationResult field identical "
            f"(float tolerance {FLOAT_RTOL:g}); optimum depths match"
        )
        for b in toleranced:
            lines.append(
                f"  PASS [{b}]: hazard counts exact, timing within "
                f"rtol {TOLERANCE_BACKENDS[b]:g} of the reference"
            )
    else:
        for m in report.mismatches[:20]:
            lines.append(
                f"  FAIL [{m.backend}] {m.workload}/{m.machine} "
                f"depth {m.depth} {m.field}: "
                f"reference={m.reference!r} candidate={m.fast!r}"
            )
        hidden = len(report.mismatches) - 20
        if hidden > 0:
            lines.append(f"  ... {hidden} further field mismatches")
        for om in report.optimum_mismatches:
            lines.append(
                f"  FAIL [{om.backend}] {om.workload}/{om.machine} optimum: "
                f"reference={om.reference_depth:.2f} "
                f"candidate={om.fast_depth:.2f}"
            )
        lines.append(
            f"  FAIL: {len(report.mismatches)} field mismatches, "
            f"{len(report.optimum_mismatches)} optimum mismatches"
        )
    return "\n".join(lines)
