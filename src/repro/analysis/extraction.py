"""Extraction of theory parameters from a single simulation run.

The paper's workflow (its Sec. 4): run the detailed simulator once, at one
pipeline depth, and read off the four workload numbers the theory needs —
``N_I`` and ``N_H`` "simply enumerated", ``alpha`` and ``beta`` from "more
extensive analysis of the details of the pipeline and the particular
distribution of instructions and hazards".  The entire theory curve (and
its optimum) then follows without further simulation.

Operational definitions used here:

* ``alpha`` — measured superscalar degree: instructions per cycle on
  cycles when issue happened at all.
* ``N_H/N_I`` — stall events per instruction: mispredicted branches plus
  I-cache and blocking D-cache misses.
* ``beta`` — the average fraction of the full pipeline delay
  (``t_o*p + t_p``) that one hazard stalls, solved from the measured
  stall time: ``beta = stall_time / (N_H * (t_o*p + t_p))``.  This charges
  *all* non-busy time to the hazard population (dependency interlocks
  included), exactly as the theory's single stall term must.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.params import WorkloadParams
from ..pipeline.results import SimulationResult

__all__ = ["extract_workload_params", "fit_workload_params", "ExtractionReport"]

_MIN_HAZARD_RATE = 1e-4
_MIN_BETA = 0.02
_MAX_BETA = 1.0


@dataclass(frozen=True)
class ExtractionReport:
    """A :class:`WorkloadParams` plus the raw measurements behind it."""

    params: WorkloadParams
    reference_depth: int
    stall_time: float
    busy_time: float
    raw_beta: float
    beta_clamped: bool


def extract_workload_params(result: SimulationResult) -> ExtractionReport:
    """Extract ``(N_H/N_I, alpha, beta)`` from one detailed run.

    ``beta`` is clamped into (0.02, 1.0].  A raw value above 1 means the
    counted hazard population cannot explain all measured stall time
    (typical for FP workloads, whose long-op serialisation stalls carry no
    countable hazard event); in that case ``beta`` is pinned at 1 and the
    hazard *rate* is inflated by the overflow instead, so that the theory's
    stall term ``beta * (N_H/N_I) * (t_o*p + t_p)`` still matches the
    measured stall time at the reference depth.
    """
    tech = result.technology
    pipeline_delay = (
        tech.latch_overhead * result.depth + tech.total_logic_depth
    )
    hazards = max(result.hazards, 1)
    raw_beta = result.stall_time / (hazards * pipeline_delay)
    beta = min(max(raw_beta, _MIN_BETA), _MAX_BETA)
    hazard_rate = max(result.hazard_rate, _MIN_HAZARD_RATE)
    if raw_beta > _MAX_BETA:
        hazard_rate = hazard_rate * (raw_beta / _MAX_BETA)
    params = WorkloadParams(
        hazard_rate=hazard_rate,
        superscalar_degree=result.superscalar_degree,
        hazard_stall_fraction=beta,
        name=result.trace_name,
    )
    return ExtractionReport(
        params=params,
        reference_depth=result.depth,
        stall_time=result.stall_time,
        busy_time=result.busy_time,
        raw_beta=raw_beta,
        beta_clamped=beta != raw_beta,
    )


def fit_workload_params(results: Sequence[SimulationResult]) -> WorkloadParams:
    """Fit Eq. 1's two degrees of freedom to a whole depth sweep.

    Eq. 1 is linear in its two unknown coefficient groups::

        T/N_I(p) = A * t_s(p) + B * (t_o*p + t_p),   A = 1/alpha,  B = beta*N_H/N_I

    so given simulated ``T/N_I`` at several depths, ``(A, B)`` follow from
    ordinary least squares.  This is the better-conditioned alternative to
    the paper's single-run extraction (exposed as
    ``extraction="curve"`` in :func:`repro.analysis.theory_fit_from_sweep`):
    it uses the same information the blind cubic fit does, while the
    single-run method predicts the whole curve from one depth.

    ``N_H/N_I`` is taken from the measured hazard counts (depth-invariant)
    and ``beta = B / (N_H/N_I)`` clamped to (0.02, 1.0] with the same
    overflow-inflation rule as :func:`extract_workload_params`.
    """
    if len(results) < 2:
        raise ValueError("curve fitting needs at least two depths")
    tech = results[0].technology
    depths = np.asarray([r.depth for r in results], dtype=float)
    tpi = np.asarray([r.time_per_instruction for r in results])
    basis_busy = tech.latch_overhead + tech.total_logic_depth / depths
    basis_stall = tech.latch_overhead * depths + tech.total_logic_depth
    design = np.column_stack([basis_busy, basis_stall])
    (a_coef, b_coef), *_ = np.linalg.lstsq(design, tpi, rcond=None)
    # Physical floors: alpha in [1, issue width-ish], B >= 0.
    a_coef = float(min(max(a_coef, 0.25), 1.0))
    b_coef = float(max(b_coef, 1e-8))
    alpha = 1.0 / a_coef
    hazard_rate = max(
        float(np.mean([r.hazard_rate for r in results])), _MIN_HAZARD_RATE
    )
    beta = b_coef / hazard_rate
    if beta > _MAX_BETA:
        hazard_rate *= beta / _MAX_BETA
        beta = _MAX_BETA
    beta = max(beta, _MIN_BETA)
    return WorkloadParams(
        hazard_rate=hazard_rate,
        superscalar_degree=alpha,
        hazard_stall_fraction=beta,
        name=results[0].trace_name,
    )
