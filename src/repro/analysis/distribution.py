"""Suite-level distributions of optimum pipeline depths (Figs. 6 and 7).

The paper's headline empirical result is a *distribution*: simulate all 55
workloads, extract each one's optimum depth for ``BIPS**3/W``, and
histogram the results — overall (Fig. 6, centred near 8 stages / 20 FO4)
and split by workload class (Fig. 7: legacy ~9, SPECint ~7, modern ~7–8,
floating point spread over 6–16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..core.metric import MetricFamily
from ..pipeline.fastsim import DEFAULT_BACKEND
from ..pipeline.simulator import MachineConfig
from ..trace.spec import WorkloadClass, WorkloadSpec
from .optimum import OptimumEstimate, optimum_from_sweep
from .sweep import DEFAULT_DEPTHS

__all__ = ["WorkloadOptimum", "OptimumDistribution", "optimum_distribution"]


@dataclass(frozen=True)
class WorkloadOptimum:
    """One workload's extracted optimum."""

    name: str
    workload_class: WorkloadClass
    estimate: OptimumEstimate

    @property
    def depth(self) -> float:
        return self.estimate.depth


@dataclass(frozen=True)
class OptimumDistribution:
    """The distribution of optima over a workload suite.

    Provides the paper's two views: the overall histogram (Fig. 6) and the
    per-class histograms (Fig. 7), plus summary statistics.
    """

    optima: Tuple[WorkloadOptimum, ...]
    metric_exponent: float
    gated: bool

    def __post_init__(self) -> None:
        if not self.optima:
            raise ValueError("distribution needs at least one workload optimum")

    def depths(self) -> np.ndarray:
        return np.asarray([w.depth for w in self.optima])

    @property
    def mean_depth(self) -> float:
        return float(self.depths().mean())

    @property
    def median_depth(self) -> float:
        return float(np.median(self.depths()))

    def mean_fo4(self, technology=None) -> float:
        """FO4 per stage at the mean optimum depth."""
        from ..core.params import TechnologyParams

        tech = technology or TechnologyParams()
        return tech.fo4_per_stage(self.mean_depth)

    def histogram(
        self, bins: "Sequence[float] | None" = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(bin_lefts, counts) with unit-stage bins over the observed range."""
        depths = self.depths()
        if bins is None:
            lo = int(np.floor(depths.min()))
            hi = int(np.ceil(depths.max())) + 1
            bins = np.arange(lo, hi + 1)
        counts, edges = np.histogram(depths, bins=np.asarray(bins, dtype=float))
        return edges[:-1], counts

    def by_class(self) -> Mapping[WorkloadClass, Tuple[WorkloadOptimum, ...]]:
        out: Dict[WorkloadClass, List[WorkloadOptimum]] = {}
        for w in self.optima:
            out.setdefault(w.workload_class, []).append(w)
        return {k: tuple(v) for k, v in out.items()}

    def class_summary(self) -> Mapping[WorkloadClass, Tuple[float, float, float]]:
        """Per class: (mean depth, min depth, max depth)."""
        summary: Dict[WorkloadClass, Tuple[float, float, float]] = {}
        for cls, members in self.by_class().items():
            depths = np.asarray([m.depth for m in members])
            summary[cls] = (float(depths.mean()), float(depths.min()), float(depths.max()))
        return summary


def optimum_distribution(
    specs: Sequence[WorkloadSpec],
    m: "float | MetricFamily" = 3.0,
    gated: bool = True,
    depths: Sequence[int] = DEFAULT_DEPTHS,
    trace_length: int = 8000,
    machine: MachineConfig | None = None,
    leakage_fraction: float = 0.15,
    reference_depth: int = 8,
    engine=None,
    backend: str = DEFAULT_BACKEND,
) -> OptimumDistribution:
    """Sweep every workload and collect the distribution of optima.

    This is the full Figs. 6/7 pipeline: simulate, account power, fit,
    extract.  Leakage is a *technology* constant, so it is calibrated once
    against the suite-average dynamic power at the reference depth and the
    same power model is applied to every workload — stall-heavy workloads
    then see a larger leakage share, which (with the theory's Fig. 8
    mechanism) pushes their optima deeper.

    All simulations route through the batch engine (one job per
    workload); pass ``engine`` — an
    :class:`~repro.engine.ExecutionEngine` — to run them on worker
    processes and/or serve them from the result cache.  The suite-global
    leakage calibration happens afterwards in this process, so cached
    simulations serve any calibration scheme.

    With the complete 55-workload suite at the default trace length this
    is a multi-minute computation; tests use
    :func:`repro.trace.small_suite` and shorter traces.
    """
    from ..engine.scheduler import default_engine, jobs_for_specs
    from ..power.model import calibrate_global_leakage
    from ..power.units import UnitPowerModel
    from .sweep import sweep_from_results

    exponent = m.exponent if isinstance(m, MetricFamily) else float(m)
    depths = tuple(int(d) for d in depths)
    if reference_depth not in depths:
        raise ValueError(
            f"reference_depth {reference_depth} must be one of the swept depths"
        )
    engine = engine or default_engine()
    job_results = engine.run(
        jobs_for_specs(
            specs, depths, trace_length=trace_length, machine=machine, backend=backend
        )
    )
    references = [jr.result_at(reference_depth) for jr in job_results]
    model = calibrate_global_leakage(
        UnitPowerModel(), references, leakage_fraction, gated=gated
    )
    optima = []
    for spec, job_result in zip(specs, job_results):
        sweep = sweep_from_results(
            job_result.results,
            depths,
            spec=spec,
            power_model=model,
            leakage_fraction=None,
            reference_depth=reference_depth,
        )
        estimate = optimum_from_sweep(sweep, exponent, gated)
        optima.append(
            WorkloadOptimum(
                name=spec.name, workload_class=spec.workload_class, estimate=estimate
            )
        )
    return OptimumDistribution(
        optima=tuple(optima), metric_exponent=exponent, gated=gated
    )
