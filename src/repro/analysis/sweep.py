"""Depth sweeps: simulate one workload across the whole depth range.

A :class:`DepthSweep` bundles everything the experiment layer needs about
one workload: the per-depth simulation results, the calibrated power
model, and accessors producing the BIPS / watts / ``BIPS**m/W`` series for
either gating model.  This is the simulation-side counterpart of the
theory's metric curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence, Tuple

import numpy as np

from ..core.metric import MetricFamily
from ..pipeline.plan import StagePlan
from ..pipeline.results import SimulationResult
from ..pipeline.simulator import MachineConfig, PipelineSimulator
from ..power.model import PowerReport, calibrate_unit_leakage, power_report
from ..power.units import UnitPowerModel
from ..trace.generator import generate_trace
from ..trace.spec import WorkloadSpec
from ..trace.trace import Trace

__all__ = ["DepthSweep", "run_depth_sweep", "DEFAULT_DEPTHS"]

DEFAULT_DEPTHS: Tuple[int, ...] = tuple(range(2, 26))
"""The paper's depth range: 2 to 25 stages between decode and execute."""


def _exponent_of(m: "float | MetricFamily") -> float:
    return m.exponent if isinstance(m, MetricFamily) else float(m)


@dataclass(frozen=True)
class DepthSweep:
    """Simulation results for one workload across pipeline depths.

    Attributes:
        spec: the workload swept (None when built from a raw trace).
        trace_name: workload name.
        depths: simulated depths, ascending.
        results: one :class:`SimulationResult` per depth.
        reports: one :class:`PowerReport` per depth.
        power_model: the (leakage-calibrated) unit power model used.
        reference_depth: the depth used for calibration and extraction.
    """

    spec: "WorkloadSpec | None"
    trace_name: str
    depths: Tuple[int, ...]
    results: Tuple[SimulationResult, ...]
    reports: Tuple[PowerReport, ...]
    power_model: UnitPowerModel
    reference_depth: int

    def __post_init__(self) -> None:
        if len(self.depths) != len(self.results) or len(self.depths) != len(self.reports):
            raise ValueError("depths, results and reports must align")
        if list(self.depths) != sorted(set(self.depths)):
            raise ValueError("depths must be strictly ascending")

    def __len__(self) -> int:
        return len(self.depths)

    def result_at(self, depth: int) -> SimulationResult:
        try:
            return self.results[self.depths.index(depth)]
        except ValueError:
            raise KeyError(f"depth {depth} not in sweep {self.depths}") from None

    @property
    def reference(self) -> SimulationResult:
        return self.result_at(self.reference_depth)

    # -- series ---------------------------------------------------------------
    def depth_array(self) -> np.ndarray:
        return np.asarray(self.depths, dtype=float)

    def bips(self) -> np.ndarray:
        """Instructions per FO4 at each depth."""
        return np.asarray([r.bips for r in self.results])

    def watts(self, gated: bool = True) -> np.ndarray:
        """Total power at each depth under the chosen gating model."""
        return np.asarray([rep.total(gated) for rep in self.reports])

    def metric(self, m: "float | MetricFamily" = 3.0, gated: bool = True) -> np.ndarray:
        """``BIPS**m / W`` at each depth (m = inf gives BIPS itself)."""
        exponent = _exponent_of(m)
        bips = self.bips()
        if np.isinf(exponent):
            return bips
        return bips**exponent / self.watts(gated)

    def normalized_metric(
        self, m: "float | MetricFamily" = 3.0, gated: bool = True
    ) -> np.ndarray:
        values = self.metric(m, gated)
        return values / values.max()

    def time_per_instruction(self) -> np.ndarray:
        return np.asarray([r.time_per_instruction for r in self.results])


def run_depth_sweep(
    spec: "WorkloadSpec | Trace",
    depths: Sequence[int] = DEFAULT_DEPTHS,
    trace_length: int = 8000,
    machine: MachineConfig | None = None,
    power_model: UnitPowerModel | None = None,
    leakage_fraction: "float | None" = 0.15,
    reference_depth: int = 8,
) -> DepthSweep:
    """Simulate one workload at every depth and account its power.

    Args:
        spec: a workload spec (a trace is generated) or a prebuilt trace.
        depths: depths to sweep (default 2..25, the paper's range).
        trace_length: dynamic instructions when generating from a spec.
        machine: machine configuration (defaults preserved across depths).
        power_model: unit power model; defaults to the stock budgets.
        leakage_fraction: if not None, leakage is calibrated to this share
            of total (gated) power at ``reference_depth`` — the paper uses
            15 %.  Pass None to keep the model's own leakage.
        reference_depth: calibration/extraction anchor (paper-style single
            detailed run).

    Returns:
        A :class:`DepthSweep`.
    """
    depths = tuple(int(d) for d in depths)
    if reference_depth not in depths:
        raise ValueError(
            f"reference_depth {reference_depth} must be one of the swept depths"
        )
    if isinstance(spec, Trace):
        trace, workload_spec = spec, None
    else:
        trace, workload_spec = generate_trace(spec, trace_length), spec
    simulator = PipelineSimulator(machine)
    model = power_model or UnitPowerModel()

    reference = simulator.simulate(trace, reference_depth)
    if leakage_fraction is not None:
        model = calibrate_unit_leakage(model, reference, leakage_fraction, gated=True)

    results = []
    reports = []
    for depth in depths:
        result = reference if depth == reference_depth else simulator.simulate(trace, depth)
        results.append(result)
        reports.append(power_report(result, model))
    return DepthSweep(
        spec=workload_spec,
        trace_name=trace.name,
        depths=depths,
        results=tuple(results),
        reports=tuple(reports),
        power_model=model,
        reference_depth=reference_depth,
    )
