"""Depth sweeps: simulate one workload across the whole depth range.

A :class:`DepthSweep` bundles everything the experiment layer needs about
one workload: the per-depth simulation results, the calibrated power
model, and accessors producing the BIPS / watts / ``BIPS**m/W`` series for
either gating model.  This is the simulation-side counterpart of the
theory's metric curves.

Simulation is separated from sweep assembly: the raw per-depth
:class:`~repro.pipeline.results.SimulationResult`\\ s come either from a
direct in-process run or from the batch engine
(:mod:`repro.engine`) — parallel and/or cache-served — and
:func:`sweep_from_results` turns them into a :class:`DepthSweep` by
applying power calibration and accounting.  :func:`run_depth_sweeps`
(plural) is the batch entry point the experiments and the ``batch`` CLI
command use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .. import tech
from ..core.metric import MetricFamily
from ..pipeline.fastsim import DEFAULT_BACKEND, make_simulator
from ..pipeline.results import SimulationResult
from ..pipeline.simulator import MachineConfig
from ..power.model import PowerReport, calibrate_unit_leakage, power_report
from ..power.units import UnitPowerModel
from ..trace.generator import generate_trace
from ..trace.spec import WorkloadSpec
from ..trace.trace import Trace

__all__ = [
    "DepthSweep",
    "run_depth_sweep",
    "run_depth_sweeps",
    "sweep_from_results",
    "DEFAULT_DEPTHS",
]

DEFAULT_DEPTHS: Tuple[int, ...] = tuple(range(2, 26))
"""The paper's depth range: 2 to 25 stages between decode and execute."""


def _exponent_of(m: "float | MetricFamily") -> float:
    return m.exponent if isinstance(m, MetricFamily) else float(m)


@dataclass(frozen=True)
class DepthSweep:
    """Simulation results for one workload across pipeline depths.

    Attributes:
        spec: the workload swept (None when built from a raw trace).
        trace_name: workload name.
        depths: simulated depths, ascending.
        results: one :class:`SimulationResult` per depth.
        reports: one :class:`PowerReport` per depth.
        power_model: the (leakage-calibrated, node-scaled) unit power
            model used.
        reference_depth: the depth used for calibration and extraction.
        tech_node: the :mod:`repro.tech` node the power accounting was
            scaled to (the results themselves carry node-scaled timing
            via their :class:`~repro.core.params.TechnologyParams`).
    """

    spec: "WorkloadSpec | None"
    trace_name: str
    depths: Tuple[int, ...]
    results: Tuple[SimulationResult, ...]
    reports: Tuple[PowerReport, ...]
    power_model: UnitPowerModel
    reference_depth: int
    tech_node: str = tech.BASE_NODE

    def __post_init__(self) -> None:
        if len(self.depths) != len(self.results) or len(self.depths) != len(self.reports):
            raise ValueError("depths, results and reports must align")
        if list(self.depths) != sorted(set(self.depths)):
            raise ValueError("depths must be strictly ascending")

    def __len__(self) -> int:
        return len(self.depths)

    def result_at(self, depth: int) -> SimulationResult:
        try:
            return self.results[self.depths.index(depth)]
        except ValueError:
            raise KeyError(f"depth {depth} not in sweep {self.depths}") from None

    @property
    def reference(self) -> SimulationResult:
        return self.result_at(self.reference_depth)

    # -- series ---------------------------------------------------------------
    def depth_array(self) -> np.ndarray:
        return np.asarray(self.depths, dtype=float)

    def bips(self) -> np.ndarray:
        """Instructions per FO4 at each depth."""
        return np.asarray([r.bips for r in self.results])

    def watts(self, gated: bool = True) -> np.ndarray:
        """Total power at each depth under the chosen gating model."""
        return np.asarray([rep.total(gated) for rep in self.reports])

    def metric(self, m: "float | MetricFamily" = 3.0, gated: bool = True) -> np.ndarray:
        """``BIPS**m / W`` at each depth (m = inf gives BIPS itself)."""
        exponent = _exponent_of(m)
        bips = self.bips()
        if np.isinf(exponent):
            return bips
        return bips**exponent / self.watts(gated)

    def normalized_metric(
        self, m: "float | MetricFamily" = 3.0, gated: bool = True
    ) -> np.ndarray:
        values = self.metric(m, gated)
        return values / values.max()

    def time_per_instruction(self) -> np.ndarray:
        return np.asarray([r.time_per_instruction for r in self.results])


def sweep_from_results(
    results: Sequence[SimulationResult],
    depths: Sequence[int],
    spec: "WorkloadSpec | None" = None,
    power_model: UnitPowerModel | None = None,
    leakage_fraction: "float | None" = 0.15,
    reference_depth: int = 8,
    tech_node: str = tech.BASE_NODE,
) -> DepthSweep:
    """Assemble a :class:`DepthSweep` from already-simulated results.

    This is the power-accounting half of :func:`run_depth_sweep`, split
    out so results produced by the batch engine (parallel workers or the
    on-disk cache) feed the identical calibration path as a direct run.

    Args:
        results: one result per depth, aligned with ``depths``.
        depths: the swept depths, strictly ascending.
        spec: the originating workload spec, if any.
        power_model: unit power model; defaults to the stock budgets.
        leakage_fraction: if not None, leakage is calibrated to this share
            of total (gated) power at ``reference_depth``; pass None to
            keep the model's own leakage (e.g. after a suite-global
            calibration).
        reference_depth: calibration/extraction anchor.
        tech_node: the :mod:`repro.tech` node the results were simulated
            at (i.e. ``machine.tech_node``).  Power accounting calibrates
            leakage exactly as at the base node and *then* applies the
            node's dynamic/leakage scale factors, so the base node is a
            bit-identical no-op while an LP or deeply scaled node shifts
            the leakage share — and with it the BIPS^m/W optimum.
    """
    depths = tuple(int(d) for d in depths)
    if reference_depth not in depths:
        raise ValueError(
            f"reference_depth {reference_depth} must be one of the swept depths"
        )
    results = tuple(results)
    if len(results) != len(depths):
        raise ValueError(f"{len(results)} results for {len(depths)} depths")
    for result, depth in zip(results, depths):
        if result.plan.depth != depth:
            raise ValueError(
                f"result at depth {result.plan.depth} misaligned with {depth}"
            )
    model = power_model or UnitPowerModel()
    if leakage_fraction is not None:
        reference = results[depths.index(reference_depth)]
        model = calibrate_unit_leakage(model, reference, leakage_fraction, gated=True)
    model = tech.get_node(tech_node).scale_unit_power(model)
    return DepthSweep(
        spec=spec,
        trace_name=results[0].trace_name,
        depths=depths,
        results=results,
        reports=tuple(power_report(result, model) for result in results),
        power_model=model,
        reference_depth=reference_depth,
        tech_node=tech_node,
    )


def run_depth_sweep(
    spec: "WorkloadSpec | Trace",
    depths: Sequence[int] = DEFAULT_DEPTHS,
    trace_length: int = 8000,
    machine: MachineConfig | None = None,
    power_model: UnitPowerModel | None = None,
    leakage_fraction: "float | None" = 0.15,
    reference_depth: int = 8,
    engine=None,
    backend: str = DEFAULT_BACKEND,
) -> DepthSweep:
    """Simulate one workload at every depth and account its power.

    Args:
        spec: a workload spec (a trace is generated) or a prebuilt trace.
        depths: depths to sweep (default 2..25, the paper's range).
        trace_length: dynamic instructions when generating from a spec.
        machine: machine configuration (defaults preserved across depths).
        power_model: unit power model; defaults to the stock budgets.
        leakage_fraction: if not None, leakage is calibrated to this share
            of total (gated) power at ``reference_depth`` — the paper uses
            15 %.  Pass None to keep the model's own leakage.
        reference_depth: calibration/extraction anchor (paper-style single
            detailed run).
        engine: an :class:`~repro.engine.ExecutionEngine` to execute (and
            cache) the simulations; None runs directly in-process.  A raw
            :class:`Trace` cannot be content-addressed, so trace inputs
            always run directly.
        backend: ``"reference"``, ``"fast"`` or ``"batched"`` — which
            simulator backend computes the per-depth results (see
            :mod:`repro.pipeline.fastsim`).

    Returns:
        A :class:`DepthSweep`.
    """
    depths = tuple(int(d) for d in depths)
    if reference_depth not in depths:
        raise ValueError(
            f"reference_depth {reference_depth} must be one of the swept depths"
        )
    if engine is not None and not isinstance(spec, Trace):
        (sweep,) = run_depth_sweeps(
            (spec,),
            depths=depths,
            trace_length=trace_length,
            machine=machine,
            power_model=power_model,
            leakage_fraction=leakage_fraction,
            reference_depth=reference_depth,
            engine=engine,
            backend=backend,
        )
        return sweep
    if isinstance(spec, Trace):
        trace, workload_spec = spec, None
    else:
        trace, workload_spec = generate_trace(spec, trace_length), spec
    simulator = make_simulator(machine, backend)
    results = simulator.simulate_depths(trace, depths)
    return sweep_from_results(
        results,
        depths,
        spec=workload_spec,
        power_model=power_model,
        leakage_fraction=leakage_fraction,
        reference_depth=reference_depth,
        tech_node=machine.tech_node if machine is not None else tech.BASE_NODE,
    )


def run_depth_sweeps(
    specs: Sequence[WorkloadSpec],
    depths: Sequence[int] = DEFAULT_DEPTHS,
    trace_length: int = 8000,
    machine: MachineConfig | None = None,
    power_model: UnitPowerModel | None = None,
    leakage_fraction: "float | None" = 0.15,
    reference_depth: int = 8,
    engine=None,
    backend: str = DEFAULT_BACKEND,
) -> Tuple[DepthSweep, ...]:
    """Sweep many workloads through the batch engine.

    Each workload becomes one engine job (all depths of one workload in
    one worker), so the batch parallelises across workloads and dedupes
    repeated (spec, machine, depths, length, backend) combinations through
    the engine's content-addressed cache.  Results come back in ``specs``
    order regardless of worker scheduling.

    Args:
        specs: the workloads to sweep.
        engine: an :class:`~repro.engine.ExecutionEngine`; None uses a
            serial, uncached engine (identical output, no side effects).
        backend: simulation backend for every job (``"reference"`` or
            ``"fast"``); part of each job's cache key.
        (other args as :func:`run_depth_sweep`.)
    """
    from ..engine.scheduler import default_engine, jobs_for_specs

    depths = tuple(int(d) for d in depths)
    if reference_depth not in depths:
        raise ValueError(
            f"reference_depth {reference_depth} must be one of the swept depths"
        )
    engine = engine or default_engine()
    job_results = engine.run(
        jobs_for_specs(
            specs, depths, trace_length=trace_length, machine=machine, backend=backend
        )
    )
    tech_node = machine.tech_node if machine is not None else tech.BASE_NODE
    sweeps: List[DepthSweep] = []
    for spec, job_result in zip(specs, job_results):
        sweeps.append(
            sweep_from_results(
                job_result.results,
                depths,
                spec=spec,
                power_model=power_model,
                leakage_fraction=leakage_fraction,
                reference_depth=reference_depth,
                tech_node=tech_node,
            )
        )
    return tuple(sweeps)
