"""Machine-configuration comparison across the workload suite.

The generic engine behind every ablation: given two (or more) machine
configurations, sweep the same workloads on each and compare optimum
design points and performance — with one call.  Used by
``benchmarks/bench_ablations.py`` and available for any what-if a user
brings (issue width, predictor choice, cache hierarchy, in-order vs
out-of-order, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

import numpy as np

from ..core.metric import MetricFamily
from ..pipeline.simulator import MachineConfig
from ..trace.generator import generate_trace
from ..trace.spec import WorkloadSpec
from .optimum import optimum_from_sweep
from .sweep import DEFAULT_DEPTHS, run_depth_sweep

__all__ = ["MachineComparison", "ConfigResult", "compare_machines"]


@dataclass(frozen=True)
class ConfigResult:
    """One configuration's aggregate outcome over the workloads."""

    label: str
    machine: MachineConfig
    optima: Mapping[str, float]          # workload -> optimum depth
    peak_bips: Mapping[str, float]       # workload -> best BIPS over depths

    @property
    def mean_optimum(self) -> float:
        return float(np.mean(list(self.optima.values())))

    @property
    def mean_peak_bips(self) -> float:
        return float(np.mean(list(self.peak_bips.values())))


@dataclass(frozen=True)
class MachineComparison:
    """Results for every configuration, plus convenience deltas."""

    results: Tuple[ConfigResult, ...]
    metric_exponent: float
    gated: bool

    def __post_init__(self) -> None:
        if len(self.results) < 2:
            raise ValueError("a comparison needs at least two configurations")

    def result(self, label: str) -> ConfigResult:
        for entry in self.results:
            if entry.label == label:
                return entry
        raise KeyError(f"no configuration labelled {label!r}")

    def optimum_shift(self, baseline: str, variant: str) -> float:
        """Mean optimum-depth change, variant minus baseline."""
        return self.result(variant).mean_optimum - self.result(baseline).mean_optimum

    def speedup(self, baseline: str, variant: str) -> float:
        """Mean peak-BIPS ratio, variant over baseline."""
        return self.result(variant).mean_peak_bips / self.result(baseline).mean_peak_bips

    def format_table(self) -> str:
        lines = [
            f"{'configuration':>24s} {'mean optimum':>13s} {'mean peak BIPS':>15s}"
        ]
        for entry in self.results:
            lines.append(
                f"{entry.label:>24s} {entry.mean_optimum:13.2f} "
                f"{entry.mean_peak_bips * 1e3:15.3f}e-3"
            )
        return "\n".join(lines)


def compare_machines(
    configs: Mapping[str, MachineConfig],
    specs: Sequence[WorkloadSpec],
    m: "float | MetricFamily" = 3.0,
    gated: bool = True,
    depths: Sequence[int] = DEFAULT_DEPTHS,
    trace_length: int = 8000,
    reference_depth: int = 8,
) -> MachineComparison:
    """Sweep each workload under each configuration and compare.

    Traces are generated once per workload and shared across
    configurations, so differences are attributable to the machines alone.
    """
    exponent = m.exponent if isinstance(m, MetricFamily) else float(m)
    if len(configs) < 2:
        raise ValueError("pass at least two configurations to compare")
    traces = [(spec, generate_trace(spec, trace_length)) for spec in specs]
    results = []
    for label, machine in configs.items():
        optima = {}
        peaks = {}
        for spec, trace in traces:
            sweep = run_depth_sweep(
                trace,
                depths=depths,
                machine=machine,
                reference_depth=reference_depth,
            )
            optima[spec.name] = optimum_from_sweep(sweep, exponent, gated).depth
            peaks[spec.name] = float(sweep.bips().max())
        results.append(
            ConfigResult(label=label, machine=machine, optima=optima, peak_bips=peaks)
        )
    return MachineComparison(
        results=tuple(results), metric_exponent=exponent, gated=gated
    )
