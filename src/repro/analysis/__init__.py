"""Glue between simulation and theory: extraction, sweeps, optima, distributions."""

from .characterize import (
    WorkloadCharacter,
    characterize,
    characterize_suite,
)
from .compare import ConfigResult, MachineComparison, compare_machines
from .distribution import OptimumDistribution, WorkloadOptimum, optimum_distribution
from .extraction import ExtractionReport, extract_workload_params, fit_workload_params
from .optimum import OptimumEstimate, TheoryFit, optimum_from_sweep, theory_fit_from_sweep
from .sweep import (
    DEFAULT_DEPTHS,
    DepthSweep,
    run_depth_sweep,
    run_depth_sweeps,
    sweep_from_results,
)
from .validate import (
    FieldMismatch,
    ValidationReport,
    default_machine_grid,
    format_report,
    validate_kernel,
)

__all__ = [
    "WorkloadCharacter",
    "characterize",
    "characterize_suite",
    "ConfigResult",
    "MachineComparison",
    "compare_machines",
    "ExtractionReport",
    "extract_workload_params",
    "fit_workload_params",
    "DepthSweep",
    "run_depth_sweep",
    "run_depth_sweeps",
    "sweep_from_results",
    "DEFAULT_DEPTHS",
    "OptimumEstimate",
    "TheoryFit",
    "optimum_from_sweep",
    "theory_fit_from_sweep",
    "WorkloadOptimum",
    "OptimumDistribution",
    "optimum_distribution",
    "FieldMismatch",
    "ValidationReport",
    "default_machine_grid",
    "format_report",
    "validate_kernel",
]
