"""Stage planning: mapping a target pipeline depth onto the Fig. 2 pipeline.

The paper's base machine is the 4-issue zSeries-like pipeline of its
Fig. 2: Decode, Rename (skipped in-order), Agen-Queue, Agen, Cache-Access,
Exec-Queue, E-Unit, Completion, Retire, with the RR instruction path
skipping the agen/cache segment.  Pipeline *depth* is counted between the
beginning of decode and the end of execution along the RX path.

To vary depth "uniformly" the paper:

* **expands** by inserting extra stages into Decode, Cache-Access and the
  E-Unit pipe *simultaneously*, so every hazard class sees the deepening;
* **contracts** by first combining multiple stages of a unit, then
  combining whole units into the same cycle (e.g. decode and agen); when
  two units share a cycle the intervening latches are eliminated and the
  merged cycle is charged the *greater* of the two units' power.

:class:`StagePlan` encodes one such configuration: per-unit stage counts
plus the merge groups, and provides the per-path cycle offsets the
simulator and the power model both consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property, lru_cache
from typing import Dict, Mapping, Sequence, Tuple

__all__ = ["Unit", "StagePlan", "MIN_DEPTH", "MAX_DEPTH", "PathOffsets"]

MIN_DEPTH = 2
MAX_DEPTH = 40


class Unit(enum.Enum):
    """Microarchitectural units of the Fig. 2 pipeline."""

    FETCH = "fetch"
    DECODE = "decode"
    RENAME = "rename"  # present in Fig. 2; 0 stages in the in-order model
    AGEN_QUEUE = "agen_queue"
    AGEN = "agen"
    CACHE = "cache"
    EXEC_QUEUE = "exec_queue"
    EXECUTE = "execute"
    COMPLETE = "complete"
    RETIRE = "retire"


# Units whose stage counts grow when the pipeline is expanded — the paper
# inserts stages "in Decode, Cache Access and E-Unit Pipe, simultaneously".
_EXPANDABLE: Tuple[Unit, ...] = (Unit.DECODE, Unit.CACHE, Unit.EXECUTE)

# The RX (register/memory) path between decode and end of execute, in order.
RX_PATH: Tuple[Unit, ...] = (
    Unit.DECODE,
    Unit.AGEN_QUEUE,
    Unit.AGEN,
    Unit.CACHE,
    Unit.EXEC_QUEUE,
    Unit.EXECUTE,
)

# The RR (register-only) path between decode and end of execute.
RR_PATH: Tuple[Unit, ...] = (Unit.DECODE, Unit.EXEC_QUEUE, Unit.EXECUTE)

_MERGES_BY_DEPTH: Dict[int, Tuple[frozenset, ...]] = {
    6: (),
    5: (frozenset({Unit.AGEN_QUEUE, Unit.AGEN}),),
    4: (
        frozenset({Unit.AGEN_QUEUE, Unit.AGEN}),
        frozenset({Unit.EXEC_QUEUE, Unit.EXECUTE}),
    ),
    3: (
        frozenset({Unit.DECODE, Unit.AGEN_QUEUE, Unit.AGEN}),
        frozenset({Unit.EXEC_QUEUE, Unit.EXECUTE}),
    ),
    2: (
        frozenset({Unit.DECODE, Unit.AGEN_QUEUE, Unit.AGEN}),
        frozenset({Unit.CACHE, Unit.EXEC_QUEUE, Unit.EXECUTE}),
    ),
}


@dataclass(frozen=True)
class PathOffsets:
    """Cycle offsets along one instruction path, relative to decode start.

    Attributes:
        starts: per-unit start offset in cycles.
        latencies: per-unit occupied cycles (a merged unit shares its
            group's single latency; every member reports the group value).
        total: cycles from decode start through the end of the last unit —
            by construction equal to the plan depth along the RX path.
    """

    starts: Mapping[Unit, int]
    latencies: Mapping[Unit, int]
    total: int


@dataclass(frozen=True)
class StagePlan:
    """One pipeline configuration at a given decode-to-execute depth.

    Use :meth:`for_depth` to construct.  ``unit_stages`` maps every unit to
    its stage count (queues and the fixed front/back-end units have one;
    RENAME has zero in the in-order model); ``merges`` lists the groups of
    units sharing a single cycle in contracted designs.
    """

    depth: int
    unit_stages: Mapping[Unit, int]
    merges: Tuple[frozenset, ...]

    @classmethod
    def for_depth(cls, depth: int) -> "StagePlan":
        """The plan for a decode-to-execute depth between 2 and 40.

        Depths >= 6 expand Decode/Cache/Execute round-robin; depths < 6
        contract by merging units per the paper's recipe.  Plans are
        cached: the same depth always returns the same instance.
        """
        if not isinstance(depth, int) or isinstance(depth, bool):
            raise TypeError(f"depth must be an int, got {type(depth).__name__}")
        if not (MIN_DEPTH <= depth <= MAX_DEPTH):
            raise ValueError(
                f"depth must be in [{MIN_DEPTH}, {MAX_DEPTH}], got {depth!r}"
            )
        return cls._build(depth)

    @classmethod
    @lru_cache(maxsize=None)
    def _build(cls, depth: int) -> "StagePlan":
        stages: Dict[Unit, int] = {unit: 1 for unit in Unit}
        stages[Unit.RENAME] = 0  # in-order model skips rename (paper Sec. 3)
        merges: Tuple[frozenset, ...] = ()
        if depth >= 6:
            for i in range(depth - 6):
                stages[_EXPANDABLE[i % len(_EXPANDABLE)]] += 1
        else:
            merges = _MERGES_BY_DEPTH[depth]
        plan = cls(depth=depth, unit_stages=dict(stages), merges=merges)
        if plan.path_offsets(RX_PATH).total != depth:
            raise AssertionError(
                f"plan construction bug: RX path is {plan.path_offsets(RX_PATH).total} "
                f"cycles for requested depth {depth}"
            )
        return plan

    def group_of(self, unit: Unit) -> frozenset:
        """The merge group containing ``unit`` (singleton if unmerged)."""
        for group in self.merges:
            if unit in group:
                return group
        return frozenset({unit})

    def group_latency(self, unit: Unit) -> int:
        """Cycles occupied by ``unit``'s cycle group (max over members)."""
        return max(self.unit_stages[member] for member in self.group_of(unit))

    def cycle_groups(self) -> Tuple[frozenset, ...]:
        """All distinct cycle groups, merged and singleton, covering every
        unit with at least one stage.  This is the granularity at which the
        power model applies the paper's max-power merge rule."""
        seen: list[frozenset] = []
        for unit in Unit:
            if self.unit_stages[unit] == 0:
                continue
            group = self.group_of(unit)
            if group not in seen:
                seen.append(group)
        return tuple(seen)

    def path_offsets(self, path: Sequence[Unit]) -> PathOffsets:
        """Start offsets and latencies for the units along ``path``.

        Units sharing a merge group occupy the same cycles; the group
        advances the timeline once, by its latency.
        """
        starts: Dict[Unit, int] = {}
        latencies: Dict[Unit, int] = {}
        offset = 0
        current_group: frozenset = frozenset()
        group_start = 0
        for unit in path:
            group = self.group_of(unit)
            if group != current_group:
                group_start = offset
                offset += self.group_latency(unit)
                current_group = group
            starts[unit] = group_start
            latencies[unit] = self.group_latency(unit)
        return PathOffsets(starts=starts, latencies=latencies, total=offset)

    @cached_property
    def rx_offsets(self) -> PathOffsets:
        """Offsets along the RX (memory) path; ``total`` equals the depth.

        Cached per plan instance — and plan instances are cached per
        depth — so repeated sweeps pay for the path walk once.
        """
        return self.path_offsets(RX_PATH)

    @cached_property
    def rr_offsets(self) -> PathOffsets:
        """Offsets along the RR (register-only) path (cached, see above)."""
        return self.path_offsets(RR_PATH)

    @property
    def front_end_cycles(self) -> int:
        """Fetch-to-dispatch cycles: the refill a mispredict must pay."""
        return self.unit_stages[Unit.FETCH] + self.group_latency(Unit.DECODE)

    def total_stage_count(self) -> int:
        """Distinct pipeline cycles across all units (fetch to retire) —
        counting each merge group once at its group latency."""
        return sum(
            max(self.unit_stages[u] for u in group) for group in self.cycle_groups()
        )
