"""Simulation results: counts, rates and time conversions.

A :class:`SimulationResult` is the bridge between the cycle-accurate
simulator and everything downstream: the power model reads the per-unit
occupancy, the parameter extractor reads the hazard counts and issue
statistics, and the sweep/benchmark layers read the derived performance
figures (CPI, BIPS).

Times are kept in FO4 units throughout, matching the theory; absolute
seconds never appear (the paper's own results are in FO4 design points).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.params import TechnologyParams
from .plan import StagePlan, Unit

__all__ = ["SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Aggregate outcome of simulating one trace at one pipeline depth.

    Attributes:
        trace_name: the workload simulated.
        plan: the stage plan (depth, per-unit stages, merges).
        technology: the FO4 constants used for time conversion.
        instructions: dynamic instruction count ``N_I``.
        cycles: total machine cycles to retire everything.
        issue_cycles: cycles in which at least one instruction entered
            execute — the denominator of the measured superscalar degree.
        branches / mispredicts: dynamic branch count and mispredictions.
        icache_misses: instruction-fetch line misses.
        dcache_accesses / dcache_misses: data-side accesses and misses
            (loads and RX-ALU operand fetches; store misses are tracked
            separately because they do not stall dependants).
        store_misses: data-cache misses on stores.
        l2_misses: second-level cache misses (instruction or data side).
        memory_ops / fp_ops: dynamic counts by class.
        unit_occupancy: stage-slot occupancy per unit — one slot is one
            stage of one unit busy for one cycle; the clock-gated power
            model charges dynamic energy per occupied slot.
    """

    trace_name: str
    plan: StagePlan
    technology: TechnologyParams
    instructions: int
    cycles: int
    issue_cycles: int
    branches: int
    mispredicts: int
    icache_misses: int
    dcache_accesses: int
    dcache_misses: int
    store_misses: int
    l2_misses: int
    memory_ops: int
    fp_ops: int
    unit_occupancy: Mapping[Unit, float]

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ValueError("a simulation result needs at least one instruction")
        if self.cycles <= 0:
            raise ValueError("cycle count must be positive")

    # -- depth / time ------------------------------------------------------
    @property
    def depth(self) -> int:
        return self.plan.depth

    @property
    def cycle_time(self) -> float:
        """``t_s = t_o + t_p / p`` in FO4."""
        return self.technology.cycle_time(self.depth)

    @property
    def total_time(self) -> float:
        """Total execution time ``T`` in FO4."""
        return self.cycles * self.cycle_time

    @property
    def time_per_instruction(self) -> float:
        """``T / N_I`` in FO4 — directly comparable to theory Eq. 1."""
        return self.total_time / self.instructions

    @property
    def bips(self) -> float:
        """Instructions per FO4 (proportional to BIPS)."""
        return self.instructions / self.total_time

    # -- rates --------------------------------------------------------------
    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles

    @property
    def misprediction_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    @property
    def dcache_miss_rate(self) -> float:
        return self.dcache_misses / self.dcache_accesses if self.dcache_accesses else 0.0

    # -- hazards -------------------------------------------------------------
    @property
    def hazards(self) -> int:
        """``N_H``: the stall-causing events charged to the theory's hazard
        term — mispredicted branches, I-cache misses and data-side misses
        that dependants wait on (store misses excluded)."""
        return self.mispredicts + self.icache_misses + self.dcache_misses

    @property
    def hazard_rate(self) -> float:
        """``N_H / N_I``."""
        return self.hazards / self.instructions

    @property
    def superscalar_degree(self) -> float:
        """Measured ``alpha``: instructions per issuing cycle."""
        return self.instructions / self.issue_cycles if self.issue_cycles else 1.0

    @property
    def busy_time(self) -> float:
        """The theory's hazard-free time ``N_I * t_s / alpha`` in FO4."""
        return self.instructions * self.cycle_time / self.superscalar_degree

    @property
    def stall_time(self) -> float:
        """Everything not explained by the busy term, in FO4 (>= 0)."""
        return max(self.total_time - self.busy_time, 0.0)

    def occupancy_fraction(self, unit: Unit) -> float:
        """Unit utilisation: occupied stage-slots over available slots."""
        stages = self.plan.unit_stages[unit]
        if stages == 0:
            return 0.0
        available = stages * self.cycles
        return min(float(self.unit_occupancy.get(unit, 0.0)) / available, 1.0)

    def summary(self) -> str:
        """One-line human summary for logs and examples."""
        return (
            f"{self.trace_name}@p{self.depth}: CPI {self.cpi:.2f}, "
            f"BIPS {self.bips * 1e3:.2f}e-3, mispredict {self.misprediction_rate:.1%}, "
            f"d$ miss {self.dcache_miss_rate:.1%}, N_H/N_I {self.hazard_rate:.3f}, "
            f"alpha {self.superscalar_degree:.2f}"
        )
