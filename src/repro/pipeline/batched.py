"""The batched backend: every pipeline depth priced in one timing pass.

The fast backend (:mod:`repro.pipeline.fastsim`) already shares the trace
analysis across a depth sweep, but still resolves the timing recurrence
once *per depth* — a 24-depth sweep walks the 8000-instruction event
stream 24 times.  The recurrences differ between depths only in a handful
of :class:`~repro.pipeline.timing.DepthConstants`-derived scalars, so all
depths can be priced simultaneously: walk the event stream **once**,
carrying one state lane per requested depth (bandwidth rings,
register-ready times, queue waits, redirect points), and update every
lane from the same per-instruction event tuple.

:class:`BatchedPipelineSimulator` implements exactly that.  The lane math
is hosted by the runtime-compiled C kernel
(:mod:`repro.pipeline._ckernel`) because per-instruction NumPy operations
over ``(D,)`` lanes cost as much as the scalar loops they would replace;
when the kernel is unavailable (no compiler, ``REPRO_KERNEL=off``) the
simulator falls back to the fast backend's per-depth scalar loops —
identical results, no batched speedup.  Either way the results are
bit-identical to the reference interpreter, enforced by
``repro validate-kernel --backend batched`` and the hypothesis
cross-backend property test.

Depth-independence invariant (why lanes never interact): every stateful
microarchitectural outcome — cache hits, predictions, BTB targets — is a
property of the access *sequence*, which is program order at every depth.
Lanes therefore consume identical event streams and differ only in their
arithmetic; no information ever flows between lanes, which is what makes
the single-pass layout legal.
"""

from __future__ import annotations

import numpy as np

from ..isa import REGISTER_COUNT
from .fastsim import FastPipelineSimulator, TraceEvents
from ._ckernel import (
    NCONST,
    C_AGEN_DONE_OFF,
    C_ALU_LATENCY,
    C_BTB_OFF,
    C_CACHE_DONE_OFF,
    C_DC_L2_P,
    C_DC_P,
    C_FETCH_STAGES,
    C_FPC_DONE_OFF,
    C_IC_L2_P,
    C_IC_P,
    C_MERGED,
    C_MISP_OFF,
    C_OFF_AGEN,
    C_OFF_CACHE_DELTA,
    C_OFF_EXEC_RR,
    C_RESOLVE_LATENCY,
    C_RETIRE_OFF,
    C_TARGET_DELAY,
    batched_kernel,
)
from .plan import StagePlan
from .results import SimulationResult
from .timing import DepthConstants
from ..trace.trace import Trace

__all__ = ["BatchedPipelineSimulator", "simulate_batched"]

# The kernel tracks per-cycle issue counts in uint8 slots; a wider
# machine than this (none of the paper's are) falls back to Python.
_MAX_KERNEL_WIDTH = 255


def _constants_matrix(
    cons_list: "list[DepthConstants]", in_order: bool
) -> np.ndarray:
    """One int64 row of kernel constants per depth lane."""
    rename = 0 if in_order else 1  # the Fig. 2 rename stage, active OOO
    rows = np.zeros((len(cons_list), NCONST), dtype=np.int64)
    for lane, cons in enumerate(cons_list):
        row = rows[lane]
        row[C_FETCH_STAGES] = cons.fetch_stages
        row[C_OFF_AGEN] = cons.off_agen + rename
        row[C_OFF_CACHE_DELTA] = cons.off_cache - cons.off_agen
        row[C_OFF_EXEC_RR] = cons.off_exec_rr + rename
        row[C_AGEN_DONE_OFF] = cons.agen_latency - 1
        row[C_CACHE_DONE_OFF] = cons.cache_latency - 1
        row[C_FPC_DONE_OFF] = cons.exec_latency - 2
        row[C_ALU_LATENCY] = cons.alu_latency
        row[C_RESOLVE_LATENCY] = cons.resolve_latency
        row[C_MERGED] = int(cons.cache_exec_merged)
        row[C_RETIRE_OFF] = cons.exec_latency - 1 + cons.back_end
        row[C_MISP_OFF] = cons.resolve_latency + cons.fetch_stages
        row[C_BTB_OFF] = cons.decode_latency + cons.fetch_stages
        row[C_TARGET_DELAY] = cons.decode_latency + rename
        row[C_IC_P] = cons.ic_penalty
        row[C_IC_L2_P] = cons.ic_penalty + cons.l2_penalty
        row[C_DC_P] = cons.dc_penalty
        row[C_DC_L2_P] = cons.dc_penalty + cons.l2_penalty
    return rows


class BatchedPipelineSimulator(FastPipelineSimulator):
    """Depth-batched drop-in for :class:`FastPipelineSimulator`.

    ``simulate_depths`` is the primary API: one shared trace analysis
    (memory slot + optional on-disk events cache, inherited from the fast
    backend) followed by one C-kernel pass pricing every depth together.
    ``simulate`` is a one-depth sweep.
    """

    def simulate(self, trace: Trace, depth: "int | StagePlan") -> SimulationResult:
        """Simulate one depth (a degenerate one-lane batch)."""
        return self.simulate_depths(trace, (depth,))[0]

    def simulate_depths(self, trace, depths) -> "tuple[SimulationResult, ...]":
        """Simulate every depth of a sweep in one batched timing pass."""
        if len(trace) == 0:
            raise ValueError("cannot simulate an empty trace")
        depths = tuple(depths)
        if not depths:
            return ()
        plans = [
            d if isinstance(d, StagePlan) else StagePlan.for_depth(d)
            for d in depths
        ]
        events = self.events_for(trace)
        cfg = self.config
        cons_list = [DepthConstants.for_plan(cfg, plan) for plan in plans]
        raw = self._run_batched(events, cons_list)
        if raw is None:
            # Kernel unavailable: the fast backend's scalar loops, one
            # depth at a time, off the same shared analysis.
            raw = [
                (self._run_in_order if cfg.in_order else self._run_out_of_order)(
                    events, cons
                )
                for cons in cons_list
            ]
        occ_rename = 0 if cfg.in_order else events.n
        return tuple(
            self._build_result(
                trace, plan, cons, events, int(cycles), int(issue_cycles),
                occ_rename, int(occ_agenq), int(occ_execq),
            )
            for plan, cons, (cycles, issue_cycles, occ_agenq, occ_execq)
            in zip(plans, cons_list, raw)
        )

    def _run_batched(
        self, events: TraceEvents, cons_list: "list[DepthConstants]"
    ) -> "np.ndarray | None":
        """All lanes through the C kernel, or None when it cannot run."""
        cfg = self.config
        if cfg.issue_width > _MAX_KERNEL_WIDTH:
            return None
        kernel = batched_kernel()
        if kernel is None:
            return None
        cons = _constants_matrix(cons_list, cfg.in_order)
        if cfg.in_order:
            return kernel.run_in_order(
                events.columns, cons, cfg.issue_width, cfg.agen_width,
                cfg.mshr_entries, REGISTER_COUNT, events.memory_ops,
            )
        return kernel.run_out_of_order(
            events.columns, cons, cfg.issue_width, cfg.agen_width,
            cfg.mshr_entries, cfg.issue_window, cfg.rob_size,
            REGISTER_COUNT, events.memory_ops,
        )


def simulate_batched(
    trace: Trace, depth: "int | StagePlan", config=None
) -> SimulationResult:
    """Module-level convenience wrapper around :class:`BatchedPipelineSimulator`."""
    return BatchedPipelineSimulator(config).simulate(trace, depth)
