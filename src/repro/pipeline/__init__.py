"""Cycle-accurate 4-issue in-order pipeline simulator (Fig. 2 machine)."""

from .diagram import render_depth_table, render_plan
from .plan import MAX_DEPTH, MIN_DEPTH, RR_PATH, RX_PATH, PathOffsets, StagePlan, Unit
from .results import SimulationResult
from .simulator import MachineConfig, PipelineSimulator, simulate

__all__ = [
    "Unit",
    "StagePlan",
    "PathOffsets",
    "MIN_DEPTH",
    "MAX_DEPTH",
    "RX_PATH",
    "RR_PATH",
    "render_plan",
    "render_depth_table",
    "SimulationResult",
    "MachineConfig",
    "PipelineSimulator",
    "simulate",
]
