"""Pipeline simulation backends for the Fig. 2 machine (4-issue, 2-agen).

Four interchangeable backends produce :class:`SimulationResult`\\ s:

* :class:`PipelineSimulator` — the step-wise reference interpreter;
* :class:`FastPipelineSimulator` — the event-precomputing kernel that
  analyses a trace once and prices every depth from the shared
  :class:`TraceEvents` (see :mod:`repro.pipeline.fastsim`);
* :class:`BatchedPipelineSimulator` — the depth-batched kernel that
  additionally prices *every* depth of a sweep in one timing pass
  (see :mod:`repro.pipeline.batched`);
* :class:`CyclePipelineSimulator` — the cycle-accurate out-of-order
  state machine (rename map + physical register file, bounded issue
  queue, ROB) that arbitrates the analytic family
  (see :mod:`repro.pipeline.cycle`).

:func:`make_simulator` selects between them by name; all consume the
same :class:`DepthConstants`, and the cross-validation harness
(``repro validate-kernel``) asserts the analytic backends agree
field-for-field while ``cycle`` matches every hazard count exactly and
CPI within :data:`CYCLE_CPI_RTOL`.  ``simulate_depths`` is the primary
sweep API on every backend, and :class:`TraceEventsCache` shares
analyses on disk across processes.
"""

from .batched import BatchedPipelineSimulator, simulate_batched
from .cycle import CYCLE_CPI_RTOL, CyclePipelineSimulator, simulate_cycle
from .diagram import render_depth_table, render_plan
from .events_cache import TraceEventsCache, default_events_cache
from .fastsim import (
    ANALYSIS_SCHEMA,
    BACKENDS,
    DEFAULT_BACKEND,
    FastPipelineSimulator,
    TraceEvents,
    analyze_trace,
    make_simulator,
    simulate_fast,
)
from .plan import MAX_DEPTH, MIN_DEPTH, RR_PATH, RX_PATH, PathOffsets, StagePlan, Unit
from .results import SimulationResult
from .simulator import MachineConfig, PipelineSimulator, simulate
from .timing import DepthConstants

__all__ = [
    "Unit",
    "StagePlan",
    "PathOffsets",
    "MIN_DEPTH",
    "MAX_DEPTH",
    "RX_PATH",
    "RR_PATH",
    "render_plan",
    "render_depth_table",
    "SimulationResult",
    "MachineConfig",
    "PipelineSimulator",
    "simulate",
    "ANALYSIS_SCHEMA",
    "BACKENDS",
    "CYCLE_CPI_RTOL",
    "DEFAULT_BACKEND",
    "DepthConstants",
    "FastPipelineSimulator",
    "BatchedPipelineSimulator",
    "CyclePipelineSimulator",
    "TraceEvents",
    "TraceEventsCache",
    "analyze_trace",
    "default_events_cache",
    "make_simulator",
    "simulate_batched",
    "simulate_cycle",
    "simulate_fast",
]
