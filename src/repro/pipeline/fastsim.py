"""The fast simulation backend: one trace analysis, many cheap depths.

The reference interpreter (:class:`~repro.pipeline.simulator.
PipelineSimulator`) re-walks every stateful microarchitectural structure —
branch predictor, BTB, both L1s and the L2 — at every pipeline depth, plus
a full warm-up pass per depth.  But none of those structures' outcomes
depend on the depth: caches, predictor and BTB are referenced strictly in
program order, so the hit/miss and predict/mispredict *event streams* are
properties of the trace and machine alone.

This module exploits that invariant:

1. :func:`analyze_trace` runs the stateful machinery exactly once per
   (trace, machine) pair and distils it into :class:`TraceEvents` —
   per-instruction NumPy event vectors (I-cache miss, L2 miss, stalling
   D-cache miss, mispredict, BTB-target stall) plus the aggregate hazard
   counts.  Depth-independent occupancy terms (fetch, decode, agen, cache,
   execute, completion, retire) reduce to closed-form array arithmetic
   over those vectors.
2. :class:`FastPipelineSimulator` then evaluates each requested depth by
   scaling the event vectors into stall-penalty vectors (pure array
   arithmetic: ``miss * penalty_cycles(depth)``) and resolving the
   remaining loop-carried timing recurrence — bandwidth rings, register
   readiness, queue waits, redirects — with a lean integer loop that
   touches no simulation objects at all.

The result is bit-identical to the reference simulator (every
:class:`~repro.pipeline.results.SimulationResult` field, including the
occupancy floats, which are integer-valued and therefore exact), while a
20-point depth sweep pays for one trace analysis instead of 20 warm-up
passes and 20 structure-walking interpretations.  The equivalence is
enforced by ``tests/pipeline/test_fastsim_equivalence.py`` and the
``repro validate-kernel`` CLI command in CI; the speedup is recorded by
``benchmarks/bench_fastsim.py``.

The third backend, ``"batched"`` (:mod:`repro.pipeline.batched`), goes one
step further: it prices *every depth of a sweep in one timing pass*,
carrying one state lane per requested depth, and both the ``fast`` and
``batched`` simulators can share analyses across processes through the
on-disk :class:`~repro.pipeline.events_cache.TraceEventsCache` (the
columnar :class:`TraceEvents` layout doubles as its ``.npz`` payload).

Use :func:`make_simulator` to select a backend by name — ``"reference"``
for the interpreter, ``"fast"`` for this kernel, ``"batched"`` for the
depth-batched kernel.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..fingerprint import fingerprint_digest
from ..isa import REGISTER_COUNT, OpClass
from ..trace.trace import Trace
from ..uarch.btb import BranchTargetBuffer
from ..uarch.cache import Cache
from .plan import StagePlan, Unit
from .results import SimulationResult
from .simulator import MachineConfig, PipelineSimulator, _make_predictor, _warm_structures
from .timing import DepthConstants

__all__ = [
    "ANALYSIS_SCHEMA",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "TraceEvents",
    "FastPipelineSimulator",
    "analyze_trace",
    "make_simulator",
    "simulate_fast",
]

BACKENDS: Tuple[str, ...] = ("reference", "fast", "batched", "suite", "cycle")
"""Recognised simulation backend names."""

DEFAULT_BACKEND = "reference"
"""The backend used when none is requested (the original interpreter)."""

ANALYSIS_SCHEMA = 1
"""Version of the :class:`TraceEvents` columnar layout.  Part of every
on-disk analysis cache key, so changing the layout (column order, dtypes,
aggregate set) invalidates stale entries by construction."""

# Key order for the flat per-unit occupancy tuples `_unit_occupancy`
# returns (Unit declaration order).
_OCCUPANCY_UNITS: Tuple[Unit, ...] = tuple(Unit)

_LOAD = OpClass.RX_LOAD.value
_STORE = OpClass.RX_STORE.value
_RXALU = OpClass.RX_ALU.value
_BRANCH = OpClass.BRANCH.value
_FP = OpClass.FP.value
_COMPLEX = OpClass.COMPLEX.value

# Branch event codes in the branch_event column: 0 = no front-end event.
_EV_MISPREDICT = 1
_EV_BTB_STALL = 2

COLUMN_NAMES: Tuple[str, ...] = (
    "mem",
    "src1",
    "exec_src1",
    "src2",
    "dest_alu",
    "dest_load",
    "fpc",
    "fp_extra",
    "store",
    "branch_event",
    "ic_event",
    "dc_event",
)
"""Row order of :attr:`TraceEvents.columns` (and of the stream tuples)."""

(_COL_MEM, _COL_SRC1, _COL_EXEC_SRC1, _COL_SRC2, _COL_DEST_ALU,
 _COL_DEST_LOAD, _COL_FPC, _COL_FP_EXTRA, _COL_STORE, _COL_BRANCH_EVENT,
 _COL_IC_EVENT, _COL_DC_EVENT) = range(len(COLUMN_NAMES))

AGGREGATE_NAMES: Tuple[str, ...] = (
    "branches",
    "mispredicts",
    "icache_misses",
    "ic_l2_misses",
    "dcache_accesses",
    "dcache_misses",
    "dc_l2_stall_misses",
    "store_misses",
    "l2_misses",
    "memory_ops",
    "fp_ops",
    "fpc_count",
    "fpc_extra_sum",
)
"""Scalar hazard aggregates carried alongside the column matrix."""


class TraceEvents:
    """Depth-independent per-instruction events for one (trace, machine).

    The canonical storage is ``columns``, a read-only ``int32`` matrix of
    shape ``(len(COLUMN_NAMES), n)`` — one row per per-instruction field,
    in :data:`COLUMN_NAMES` order — plus the scalar hazard aggregates.
    That pair round-trips losslessly through ``.npz`` files, which is what
    the on-disk :class:`~repro.pipeline.events_cache.TraceEventsCache`
    stores; everything else here is a derived view.

    Attributes:
        n: dynamic instruction count.
        columns: the ``(12, n)`` int32 event matrix.  Per-instruction
            fields: ``mem`` (RX-path op), ``src1``, ``exec_src1``
            (``src1`` for non-memory ops, -1 otherwise — memory ops
            consume it at agen), ``src2``, ``dest_alu`` / ``dest_load``
            (destination register split by whether it is written at
            execute or at cache return, -1 for none), ``fpc`` (1 FP,
            2 COMPLEX, 0 otherwise), ``fp_extra`` (extra execute cycles),
            ``store``, ``branch_event`` (0 none, 1 mispredict, 2 BTB
            stall), ``ic_event`` / ``dc_event`` (0 hit, 1 L1 miss,
            2 L1+L2 miss — the timing loops scale them into stall cycles
            with the per-depth penalty constants).
        stream: the same information as per-instruction tuples, built
            lazily and pre-shaped for the per-depth Python timing loops
            (one unpack per instruction, no indexing, no numpy scalar
            boxing).
        ic_miss / ic_l2 / dc_stall / dc_l2_stall: derived 0/1 ``int64``
            event vectors (I-cache miss and its L2 component; stalling
            D-side miss — loads and RX-ALU operand fetches, store misses
            excluded — and its L2 component).
        branches / mispredicts / icache_misses / dcache_accesses /
            dcache_misses / store_misses / l2_misses / memory_ops /
            fp_ops: the aggregate hazard counts of the timed pass.
        fpc_count / fpc_extra_sum: FP+COMPLEX op count and the sum of
            their per-op extra execute cycles (closed-form E-pipe
            occupancy).
    """

    __slots__ = ("n", "columns", "_stream") + AGGREGATE_NAMES

    def __init__(self, columns: np.ndarray, **aggregates: int):
        columns = np.ascontiguousarray(columns, dtype=np.int32)
        if columns.ndim != 2 or columns.shape[0] != len(COLUMN_NAMES):
            raise ValueError(
                f"expected a ({len(COLUMN_NAMES)}, n) column matrix, "
                f"got shape {columns.shape}"
            )
        columns.setflags(write=False)
        self.columns = columns
        self.n = int(columns.shape[1])
        for name in AGGREGATE_NAMES:
            try:
                setattr(self, name, int(aggregates.pop(name)))
            except KeyError:
                raise TypeError(f"missing aggregate {name!r}") from None
        if aggregates:
            raise TypeError(f"unknown aggregates {sorted(aggregates)}")
        self._stream = None

    @property
    def stream(self) -> "list[tuple]":
        stream = self._stream
        if stream is None:
            stream = list(zip(*(row.tolist() for row in self.columns)))
            self._stream = stream
        return stream

    @property
    def ic_miss(self) -> np.ndarray:
        return (self.columns[_COL_IC_EVENT] != 0).astype(np.int64)

    @property
    def ic_l2(self) -> np.ndarray:
        return (self.columns[_COL_IC_EVENT] == 2).astype(np.int64)

    @property
    def dc_stall(self) -> np.ndarray:
        return (self.columns[_COL_DC_EVENT] != 0).astype(np.int64)

    @property
    def dc_l2_stall(self) -> np.ndarray:
        return (self.columns[_COL_DC_EVENT] == 2).astype(np.int64)

    def aggregates(self) -> "dict[str, int]":
        """The scalar aggregates as a plain dict (AGGREGATE_NAMES order)."""
        return {name: getattr(self, name) for name in AGGREGATE_NAMES}

    def to_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """``(columns, scalars)`` — the lossless serialised form.

        ``scalars`` is ``[n, *aggregates]`` as int64, in
        :data:`AGGREGATE_NAMES` order; the inverse is
        :meth:`from_arrays`.
        """
        scalars = np.array(
            [self.n] + [getattr(self, name) for name in AGGREGATE_NAMES],
            dtype=np.int64,
        )
        return self.columns, scalars

    @classmethod
    def from_arrays(cls, columns: np.ndarray, scalars: np.ndarray) -> "TraceEvents":
        """Rebuild from :meth:`to_arrays` output (e.g. a cache entry)."""
        scalars = np.asarray(scalars, dtype=np.int64)
        if scalars.shape != (1 + len(AGGREGATE_NAMES),):
            raise ValueError(
                f"expected {1 + len(AGGREGATE_NAMES)} scalars, got shape "
                f"{scalars.shape}"
            )
        events = cls(columns, **dict(zip(AGGREGATE_NAMES, scalars[1:].tolist())))
        if events.n != int(scalars[0]):
            raise ValueError(
                f"scalar n={int(scalars[0])} disagrees with column width "
                f"{events.n}"
            )
        return events

    def fetch_penalties(self, cons: DepthConstants) -> "list[int]":
        """Per-instruction fetch stall cycles at ``cons``'s depth."""
        return (self.ic_miss * cons.ic_penalty + self.ic_l2 * cons.l2_penalty).tolist()

    def data_penalties(self, cons: DepthConstants) -> "list[int]":
        """Per-instruction stalling D-side miss cycles at ``cons``'s depth."""
        return (
            self.dc_stall * cons.dc_penalty + self.dc_l2_stall * cons.l2_penalty
        ).tolist()


def analyze_trace(trace: Trace, config: "MachineConfig | None" = None) -> TraceEvents:
    """Run the stateful structures once and record every timed-pass event.

    Replays exactly the structure-access sequence of the reference
    simulator — the optional warm-up pass, then the timed pass's
    program-order interleaving of I-cache, D-cache, shared L2, predictor
    and BTB references — and captures the outcomes as event vectors.
    """
    if len(trace) == 0:
        raise ValueError("cannot simulate an empty trace")
    cfg = config or MachineConfig()
    oracle = cfg.predictor_kind == "oracle"
    predictor = _make_predictor(cfg.predictor_kind, cfg.predictor_entries)
    icache = Cache(cfg.icache)
    dcache = Cache(cfg.dcache)
    l2cache = Cache(cfg.l2)
    btb = BranchTargetBuffer(cfg.btb_entries) if cfg.btb_entries else None
    ic_line = cfg.icache.line_size
    if cfg.warmup:
        _warm_structures(trace, predictor, icache, dcache, l2cache, ic_line, oracle, btb)

    n = len(trace)
    opclass = trace.opclass
    mem_mask = (opclass >= _LOAD) & (opclass <= _RXALU)
    branch_mask = opclass == _BRANCH
    fpc_mask = (opclass == _FP) | (opclass == _COMPLEX)
    # A fetch touches the I-cache only when the line changes between
    # consecutive instructions (the simulator's last-line filter).
    lines = trace.pc >> (int(ic_line).bit_length() - 1)
    new_line = np.empty(n, dtype=bool)
    new_line[0] = True
    np.not_equal(lines[1:], lines[:-1], out=new_line[1:])

    ic_event = np.zeros(n, dtype=np.int32)
    dc_event = np.zeros(n, dtype=np.int32)
    branch_event = np.zeros(n, dtype=np.int32)

    mispredicts = dc_misses = store_misses = data_l2_misses = 0

    # The "taken" and "oracle" predictors are stateless, so their outcomes
    # vectorise: oracle never mispredicts, static-taken mispredicts exactly
    # the not-taken branches.  Only *taken* branches ever consult the BTB
    # (a mispredicted static-taken branch is not-taken by construction, and
    # an oracle branch reaches the BTB only when taken), so with a
    # stateless predictor the scalar walk shrinks to the structures that
    # genuinely carry state: the cache hierarchy, and the BTB when present.
    stateless = oracle or cfg.predictor_kind == "taken"
    if stateless:
        if not oracle:
            misp = branch_mask & ~trace.taken
            branch_event[misp] = _EV_MISPREDICT
            mispredicts = int(np.count_nonzero(misp))
        walk = new_line | mem_mask
        if btb is not None:
            walk |= branch_mask & trace.taken
    else:
        walk = new_line | mem_mask | branch_mask

    pcs = trace.pc.tolist()
    addresses = trace.address.tolist()
    takens = trace.taken.tolist()
    codes = opclass.tolist()
    mems = mem_mask.tolist()
    new_lines = new_line.tolist()

    ic_access = icache.access
    dc_access = dcache.access
    l2_access = l2cache.access
    observe = predictor.observe
    btb_lookup = btb.lookup_and_update if btb is not None else None
    # Only instructions that touch a stateful structure need the scalar
    # walk; everything else is covered by the vectorized masks above.
    for i in np.flatnonzero(walk).tolist():
        if new_lines[i]:
            if not ic_access(pcs[i]):
                if l2_access(pcs[i]):
                    ic_event[i] = 1
                else:
                    ic_event[i] = 2
        if mems[i]:
            if not dc_access(addresses[i]):
                l2_hit = l2_access(addresses[i])
                if codes[i] == _STORE:
                    store_misses += 1
                    if not l2_hit:
                        data_l2_misses += 1
                else:
                    dc_misses += 1
                    if l2_hit:
                        dc_event[i] = 1
                    else:
                        data_l2_misses += 1
                        dc_event[i] = 2
        elif codes[i] == _BRANCH:
            if stateless:
                # A branch can enter the walk via the new-line mask alone;
                # only correctly-predicted taken branches touch the BTB.
                if btb_lookup is not None and takens[i] and not btb_lookup(pcs[i]):
                    branch_event[i] = _EV_BTB_STALL
            elif not observe(pcs[i], takens[i]):
                mispredicts += 1
                branch_event[i] = _EV_MISPREDICT
            elif takens[i] and btb_lookup is not None and not btb_lookup(pcs[i]):
                branch_event[i] = _EV_BTB_STALL

    load_mask = opclass == _LOAD
    dest = trace.dest
    columns = np.empty((len(COLUMN_NAMES), n), dtype=np.int32)
    columns[_COL_MEM] = mem_mask
    columns[_COL_SRC1] = trace.src1
    columns[_COL_EXEC_SRC1] = np.where(mem_mask, -1, trace.src1)
    columns[_COL_SRC2] = trace.src2
    columns[_COL_DEST_ALU] = np.where(load_mask, -1, dest)
    columns[_COL_DEST_LOAD] = np.where(load_mask, dest, -1)
    columns[_COL_FPC] = (opclass == _FP) + 2 * (opclass == _COMPLEX)
    columns[_COL_FP_EXTRA] = trace.fp_cycles
    columns[_COL_STORE] = opclass == _STORE
    columns[_COL_BRANCH_EVENT] = branch_event
    columns[_COL_IC_EVENT] = ic_event
    columns[_COL_DC_EVENT] = dc_event

    memory_ops = int(np.count_nonzero(mem_mask))
    ic_l2_misses = int(np.count_nonzero(ic_event == 2))
    return TraceEvents(
        columns,
        branches=int(np.count_nonzero(branch_mask)),
        mispredicts=mispredicts,
        icache_misses=int(np.count_nonzero(ic_event)),
        ic_l2_misses=ic_l2_misses,
        dcache_accesses=memory_ops,
        dcache_misses=dc_misses,
        dc_l2_stall_misses=int(np.count_nonzero(dc_event == 2)),
        store_misses=store_misses,
        l2_misses=ic_l2_misses + data_l2_misses,
        memory_ops=memory_ops,
        fp_ops=int(np.count_nonzero(opclass == _FP)),
        fpc_count=int(np.count_nonzero(fpc_mask)),
        fpc_extra_sum=int(trace.fp_cycles[fpc_mask].sum(dtype=np.int64)),
    )


class FastPipelineSimulator:
    """Drop-in :class:`PipelineSimulator` replacement with shared analysis.

    The first ``simulate`` call on a trace runs :func:`analyze_trace`; the
    events are kept (one-slot cache keyed on the trace's *content
    fingerprint*, so a regenerated-but-identical trace is still a hit) and
    every further depth of the same trace skips straight to the timing
    recurrence.  Simulating a depth sweep therefore costs one analysis
    plus ``len(depths)`` cheap evaluations.

    Passing an ``events_cache`` (a
    :class:`~repro.pipeline.events_cache.TraceEventsCache`) extends the
    sharing across processes: analyses are looked up and stored on disk
    under (trace fingerprint, machine fingerprint, analysis schema), so a
    warm cache skips the analysis entirely — the engine's workers, the
    serving daemon and repeated CLI invocations all converge on one
    analysis per (trace, machine).
    """

    def __init__(
        self,
        config: "MachineConfig | None" = None,
        events_cache=None,
    ):
        self.config = config or MachineConfig()
        self.events_cache = events_cache
        self._cached: "tuple[str, TraceEvents] | None" = None
        self._machine_fp: "str | None" = None

    def machine_fingerprint(self) -> str:
        """Content fingerprint of this simulator's machine configuration."""
        fp = self._machine_fp
        if fp is None:
            fp = fingerprint_digest(self.config)
            self._machine_fp = fp
        return fp

    def events_for(self, trace: Trace) -> TraceEvents:
        """The (cached) depth-independent analysis of ``trace``."""
        fp = trace.fingerprint()
        cached = self._cached
        if cached is not None and cached[0] == fp:
            return cached[1]
        events = None
        cache = self.events_cache
        if cache is not None:
            events = cache.get(fp, self.machine_fingerprint())
        if events is None:
            events = analyze_trace(trace, self.config)
            if cache is not None:
                cache.put(fp, self.machine_fingerprint(), events)
        self._cached = (fp, events)
        return events

    def simulate(self, trace: Trace, depth: "int | StagePlan") -> SimulationResult:
        """Simulate ``trace`` at one depth; reference-identical results."""
        if len(trace) == 0:
            raise ValueError("cannot simulate an empty trace")
        plan = depth if isinstance(depth, StagePlan) else StagePlan.for_depth(depth)
        events = self.events_for(trace)
        cons = DepthConstants.for_plan(self.config, plan)
        if self.config.in_order:
            cycles, issue_cycles, occ_agenq, occ_execq = self._run_in_order(
                events, cons
            )
            occ_rename = 0
        else:
            cycles, issue_cycles, occ_agenq, occ_execq = self._run_out_of_order(
                events, cons
            )
            occ_rename = events.n  # one rename cycle per instruction
        return self._build_result(
            trace, plan, cons, events, cycles, issue_cycles, occ_rename, occ_agenq,
            occ_execq,
        )

    def simulate_depths(
        self, trace: Trace, depths: Sequence["int | StagePlan"]
    ) -> Tuple[SimulationResult, ...]:
        """Simulate every depth of a sweep off one shared trace analysis."""
        return tuple(self.simulate(trace, depth) for depth in depths)

    # -- result assembly ----------------------------------------------------
    def _unit_occupancy(
        self, cons, events, occ_rename, occ_agenq, occ_execq
    ) -> "tuple[float, ...]":
        """Per-unit occupancies as floats in :class:`Unit` declaration order.

        Returned flat (not ``Unit``-keyed) so hot consumers — the suite
        batch's record builder prices thousands of (job, depth) lanes per
        run — can zip against their own key tuples instead of hashing
        enum members; :meth:`_build_result` rebuilds the ``Unit`` mapping.
        """
        n = events.n
        # Every occupancy term except the queue waits is closed-form in the
        # event counts; all are integer-valued, so the floats are exact.
        occ_fetch = (
            n * cons.fetch_stages
            + events.icache_misses * cons.ic_penalty
            + events.ic_l2_misses * cons.l2_penalty
        )
        occ_cache = (
            events.memory_ops * cons.cache_stages
            + events.dcache_misses * cons.dc_penalty
            + events.dc_l2_stall_misses * cons.l2_penalty
        )
        occ_exec = (
            (n - events.fpc_count) * cons.exec_stages
            + events.fpc_extra_sum
            + events.fpc_count * (cons.exec_latency - 1)
        )
        return (
            float(occ_fetch),
            float(n * cons.decode_stages),
            float(occ_rename),
            float(occ_agenq),
            float(events.memory_ops * cons.agen_stages),
            float(occ_cache),
            float(occ_execq),
            float(occ_exec),
            float(n),
            float(n),
        )

    def _build_result(
        self, trace, plan, cons, events, cycles, issue_cycles, occ_rename, occ_agenq,
        occ_execq,
    ) -> SimulationResult:
        n = events.n
        occupancy = dict(
            zip(
                _OCCUPANCY_UNITS,
                self._unit_occupancy(cons, events, occ_rename, occ_agenq, occ_execq),
            )
        )
        return SimulationResult(
            trace_name=trace.name,
            plan=plan,
            technology=self.config.technology,
            instructions=n,
            cycles=cycles,
            issue_cycles=issue_cycles,
            branches=events.branches,
            mispredicts=events.mispredicts,
            icache_misses=events.icache_misses,
            dcache_accesses=events.dcache_accesses,
            dcache_misses=events.dcache_misses,
            store_misses=events.store_misses,
            l2_misses=events.l2_misses,
            memory_ops=events.memory_ops,
            fp_ops=events.fp_ops,
            unit_occupancy=occupancy,
        )

    # -- in-order timing recurrence -----------------------------------------
    def _run_in_order(self, events: TraceEvents, cons: DepthConstants):
        """The in-order timing chain over precomputed events.

        Mirrors ``PipelineSimulator.simulate`` constraint for constraint;
        only the stateful-structure walks and per-event bookkeeping are
        replaced by the precomputed vectors.  Returns ``(cycles,
        issue_cycles, agen_queue_occupancy, exec_queue_occupancy)``.
        """
        cfg = self.config
        stream = events.stream

        width = cfg.issue_width
        agen_width = cfg.agen_width
        mshr_n = cfg.mshr_entries
        fetch_stages = cons.fetch_stages
        off_agen = cons.off_agen
        off_cache_delta = cons.off_cache - cons.off_agen
        off_exec_rr = cons.off_exec_rr
        cache_done_off = cons.cache_latency - 1
        fpc_done_off = cons.exec_latency - 2
        alu_latency = cons.alu_latency
        merged = cons.cache_exec_merged
        back_end = cons.back_end
        ic_p = cons.ic_penalty
        ic_l2_p = ic_p + cons.l2_penalty
        dc_p = cons.dc_penalty
        dc_l2_p = dc_p + cons.l2_penalty
        # Folded constants: retire candidate for simple ops, and the two
        # redirect offsets shifted into the decode domain (see below).
        retire_off = cons.exec_latency - 1 + back_end
        misp_off = cons.resolve_latency + fetch_stages  # resolve-1 +1 +fetch
        btb_off = cons.decode_latency + fetch_stages

        # Every in-order stage time is monotone non-decreasing, so each
        # width-entry bandwidth ring collapses to a run-length counter: the
        # ring constraint (x >= x[i-width] + 1) can only bind when the last
        # ``width`` values all equal the current candidate, because every
        # stage time is first clamped to its predecessor.  Only the MSHR
        # ring stays a real ring (miss-return times are not monotone).
        #
        # Two more identities keep the loop lean: in order, decode is
        # always exactly fetch + fetch_stages (the decode ring can only
        # bind when the fetch ring already did), so one fused chain tracks
        # decode directly with redirects pre-shifted by ``fetch_stages``;
        # and ``ready1`` stores forwarding times pre-incremented so the
        # operand comparison needs no +1.
        ready1 = [1] * REGISTER_COUNT
        mshr_ring = [0] * mshr_n
        last_decode = fetch_stages
        last_exec = last_agen = last_retire = 0
        decode_n = exec_n = agen_n = retire_n = 0
        redirect_d = fetch_stages
        fp_unit_free = 0
        complex_unit_free = 0
        mm = 0
        issue_cycles = 0
        last_issue_cycle = -1
        occ_agenq = 0
        occ_execq = 0
        MISPREDICT = _EV_MISPREDICT

        for mem, s1, s1x, s2, dest_alu, dest_load, fpc, fpx, _st, b, fev, dev in stream:
            # ---- fetch + decode (fused) ------------------------------------
            if redirect_d > last_decode:
                decode = redirect_d
                decode_n = 1
            elif decode_n < width:
                decode = last_decode
                decode_n += 1
            else:
                decode = last_decode + 1
                decode_n = 1
            if fev:
                decode += ic_p if fev == 1 else ic_l2_p
                decode_n = 1
            last_decode = decode

            # ---- address generation + cache (RX path) ----------------------
            if mem:
                floor = decode + off_agen
                agen = floor
                if s1 >= 0:
                    operand = ready1[s1]
                    if operand > agen:
                        agen = operand
                if agen > last_agen:
                    agen_n = 1
                elif agen_n < agen_width:
                    agen = last_agen
                    agen_n += 1
                else:
                    agen = last_agen + 1
                    agen_n = 1
                last_agen = agen
                if agen > floor:
                    occ_agenq += agen - floor

                cache_start = agen + off_cache_delta
                if dev:
                    dpen = dc_p if dev == 1 else dc_l2_p
                    slot_free = mshr_ring[mm]
                    if cache_start < slot_free:
                        cache_start = slot_free
                    mshr_ring[mm] = cache_start + dpen
                    mm += 1
                    if mm == mshr_n:
                        mm = 0
                    cache_done = cache_start + cache_done_off + dpen
                else:
                    cache_done = cache_start + cache_done_off
                path_ready = cache_done if merged else cache_done + 1
                if dest_load >= 0:
                    ready1[dest_load] = cache_done + 1
            else:
                path_ready = decode + off_exec_rr

            # ---- execute issue (in-order, width-wide) -----------------------
            # All issue constraints are maxes, so they commute; the
            # bandwidth counter runs on the operand-resolved candidate and
            # the rare FP/COMPLEX unit clamp fixes up the run state after.
            execute = path_ready
            if s1x >= 0:
                operand = ready1[s1x]
                if operand > execute:
                    execute = operand
            if s2 >= 0:
                operand = ready1[s2]
                if operand > execute:
                    execute = operand
            if execute > last_exec:
                exec_n = 1
            elif exec_n < width:
                execute = last_exec
                exec_n += 1
            else:
                execute = last_exec + 1
                exec_n = 1
            last_exec = execute

            if fpc:
                if fpc == 1:
                    if execute < fp_unit_free:
                        execute = last_exec = fp_unit_free
                        exec_n = 1
                    exec_done = execute + fpx + fpc_done_off
                    fp_unit_free = exec_done + 1
                else:
                    if execute < complex_unit_free:
                        execute = last_exec = complex_unit_free
                        exec_n = 1
                    exec_done = execute + fpx + fpc_done_off
                    complex_unit_free = exec_done + 1
                if dest_alu >= 0:
                    ready1[dest_alu] = exec_done + 1
                retire = exec_done + back_end
            else:
                if dest_alu >= 0:
                    ready1[dest_alu] = execute + alu_latency
                retire = execute + retire_off

            if execute > path_ready:
                occ_execq += execute - path_ready
            if execute != last_issue_cycle:
                issue_cycles += 1
                last_issue_cycle = execute

            # ---- branch resolution ------------------------------------------
            if b:
                if b == MISPREDICT:
                    resolved = execute + misp_off
                    if resolved > redirect_d:
                        redirect_d = resolved
                else:
                    target_known = decode + btb_off
                    if target_known > redirect_d:
                        redirect_d = target_known

            # ---- completion / retire ----------------------------------------
            if retire > last_retire:
                last_retire = retire
                retire_n = 1
            elif retire_n < width:
                retire_n += 1
            else:
                last_retire += 1
                retire_n = 1

        return (
            last_retire + 1,
            issue_cycles,
            occ_agenq + events.memory_ops,
            occ_execq + events.n,
        )

    # -- out-of-order timing recurrence ---------------------------------------
    def _run_out_of_order(self, events: TraceEvents, cons: DepthConstants):
        """The out-of-order timing chain (rename + window + ROB).

        Mirrors ``PipelineSimulator._simulate_out_of_order`` exactly; see
        there for the semantics of the window, ROB backpressure and
        conservative load/store disambiguation.
        """
        cfg = self.config
        stream = events.stream

        width = cfg.issue_width
        agen_width = cfg.agen_width
        mshr_n = cfg.mshr_entries
        window = cfg.issue_window
        rob = cfg.rob_size
        rename_latency = 1  # the Fig. 2 rename stage, active out of order
        fetch_stages = cons.fetch_stages
        off_agen = cons.off_agen + rename_latency
        off_cache_delta = cons.off_cache - cons.off_agen
        off_exec_rr = cons.off_exec_rr + rename_latency
        agen_done_off = cons.agen_latency - 1
        cache_done_off = cons.cache_latency - 1
        fpc_done_off = cons.exec_latency - 2
        alu_latency = cons.alu_latency
        resolve_latency = cons.resolve_latency
        merged = cons.cache_exec_merged
        back_end = cons.back_end
        retire_off = cons.exec_latency - 1 + back_end
        target_delay = cons.decode_latency + rename_latency
        ic_p = cons.ic_penalty
        ic_l2_p = ic_p + cons.l2_penalty
        dc_p = cons.dc_penalty
        dc_l2_p = dc_p + cons.l2_penalty

        # Fetch, decode and retire are monotone, so their width-wide rings
        # collapse to run-length counters (see the in-order loop; decode
        # keeps its own chain here because ROB backpressure breaks the
        # decode == fetch + fetch_stages identity).  The agen ring, issue
        # window and ROB stay real rings: out-of-order agen/execute times
        # are not monotone, and the ROB constraint compares against a
        # value ``rob`` instructions back, not a run.
        ready1 = [1] * REGISTER_COUNT
        agen_ring = [-1] * agen_width
        issue_ring = [-1] * window
        retire_rob = [-1] * rob
        issue_slots: dict = {}
        mshr_ring = [0] * mshr_n
        last_fetch = last_decode = last_retire = 0
        fetch_n = decode_n = retire_n = 0
        redirect = 0
        fp_unit_free = 0
        complex_unit_free = 0
        mm = 0
        am = 0
        wi = 0
        ri = 0
        last_store_agen = 0
        occ_agenq = 0
        occ_execq = 0
        MISPREDICT = _EV_MISPREDICT
        get_slot = issue_slots.get

        for mem, s1, s1x, s2, dest_alu, dest_load, fpc, fpx, st, b, fev, dev in stream:
            # ---- fetch (in order) ---------------------------------------
            if redirect > last_fetch:
                fetch = redirect
                fetch_n = 1
            elif fetch_n < width:
                fetch = last_fetch
                fetch_n += 1
            else:
                fetch = last_fetch + 1
                fetch_n = 1
            if fev:
                fetch += ic_p if fev == 1 else ic_l2_p
                fetch_n = 1
            last_fetch = fetch

            # ---- decode + rename (in order, ROB backpressure) ------------
            decode = fetch + fetch_stages
            if decode < last_decode:
                decode = last_decode
            rob_slot = retire_rob[ri]
            if rob_slot >= decode:
                decode = rob_slot + 1
            if decode > last_decode:
                decode_n = 1
            elif decode_n < width:
                decode_n += 1
            else:
                decode += 1
                decode_n = 1
            last_decode = decode

            # ---- address generation + cache ------------------------------
            if mem:
                floor = decode + off_agen
                agen = floor
                if s1 >= 0:
                    operand = ready1[s1]
                    if operand > agen:
                        agen = operand
                slot = agen_ring[am]
                if slot >= agen:
                    agen = slot + 1
                agen_ring[am] = agen
                am += 1
                if am == agen_width:
                    am = 0
                if agen > floor:
                    occ_agenq += agen - floor

                cache_start = agen + off_cache_delta
                if st:
                    agen_done = agen + agen_done_off
                    if agen_done > last_store_agen:
                        last_store_agen = agen_done
                elif cache_start <= last_store_agen:
                    # Conservative disambiguation: wait for older stores'
                    # addresses before accessing the cache.
                    cache_start = last_store_agen + 1
                if dev:
                    dpen = dc_p if dev == 1 else dc_l2_p
                    slot_free = mshr_ring[mm]
                    if cache_start < slot_free:
                        cache_start = slot_free
                    mshr_ring[mm] = cache_start + dpen
                    mm += 1
                    if mm == mshr_n:
                        mm = 0
                    cache_done = cache_start + cache_done_off + dpen
                else:
                    cache_done = cache_start + cache_done_off
                path_ready = cache_done if merged else cache_done + 1
                if dest_load >= 0:
                    ready1[dest_load] = cache_done + 1
            else:
                path_ready = decode + off_exec_rr

            # ---- out-of-order issue ---------------------------------------
            execute = path_ready
            window_slot = issue_ring[wi]
            if window_slot >= execute:
                execute = window_slot + 1
            if s1x >= 0:
                operand = ready1[s1x]
                if operand > execute:
                    execute = operand
            if s2 >= 0:
                operand = ready1[s2]
                if operand > execute:
                    execute = operand
            if fpc:
                if fpc == 1:
                    if execute < fp_unit_free:
                        execute = fp_unit_free
                elif execute < complex_unit_free:
                    execute = complex_unit_free
            count = get_slot(execute, 0)
            while count >= width:
                execute += 1
                count = get_slot(execute, 0)
            issue_slots[execute] = count + 1
            issue_ring[wi] = execute
            wi += 1
            if wi == window:
                wi = 0

            if fpc:
                exec_done = execute + fpx + fpc_done_off
                if fpc == 1:
                    fp_unit_free = exec_done + 1
                else:
                    complex_unit_free = exec_done + 1
                if dest_alu >= 0:
                    ready1[dest_alu] = exec_done + 1
                retire = exec_done + back_end
            else:
                if dest_alu >= 0:
                    ready1[dest_alu] = execute + alu_latency
                retire = execute + retire_off
            if execute > path_ready:
                occ_execq += execute - path_ready

            # ---- branch resolution ----------------------------------------
            if b:
                if b == MISPREDICT:
                    resolved = execute + resolve_latency
                    if resolved > redirect:
                        redirect = resolved
                else:
                    target_known = decode + target_delay
                    if target_known > redirect:
                        redirect = target_known

            # ---- in-order retirement ---------------------------------------
            if retire > last_retire:
                last_retire = retire
                retire_n = 1
            elif retire_n < width:
                retire_n += 1
            else:
                last_retire += 1
                retire_n = 1
            retire_rob[ri] = last_retire
            ri += 1
            if ri == rob:
                ri = 0

        return (
            last_retire + 1,
            len(issue_slots),
            occ_agenq + events.memory_ops,
            occ_execq + events.n,
        )


def make_simulator(
    config: "MachineConfig | None" = None,
    backend: str = DEFAULT_BACKEND,
    events_cache=None,
):
    """Instantiate the simulator for ``backend``.

    ``"reference"`` is the step-wise interpreter, ``"fast"`` this module's
    kernel, ``"batched"`` the depth-batched kernel, ``"suite"`` the
    cross-job tensor kernel (:mod:`repro.pipeline.suite` — per-job it
    behaves like ``batched``; the engine packs whole manifests of suite
    jobs into one kernel call), ``"cycle"`` the cycle-accurate state
    machine (:mod:`repro.pipeline.cycle`).
    ``events_cache`` (a
    :class:`~repro.pipeline.events_cache.TraceEventsCache` or None) is
    forwarded to the analysing backends; the reference interpreter has no
    analysis to cache and ignores it.
    """
    if backend == "reference":
        return PipelineSimulator(config)
    if backend == "fast":
        return FastPipelineSimulator(config, events_cache=events_cache)
    if backend == "batched":
        from .batched import BatchedPipelineSimulator

        return BatchedPipelineSimulator(config, events_cache=events_cache)
    if backend == "suite":
        from .suite import SuitePipelineSimulator

        return SuitePipelineSimulator(config, events_cache=events_cache)
    if backend == "cycle":
        from .cycle import CyclePipelineSimulator

        return CyclePipelineSimulator(config, events_cache=events_cache)
    raise ValueError(f"unknown backend {backend!r}; choose from {list(BACKENDS)}")


def simulate_fast(
    trace: Trace, depth: "int | StagePlan", config: "MachineConfig | None" = None
) -> SimulationResult:
    """Module-level convenience wrapper around :class:`FastPipelineSimulator`."""
    return FastPipelineSimulator(config).simulate(trace, depth)
