"""ASCII rendering of planned pipelines (the paper's Fig. 2, per depth).

Shows how a given decode-to-execute depth maps onto the machine: which
units got extra stages under uniform expansion, and which units share a
cycle after contraction — the recipe behind every sweep in this library,
made visible.
"""

from __future__ import annotations

from typing import List

from .plan import RR_PATH, RX_PATH, StagePlan, Unit

__all__ = ["render_plan", "render_depth_table"]

_SHORT_NAMES = {
    Unit.FETCH: "Fetch",
    Unit.DECODE: "Decode",
    Unit.RENAME: "Rename",
    Unit.AGEN_QUEUE: "AgenQ",
    Unit.AGEN: "Agen",
    Unit.CACHE: "Cache",
    Unit.EXEC_QUEUE: "ExecQ",
    Unit.EXECUTE: "E-Unit",
    Unit.COMPLETE: "Compl",
    Unit.RETIRE: "Retire",
}


def _box(label: str) -> List[str]:
    inner = f" {label} "
    return [
        "+" + "-" * len(inner) + "+",
        "|" + inner + "|",
        "+" + "-" * len(inner) + "+",
    ]


def _join_boxes(boxes: List[List[str]], separator: str = "->") -> str:
    rows = ["", "", ""]
    for index, box in enumerate(boxes):
        glue = ["  ", separator, "  "] if index else ["", "", ""]
        for row in range(3):
            rows[row] += glue[row] + box[row]
    return "\n".join(rows)


def render_plan(plan: StagePlan) -> str:
    """Render one plan: the RX path with per-unit stage counts and merges.

    Merged units are drawn inside one box; multi-stage units carry an
    ``xN`` stage count.  The RR path line shows which boxes register-only
    instructions skip.
    """
    boxes: List[List[str]] = [_box(_SHORT_NAMES[Unit.FETCH])]
    seen_groups = []
    for unit in RX_PATH:
        group = plan.group_of(unit)
        if group in seen_groups:
            continue
        seen_groups.append(group)
        members = [u for u in RX_PATH if u in group]
        label = "+".join(_SHORT_NAMES[u] for u in members)
        stages = plan.group_latency(unit)
        if stages > 1:
            label += f" x{stages}"
        boxes.append(_box(label))
    boxes.append(_box(_SHORT_NAMES[Unit.COMPLETE]))
    boxes.append(_box(_SHORT_NAMES[Unit.RETIRE]))

    lines = [
        f"StagePlan depth={plan.depth} (decode -> end of execute, RX path)",
        _join_boxes(boxes),
        f"RR path skips the agen/cache segment: "
        f"{plan.path_offsets(RR_PATH).total} cycles decode->execute",
    ]
    if plan.merges:
        merged = "; ".join(
            "+".join(sorted(_SHORT_NAMES[u] for u in group)) for group in plan.merges
        )
        lines.append(f"merged cycles: {merged}")
    return "\n".join(lines)


def render_depth_table(depths=range(2, 26)) -> str:
    """Per-depth stage-count table: the expansion/contraction recipe."""
    header = (
        f"{'p':>3s} {'decode':>7s} {'agenQ':>6s} {'agen':>5s} {'cache':>6s} "
        f"{'execQ':>6s} {'exec':>5s} {'merges':>7s}"
    )
    lines = [header]
    for depth in depths:
        plan = StagePlan.for_depth(int(depth))
        stages = plan.unit_stages
        lines.append(
            f"{depth:3d} {stages[Unit.DECODE]:7d} {stages[Unit.AGEN_QUEUE]:6d} "
            f"{stages[Unit.AGEN]:5d} {stages[Unit.CACHE]:6d} "
            f"{stages[Unit.EXEC_QUEUE]:6d} {stages[Unit.EXECUTE]:5d} "
            f"{len(plan.merges):7d}"
        )
    return "\n".join(lines)
