"""Per-depth timing constants shared by every simulation backend.

For one (machine, stage plan) pair, everything the timing loops need —
stage counts, path offsets, forwarding latencies and the cycle-denominated
hazard penalties — is a pure function of the plan and the machine's FO4
constants.  :class:`DepthConstants` computes that bundle once, in a single
place, so the reference interpreter (:mod:`repro.pipeline.simulator`) and
the vectorized kernel (:mod:`repro.pipeline.fastsim`) are guaranteed to
agree on every constant by construction: the equivalence the
cross-validation harness asserts starts here.

The module deliberately depends only on :mod:`repro.pipeline.plan`; the
machine configuration is consumed structurally (technology, cache
geometries and logic-depth attributes), which keeps the import graph
acyclic between the two simulator backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .plan import StagePlan, Unit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .simulator import MachineConfig

__all__ = ["DepthConstants"]


@dataclass(frozen=True)
class DepthConstants:
    """Every depth-dependent constant of the timing model.

    Attributes:
        plan: the stage plan the constants were derived from.
        fetch_stages / decode_stages / agen_stages / cache_stages /
            exec_stages: per-unit stage counts.
        decode_latency / agen_latency / cache_latency / exec_latency:
            per-unit occupied cycles along the RX path (merged units share
            their group latency).
        off_agen / off_cache: RX-path start offsets relative to decode
            start, in cycles.
        off_exec_rr: RR-path execute start offset relative to decode start.
        cache_exec_merged: True when Cache-Access and the E-Unit share one
            cycle group (contracted designs), in which case a load's
            dependants may issue in the completion cycle itself.
        back_end: completion + retire cycles appended after execute.
        ic_penalty / dc_penalty / l2_penalty: hazard penalties in cycles at
            this depth's clock — absolute FO4 latencies divided by the
            cycle time, so deeper (faster-clocked) pipes pay more cycles.
        alu_latency: cycles until a simple result forwards to dependants
            (fixed logic delay, clamped to the execute pipe).
        resolve_latency: cycles from execute-issue to a resolved branch
            condition (same clamping).
    """

    plan: StagePlan
    fetch_stages: int
    decode_stages: int
    agen_stages: int
    cache_stages: int
    exec_stages: int
    decode_latency: int
    agen_latency: int
    cache_latency: int
    exec_latency: int
    off_agen: int
    off_cache: int
    off_exec_rr: int
    cache_exec_merged: bool
    back_end: int
    ic_penalty: int
    dc_penalty: int
    l2_penalty: int
    alu_latency: int
    resolve_latency: int

    @classmethod
    def for_plan(cls, config: "MachineConfig", plan: StagePlan) -> "DepthConstants":
        """Derive the constants for ``plan`` on ``config``'s machine."""
        t_s = config.technology.cycle_time(plan.depth)
        rx = plan.rx_offsets
        rr = plan.rr_offsets
        exec_latency = rx.latencies[Unit.EXECUTE]
        return cls(
            plan=plan,
            fetch_stages=plan.unit_stages[Unit.FETCH],
            decode_stages=plan.unit_stages[Unit.DECODE],
            agen_stages=plan.unit_stages[Unit.AGEN],
            cache_stages=plan.unit_stages[Unit.CACHE],
            exec_stages=plan.unit_stages[Unit.EXECUTE],
            decode_latency=rx.latencies[Unit.DECODE],
            agen_latency=rx.latencies[Unit.AGEN],
            cache_latency=rx.latencies[Unit.CACHE],
            exec_latency=exec_latency,
            off_agen=rx.starts[Unit.AGEN],
            off_cache=rx.starts[Unit.CACHE],
            off_exec_rr=rr.starts[Unit.EXECUTE],
            cache_exec_merged=plan.group_of(Unit.CACHE) == plan.group_of(Unit.EXECUTE),
            back_end=plan.unit_stages[Unit.COMPLETE] + plan.unit_stages[Unit.RETIRE],
            ic_penalty=max(1, round(config.icache.miss_latency_fo4 / t_s)),
            dc_penalty=max(1, round(config.dcache.miss_latency_fo4 / t_s)),
            l2_penalty=max(1, round(config.l2.miss_latency_fo4 / t_s)),
            alu_latency=min(max(1, round(config.alu_logic_fo4 / t_s)), exec_latency),
            resolve_latency=min(
                max(1, round(config.branch_resolve_fo4 / t_s)), exec_latency
            ),
        )
