"""The cycle-accurate out-of-order simulation backend (``backend="cycle"``).

Every other backend in this package prices a depth by *analytic
recurrence*: the reference interpreter and the fast/batched kernels walk
the instruction stream once in program order and propagate per-instruction
stage timestamps.  That family shares its modelling assumptions, so a bug
in the shared timing identities would be invisible to the cross-validation
harness — ROADMAP open item 3's fidelity gap.

This module is the independent referee: a genuine cycle-driven simulator
that advances machine state one cycle at a time through the classic
out-of-order phases

``fetch -> decode -> rename -> dispatch -> issue -> execute -> writeback
-> commit``

with explicit bounded structures sized by the existing
:class:`~repro.pipeline.simulator.MachineConfig` parameters:

* a **physical register file** (``REGISTER_COUNT + rob_size`` registers)
  with a rename map and a free list — destinations are renamed at
  dispatch, sources capture their physical registers at dispatch, and the
  previous mapping is reclaimed at commit;
* a bounded **issue queue** (``issue_window`` entries) — instructions
  wait in the queue until their source physical registers have written
  back and an issue port is free (``issue_width`` issues per cycle,
  ``agen_width`` of which may be address generations); ``in_order``
  machines issue strictly in age order (the scan stops at the first
  blocked entry) with no rename stage, out-of-order machines wake any
  ready entry;
* a **reorder buffer / active list** (``rob_size`` entries) — dispatch
  stalls when it is full and retirement is strictly in order,
  ``issue_width`` commits per cycle;
* the non-pipelined FP/COMPLEX units, the MSHR ring for outstanding
  D-cache misses, conservative store ordering (stores generate addresses
  in order; a younger memory op's cache access waits for every older
  store's agen), and a fetch barrier behind each unresolved mispredicted
  branch.

Execution and writeback are *scheduled* at issue: selecting an
instruction fixes its completion cycle from the same
:class:`~repro.pipeline.timing.DepthConstants` latencies the analytic
backends use (ALU forwarding, cache return, FP occupancy, branch
resolution, miss penalties), the destination register's writeback
timestamp gates dependant wakeup, and the ROB entry's completion time
gates commit.  A depth sweep therefore stresses the same design points as
the analytic model; what differs is *how* time is accounted — a state
machine with bounded buffers, not a closed recurrence.

**Shared hazard streams, independent timing.**  The stateful structures
(branch predictor, BTB, both L1s, the L2) are referenced in program order
by every backend, so their outcomes are properties of the
(trace, machine) pair alone.  The cycle backend therefore consumes the
same :class:`~repro.pipeline.fastsim.TraceEvents` analysis (and shares
the on-disk :class:`~repro.pipeline.events_cache.TraceEventsCache`),
which makes the hazard *counts* — branches, mispredicts, cache and L2
misses — bit-identical across all backends by construction.  That is
deliberate: differential comparison (``repro fuzz``,
``repro validate-kernel --backend cycle``) is only meaningful when
backends can disagree about *timing*, never about *events*.

Cycle counts are **not** expected to match the analytic model exactly;
:data:`CYCLE_CPI_RTOL` is the documented per-depth CPI tolerance the
validation harness and the differential fuzzer enforce between this
backend and the analytic model.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..isa import REGISTER_COUNT
from ..trace.trace import Trace
from .fastsim import (
    _COL_FPC,
    _COL_STORE,
    _EV_BTB_STALL,
    _EV_MISPREDICT,
    FastPipelineSimulator,
    TraceEvents,
)
from .plan import StagePlan
from .results import SimulationResult
from .simulator import MachineConfig
from .timing import DepthConstants

__all__ = ["CYCLE_CPI_RTOL", "CyclePipelineSimulator", "simulate_cycle"]

CYCLE_CPI_RTOL = 0.25
"""Documented per-depth CPI tolerance between the cycle-accurate backend
and the analytic event-stream model.  The two models share every hazard
event and every :class:`DepthConstants` latency; the residual difference
is queueing/bandwidth microstructure (bounded issue queue and dispatch
stalls versus the analytic issue ring and decode backpressure), which
stays well inside this bound across the validation grid and the fuzzer's
random machines."""

_NEVER = 1 << 60


class CyclePipelineSimulator:
    """Drop-in simulator backend driven cycle by cycle.

    API-compatible with the other backends: ``simulate`` /
    ``simulate_depths`` produce full
    :class:`~repro.pipeline.results.SimulationResult` objects, an
    optional ``events_cache`` shares trace analyses on disk, and
    ``config.in_order`` selects strictly age-ordered issue (the
    scoreboarded in-order machine) versus out-of-order wakeup.
    """

    def __init__(
        self,
        config: "MachineConfig | None" = None,
        events_cache=None,
    ):
        self.config = config or MachineConfig()
        # The composed fast simulator supplies the shared trace analysis
        # (memoised + disk-cached) and the closed-form occupancy assembly;
        # all timing below is this module's own cycle loop.
        self._analysis = FastPipelineSimulator(self.config, events_cache=events_cache)

    @property
    def events_cache(self):
        return self._analysis.events_cache

    def machine_fingerprint(self) -> str:
        """Content fingerprint of this simulator's machine configuration."""
        return self._analysis.machine_fingerprint()

    def events_for(self, trace: Trace) -> TraceEvents:
        """The (cached) depth-independent analysis of ``trace``."""
        return self._analysis.events_for(trace)

    def simulate_depths(
        self, trace: Trace, depths: Sequence["int | StagePlan"]
    ) -> Tuple[SimulationResult, ...]:
        """Simulate every depth of a sweep off one shared trace analysis."""
        return tuple(self.simulate(trace, depth) for depth in depths)

    def simulate(self, trace: Trace, depth: "int | StagePlan") -> SimulationResult:
        """Simulate ``trace`` at one pipeline depth, cycle by cycle."""
        if len(trace) == 0:
            raise ValueError("cannot simulate an empty trace")
        plan = depth if isinstance(depth, StagePlan) else StagePlan.for_depth(depth)
        events = self.events_for(trace)
        cons = DepthConstants.for_plan(self.config, plan)
        cycles, issue_cycles, occ_agenq, occ_execq = self._run(events, cons)
        occ_rename = 0 if self.config.in_order else events.n
        return self._analysis._build_result(
            trace, plan, cons, events, cycles, issue_cycles, occ_rename,
            occ_agenq, occ_execq,
        )

    # -- the cycle loop ------------------------------------------------------
    def _run(self, events: TraceEvents, cons: DepthConstants):
        """Advance the machine one cycle at a time until everything commits.

        Returns ``(cycles, issue_cycles, agen_queue_occupancy,
        exec_queue_occupancy)`` — the same bundle the analytic loops
        produce, so :meth:`simulate` can reuse the shared result assembly.
        """
        cfg = self.config
        stream = events.stream
        n = events.n

        width = cfg.issue_width
        agen_width = cfg.agen_width
        in_order = cfg.in_order
        # ``issue_window`` and ``rob_size`` are out-of-order structures
        # (see MachineConfig): the analytic in-order loop has neither —
        # its stalls all come from the in-order agen/execute chains — so
        # the in-order cycle machine leaves both effectively unbounded.
        iq_capacity = n + 1 if in_order else cfg.issue_window
        rob_capacity = cfg.rob_size
        mshr_n = cfg.mshr_entries

        # In-order machines skip the rename stage (Fig. 2); out of order it
        # is one front-end cycle, exactly as in the analytic model.
        rename_latency = 0 if in_order else 1
        fetch_stages = cons.fetch_stages
        front_latency = fetch_stages + cons.decode_latency + rename_latency
        # Decode -> dispatch traversal: the decode/rename latches.  The ROB
        # slot is claimed *at decode*, so an instruction stalled on a full
        # ROB re-pays this latency once the slot frees — exactly the
        # analytic model's decode-side backpressure.
        post_decode = cons.decode_latency + rename_latency
        # The fetch buffer holds fetched-but-undecoded instructions.  Decode
        # lags fetch by at most the ROB (its only backpressure), so the
        # buffer is the fetch pipe itself plus that worst-case lag; smaller
        # buffers would throttle fetch below width in steady state.
        front_capacity = rob_capacity + width * (fetch_stages + 2)
        off_cache_delta = cons.off_cache - cons.off_agen
        agen_done_off = cons.agen_latency - 1
        cache_done_off = cons.cache_latency - 1
        exec_done_off = cons.exec_latency - 1
        fpc_done_off = cons.exec_latency - 2
        alu_latency = cons.alu_latency
        resolve_latency = cons.resolve_latency
        merged = cons.cache_exec_merged
        back_end = cons.back_end
        btb_refill = front_latency
        ic_p = cons.ic_penalty
        ic_l2_p = ic_p + cons.l2_penalty
        dc_p = cons.dc_penalty
        dc_l2_p = dc_p + cons.l2_penalty

        # Physical register file.  Architected registers map to themselves;
        # the rest form the free list.  Every in-flight instruction holds
        # at most one mapping beyond the architected set, so
        # ``REGISTER_COUNT + rob_size`` pregs make out-of-order rename
        # deadlock-free (dispatch is gated on ROB space first); the
        # ungated in-order machine sizes for the whole trace instead.
        n_pregs = REGISTER_COUNT + (n if in_order else rob_capacity)
        rename_map = list(range(REGISTER_COUNT))
        ready_at = [0] * n_pregs  # scheduled writeback time per preg
        free_pregs = list(range(n_pregs - 1, REGISTER_COUNT - 1, -1))

        # How many stores precede each instruction (exclusive prefix count)
        # — the basis of the conservative memory-ordering rule.
        store_col = events.columns[_COL_STORE]
        stores_before = np.concatenate(
            ([0], np.cumsum(store_col[:-1], dtype=np.int64))
        ).tolist()

        # Agen ports are allocated to memory ops in program order: the
        # k-th memory op owns port ``k % agen_width`` and must generate
        # its address strictly after the port's previous owner, the
        # (k - agen_width)-th memory op.  ``mem_ordinal[i]`` is i's
        # position among memory ops; ``agen_cycles`` records when each
        # has agened (``_NEVER`` until it does).
        mem_col = events.columns[0]
        mem_ordinal = (
            np.cumsum(mem_col, dtype=np.int64) - mem_col
        ).tolist()
        agen_cycles = [_NEVER] * int(events.memory_ops)

        # The non-pipelined FP and complex units are likewise allocated in
        # program order: the analytic model's fp_unit_free/complex_unit_free
        # recurrences advance instruction by instruction, so the k-th FP op
        # executes strictly after the (k-1)-th finishes even when a younger
        # FP op's operands are ready first — the unit sits idle rather than
        # being stolen out of order.  ``fpc_ordinal[i]`` is i's position
        # within its unit's program-order chain; the ``*_done`` lists record
        # each op's completion (``_NEVER`` until it issues).
        fpc_col = events.columns[_COL_FPC]
        fp_mask = fpc_col == 1
        cx_mask = fpc_col == 2
        fpc_ordinal = np.where(
            fp_mask,
            np.cumsum(fp_mask, dtype=np.int64) - fp_mask,
            np.cumsum(cx_mask, dtype=np.int64) - cx_mask,
        ).tolist()
        fp_done = [_NEVER] * int(fp_mask.sum())
        cx_done = [_NEVER] * int(cx_mask.sum())

        # Front end: program-order fetch with an explicit floor (I-cache
        # miss returns, BTB refills, mispredict redirects) and a barrier
        # behind each fetched-but-unresolved mispredicted branch.  At most
        # one such branch can be in flight — the barrier blocks younger
        # fetches until it issues — so a single flag suffices.
        fetch_ptr = 0
        fetch_floor = 0
        barrier = False
        front_q: list = []  # (index, decode_ready), program order
        front_head = 0
        dec_q: list = []  # (index, dispatch_ready, rob_rec), program order
        dec_head = 0

        # Back end: issue queue entries in program order, ROB as a queue of
        # [dest_preg, old_preg, done_cycle] records (the slot is claimed at
        # decode, the preg fields are filled by rename at dispatch, and
        # done_cycle is written at issue; the issue-queue entry aliases the
        # same record).
        iq: list = []
        rob: list = []
        rob_head = 0
        in_flight = 0
        committed = 0

        # Memory ordering: stores generate addresses in order among stores,
        # and ``store_agen_prefix[k]`` is the latest agen-done time among
        # the first ``k`` agened stores — a younger op's cache access waits
        # for exactly its older stores, never for younger ones.
        stores_agened = 0
        store_agen_prefix = [0]
        mshr_ring = [0] * mshr_n
        mshr_i = 0

        # Optional probe for divergence debugging (e.g. on a minimized fuzz
        # bundle): set ``sim.debug_log = []`` before simulating and the loop
        # appends ("A"|"E", instruction, issue_cycle, completion_cycle) per
        # agen/execute issue.
        _dbg = getattr(self, "debug_log", None)
        issue_cycles = 0
        occ_agenq = 0
        occ_execq = 0
        last_commit = 0
        cycle = -1
        # Progress per cycle is guaranteed (every blocking condition clears
        # at a finite scheduled time); the ceiling only catches modelling
        # bugs during development.
        max_cycles = 10000 * (n + 100)

        while committed < n:
            cycle += 1
            if cycle > max_cycles:  # pragma: no cover - defensive
                raise RuntimeError(f"cycle backend made no progress by cycle {cycle}")

            # ---- decode (program order, width per cycle) --------------------
            # Out of order, the ROB slot is claimed here: decode runs before
            # commit, so a slot freed this cycle admits the next decode only
            # next cycle — decode strictly follows the freeing retirement,
            # as in the analytic model's decode backpressure.  The in-order
            # machine has no rename/ROB front-end structure (its active
            # list is an unbounded scoreboard), so it allocates its record
            # at dispatch, uncapacitated.
            decoded = 0
            while (
                decoded < width
                and front_head < len(front_q)
                and (in_order or in_flight < rob_capacity)
            ):
                index, ready = front_q[front_head]
                if ready > cycle:
                    break
                if in_order:
                    rob_rec = None
                else:
                    rob_rec = [-1, -1, None]
                    rob.append(rob_rec)
                    in_flight += 1
                dec_q.append((index, cycle + post_decode, rob_rec))
                front_head += 1
                decoded += 1
            if front_head > 4 * front_capacity:
                del front_q[:front_head]
                front_head = 0

            # ---- commit (in order, width per cycle) -------------------------
            commits = 0
            while commits < width and rob_head < len(rob):
                done = rob[rob_head][2]
                if done is None or done + back_end > cycle:
                    break
                old_preg = rob[rob_head][1]
                if old_preg >= 0:
                    free_pregs.append(old_preg)
                rob_head += 1
                in_flight -= 1
                committed += 1
                commits += 1
                last_commit = cycle
            if rob_head > 4 * rob_capacity:
                del rob[:rob_head]
                rob_head = 0

            # ---- issue (wakeup/select; execute+writeback are scheduled) -----
            # Memory ops traverse the queue in two passes, exactly like the
            # reference machine's RX path: an *agen* pass (needs only the
            # base register, ``agen_width`` per cycle) that schedules the
            # cache access and the load writeback, then an *execute* pass
            # (needs the remaining operand — e.g. store data — and a
            # ``width`` issue slot) once the cache returns.  In-order
            # machines keep both streams age-ordered but decoupled: a
            # waiting E-pass never blocks a younger op's agen, matching the
            # reference model's independent monotone agen/execute chains.
            exec_issued = 0
            agen_issued = 0
            agen_open = True
            exec_open = True
            removed = None
            for qi, entry in enumerate(iq):
                if entry[14] == 0:
                    # -- agen pass ------------------------------------------
                    if in_order and not agen_open:
                        continue
                    store = entry[2]
                    older_stores = entry[11]
                    s1p = entry[7]
                    k = entry[15]
                    blocked = (
                        agen_issued >= agen_width
                        or entry[12] > cycle
                        or (s1p >= 0 and ready_at[s1p] > cycle)
                        or (k >= agen_width and agen_cycles[k - agen_width] >= cycle)
                        or (
                            stores_agened != older_stores
                            if store
                            else stores_agened < older_stores
                        )
                    )
                    if blocked:
                        agen_open = False
                        if in_order:
                            exec_open = False  # its future E-pass orders later ops
                        continue
                    agen_issued += 1
                    agen_cycles[k] = cycle
                    occ_agenq += cycle - entry[12]
                    agen_done = cycle + agen_done_off
                    cache_start = cycle + off_cache_delta
                    if store:
                        stores_agened += 1
                        prev = store_agen_prefix[-1]
                        store_agen_prefix.append(
                            agen_done if agen_done > prev else prev
                        )
                    elif older_stores:
                        sfloor = store_agen_prefix[older_stores] + 1
                        if cache_start < sfloor:
                            cache_start = sfloor
                    dev = entry[6]
                    if dev:
                        dpen = dc_p if dev == 1 else dc_l2_p
                        slot_free = mshr_ring[mshr_i]
                        if cache_start < slot_free:
                            cache_start = slot_free
                        mshr_ring[mshr_i] = cache_start + dpen
                        mshr_i += 1
                        if mshr_i == mshr_n:
                            mshr_i = 0
                        cache_done = cache_start + cache_done_off + dpen
                    else:
                        cache_done = cache_start + cache_done_off
                    if entry[10] and entry[9] >= 0:
                        # Load data forwards at cache return, independently
                        # of the E-pass below.
                        ready_at[entry[9]] = cache_done + 1
                    if _dbg is not None:
                        _dbg.append(("A", entry[0], cycle, cache_done))
                    entry[14] = 1
                    entry[7] = -1  # base register consumed at agen
                    entry[12] = cache_done if merged else cache_done + 1
                    if in_order:
                        exec_open = False  # E-pass pending: younger ops wait
                    continue

                # -- execute pass -------------------------------------------
                if in_order and not exec_open:
                    continue
                if exec_issued >= width:
                    exec_open = False
                    continue
                fpc = entry[3]
                s1p = entry[7]
                s2p = entry[8]
                fpk = entry[16]
                blocked = (
                    entry[12] > cycle
                    or (s1p >= 0 and ready_at[s1p] > cycle)
                    or (s2p >= 0 and ready_at[s2p] > cycle)
                    or (fpc == 1 and fpk > 0 and fp_done[fpk - 1] >= cycle)
                    or (fpc == 2 and fpk > 0 and cx_done[fpk - 1] >= cycle)
                )
                if blocked:
                    exec_open = False
                    continue
                exec_issued += 1
                occ_execq += cycle - entry[12]
                dest_p = entry[9]
                if entry[1]:  # memory op: E-pass after cache return
                    done = cycle + exec_done_off
                    if dest_p >= 0 and not entry[10]:
                        # RX-ALU result forwards after the execute logic.
                        ready_at[dest_p] = cycle + alu_latency
                elif fpc:
                    done = cycle + entry[4] + fpc_done_off
                    if fpc == 1:
                        fp_done[fpk] = done
                    else:
                        cx_done[fpk] = done
                    if dest_p >= 0:
                        ready_at[dest_p] = done + 1
                else:
                    done = cycle + exec_done_off
                    if dest_p >= 0:
                        ready_at[dest_p] = cycle + alu_latency
                entry[13][2] = done
                if _dbg is not None:
                    _dbg.append(("E", entry[0], cycle, done))

                # -- branch resolution --------------------------------------
                if entry[5] == _EV_MISPREDICT:
                    resolved = cycle + resolve_latency
                    if resolved > fetch_floor:
                        fetch_floor = resolved
                    barrier = False

                if removed is None:
                    removed = set()
                removed.add(qi)
            if removed:
                iq = [e for qi, e in enumerate(iq) if qi not in removed]
            if exec_issued:
                issue_cycles += 1

            # ---- dispatch (program order, rename + queue insertion) ---------
            dispatched = 0
            while (
                dispatched < width
                and dec_head < len(dec_q)
                and len(iq) < iq_capacity
            ):
                index, ready, rob_rec = dec_q[dec_head]
                if ready > cycle:
                    break
                if rob_rec is None:
                    rob_rec = [-1, -1, None]
                    rob.append(rob_rec)
                    in_flight += 1
                (mem, s1, _s1x, s2, dest_alu, dest_load, fpc, fpx, store,
                 b, _fev, dev) = stream[index]
                s1p = rename_map[s1] if s1 >= 0 else -1
                s2p = rename_map[s2] if s2 >= 0 else -1
                dest_arch = dest_load if dest_load >= 0 else dest_alu
                if dest_arch >= 0:
                    dest_p = free_pregs.pop()
                    old_p = rename_map[dest_arch]
                    rename_map[dest_arch] = dest_p
                    ready_at[dest_p] = _NEVER
                else:
                    dest_p = -1
                    old_p = -1
                rob_rec[0] = dest_p
                rob_rec[1] = old_p
                # Queue-entry layout (mutable; the agen pass rewrites the
                # phase, floor and consumed-operand fields in place):
                #  0 index  1 mem    2 store  3 fpc    4 fp_extra
                #  5 branch_event    6 dc_event        7 src1_preg
                #  8 src2_preg       9 dest_preg      10 is_load
                # 11 older_stores   12 floor          13 rob_rec
                # 14 phase (0 = awaiting agen, 1 = awaiting execute)
                # 15 mem_ordinal (position among memory ops; agen port id)
                # 16 fpc_ordinal (position in the FP/complex unit chain)
                iq.append([
                    index, mem, store, fpc, fpx, b, dev, s1p, s2p, dest_p,
                    dest_load >= 0, stores_before[index], cycle + 1, rob_rec,
                    0 if mem else 1, mem_ordinal[index], fpc_ordinal[index],
                ])
                dec_head += 1
                dispatched += 1
            if dec_head > 4 * rob_capacity:
                del dec_q[:dec_head]
                dec_head = 0

            # ---- fetch + decode (program order, width per cycle) ------------
            fetched = 0
            while (
                fetch_ptr < n
                and fetched < width
                and not barrier
                and fetch_floor <= cycle
                and len(front_q) - front_head < front_capacity
            ):
                row = stream[fetch_ptr]
                fetch = cycle
                fev = row[10]
                if fev:
                    # The miss return completes this fetch late and blocks
                    # younger fetches until then.
                    fetch += ic_p if fev == 1 else ic_l2_p
                    fetch_floor = fetch
                b = row[9]
                if b == _EV_MISPREDICT:
                    # Wrong-path fetch: nothing younger enters the machine
                    # until this branch issues and resolves.
                    barrier = True
                elif b == _EV_BTB_STALL:
                    # Taken branch with an unknown target: the front end
                    # refills once the target is computed at decode/rename.
                    refill = fetch + btb_refill
                    if refill > fetch_floor:
                        fetch_floor = refill
                front_q.append((fetch_ptr, fetch + fetch_stages))
                fetch_ptr += 1
                fetched += 1

        return (
            last_commit + 1,
            issue_cycles,
            occ_agenq + events.memory_ops,
            occ_execq + n,
        )


def simulate_cycle(
    trace: Trace, depth: "int | StagePlan", config: "MachineConfig | None" = None
) -> SimulationResult:
    """Module-level convenience wrapper around :class:`CyclePipelineSimulator`."""
    return CyclePipelineSimulator(config).simulate(trace, depth)
