"""Runtime-compiled C timing kernel backing the batched backend.

The batched backend's promise — price every depth of a sweep in one walk
of the event stream — cannot be kept *fast* in pure Python: with ~20
depth lanes, per-instruction NumPy operations over ``(D,)`` vectors cost
as much as the existing per-depth scalar loops.  The recurrences are
trivially expressible in C, however, and every supported platform for
this project ships a C compiler, so this module embeds an exact C
transcription of the two timing loops in
:mod:`repro.pipeline.fastsim` (``_run_in_order`` / ``_run_out_of_order``)
with the scalar state widened to one lane per requested depth, compiles
it on first use with the system compiler, and loads it through
:mod:`ctypes` (stdlib only — no build-time or runtime dependencies).

Compiled artefacts are content-addressed by the SHA-256 of the C source,
so editing the kernel invalidates stale shared objects by construction;
they are stored under ``$REPRO_KERNEL_DIR``, then
``$XDG_CACHE_HOME/repro/kernel``, falling back to
``~/.cache/repro/kernel``.  Set ``REPRO_KERNEL=off`` to disable
compilation entirely (the batched backend then falls back to the fast
backend's per-depth scalar loops — identical results, no speedup).

Everything degrades gracefully: no compiler, a failed compile or a failed
load all yield ``batched_kernel() is None`` and a single logged warning.
The kernel is bit-for-bit equivalent to the Python loops; the equivalence
is enforced by ``repro validate-kernel`` and the cross-backend property
test.
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import pathlib
import shutil
import subprocess
import tempfile

import numpy as np

__all__ = [
    "BatchedKernel",
    "batched_kernel",
    "kernel_enabled",
    "kernel_dir",
    "kernel_openmp_enabled",
    "kernel_threads",
]

logger = logging.getLogger("repro.pipeline.ckernel")

# Constant-row layout shared by both entry points: one row of NCONST
# int64s per depth lane, assembled by repro.pipeline.batched from
# DepthConstants (with the out-of-order rename-stage offsets pre-applied).
NCONST = 18
(C_FETCH_STAGES, C_OFF_AGEN, C_OFF_CACHE_DELTA, C_OFF_EXEC_RR,
 C_AGEN_DONE_OFF, C_CACHE_DONE_OFF, C_FPC_DONE_OFF, C_ALU_LATENCY,
 C_RESOLVE_LATENCY, C_MERGED, C_RETIRE_OFF, C_MISP_OFF, C_BTB_OFF,
 C_TARGET_DELAY, C_IC_P, C_IC_L2_P, C_DC_P, C_DC_L2_P) = range(NCONST)

# Per-job descriptor row used by the suite entry point: one row of
# JM_FIELDS int64s per job in the ragged batch, assembled by
# repro.pipeline.suite.
JM_FIELDS = 9
(JM_OFFSET, JM_N, JM_WIDTH, JM_AGEN_WIDTH, JM_MSHR, JM_WINDOW,
 JM_ROB, JM_IN_ORDER, JM_MEMORY_OPS) = range(JM_FIELDS)

_SOURCE = r"""
/* Depth-batched pipeline timing recurrences.
 *
 * Exact C transcriptions of repro.pipeline.fastsim._run_in_order and
 * _run_out_of_order, with every scalar state variable widened to one
 * lane per requested depth.  The event stream is walked ONCE; the inner
 * loop updates all D lanes from the same per-instruction event tuple.
 * Any behavioural difference from the Python loops is a bug caught by
 * `repro validate-kernel`.
 */
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#ifdef _OPENMP
#include <omp.h>
#endif

typedef long long i64;

#define NCONST 18
enum {
    C_FETCH_STAGES = 0, C_OFF_AGEN, C_OFF_CACHE_DELTA, C_OFF_EXEC_RR,
    C_AGEN_DONE_OFF, C_CACHE_DONE_OFF, C_FPC_DONE_OFF, C_ALU_LATENCY,
    C_RESOLVE_LATENCY, C_MERGED, C_RETIRE_OFF, C_MISP_OFF, C_BTB_OFF,
    C_TARGET_DELAY, C_IC_P, C_IC_L2_P, C_DC_P, C_DC_L2_P
};

/* Column-row indices in the (12, n) TraceEvents matrix. */
enum {
    COL_MEM = 0, COL_SRC1, COL_EXEC_SRC1, COL_SRC2, COL_DEST_ALU,
    COL_DEST_LOAD, COL_FPC, COL_FP_EXTRA, COL_STORE, COL_BRANCH_EVENT,
    COL_IC_EVENT, COL_DC_EVENT
};

#define EV_MISPREDICT 1

/* Per-lane scalar state slots (in-order). */
enum {
    S_LAST_DECODE = 0, S_DECODE_N, S_LAST_EXEC, S_EXEC_N, S_LAST_AGEN,
    S_AGEN_N, S_LAST_RETIRE, S_RETIRE_N, S_REDIRECT, S_FP_FREE, S_CX_FREE,
    S_MM, S_ISSUE_CYCLES, S_LAST_ISSUE, S_OCC_AGENQ, S_OCC_EXECQ,
    S_NSLOTS
};

int run_in_order_batched(
    const int32_t *cols, i64 n, i64 lanes, const i64 *cons,
    i64 width, i64 agen_width, i64 mshr_n, i64 nregs,
    i64 memory_ops, i64 *out)
{
    i64 *ready1 = (i64 *)malloc((size_t)(lanes * nregs) * sizeof(i64));
    i64 *mshr = (i64 *)malloc((size_t)(lanes * mshr_n) * sizeof(i64));
    i64 *st = (i64 *)malloc((size_t)(lanes * S_NSLOTS) * sizeof(i64));
    if (!ready1 || !mshr || !st) {
        free(ready1); free(mshr); free(st);
        return -1;
    }
    for (i64 k = 0; k < lanes * nregs; k++) ready1[k] = 1;
    memset(mshr, 0, (size_t)(lanes * mshr_n) * sizeof(i64));
    memset(st, 0, (size_t)(lanes * S_NSLOTS) * sizeof(i64));
    for (i64 d = 0; d < lanes; d++) {
        i64 fetch_stages = cons[d * NCONST + C_FETCH_STAGES];
        st[d * S_NSLOTS + S_LAST_DECODE] = fetch_stages;
        st[d * S_NSLOTS + S_REDIRECT] = fetch_stages;
        st[d * S_NSLOTS + S_LAST_ISSUE] = -1;
    }

    const int32_t *c_mem = cols + (i64)COL_MEM * n;
    const int32_t *c_s1 = cols + (i64)COL_SRC1 * n;
    const int32_t *c_s1x = cols + (i64)COL_EXEC_SRC1 * n;
    const int32_t *c_s2 = cols + (i64)COL_SRC2 * n;
    const int32_t *c_da = cols + (i64)COL_DEST_ALU * n;
    const int32_t *c_dl = cols + (i64)COL_DEST_LOAD * n;
    const int32_t *c_fpc = cols + (i64)COL_FPC * n;
    const int32_t *c_fpx = cols + (i64)COL_FP_EXTRA * n;
    const int32_t *c_b = cols + (i64)COL_BRANCH_EVENT * n;
    const int32_t *c_fev = cols + (i64)COL_IC_EVENT * n;
    const int32_t *c_dev = cols + (i64)COL_DC_EVENT * n;

    for (i64 i = 0; i < n; i++) {
        i64 mem = c_mem[i], s1 = c_s1[i], s1x = c_s1x[i], s2 = c_s2[i];
        i64 dest_alu = c_da[i], dest_load = c_dl[i];
        i64 fpc = c_fpc[i], fpx = c_fpx[i];
        i64 b = c_b[i], fev = c_fev[i], dev = c_dev[i];

        for (i64 d = 0; d < lanes; d++) {
            const i64 *cc = cons + d * NCONST;
            i64 *s = st + d * S_NSLOTS;
            i64 *rd = ready1 + d * nregs;
            i64 *mr = mshr + d * mshr_n;

            /* ---- fetch + decode (fused) ---- */
            i64 decode;
            if (s[S_REDIRECT] > s[S_LAST_DECODE]) {
                decode = s[S_REDIRECT];
                s[S_DECODE_N] = 1;
            } else if (s[S_DECODE_N] < width) {
                decode = s[S_LAST_DECODE];
                s[S_DECODE_N] += 1;
            } else {
                decode = s[S_LAST_DECODE] + 1;
                s[S_DECODE_N] = 1;
            }
            if (fev) {
                decode += (fev == 1) ? cc[C_IC_P] : cc[C_IC_L2_P];
                s[S_DECODE_N] = 1;
            }
            s[S_LAST_DECODE] = decode;

            /* ---- address generation + cache (RX path) ---- */
            i64 path_ready;
            if (mem) {
                i64 floor_ = decode + cc[C_OFF_AGEN];
                i64 agen = floor_;
                if (s1 >= 0 && rd[s1] > agen) agen = rd[s1];
                if (agen > s[S_LAST_AGEN]) {
                    s[S_AGEN_N] = 1;
                } else if (s[S_AGEN_N] < agen_width) {
                    agen = s[S_LAST_AGEN];
                    s[S_AGEN_N] += 1;
                } else {
                    agen = s[S_LAST_AGEN] + 1;
                    s[S_AGEN_N] = 1;
                }
                s[S_LAST_AGEN] = agen;
                if (agen > floor_) s[S_OCC_AGENQ] += agen - floor_;

                i64 cache_start = agen + cc[C_OFF_CACHE_DELTA];
                i64 cache_done;
                if (dev) {
                    i64 dpen = (dev == 1) ? cc[C_DC_P] : cc[C_DC_L2_P];
                    i64 slot_free = mr[s[S_MM]];
                    if (cache_start < slot_free) cache_start = slot_free;
                    mr[s[S_MM]] = cache_start + dpen;
                    s[S_MM] += 1;
                    if (s[S_MM] == mshr_n) s[S_MM] = 0;
                    cache_done = cache_start + cc[C_CACHE_DONE_OFF] + dpen;
                } else {
                    cache_done = cache_start + cc[C_CACHE_DONE_OFF];
                }
                path_ready = cc[C_MERGED] ? cache_done : cache_done + 1;
                if (dest_load >= 0) rd[dest_load] = cache_done + 1;
            } else {
                path_ready = decode + cc[C_OFF_EXEC_RR];
            }

            /* ---- execute issue (in-order, width-wide) ---- */
            i64 execute = path_ready;
            if (s1x >= 0 && rd[s1x] > execute) execute = rd[s1x];
            if (s2 >= 0 && rd[s2] > execute) execute = rd[s2];
            if (execute > s[S_LAST_EXEC]) {
                s[S_EXEC_N] = 1;
            } else if (s[S_EXEC_N] < width) {
                execute = s[S_LAST_EXEC];
                s[S_EXEC_N] += 1;
            } else {
                execute = s[S_LAST_EXEC] + 1;
                s[S_EXEC_N] = 1;
            }
            s[S_LAST_EXEC] = execute;

            i64 retire;
            if (fpc) {
                i64 exec_done;
                if (fpc == 1) {
                    if (execute < s[S_FP_FREE]) {
                        execute = s[S_FP_FREE];
                        s[S_LAST_EXEC] = execute;
                        s[S_EXEC_N] = 1;
                    }
                    exec_done = execute + fpx + cc[C_FPC_DONE_OFF];
                    s[S_FP_FREE] = exec_done + 1;
                } else {
                    if (execute < s[S_CX_FREE]) {
                        execute = s[S_CX_FREE];
                        s[S_LAST_EXEC] = execute;
                        s[S_EXEC_N] = 1;
                    }
                    exec_done = execute + fpx + cc[C_FPC_DONE_OFF];
                    s[S_CX_FREE] = exec_done + 1;
                }
                if (dest_alu >= 0) rd[dest_alu] = exec_done + 1;
                /* back_end == RETIRE_OFF - (exec_latency - 1)
                             == RETIRE_OFF - (FPC_DONE_OFF + 1) */
                retire = exec_done + (cc[C_RETIRE_OFF] - (cc[C_FPC_DONE_OFF] + 1));
            } else {
                if (dest_alu >= 0) rd[dest_alu] = execute + cc[C_ALU_LATENCY];
                retire = execute + cc[C_RETIRE_OFF];
            }

            if (execute > path_ready) s[S_OCC_EXECQ] += execute - path_ready;
            if (execute != s[S_LAST_ISSUE]) {
                s[S_ISSUE_CYCLES] += 1;
                s[S_LAST_ISSUE] = execute;
            }

            /* ---- branch resolution ---- */
            if (b) {
                if (b == EV_MISPREDICT) {
                    i64 resolved = execute + cc[C_MISP_OFF];
                    if (resolved > s[S_REDIRECT]) s[S_REDIRECT] = resolved;
                } else {
                    i64 target_known = decode + cc[C_BTB_OFF];
                    if (target_known > s[S_REDIRECT]) s[S_REDIRECT] = target_known;
                }
            }

            /* ---- completion / retire ---- */
            if (retire > s[S_LAST_RETIRE]) {
                s[S_LAST_RETIRE] = retire;
                s[S_RETIRE_N] = 1;
            } else if (s[S_RETIRE_N] < width) {
                s[S_RETIRE_N] += 1;
            } else {
                s[S_LAST_RETIRE] += 1;
                s[S_RETIRE_N] = 1;
            }
        }
    }

    for (i64 d = 0; d < lanes; d++) {
        i64 *s = st + d * S_NSLOTS;
        out[d * 4 + 0] = s[S_LAST_RETIRE] + 1;
        out[d * 4 + 1] = s[S_ISSUE_CYCLES];
        out[d * 4 + 2] = s[S_OCC_AGENQ] + memory_ops;
        out[d * 4 + 3] = s[S_OCC_EXECQ] + n;
    }
    free(ready1); free(mshr); free(st);
    return 0;
}

/* Per-lane scalar state slots (out-of-order). */
enum {
    T_LAST_FETCH = 0, T_FETCH_N, T_LAST_DECODE, T_DECODE_N, T_LAST_RETIRE,
    T_RETIRE_N, T_REDIRECT, T_FP_FREE, T_CX_FREE, T_MM, T_AM, T_WI, T_RI,
    T_LAST_STORE_AGEN, T_OCC_AGENQ, T_OCC_EXECQ, T_ISSUE_CYCLES,
    T_NSLOTS
};

int run_out_of_order_batched(
    const int32_t *cols, i64 n, i64 lanes, const i64 *cons,
    i64 width, i64 agen_width, i64 mshr_n, i64 window, i64 rob,
    i64 nregs, i64 memory_ops, i64 *out)
{
    i64 *ready1 = (i64 *)malloc((size_t)(lanes * nregs) * sizeof(i64));
    i64 *mshr = (i64 *)malloc((size_t)(lanes * mshr_n) * sizeof(i64));
    i64 *agen_ring = (i64 *)malloc((size_t)(lanes * agen_width) * sizeof(i64));
    i64 *issue_ring = (i64 *)malloc((size_t)(lanes * window) * sizeof(i64));
    i64 *retire_rob = (i64 *)malloc((size_t)(lanes * rob) * sizeof(i64));
    i64 *st = (i64 *)malloc((size_t)(lanes * T_NSLOTS) * sizeof(i64));
    uint8_t **slots = (uint8_t **)calloc((size_t)lanes, sizeof(uint8_t *));
    i64 *caps = (i64 *)calloc((size_t)lanes, sizeof(i64));
    int rc = 0;
    if (!ready1 || !mshr || !agen_ring || !issue_ring || !retire_rob ||
        !st || !slots || !caps) {
        rc = -1;
        goto done;
    }
    for (i64 k = 0; k < lanes * nregs; k++) ready1[k] = 1;
    memset(mshr, 0, (size_t)(lanes * mshr_n) * sizeof(i64));
    for (i64 k = 0; k < lanes * agen_width; k++) agen_ring[k] = -1;
    for (i64 k = 0; k < lanes * window; k++) issue_ring[k] = -1;
    for (i64 k = 0; k < lanes * rob; k++) retire_rob[k] = -1;
    memset(st, 0, (size_t)(lanes * T_NSLOTS) * sizeof(i64));

    const int32_t *c_mem = cols + (i64)COL_MEM * n;
    const int32_t *c_s1 = cols + (i64)COL_SRC1 * n;
    const int32_t *c_s1x = cols + (i64)COL_EXEC_SRC1 * n;
    const int32_t *c_s2 = cols + (i64)COL_SRC2 * n;
    const int32_t *c_da = cols + (i64)COL_DEST_ALU * n;
    const int32_t *c_dl = cols + (i64)COL_DEST_LOAD * n;
    const int32_t *c_fpc = cols + (i64)COL_FPC * n;
    const int32_t *c_fpx = cols + (i64)COL_FP_EXTRA * n;
    const int32_t *c_st = cols + (i64)COL_STORE * n;
    const int32_t *c_b = cols + (i64)COL_BRANCH_EVENT * n;
    const int32_t *c_fev = cols + (i64)COL_IC_EVENT * n;
    const int32_t *c_dev = cols + (i64)COL_DC_EVENT * n;

    for (i64 i = 0; i < n; i++) {
        i64 mem = c_mem[i], s1 = c_s1[i], s1x = c_s1x[i], s2 = c_s2[i];
        i64 dest_alu = c_da[i], dest_load = c_dl[i];
        i64 fpc = c_fpc[i], fpx = c_fpx[i], is_store = c_st[i];
        i64 b = c_b[i], fev = c_fev[i], dev = c_dev[i];

        for (i64 d = 0; d < lanes; d++) {
            const i64 *cc = cons + d * NCONST;
            i64 *s = st + d * T_NSLOTS;
            i64 *rd = ready1 + d * nregs;
            i64 *mr = mshr + d * mshr_n;
            i64 *ar = agen_ring + d * agen_width;
            i64 *ir = issue_ring + d * window;
            i64 *rr = retire_rob + d * rob;

            /* ---- fetch (in order) ---- */
            i64 fetch;
            if (s[T_REDIRECT] > s[T_LAST_FETCH]) {
                fetch = s[T_REDIRECT];
                s[T_FETCH_N] = 1;
            } else if (s[T_FETCH_N] < width) {
                fetch = s[T_LAST_FETCH];
                s[T_FETCH_N] += 1;
            } else {
                fetch = s[T_LAST_FETCH] + 1;
                s[T_FETCH_N] = 1;
            }
            if (fev) {
                fetch += (fev == 1) ? cc[C_IC_P] : cc[C_IC_L2_P];
                s[T_FETCH_N] = 1;
            }
            s[T_LAST_FETCH] = fetch;

            /* ---- decode + rename (in order, ROB backpressure) ---- */
            i64 decode = fetch + cc[C_FETCH_STAGES];
            if (decode < s[T_LAST_DECODE]) decode = s[T_LAST_DECODE];
            i64 rob_slot = rr[s[T_RI]];
            if (rob_slot >= decode) decode = rob_slot + 1;
            if (decode > s[T_LAST_DECODE]) {
                s[T_DECODE_N] = 1;
            } else if (s[T_DECODE_N] < width) {
                s[T_DECODE_N] += 1;
            } else {
                decode += 1;
                s[T_DECODE_N] = 1;
            }
            s[T_LAST_DECODE] = decode;

            /* ---- address generation + cache ---- */
            i64 path_ready;
            if (mem) {
                i64 floor_ = decode + cc[C_OFF_AGEN];
                i64 agen = floor_;
                if (s1 >= 0 && rd[s1] > agen) agen = rd[s1];
                i64 slot = ar[s[T_AM]];
                if (slot >= agen) agen = slot + 1;
                ar[s[T_AM]] = agen;
                s[T_AM] += 1;
                if (s[T_AM] == agen_width) s[T_AM] = 0;
                if (agen > floor_) s[T_OCC_AGENQ] += agen - floor_;

                i64 cache_start = agen + cc[C_OFF_CACHE_DELTA];
                if (is_store) {
                    i64 agen_done = agen + cc[C_AGEN_DONE_OFF];
                    if (agen_done > s[T_LAST_STORE_AGEN])
                        s[T_LAST_STORE_AGEN] = agen_done;
                } else if (cache_start <= s[T_LAST_STORE_AGEN]) {
                    /* conservative load/store disambiguation */
                    cache_start = s[T_LAST_STORE_AGEN] + 1;
                }
                i64 cache_done;
                if (dev) {
                    i64 dpen = (dev == 1) ? cc[C_DC_P] : cc[C_DC_L2_P];
                    i64 slot_free = mr[s[T_MM]];
                    if (cache_start < slot_free) cache_start = slot_free;
                    mr[s[T_MM]] = cache_start + dpen;
                    s[T_MM] += 1;
                    if (s[T_MM] == mshr_n) s[T_MM] = 0;
                    cache_done = cache_start + cc[C_CACHE_DONE_OFF] + dpen;
                } else {
                    cache_done = cache_start + cc[C_CACHE_DONE_OFF];
                }
                path_ready = cc[C_MERGED] ? cache_done : cache_done + 1;
                if (dest_load >= 0) rd[dest_load] = cache_done + 1;
            } else {
                path_ready = decode + cc[C_OFF_EXEC_RR];
            }

            /* ---- out-of-order issue ---- */
            i64 execute = path_ready;
            i64 window_slot = ir[s[T_WI]];
            if (window_slot >= execute) execute = window_slot + 1;
            if (s1x >= 0 && rd[s1x] > execute) execute = rd[s1x];
            if (s2 >= 0 && rd[s2] > execute) execute = rd[s2];
            if (fpc) {
                if (fpc == 1) {
                    if (execute < s[T_FP_FREE]) execute = s[T_FP_FREE];
                } else if (execute < s[T_CX_FREE]) {
                    execute = s[T_CX_FREE];
                }
            }
            /* issue bandwidth: per-cycle slot counts, grown on demand */
            if (execute >= caps[d]) {
                i64 new_cap = caps[d] ? caps[d] : 4096;
                while (execute >= new_cap) new_cap *= 2;
                uint8_t *grown = (uint8_t *)realloc(slots[d], (size_t)new_cap);
                if (!grown) { rc = -1; goto done; }
                memset(grown + caps[d], 0, (size_t)(new_cap - caps[d]));
                slots[d] = grown;
                caps[d] = new_cap;
            }
            while (slots[d][execute] >= width) {
                execute += 1;
                if (execute >= caps[d]) {
                    i64 new_cap = caps[d] * 2;
                    uint8_t *grown = (uint8_t *)realloc(slots[d], (size_t)new_cap);
                    if (!grown) { rc = -1; goto done; }
                    memset(grown + caps[d], 0, (size_t)(new_cap - caps[d]));
                    slots[d] = grown;
                    caps[d] = new_cap;
                }
            }
            if (slots[d][execute] == 0) s[T_ISSUE_CYCLES] += 1;
            slots[d][execute] += 1;
            ir[s[T_WI]] = execute;
            s[T_WI] += 1;
            if (s[T_WI] == window) s[T_WI] = 0;

            i64 retire;
            if (fpc) {
                i64 exec_done = execute + fpx + cc[C_FPC_DONE_OFF];
                if (fpc == 1) {
                    s[T_FP_FREE] = exec_done + 1;
                } else {
                    s[T_CX_FREE] = exec_done + 1;
                }
                if (dest_alu >= 0) rd[dest_alu] = exec_done + 1;
                /* back_end == RETIRE_OFF - (FPC_DONE_OFF + 1); see above */
                retire = exec_done + (cc[C_RETIRE_OFF] - (cc[C_FPC_DONE_OFF] + 1));
            } else {
                if (dest_alu >= 0) rd[dest_alu] = execute + cc[C_ALU_LATENCY];
                retire = execute + cc[C_RETIRE_OFF];
            }
            if (execute > path_ready) s[T_OCC_EXECQ] += execute - path_ready;

            /* ---- branch resolution ---- */
            if (b) {
                if (b == EV_MISPREDICT) {
                    i64 resolved = execute + cc[C_RESOLVE_LATENCY];
                    if (resolved > s[T_REDIRECT]) s[T_REDIRECT] = resolved;
                } else {
                    i64 target_known = decode + cc[C_TARGET_DELAY];
                    if (target_known > s[T_REDIRECT]) s[T_REDIRECT] = target_known;
                }
            }

            /* ---- in-order retirement ---- */
            if (retire > s[T_LAST_RETIRE]) {
                s[T_LAST_RETIRE] = retire;
                s[T_RETIRE_N] = 1;
            } else if (s[T_RETIRE_N] < width) {
                s[T_RETIRE_N] += 1;
            } else {
                s[T_LAST_RETIRE] += 1;
                s[T_RETIRE_N] = 1;
            }
            rr[s[T_RI]] = s[T_LAST_RETIRE];
            s[T_RI] += 1;
            if (s[T_RI] == rob) s[T_RI] = 0;
        }
    }

    for (i64 d = 0; d < lanes; d++) {
        i64 *s = st + d * T_NSLOTS;
        out[d * 4 + 0] = s[T_LAST_RETIRE] + 1;
        out[d * 4 + 1] = s[T_ISSUE_CYCLES];
        out[d * 4 + 2] = s[T_OCC_AGENQ] + memory_ops;
        out[d * 4 + 3] = s[T_OCC_EXECQ] + n;
    }

done:
    free(ready1); free(mshr); free(agen_ring); free(issue_ring);
    free(retire_rob); free(st);
    if (slots) {
        for (i64 d = 0; d < lanes; d++) free(slots[d]);
        free(slots);
    }
    free(caps);
    return rc;
}

/* ---- suite batch: the whole (trace x machine x depth) grid ------------- *
 *
 * One ragged tensor holds every job's TraceEvents columns side by side
 * (row stride = total instruction count); each flattened (job, depth)
 * lane walks only its job's slice with fully scalar state, so lanes are
 * independent and the grid parallelises with one `omp parallel for`.
 * The scalar bodies are the lanes==1 specialisation of the batched
 * entry points above — identical arithmetic in identical order, which
 * is what keeps suite results bit-identical to batched.
 */

/* Per-job descriptor row (int64). */
enum {
    JM_OFFSET = 0, JM_N, JM_WIDTH, JM_AGEN_WIDTH, JM_MSHR, JM_WINDOW,
    JM_ROB, JM_IN_ORDER, JM_MEMORY_OPS, JM_FIELDS
};

static int suite_lane_in_order(
    const int32_t *cols, i64 stride, i64 off, i64 n, const i64 *cc,
    i64 width, i64 agen_width, i64 mshr_n, i64 nregs, i64 memory_ops,
    i64 *out4)
{
    i64 *ready1 = (i64 *)malloc((size_t)nregs * sizeof(i64));
    i64 *mshr = (i64 *)calloc((size_t)mshr_n, sizeof(i64));
    if (!ready1 || !mshr) {
        free(ready1); free(mshr);
        return -1;
    }
    for (i64 k = 0; k < nregs; k++) ready1[k] = 1;

    i64 last_decode = cc[C_FETCH_STAGES], decode_n = 0;
    i64 last_exec = 0, exec_n = 0;
    i64 last_agen = 0, agen_n = 0;
    i64 last_retire = 0, retire_n = 0;
    i64 redirect = cc[C_FETCH_STAGES];
    i64 fp_free = 0, cx_free = 0, mm = 0;
    i64 issue_cycles = 0, last_issue = -1;
    i64 occ_agenq = 0, occ_execq = 0;

    const int32_t *c_mem = cols + (i64)COL_MEM * stride + off;
    const int32_t *c_s1 = cols + (i64)COL_SRC1 * stride + off;
    const int32_t *c_s1x = cols + (i64)COL_EXEC_SRC1 * stride + off;
    const int32_t *c_s2 = cols + (i64)COL_SRC2 * stride + off;
    const int32_t *c_da = cols + (i64)COL_DEST_ALU * stride + off;
    const int32_t *c_dl = cols + (i64)COL_DEST_LOAD * stride + off;
    const int32_t *c_fpc = cols + (i64)COL_FPC * stride + off;
    const int32_t *c_fpx = cols + (i64)COL_FP_EXTRA * stride + off;
    const int32_t *c_b = cols + (i64)COL_BRANCH_EVENT * stride + off;
    const int32_t *c_fev = cols + (i64)COL_IC_EVENT * stride + off;
    const int32_t *c_dev = cols + (i64)COL_DC_EVENT * stride + off;

    for (i64 i = 0; i < n; i++) {
        i64 mem = c_mem[i], s1 = c_s1[i], s1x = c_s1x[i], s2 = c_s2[i];
        i64 dest_alu = c_da[i], dest_load = c_dl[i];
        i64 fpc = c_fpc[i], fpx = c_fpx[i];
        i64 b = c_b[i], fev = c_fev[i], dev = c_dev[i];

        /* ---- fetch + decode (fused) ---- */
        i64 decode;
        if (redirect > last_decode) {
            decode = redirect;
            decode_n = 1;
        } else if (decode_n < width) {
            decode = last_decode;
            decode_n += 1;
        } else {
            decode = last_decode + 1;
            decode_n = 1;
        }
        if (fev) {
            decode += (fev == 1) ? cc[C_IC_P] : cc[C_IC_L2_P];
            decode_n = 1;
        }
        last_decode = decode;

        /* ---- address generation + cache (RX path) ---- */
        i64 path_ready;
        if (mem) {
            i64 floor_ = decode + cc[C_OFF_AGEN];
            i64 agen = floor_;
            if (s1 >= 0 && ready1[s1] > agen) agen = ready1[s1];
            if (agen > last_agen) {
                agen_n = 1;
            } else if (agen_n < agen_width) {
                agen = last_agen;
                agen_n += 1;
            } else {
                agen = last_agen + 1;
                agen_n = 1;
            }
            last_agen = agen;
            if (agen > floor_) occ_agenq += agen - floor_;

            i64 cache_start = agen + cc[C_OFF_CACHE_DELTA];
            i64 cache_done;
            if (dev) {
                i64 dpen = (dev == 1) ? cc[C_DC_P] : cc[C_DC_L2_P];
                i64 slot_free = mshr[mm];
                if (cache_start < slot_free) cache_start = slot_free;
                mshr[mm] = cache_start + dpen;
                mm += 1;
                if (mm == mshr_n) mm = 0;
                cache_done = cache_start + cc[C_CACHE_DONE_OFF] + dpen;
            } else {
                cache_done = cache_start + cc[C_CACHE_DONE_OFF];
            }
            path_ready = cc[C_MERGED] ? cache_done : cache_done + 1;
            if (dest_load >= 0) ready1[dest_load] = cache_done + 1;
        } else {
            path_ready = decode + cc[C_OFF_EXEC_RR];
        }

        /* ---- execute issue (in-order, width-wide) ---- */
        i64 execute = path_ready;
        if (s1x >= 0 && ready1[s1x] > execute) execute = ready1[s1x];
        if (s2 >= 0 && ready1[s2] > execute) execute = ready1[s2];
        if (execute > last_exec) {
            exec_n = 1;
        } else if (exec_n < width) {
            execute = last_exec;
            exec_n += 1;
        } else {
            execute = last_exec + 1;
            exec_n = 1;
        }
        last_exec = execute;

        i64 retire;
        if (fpc) {
            i64 exec_done;
            if (fpc == 1) {
                if (execute < fp_free) {
                    execute = fp_free;
                    last_exec = execute;
                    exec_n = 1;
                }
                exec_done = execute + fpx + cc[C_FPC_DONE_OFF];
                fp_free = exec_done + 1;
            } else {
                if (execute < cx_free) {
                    execute = cx_free;
                    last_exec = execute;
                    exec_n = 1;
                }
                exec_done = execute + fpx + cc[C_FPC_DONE_OFF];
                cx_free = exec_done + 1;
            }
            if (dest_alu >= 0) ready1[dest_alu] = exec_done + 1;
            /* back_end == RETIRE_OFF - (FPC_DONE_OFF + 1); see above */
            retire = exec_done + (cc[C_RETIRE_OFF] - (cc[C_FPC_DONE_OFF] + 1));
        } else {
            if (dest_alu >= 0) ready1[dest_alu] = execute + cc[C_ALU_LATENCY];
            retire = execute + cc[C_RETIRE_OFF];
        }

        if (execute > path_ready) occ_execq += execute - path_ready;
        if (execute != last_issue) {
            issue_cycles += 1;
            last_issue = execute;
        }

        /* ---- branch resolution ---- */
        if (b) {
            if (b == EV_MISPREDICT) {
                i64 resolved = execute + cc[C_MISP_OFF];
                if (resolved > redirect) redirect = resolved;
            } else {
                i64 target_known = decode + cc[C_BTB_OFF];
                if (target_known > redirect) redirect = target_known;
            }
        }

        /* ---- completion / retire ---- */
        if (retire > last_retire) {
            last_retire = retire;
            retire_n = 1;
        } else if (retire_n < width) {
            retire_n += 1;
        } else {
            last_retire += 1;
            retire_n = 1;
        }
    }

    out4[0] = last_retire + 1;
    out4[1] = issue_cycles;
    out4[2] = occ_agenq + memory_ops;
    out4[3] = occ_execq + n;
    free(ready1); free(mshr);
    return 0;
}

static int suite_lane_out_of_order(
    const int32_t *cols, i64 stride, i64 off, i64 n, const i64 *cc,
    i64 width, i64 agen_width, i64 mshr_n, i64 window, i64 rob,
    i64 nregs, i64 memory_ops, i64 *out4)
{
    i64 *ready1 = (i64 *)malloc((size_t)nregs * sizeof(i64));
    i64 *mshr = (i64 *)calloc((size_t)mshr_n, sizeof(i64));
    i64 *agen_ring = (i64 *)malloc((size_t)agen_width * sizeof(i64));
    i64 *issue_ring = (i64 *)malloc((size_t)window * sizeof(i64));
    i64 *retire_rob = (i64 *)malloc((size_t)rob * sizeof(i64));
    uint8_t *slots = NULL;
    i64 cap = 0;
    int rc = 0;
    if (!ready1 || !mshr || !agen_ring || !issue_ring || !retire_rob) {
        rc = -1;
        goto done;
    }
    for (i64 k = 0; k < nregs; k++) ready1[k] = 1;
    for (i64 k = 0; k < agen_width; k++) agen_ring[k] = -1;
    for (i64 k = 0; k < window; k++) issue_ring[k] = -1;
    for (i64 k = 0; k < rob; k++) retire_rob[k] = -1;

    i64 last_fetch = 0, fetch_n = 0;
    i64 last_decode = 0, decode_n = 0;
    i64 last_retire = 0, retire_n = 0;
    i64 redirect = 0, fp_free = 0, cx_free = 0;
    i64 mm = 0, am = 0, wi = 0, ri = 0;
    i64 last_store_agen = 0;
    i64 occ_agenq = 0, occ_execq = 0, issue_cycles = 0;

    const int32_t *c_mem = cols + (i64)COL_MEM * stride + off;
    const int32_t *c_s1 = cols + (i64)COL_SRC1 * stride + off;
    const int32_t *c_s1x = cols + (i64)COL_EXEC_SRC1 * stride + off;
    const int32_t *c_s2 = cols + (i64)COL_SRC2 * stride + off;
    const int32_t *c_da = cols + (i64)COL_DEST_ALU * stride + off;
    const int32_t *c_dl = cols + (i64)COL_DEST_LOAD * stride + off;
    const int32_t *c_fpc = cols + (i64)COL_FPC * stride + off;
    const int32_t *c_fpx = cols + (i64)COL_FP_EXTRA * stride + off;
    const int32_t *c_st = cols + (i64)COL_STORE * stride + off;
    const int32_t *c_b = cols + (i64)COL_BRANCH_EVENT * stride + off;
    const int32_t *c_fev = cols + (i64)COL_IC_EVENT * stride + off;
    const int32_t *c_dev = cols + (i64)COL_DC_EVENT * stride + off;

    for (i64 i = 0; i < n; i++) {
        i64 mem = c_mem[i], s1 = c_s1[i], s1x = c_s1x[i], s2 = c_s2[i];
        i64 dest_alu = c_da[i], dest_load = c_dl[i];
        i64 fpc = c_fpc[i], fpx = c_fpx[i], is_store = c_st[i];
        i64 b = c_b[i], fev = c_fev[i], dev = c_dev[i];

        /* ---- fetch (in order) ---- */
        i64 fetch;
        if (redirect > last_fetch) {
            fetch = redirect;
            fetch_n = 1;
        } else if (fetch_n < width) {
            fetch = last_fetch;
            fetch_n += 1;
        } else {
            fetch = last_fetch + 1;
            fetch_n = 1;
        }
        if (fev) {
            fetch += (fev == 1) ? cc[C_IC_P] : cc[C_IC_L2_P];
            fetch_n = 1;
        }
        last_fetch = fetch;

        /* ---- decode + rename (in order, ROB backpressure) ---- */
        i64 decode = fetch + cc[C_FETCH_STAGES];
        if (decode < last_decode) decode = last_decode;
        i64 rob_slot = retire_rob[ri];
        if (rob_slot >= decode) decode = rob_slot + 1;
        if (decode > last_decode) {
            decode_n = 1;
        } else if (decode_n < width) {
            decode_n += 1;
        } else {
            decode += 1;
            decode_n = 1;
        }
        last_decode = decode;

        /* ---- address generation + cache ---- */
        i64 path_ready;
        if (mem) {
            i64 floor_ = decode + cc[C_OFF_AGEN];
            i64 agen = floor_;
            if (s1 >= 0 && ready1[s1] > agen) agen = ready1[s1];
            i64 slot = agen_ring[am];
            if (slot >= agen) agen = slot + 1;
            agen_ring[am] = agen;
            am += 1;
            if (am == agen_width) am = 0;
            if (agen > floor_) occ_agenq += agen - floor_;

            i64 cache_start = agen + cc[C_OFF_CACHE_DELTA];
            if (is_store) {
                i64 agen_done = agen + cc[C_AGEN_DONE_OFF];
                if (agen_done > last_store_agen)
                    last_store_agen = agen_done;
            } else if (cache_start <= last_store_agen) {
                /* conservative load/store disambiguation */
                cache_start = last_store_agen + 1;
            }
            i64 cache_done;
            if (dev) {
                i64 dpen = (dev == 1) ? cc[C_DC_P] : cc[C_DC_L2_P];
                i64 slot_free = mshr[mm];
                if (cache_start < slot_free) cache_start = slot_free;
                mshr[mm] = cache_start + dpen;
                mm += 1;
                if (mm == mshr_n) mm = 0;
                cache_done = cache_start + cc[C_CACHE_DONE_OFF] + dpen;
            } else {
                cache_done = cache_start + cc[C_CACHE_DONE_OFF];
            }
            path_ready = cc[C_MERGED] ? cache_done : cache_done + 1;
            if (dest_load >= 0) ready1[dest_load] = cache_done + 1;
        } else {
            path_ready = decode + cc[C_OFF_EXEC_RR];
        }

        /* ---- out-of-order issue ---- */
        i64 execute = path_ready;
        i64 window_slot = issue_ring[wi];
        if (window_slot >= execute) execute = window_slot + 1;
        if (s1x >= 0 && ready1[s1x] > execute) execute = ready1[s1x];
        if (s2 >= 0 && ready1[s2] > execute) execute = ready1[s2];
        if (fpc) {
            if (fpc == 1) {
                if (execute < fp_free) execute = fp_free;
            } else if (execute < cx_free) {
                execute = cx_free;
            }
        }
        /* issue bandwidth: per-cycle slot counts, grown on demand */
        if (execute >= cap) {
            i64 new_cap = cap ? cap : 4096;
            while (execute >= new_cap) new_cap *= 2;
            uint8_t *grown = (uint8_t *)realloc(slots, (size_t)new_cap);
            if (!grown) { rc = -1; goto done; }
            memset(grown + cap, 0, (size_t)(new_cap - cap));
            slots = grown;
            cap = new_cap;
        }
        while (slots[execute] >= width) {
            execute += 1;
            if (execute >= cap) {
                i64 new_cap = cap * 2;
                uint8_t *grown = (uint8_t *)realloc(slots, (size_t)new_cap);
                if (!grown) { rc = -1; goto done; }
                memset(grown + cap, 0, (size_t)(new_cap - cap));
                slots = grown;
                cap = new_cap;
            }
        }
        if (slots[execute] == 0) issue_cycles += 1;
        slots[execute] += 1;
        issue_ring[wi] = execute;
        wi += 1;
        if (wi == window) wi = 0;

        i64 retire;
        if (fpc) {
            i64 exec_done = execute + fpx + cc[C_FPC_DONE_OFF];
            if (fpc == 1) {
                fp_free = exec_done + 1;
            } else {
                cx_free = exec_done + 1;
            }
            if (dest_alu >= 0) ready1[dest_alu] = exec_done + 1;
            /* back_end == RETIRE_OFF - (FPC_DONE_OFF + 1); see above */
            retire = exec_done + (cc[C_RETIRE_OFF] - (cc[C_FPC_DONE_OFF] + 1));
        } else {
            if (dest_alu >= 0) ready1[dest_alu] = execute + cc[C_ALU_LATENCY];
            retire = execute + cc[C_RETIRE_OFF];
        }
        if (execute > path_ready) occ_execq += execute - path_ready;

        /* ---- branch resolution ---- */
        if (b) {
            if (b == EV_MISPREDICT) {
                i64 resolved = execute + cc[C_RESOLVE_LATENCY];
                if (resolved > redirect) redirect = resolved;
            } else {
                i64 target_known = decode + cc[C_TARGET_DELAY];
                if (target_known > redirect) redirect = target_known;
            }
        }

        /* ---- in-order retirement ---- */
        if (retire > last_retire) {
            last_retire = retire;
            retire_n = 1;
        } else if (retire_n < width) {
            retire_n += 1;
        } else {
            last_retire += 1;
            retire_n = 1;
        }
        retire_rob[ri] = last_retire;
        ri += 1;
        if (ri == rob) ri = 0;
    }

    out4[0] = last_retire + 1;
    out4[1] = issue_cycles;
    out4[2] = occ_agenq + memory_ops;
    out4[3] = occ_execq + n;

done:
    free(ready1); free(mshr); free(agen_ring); free(issue_ring);
    free(retire_rob); free(slots);
    return rc;
}

int run_suite_batched(
    const int32_t *cols, i64 stride, i64 njobs, const i64 *jobs,
    i64 nlanes, const i64 *lane_job, const i64 *cons,
    i64 nregs, i64 threads, i64 *out)
{
    int failed = 0;
    (void)njobs;
#ifdef _OPENMP
    if (threads > 0) omp_set_num_threads((int)threads);
#endif
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
    for (i64 lane = 0; lane < nlanes; lane++) {
        const i64 *jm = jobs + lane_job[lane] * JM_FIELDS;
        const i64 *cc = cons + lane * NCONST;
        i64 *out4 = out + lane * 4;
        int rc;
        if (jm[JM_IN_ORDER]) {
            rc = suite_lane_in_order(
                cols, stride, jm[JM_OFFSET], jm[JM_N], cc, jm[JM_WIDTH],
                jm[JM_AGEN_WIDTH], jm[JM_MSHR], nregs, jm[JM_MEMORY_OPS],
                out4);
        } else {
            rc = suite_lane_out_of_order(
                cols, stride, jm[JM_OFFSET], jm[JM_N], cc, jm[JM_WIDTH],
                jm[JM_AGEN_WIDTH], jm[JM_MSHR], jm[JM_WINDOW], jm[JM_ROB],
                nregs, jm[JM_MEMORY_OPS], out4);
        }
        if (rc != 0) {
#ifdef _OPENMP
#pragma omp atomic write
#endif
            failed = 1;
        }
    }
    return failed ? -1 : 0;
}

int kernel_openmp(void)
{
#ifdef _OPENMP
    return omp_get_max_threads();
#else
    return 0;
#endif
}
"""


def kernel_enabled() -> bool:
    """Whether the active runtime config allows compiling/loading the kernel."""
    from ..runtime.config import kernel_enabled as _runtime_enabled

    return _runtime_enabled()


def kernel_dir() -> pathlib.Path:
    """Resolve the compiled-kernel cache directory from the runtime config."""
    from ..runtime.config import default_kernel_dir

    return default_kernel_dir()


def kernel_openmp_enabled() -> bool:
    """Whether the active runtime config allows an OpenMP-parallel build."""
    from ..runtime.config import kernel_openmp_enabled as _runtime_openmp

    return _runtime_openmp()


def kernel_threads() -> int:
    """The configured OpenMP thread count (0 = the OpenMP runtime default)."""
    from ..runtime.config import kernel_threads as _runtime_threads

    return _runtime_threads()


def _find_compiler() -> "str | None":
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _compile(
    directory: pathlib.Path, so_path: pathlib.Path, openmp: bool = False
) -> bool:
    compiler = _find_compiler()
    if compiler is None:
        logger.warning("no C compiler found; batched kernel disabled")
        return False
    directory.mkdir(parents=True, exist_ok=True)
    src_path = so_path.with_suffix(".c")
    src_path.write_text(_SOURCE, encoding="utf-8")
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{so_path.stem}.", suffix=".so", dir=directory
    )
    os.close(fd)
    tmp = pathlib.Path(tmp_name)
    flags = [*_OPT_FLAGS, "-shared", "-fPIC"] + (["-fopenmp"] if openmp else [])
    try:
        proc = subprocess.run(
            [compiler, *flags, "-o", str(tmp), str(src_path)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if proc.returncode != 0:
            log = logger.info if openmp else logger.warning
            log(
                "kernel compilation failed (%s%s): %s",
                compiler,
                " -fopenmp" if openmp else "",
                proc.stderr.strip()[:500],
            )
            return False
        os.replace(tmp, so_path)
        return True
    except (OSError, subprocess.SubprocessError) as exc:
        logger.warning("kernel compilation failed: %s", exc)
        return False
    finally:
        tmp.unlink(missing_ok=True)


class BatchedKernel:
    """ctypes facade over the compiled timing kernel."""

    def __init__(self, lib: ctypes.CDLL):
        self._in_order = lib.run_in_order_batched
        self._out_of_order = lib.run_out_of_order_batched
        self._suite = lib.run_suite_batched
        self._openmp = lib.kernel_openmp
        ll = ctypes.c_longlong
        ptr_i32 = np.ctypeslib.ndpointer(dtype=np.int32, flags="C_CONTIGUOUS")
        ptr_i64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
        self._in_order.restype = ctypes.c_int
        self._in_order.argtypes = [
            ptr_i32, ll, ll, ptr_i64, ll, ll, ll, ll, ll, ptr_i64,
        ]
        self._out_of_order.restype = ctypes.c_int
        self._out_of_order.argtypes = [
            ptr_i32, ll, ll, ptr_i64, ll, ll, ll, ll, ll, ll, ll, ptr_i64,
        ]
        self._suite.restype = ctypes.c_int
        self._suite.argtypes = [
            ptr_i32, ll, ll, ptr_i64, ll, ptr_i64, ptr_i64, ll, ll, ptr_i64,
        ]
        self._openmp.restype = ctypes.c_int
        self._openmp.argtypes = []

    @property
    def openmp_threads(self) -> int:
        """Worker threads an OpenMP build would use (0 = serial build)."""
        return int(self._openmp())

    def run_in_order(
        self,
        columns: np.ndarray,
        cons: np.ndarray,
        width: int,
        agen_width: int,
        mshr_n: int,
        nregs: int,
        memory_ops: int,
    ) -> np.ndarray:
        """All in-order lanes in one pass; returns a ``(lanes, 4)`` matrix
        of ``(cycles, issue_cycles, agen_queue_occ, exec_queue_occ)``."""
        lanes = cons.shape[0]
        n = columns.shape[1]
        out = np.empty((lanes, 4), dtype=np.int64)
        rc = self._in_order(
            columns, n, lanes, cons, width, agen_width, mshr_n, nregs,
            memory_ops, out,
        )
        if rc != 0:
            raise MemoryError("batched kernel allocation failure")
        return out

    def run_out_of_order(
        self,
        columns: np.ndarray,
        cons: np.ndarray,
        width: int,
        agen_width: int,
        mshr_n: int,
        window: int,
        rob: int,
        nregs: int,
        memory_ops: int,
    ) -> np.ndarray:
        """All out-of-order lanes in one pass; same output layout as
        :meth:`run_in_order`."""
        lanes = cons.shape[0]
        n = columns.shape[1]
        out = np.empty((lanes, 4), dtype=np.int64)
        rc = self._out_of_order(
            columns, n, lanes, cons, width, agen_width, mshr_n, window, rob,
            nregs, memory_ops, out,
        )
        if rc != 0:
            raise MemoryError("batched kernel allocation failure")
        return out

    def run_suite(
        self,
        columns: np.ndarray,
        jobs: np.ndarray,
        lane_job: np.ndarray,
        cons: np.ndarray,
        nregs: int,
        threads: int = 0,
    ) -> np.ndarray:
        """Every (job, depth) lane of a ragged batch in one call.

        ``columns`` is the concatenated ``(12, Σn)`` event tensor,
        ``jobs`` the ``(njobs, JM_FIELDS)`` descriptor matrix (offsets,
        machine scalars), ``lane_job`` the per-lane job index and
        ``cons`` the per-lane constant rows; the output layout matches
        :meth:`run_in_order`, one row per lane.
        """
        nlanes = cons.shape[0]
        stride = columns.shape[1]
        out = np.empty((nlanes, 4), dtype=np.int64)
        rc = self._suite(
            columns, stride, jobs.shape[0], jobs, nlanes, lane_job, cons,
            nregs, threads, out,
        )
        if rc != 0:
            raise MemoryError("suite kernel allocation failure")
        return out


# variant ("omp"/"serial") -> loaded kernel or None; absent = not resolved
_kernels: "dict[str, BatchedKernel | None]" = {}

#: Optimisation flags for the kernel build; part of the ``.so`` cache key
#: so a flag change rebuilds instead of reusing a stale binary.
_OPT_FLAGS = ("-O3",)


def _load(variant: str) -> "BatchedKernel | None":
    material = _SOURCE + "\x00" + " ".join(_OPT_FLAGS)
    digest = hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]
    directory = kernel_dir()
    suffix = "-omp" if variant == "omp" else ""
    so_path = directory / f"repro_ckernel_{digest}{suffix}.so"
    if so_path.exists() or _compile(directory, so_path, openmp=variant == "omp"):
        try:
            return BatchedKernel(ctypes.CDLL(str(so_path)))
        except (OSError, AttributeError) as exc:
            logger.warning("batched kernel load failed: %s", exc)
    return None


def batched_kernel() -> "BatchedKernel | None":
    """The compiled kernel, or None when disabled/unavailable (memoised).

    Two build variants exist: ``omp`` (compiled ``-fopenmp``, the default)
    and ``serial`` (no OpenMP, selected by ``REPRO_KERNEL_OPENMP=off``
    or when the toolchain lacks OpenMP support).  Both are loaded lazily
    and memoised per variant; an ``omp`` build failure degrades to the
    serial variant — same source, the parallel pragmas simply ignored.
    """
    if not kernel_enabled():
        return None
    variant = "omp" if kernel_openmp_enabled() else "serial"
    if variant not in _kernels:
        kernel = _load(variant)
        if kernel is None and variant == "omp":
            logger.info("OpenMP kernel build unavailable; using serial build")
            if "serial" not in _kernels:
                _kernels["serial"] = _load("serial")
            kernel = _kernels["serial"]
        _kernels[variant] = kernel
    return _kernels[variant]
