"""The cycle-accurate 4-issue in-order pipeline timing model.

This is the stand-in for the paper's proprietary zSeries simulator.  It
models the Fig. 2 pipeline exactly as planned by
:class:`~repro.pipeline.plan.StagePlan`:

* 4-wide fetch/decode/issue/retire bandwidth, strictly in-order;
* RR instructions flow Decode -> Exec-Queue -> E-Unit;
* RX instructions insert Agen-Queue -> Agen -> Cache-Access before the
  exec queue; the agen ports are 2-wide;
* branches resolve at the end of execute; a misprediction redirects fetch
  on the next cycle, so the penalty is the full front-end refill and grows
  with decode depth — the theory's ``beta * (t_o*p + t_p)`` shape;
* I-/D-cache misses cost a fixed *absolute* latency (FO4), converted to
  cycles at the current cycle time, so deeper (faster-clocked) pipelines
  pay more cycles per miss — again the theory's hazard-time shape;
* FP ops occupy a non-pipelined iterative FP unit for a fixed *cycle*
  count (paper Sec. 4: FP "execute individually and take multiple
  cycles to complete"), serialising against the next FP op.

The model is instruction-driven: it computes each instruction's stage
entry cycles under bandwidth, dependency, structural, and flush
constraints.  For an in-order machine this is cycle-exact for the
constraints modelled, and it is what makes sweeping 55 workloads times 24
depths tractable in pure Python.

Alongside timing, the simulator accumulates per-unit *stage-slot
occupancy* (one stage busy for one cycle), which is exactly what the
clock-gated power model charges for — mirroring the paper's "we monitor
the usage of each microarchitectural unit of the processor every cycle".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import tech
from ..core.params import TechnologyParams
from ..isa import NO_REGISTER, REGISTER_COUNT, OpClass
from ..trace.trace import Trace
from ..uarch.branch_predictor import (
    BimodalPredictor,
    BranchPredictor,
    GsharePredictor,
    StaticTakenPredictor,
)
from ..uarch.btb import BranchTargetBuffer
from ..uarch.cache import Cache, CacheConfig
from .plan import StagePlan, Unit
from .results import SimulationResult
from .timing import DepthConstants

__all__ = ["MachineConfig", "PipelineSimulator", "simulate"]

# FP ops run on an iterative (non-pipelined) unit whose step time scales
# with the clock, so their occupancy is a constant *cycle* count — the
# paper's "execute individually and take multiple cycles to complete".


def _make_predictor(kind: str, entries: int) -> BranchPredictor:
    factories = {
        "gshare": lambda: GsharePredictor(entries=entries),
        "bimodal": lambda: BimodalPredictor(entries=entries),
        "taken": StaticTakenPredictor,
        "oracle": StaticTakenPredictor,  # placeholder; simulator skips it
    }
    try:
        return factories[kind]()
    except KeyError:
        raise ValueError(
            f"unknown predictor kind {kind!r}; choose from {sorted(factories)}"
        ) from None


@dataclass(frozen=True)
class MachineConfig:
    """Machine-wide configuration, constant across the depth sweep.

    Attributes:
        technology: FO4 constants (cycle time vs depth).
        issue_width: fetch/decode/execute/retire bandwidth (the paper's
            machine is 4-issue).
        agen_width: address-generation ports.
        icache / dcache: L1 geometries; their ``miss_latency_fo4`` is the
            L2 *hit* time.
        l2: shared second-level cache; its ``miss_latency_fo4`` is the
            memory access time.  All latencies are absolute (FO4) and are
            converted to cycles at the current clock.
        predictor_kind: "gshare", "bimodal" or "taken".
        predictor_entries: predictor table size.
        alu_logic_fo4: logic delay of a simple ALU op.  Results forward to
            dependants after this *absolute* time (converted to cycles at
            the current clock), not after the full deepened E-pipe — deep
            pipelines slice logic, they do not multiply it.  The op still
            occupies the whole E-pipe for completion ordering.
        branch_resolve_fo4: logic delay from execute-issue to a resolved
            branch condition; the misprediction penalty is the front-end
            refill back to this point, which grows with depth (the
            theory's ``beta * (t_o*p + t_p)`` shape).
        warmup: when True (default) the predictor and caches are trained
            with one non-timing pass over the trace before measurement, so
            short traces measure steady-state rates instead of cold-start
            transients (the paper's production traces are similarly
            steady-state samples of long-running applications).
        in_order: True (default, the paper's configuration for this study)
            issues strictly in program order; False enables out-of-order
            issue with register renaming (one extra rename cycle, a finite
            issue window, an in-order reorder buffer, and conservative
            load/store ordering).  The paper reports "only minor
            differences in the pipeline depth optimization" between the
            two — reproduced by ``benchmarks/bench_ablations.py``.
        issue_window: out-of-order scheduling window (entries).
        rob_size: reorder-buffer entries (dispatch backpressure).
        mshr_entries: outstanding load misses the cache can track.  The
            default of 1 is a blocking cache (this study's era); raise it
            for a non-blocking hierarchy (the natural companion of
            out-of-order issue).
        btb_entries: branch-target-buffer size (power of two), or None
            for a perfect BTB (the calibration default).  With a finite
            BTB, a predicted-taken branch whose target misses pays a
            front-end redirect bubble of the fetch+decode depth.
        tech_node: the technology node (see :mod:`repro.tech`) this
            machine's logic constants are expressed at.  Build scaled
            machines with :meth:`for_node` — the node name is a
            *provenance label* that enters the machine fingerprint (and
            therefore every cache key), while the scaled constants
            themselves live in ``technology`` / ``alu_logic_fo4`` /
            ``branch_resolve_fo4``.  Cache miss latencies stay in
            absolute base-node FO4: memory does not ride the logic
            curve, so faster nodes pay more cycles per miss.
    """

    technology: TechnologyParams = field(default_factory=TechnologyParams)
    issue_width: int = 4
    agen_width: int = 2
    icache: CacheConfig = CacheConfig(size=64 * 1024, line_size=128, associativity=4,
                                      miss_latency_fo4=80.0)
    dcache: CacheConfig = CacheConfig(size=64 * 1024, line_size=128, associativity=4,
                                      miss_latency_fo4=80.0)
    l2: CacheConfig = CacheConfig(size=2 * 1024 * 1024, line_size=128, associativity=8,
                                  miss_latency_fo4=400.0)
    predictor_kind: str = "gshare"
    predictor_entries: int = 8192
    alu_logic_fo4: float = 15.0
    branch_resolve_fo4: float = 15.0
    warmup: bool = True
    in_order: bool = True
    issue_window: int = 32
    rob_size: int = 64
    mshr_entries: int = 1
    btb_entries: "int | None" = None
    tech_node: str = tech.BASE_NODE

    @classmethod
    def for_node(cls, node: str, base: "MachineConfig | None" = None) -> "MachineConfig":
        """``base`` (default: the stock machine) re-noded at ``node``.

        Scaling is relative to ``base.tech_node``, so chaining
        ``for_node`` calls never compounds factors.
        """
        if base is None:
            base = cls()
        return tech.get_node(node).apply(base)

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError(f"issue_width must be >= 1, got {self.issue_width!r}")
        if self.agen_width < 1:
            raise ValueError(f"agen_width must be >= 1, got {self.agen_width!r}")
        if self.issue_window < 1:
            raise ValueError(f"issue_window must be >= 1, got {self.issue_window!r}")
        if self.rob_size < 1:
            raise ValueError(f"rob_size must be >= 1, got {self.rob_size!r}")
        if self.mshr_entries < 1:
            raise ValueError(f"mshr_entries must be >= 1, got {self.mshr_entries!r}")
        if self.btb_entries is not None:
            BranchTargetBuffer(self.btb_entries)  # validate
        _make_predictor(self.predictor_kind, self.predictor_entries)  # validate
        tech.get_node(self.tech_node)  # validate


class PipelineSimulator:
    """Runs traces through the planned pipeline and reports results."""

    def __init__(self, config: MachineConfig | None = None):
        self.config = config or MachineConfig()

    def simulate_depths(self, trace, depths):
        """Simulate every depth of a sweep, in order.

        The primary sweep API shared by all backends.  The reference
        interpreter has no cross-depth work to share, so this is a plain
        loop over :meth:`simulate`; the fast backend amortises the trace
        analysis and the batched backend additionally prices all depths in
        one timing pass.
        """
        return tuple(self.simulate(trace, depth) for depth in depths)

    def simulate(self, trace: Trace, depth: "int | StagePlan") -> SimulationResult:
        """Simulate ``trace`` at one pipeline depth.

        Args:
            trace: the dynamic instruction stream.
            depth: decode-to-execute depth (2..40) or a prebuilt plan.

        Returns:
            A :class:`~repro.pipeline.results.SimulationResult`.
        """
        if len(trace) == 0:
            raise ValueError("cannot simulate an empty trace")
        plan = depth if isinstance(depth, StagePlan) else StagePlan.for_depth(depth)
        if not self.config.in_order:
            return self._simulate_out_of_order(trace, plan)
        cfg = self.config
        cons = DepthConstants.for_plan(cfg, plan)

        decode_stages = cons.decode_stages
        agen_stages = cons.agen_stages
        cache_stages = cons.cache_stages
        exec_stages = cons.exec_stages
        fetch_stages = cons.fetch_stages
        exec_latency = cons.exec_latency
        cache_latency = cons.cache_latency
        # Offsets (cycles after decode start) at which each step may begin.
        off_agen = cons.off_agen
        off_cache = cons.off_cache
        off_exec_rr = cons.off_exec_rr
        cache_exec_merged = cons.cache_exec_merged
        # Completion + retire cycles after the end of execute.
        back_end = cons.back_end

        ic_penalty = cons.ic_penalty
        dc_penalty = cons.dc_penalty
        l2_penalty = cons.l2_penalty
        # Forwarding latencies are fixed logic delays, clamped to the pipe.
        alu_latency = cons.alu_latency
        resolve_latency = cons.resolve_latency

        oracle = cfg.predictor_kind == "oracle"
        predictor = _make_predictor(cfg.predictor_kind, cfg.predictor_entries)
        icache = Cache(cfg.icache)
        dcache = Cache(cfg.dcache)
        l2cache = Cache(cfg.l2)
        btb = BranchTargetBuffer(cfg.btb_entries) if cfg.btb_entries else None
        decode_latency = cons.decode_latency
        ic_line = cfg.icache.line_size
        if cfg.warmup:
            _warm_structures(trace, predictor, icache, dcache, l2cache, ic_line,
                             oracle, btb)

        n = len(trace)
        codes = trace.opclass.tolist()
        pcs = trace.pc.tolist()
        dests = trace.dest.tolist()
        src1s = trace.src1.tolist()
        src2s = trace.src2.tolist()
        addresses = trace.address.tolist()
        takens = trace.taken.tolist()
        fp_extras = trace.fp_cycles.tolist()

        width = cfg.issue_width
        agen_width = cfg.agen_width
        ready = [0] * REGISTER_COUNT
        fetch_ring = [-1] * width
        decode_ring = [-1] * width
        exec_ring = [-1] * width
        retire_ring = [-1] * width
        agen_ring = [-1] * agen_width
        last_fetch = last_decode = last_exec = last_agen = last_retire = 0
        redirect = 0
        fp_unit_free = 0
        complex_unit_free = 0
        mshr_ring = [0] * cfg.mshr_entries
        miss_index = 0
        last_ic_line = -1
        last_ic_hit = True
        mem_index = 0

        mispredicts = branches = ic_misses = 0
        dc_accesses = dc_misses = store_misses = l2_misses = 0
        memory_ops = fp_ops = 0
        issue_cycles = 0
        last_issue_cycle = -1
        final_retire = 0

        occ_fetch = occ_decode = occ_agenq = occ_agen = occ_cache = 0.0
        occ_execq = occ_exec = occ_complete = occ_retire = 0.0

        LOAD = OpClass.RX_LOAD.value
        STORE = OpClass.RX_STORE.value
        RXALU = OpClass.RX_ALU.value
        BRANCH = OpClass.BRANCH.value
        FP = OpClass.FP.value
        COMPLEX = OpClass.COMPLEX.value

        for i in range(n):
            code = codes[i]
            # ---- fetch -----------------------------------------------------
            fetch = redirect
            if fetch < last_fetch:
                fetch = last_fetch
            slot = fetch_ring[i % width]
            if slot >= fetch:
                fetch = slot + 1
            line = pcs[i] // ic_line
            if line != last_ic_line:
                last_ic_hit = icache.access(pcs[i])
                last_ic_line = line
                if not last_ic_hit:
                    ic_misses += 1
                    penalty = ic_penalty
                    if not l2cache.access(pcs[i]):
                        l2_misses += 1
                        penalty += l2_penalty
                    fetch += penalty
                    occ_fetch += penalty
            fetch_ring[i % width] = fetch
            last_fetch = fetch
            occ_fetch += fetch_stages

            # ---- decode ----------------------------------------------------
            decode = fetch + fetch_stages
            if decode < last_decode:
                decode = last_decode
            slot = decode_ring[i % width]
            if slot >= decode:
                decode = slot + 1
            decode_ring[i % width] = decode
            last_decode = decode
            occ_decode += decode_stages

            # ---- address generation + cache (RX path) ----------------------
            is_memory = code == LOAD or code == STORE or code == RXALU
            if is_memory:
                memory_ops += 1
                agen = decode + off_agen
                base = src1s[i]
                if base != NO_REGISTER:
                    operand = ready[base] + 1
                    if operand > agen:
                        agen = operand
                if agen < last_agen:
                    agen = last_agen
                slot = agen_ring[mem_index % agen_width]
                if slot >= agen:
                    agen = slot + 1
                agen_ring[mem_index % agen_width] = agen
                last_agen = agen
                mem_index += 1
                occ_agenq += 1 + (agen - (decode + off_agen)) if agen > decode + off_agen else 1
                occ_agen += agen_stages

                cache_start = agen + (off_cache - off_agen)
                hit = dcache.access(addresses[i])
                dc_accesses += 1
                penalty = 0
                if not hit:
                    penalty = dc_penalty
                    if not l2cache.access(addresses[i]):
                        l2_misses += 1
                        penalty += l2_penalty
                    if code == STORE:
                        store_misses += 1
                        penalty = 0  # write-allocate off the critical path
                    else:
                        dc_misses += 1
                        # Load misses contend for the MSHRs (1 = blocking
                        # cache); hits may proceed underneath.
                        slot_free = mshr_ring[miss_index % cfg.mshr_entries]
                        if cache_start < slot_free:
                            cache_start = slot_free
                        mshr_ring[miss_index % cfg.mshr_entries] = cache_start + penalty
                        miss_index += 1
                cache_done = cache_start + cache_latency - 1 + penalty
                occ_cache += cache_stages + penalty
                path_ready = cache_done if cache_exec_merged else cache_done + 1
                if code == LOAD:
                    dest = dests[i]
                    if dest != NO_REGISTER:
                        ready[dest] = cache_done
            else:
                path_ready = decode + off_exec_rr

            # ---- execute issue (in-order, 4-wide) ---------------------------
            execute = path_ready
            if execute < last_exec:
                execute = last_exec
            slot = exec_ring[i % width]
            if slot >= execute:
                execute = slot + 1
            s1 = src1s[i]
            if s1 != NO_REGISTER and not is_memory:
                operand = ready[s1] + 1
                if operand > execute:
                    execute = operand
            s2 = src2s[i]
            if s2 != NO_REGISTER:
                operand = ready[s2] + 1
                if operand > execute:
                    execute = operand

            if code == FP or code == COMPLEX:
                if code == FP:
                    fp_ops += 1
                    if execute < fp_unit_free:
                        execute = fp_unit_free
                else:
                    if execute < complex_unit_free:
                        execute = complex_unit_free
                # Iterative unit: fixed cycle count, plus filling/draining
                # the surrounding execute pipe, which deepens with p.
                occupancy = fp_extras[i] + exec_latency - 1
                exec_done = execute + occupancy - 1
                if code == FP:
                    fp_unit_free = exec_done + 1
                else:
                    complex_unit_free = exec_done + 1
                occ_exec += occupancy
            else:
                exec_done = execute + exec_latency - 1
                occ_exec += exec_stages

            exec_ring[i % width] = execute
            last_exec = execute
            occ_execq += 1 + (execute - path_ready) if execute > path_ready else 1
            if execute != last_issue_cycle:
                issue_cycles += 1
                last_issue_cycle = execute

            dest = dests[i]
            if dest != NO_REGISTER and code != LOAD:
                # Simple results forward after their logic delay; FP waits
                # for the whole (non-pipelined) occupancy.
                ready[dest] = (
                    exec_done if (code == FP or code == COMPLEX)
                    else execute + alu_latency - 1
                )

            # ---- branch resolution ------------------------------------------
            if code == BRANCH:
                branches += 1
                if not oracle and not predictor.observe(pcs[i], takens[i]):
                    mispredicts += 1
                    resolved = execute + resolve_latency - 1
                    if resolved + 1 > redirect:
                        redirect = resolved + 1
                elif takens[i] and btb is not None and not btb.lookup_and_update(pcs[i]):
                    # Correct direction but unknown target: the front end
                    # stalls until decode computes it.
                    target_known = decode + decode_latency
                    if target_known > redirect:
                        redirect = target_known

            # ---- completion / retire ----------------------------------------
            retire = exec_done + back_end
            if retire < last_retire:
                retire = last_retire
            slot = retire_ring[i % width]
            if slot >= retire:
                retire = slot + 1
            retire_ring[i % width] = retire
            last_retire = retire
            occ_complete += 1
            occ_retire += 1
            if retire > final_retire:
                final_retire = retire

        occupancy = {
            Unit.FETCH: occ_fetch,
            Unit.DECODE: occ_decode,
            Unit.RENAME: 0.0,
            Unit.AGEN_QUEUE: occ_agenq,
            Unit.AGEN: occ_agen,
            Unit.CACHE: occ_cache,
            Unit.EXEC_QUEUE: occ_execq,
            Unit.EXECUTE: occ_exec,
            Unit.COMPLETE: occ_complete,
            Unit.RETIRE: occ_retire,
        }
        return SimulationResult(
            trace_name=trace.name,
            plan=plan,
            technology=cfg.technology,
            instructions=n,
            cycles=final_retire + 1,
            issue_cycles=issue_cycles,
            branches=branches,
            mispredicts=mispredicts,
            icache_misses=ic_misses,
            dcache_accesses=dc_accesses,
            dcache_misses=dc_misses,
            store_misses=store_misses,
            l2_misses=l2_misses,
            memory_ops=memory_ops,
            fp_ops=fp_ops,
            unit_occupancy=occupancy,
        )

    def _simulate_out_of_order(self, trace: Trace, plan: StagePlan) -> SimulationResult:
        """Out-of-order issue engine (rename + window + ROB).

        Differences from the in-order engine:

        * one rename cycle after decode (the Fig. 2 stage the in-order
          model skips);
        * instructions issue to execute as soon as operands are ready, a
          scheduler slot exists (``issue_width`` per cycle) and they are
          inside the ``issue_window`` (an instruction enters the window
          only once instruction ``i - window`` has issued);
        * dispatch stalls when the reorder buffer is full (instruction
          ``i`` cannot decode before instruction ``i - rob_size``
          retired);
        * address generation may proceed out of order between loads, but
          loads never access the cache before an older store has generated
          its address (conservative disambiguation);
        * retirement remains strictly in order.
        """
        cfg = self.config
        cons = DepthConstants.for_plan(cfg, plan)

        decode_stages = cons.decode_stages
        agen_stages = cons.agen_stages
        cache_stages = cons.cache_stages
        exec_stages = cons.exec_stages
        fetch_stages = cons.fetch_stages
        exec_latency = cons.exec_latency
        cache_latency = cons.cache_latency
        rename_latency = 1  # the Fig. 2 rename stage, active out of order
        off_agen = cons.off_agen + rename_latency
        off_cache = cons.off_cache + rename_latency
        off_exec_rr = cons.off_exec_rr + rename_latency
        cache_exec_merged = cons.cache_exec_merged
        back_end = cons.back_end

        ic_penalty = cons.ic_penalty
        dc_penalty = cons.dc_penalty
        l2_penalty = cons.l2_penalty
        alu_latency = cons.alu_latency
        resolve_latency = cons.resolve_latency

        oracle = cfg.predictor_kind == "oracle"
        predictor = _make_predictor(cfg.predictor_kind, cfg.predictor_entries)
        icache = Cache(cfg.icache)
        dcache = Cache(cfg.dcache)
        l2cache = Cache(cfg.l2)
        btb = BranchTargetBuffer(cfg.btb_entries) if cfg.btb_entries else None
        decode_latency = cons.decode_latency
        ic_line = cfg.icache.line_size
        if cfg.warmup:
            _warm_structures(trace, predictor, icache, dcache, l2cache, ic_line,
                             oracle, btb)

        n = len(trace)
        codes = trace.opclass.tolist()
        pcs = trace.pc.tolist()
        dests = trace.dest.tolist()
        src1s = trace.src1.tolist()
        src2s = trace.src2.tolist()
        addresses = trace.address.tolist()
        takens = trace.taken.tolist()
        fp_extras = trace.fp_cycles.tolist()

        width = cfg.issue_width
        agen_width = cfg.agen_width
        window = cfg.issue_window
        rob = cfg.rob_size
        ready = [0] * REGISTER_COUNT
        fetch_ring = [-1] * width
        decode_ring = [-1] * width
        retire_ring = [-1] * width
        agen_ring = [-1] * agen_width
        issue_ring = [-1] * window   # issue cycle of instruction i - window
        retire_rob = [-1] * rob      # retire cycle of instruction i - rob_size
        issue_slots: dict = {}       # cycle -> instructions issued that cycle
        last_fetch = last_decode = last_retire = 0
        redirect = 0
        fp_unit_free = 0
        complex_unit_free = 0
        mshr_ring = [0] * cfg.mshr_entries
        miss_index = 0
        last_store_agen = 0
        last_ic_line = -1
        mem_index = 0

        mispredicts = branches = ic_misses = 0
        dc_accesses = dc_misses = store_misses = l2_misses = 0
        memory_ops = fp_ops = 0
        final_retire = 0

        occ_fetch = occ_decode = occ_rename = occ_agenq = occ_agen = occ_cache = 0.0
        occ_execq = occ_exec = occ_complete = occ_retire = 0.0

        LOAD = OpClass.RX_LOAD.value
        STORE = OpClass.RX_STORE.value
        RXALU = OpClass.RX_ALU.value
        BRANCH = OpClass.BRANCH.value
        FP = OpClass.FP.value
        COMPLEX = OpClass.COMPLEX.value

        for i in range(n):
            code = codes[i]
            # ---- fetch (in order) ---------------------------------------
            fetch = redirect
            if fetch < last_fetch:
                fetch = last_fetch
            slot = fetch_ring[i % width]
            if slot >= fetch:
                fetch = slot + 1
            line = pcs[i] // ic_line
            if line != last_ic_line:
                hit = icache.access(pcs[i])
                last_ic_line = line
                if not hit:
                    ic_misses += 1
                    penalty = ic_penalty
                    if not l2cache.access(pcs[i]):
                        l2_misses += 1
                        penalty += l2_penalty
                    fetch += penalty
                    occ_fetch += penalty
            fetch_ring[i % width] = fetch
            last_fetch = fetch
            occ_fetch += fetch_stages

            # ---- decode + rename (in order, ROB backpressure) ------------
            decode = fetch + fetch_stages
            if decode < last_decode:
                decode = last_decode
            slot = decode_ring[i % width]
            if slot >= decode:
                decode = slot + 1
            rob_slot = retire_rob[i % rob]
            if rob_slot >= decode:
                decode = rob_slot + 1
            decode_ring[i % width] = decode
            last_decode = decode
            occ_decode += decode_stages
            occ_rename += rename_latency

            # ---- address generation + cache ------------------------------
            is_memory = code == LOAD or code == STORE or code == RXALU
            if is_memory:
                memory_ops += 1
                agen = decode + off_agen
                base = src1s[i]
                if base != NO_REGISTER:
                    operand = ready[base] + 1
                    if operand > agen:
                        agen = operand
                slot = agen_ring[mem_index % agen_width]
                if slot >= agen:
                    agen = slot + 1
                agen_ring[mem_index % agen_width] = agen
                mem_index += 1
                occ_agenq += 1 + (agen - (decode + off_agen)) if agen > decode + off_agen else 1
                occ_agen += agen_stages

                cache_start = agen + (off_cache - off_agen)
                if code != STORE and cache_start <= last_store_agen:
                    # Conservative disambiguation: wait for older stores'
                    # addresses before accessing the cache.
                    cache_start = last_store_agen + 1
                if code == STORE:
                    agen_done = agen + cons.agen_latency - 1
                    if agen_done > last_store_agen:
                        last_store_agen = agen_done
                hit = dcache.access(addresses[i])
                dc_accesses += 1
                penalty = 0
                if not hit:
                    penalty = dc_penalty
                    if not l2cache.access(addresses[i]):
                        l2_misses += 1
                        penalty += l2_penalty
                    if code == STORE:
                        store_misses += 1
                        penalty = 0
                    else:
                        dc_misses += 1
                        slot_free = mshr_ring[miss_index % cfg.mshr_entries]
                        if cache_start < slot_free:
                            cache_start = slot_free
                        mshr_ring[miss_index % cfg.mshr_entries] = cache_start + penalty
                        miss_index += 1
                cache_done = cache_start + cache_latency - 1 + penalty
                occ_cache += cache_stages + penalty
                path_ready = cache_done if cache_exec_merged else cache_done + 1
                if code == LOAD:
                    dest = dests[i]
                    if dest != NO_REGISTER:
                        ready[dest] = cache_done
            else:
                path_ready = decode + off_exec_rr

            # ---- out-of-order issue ---------------------------------------
            execute = path_ready
            window_slot = issue_ring[i % window]
            if window_slot >= execute:
                execute = window_slot + 1
            s1 = src1s[i]
            if s1 != NO_REGISTER and not is_memory:
                operand = ready[s1] + 1
                if operand > execute:
                    execute = operand
            s2 = src2s[i]
            if s2 != NO_REGISTER:
                operand = ready[s2] + 1
                if operand > execute:
                    execute = operand
            if code == FP:
                if execute < fp_unit_free:
                    execute = fp_unit_free
            elif code == COMPLEX:
                if execute < complex_unit_free:
                    execute = complex_unit_free
            while issue_slots.get(execute, 0) >= width:
                execute += 1
            issue_slots[execute] = issue_slots.get(execute, 0) + 1
            issue_ring[i % window] = execute

            if code == FP or code == COMPLEX:
                if code == FP:
                    fp_ops += 1
                occupancy = fp_extras[i] + exec_latency - 1
                exec_done = execute + occupancy - 1
                if code == FP:
                    fp_unit_free = exec_done + 1
                else:
                    complex_unit_free = exec_done + 1
                occ_exec += occupancy
            else:
                exec_done = execute + exec_latency - 1
                occ_exec += exec_stages
            occ_execq += 1 + (execute - path_ready) if execute > path_ready else 1

            dest = dests[i]
            if dest != NO_REGISTER and code != LOAD:
                ready[dest] = (
                    exec_done if (code == FP or code == COMPLEX)
                    else execute + alu_latency - 1
                )

            # ---- branch resolution ----------------------------------------
            if code == BRANCH:
                branches += 1
                if not oracle and not predictor.observe(pcs[i], takens[i]):
                    mispredicts += 1
                    resolved = execute + resolve_latency - 1
                    if resolved + 1 > redirect:
                        redirect = resolved + 1
                elif takens[i] and btb is not None and not btb.lookup_and_update(pcs[i]):
                    target_known = decode + decode_latency + rename_latency
                    if target_known > redirect:
                        redirect = target_known

            # ---- in-order retirement ---------------------------------------
            retire = exec_done + back_end
            if retire < last_retire:
                retire = last_retire
            slot = retire_ring[i % width]
            if slot >= retire:
                retire = slot + 1
            retire_ring[i % width] = retire
            retire_rob[i % rob] = retire
            last_retire = retire
            occ_complete += 1
            occ_retire += 1
            if retire > final_retire:
                final_retire = retire

        occupancy = {
            Unit.FETCH: occ_fetch,
            Unit.DECODE: occ_decode,
            Unit.RENAME: occ_rename,
            Unit.AGEN_QUEUE: occ_agenq,
            Unit.AGEN: occ_agen,
            Unit.CACHE: occ_cache,
            Unit.EXEC_QUEUE: occ_execq,
            Unit.EXECUTE: occ_exec,
            Unit.COMPLETE: occ_complete,
            Unit.RETIRE: occ_retire,
        }
        return SimulationResult(
            trace_name=trace.name,
            plan=plan,
            technology=cfg.technology,
            instructions=n,
            cycles=final_retire + 1,
            issue_cycles=len(issue_slots),
            branches=branches,
            mispredicts=mispredicts,
            icache_misses=ic_misses,
            dcache_accesses=dc_accesses,
            dcache_misses=dc_misses,
            store_misses=store_misses,
            l2_misses=l2_misses,
            memory_ops=memory_ops,
            fp_ops=fp_ops,
            unit_occupancy=occupancy,
        )


def _warm_structures(trace, predictor, icache, dcache, l2cache, ic_line, oracle,
                     btb=None):
    """One training pass over the trace: branches into the predictor (and
    taken targets into the BTB), fetch lines and data addresses into the
    cache hierarchy.  Statistics are reset afterwards so the timed pass
    measures steady state."""
    branch_code = OpClass.BRANCH.value
    codes = trace.opclass.tolist()
    pcs = trace.pc.tolist()
    addresses = trace.address.tolist()
    takens = trace.taken.tolist()
    mem_codes = (OpClass.RX_LOAD.value, OpClass.RX_STORE.value, OpClass.RX_ALU.value)
    last_line = -1
    for i in range(len(codes)):
        code = codes[i]
        line = pcs[i] // ic_line
        if line != last_line:
            if not icache.access(pcs[i]):
                l2cache.access(pcs[i])
            last_line = line
        if code == branch_code:
            if not oracle:
                predictor.update(pcs[i], takens[i])
            if btb is not None and takens[i]:
                btb.lookup_and_update(pcs[i])
        elif code in mem_codes:
            if not dcache.access(addresses[i]):
                l2cache.access(addresses[i])
    for cache in (icache, dcache, l2cache):
        cache.stats.accesses = 0
        cache.stats.misses = 0
    if btb is not None:
        btb.hits = 0
        btb.misses = 0


def simulate(
    trace: Trace, depth: "int | StagePlan", config: MachineConfig | None = None
) -> SimulationResult:
    """Module-level convenience wrapper around :class:`PipelineSimulator`."""
    return PipelineSimulator(config).simulate(trace, depth)
