"""On-disk content-addressed cache of :class:`TraceEvents` analyses.

The trace analysis — one warm-up pass plus one structure-walking pass per
(trace, machine) — dominates the cost of a depth sweep once the timing
recurrences are cheap, and it is recomputed today by every process that
needs it: each engine worker, each serving-daemon computation, each CLI
invocation.  This cache makes the analysis a *shared* artefact: entries
are ``.npz`` files holding the :class:`TraceEvents` columnar matrix and
scalar aggregates, addressed by SHA-256 over

* the trace's content fingerprint (:meth:`repro.trace.trace.Trace.
  fingerprint` — name plus every array's bytes, so a regenerated
  identical trace hits),
* the machine configuration's canonical fingerprint
  (:func:`repro.fingerprint.fingerprint_digest`), and
* :data:`repro.pipeline.fastsim.ANALYSIS_SCHEMA`, so layout changes
  invalidate stale entries by construction.

Writes share the engine result cache's crash/concurrency discipline via
:func:`repro.atomicio.atomic_replace` (uniquely named same-directory
temp file, flush + fsync, atomic ``os.replace``).  Corrupt or unreadable
entries are deleted best-effort and reported as misses, never raised.

Location and enablement come from the active
:class:`~repro.runtime.config.RuntimeConfig`: ``$REPRO_ANALYSIS_CACHE_DIR``
wins, then the cache nests under an explicit ``$REPRO_CACHE_DIR`` (one
knob relocates both caches — and the test suite's cache isolation covers
this cache for free), then ``$XDG_CACHE_HOME``, falling back to
``~/.cache/repro/analysis``.  Set ``REPRO_ANALYSIS_CACHE=off`` to
disable the cache wherever :func:`default_events_cache` resolves it.
"""

from __future__ import annotations

import hashlib
import logging
import pathlib
from dataclasses import dataclass

import numpy as np

from ..atomicio import atomic_replace
from .fastsim import ANALYSIS_SCHEMA, TraceEvents

__all__ = [
    "EventsCacheStats",
    "TraceEventsCache",
    "default_events_cache",
    "default_events_cache_dir",
    "events_cache_enabled",
]

logger = logging.getLogger("repro.pipeline.events_cache")


def default_events_cache_dir() -> pathlib.Path:
    """Resolve the analysis cache directory from the active runtime config."""
    from ..runtime.config import default_analysis_cache_dir

    return default_analysis_cache_dir()


def events_cache_enabled() -> bool:
    """Whether the active runtime config allows the on-disk analysis cache."""
    from ..runtime.config import analysis_cache_enabled

    return analysis_cache_enabled()


def default_events_cache() -> "TraceEventsCache | None":
    """The configured cache, or None when disabled."""
    if not events_cache_enabled():
        return None
    return TraceEventsCache(default_events_cache_dir())


@dataclass
class EventsCacheStats:
    """Counters accumulated over one cache's lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    def __str__(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.writes} writes, {self.corrupt} corrupt"
        )


class TraceEventsCache:
    """Content-addressed ``.npz`` store of trace analyses, atomic writes.

    Layout mirrors the engine's result cache: one file per key under
    ``<dir>/<key[:2]>/<key>.npz``.
    """

    def __init__(self, directory: "str | pathlib.Path"):
        self.directory = pathlib.Path(directory).expanduser()
        self.stats = EventsCacheStats()

    @staticmethod
    def key_for(trace_fingerprint: str, machine_fingerprint: str) -> str:
        """The cache key for one (trace, machine, analysis schema) triple."""
        material = f"{trace_fingerprint}:{machine_fingerprint}:{ANALYSIS_SCHEMA}"
        return hashlib.sha256(material.encode("ascii")).hexdigest()

    def path_for(self, key: str) -> pathlib.Path:
        if len(key) < 3 or not key.isalnum():
            raise ValueError(f"implausible cache key {key!r}")
        return self.directory / key[:2] / f"{key}.npz"

    def get(
        self, trace_fingerprint: str, machine_fingerprint: str
    ) -> "TraceEvents | None":
        """The cached analysis, or None (missing or corrupt)."""
        key = self.key_for(trace_fingerprint, machine_fingerprint)
        path = self.path_for(key)
        try:
            with np.load(path) as payload:
                events = TraceEvents.from_arrays(
                    payload["columns"], payload["scalars"]
                )
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, KeyError, ValueError, TypeError) as exc:
            logger.warning("discarding corrupt analysis entry %s: %s", path, exc)
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - unlikely race
                pass
            return None
        self.stats.hits += 1
        logger.debug("analysis cache hit %s", key[:12])
        return events

    def put(
        self, trace_fingerprint: str, machine_fingerprint: str, events: TraceEvents
    ) -> pathlib.Path:
        """Atomically store ``events``; returns the entry path."""
        key = self.key_for(trace_fingerprint, machine_fingerprint)
        path = self.path_for(key)
        columns, scalars = events.to_arrays()
        with atomic_replace(path, mode="wb") as handle:
            np.savez(handle, columns=columns, scalars=scalars)
        self.stats.writes += 1
        logger.debug("analysis cache write %s -> %s", key[:12], path)
        return path

    # -- spec-keyed trace-fingerprint index ---------------------------------
    # The trace generator is a pure function of (spec, length), so the
    # trace fingerprint — the expensive part of *addressing* this cache —
    # is itself cacheable.  The suite backend uses this index to resolve
    # jobs straight to their analysis entries without materialising any
    # trace; entries are one-line text files under <dir>/traces/.

    @staticmethod
    def trace_key_for(spec_fingerprint: str, trace_length: int) -> str:
        """The index key for one (workload spec, trace length) pair."""
        material = f"{spec_fingerprint}:{trace_length}:trace:{ANALYSIS_SCHEMA}"
        return hashlib.sha256(material.encode("ascii")).hexdigest()

    def trace_index_path(self, key: str) -> pathlib.Path:
        if len(key) < 3 or not key.isalnum():
            raise ValueError(f"implausible cache key {key!r}")
        return self.directory / "traces" / key[:2] / f"{key}.txt"

    def get_trace_fingerprint(
        self, spec_fingerprint: str, trace_length: int
    ) -> "str | None":
        """The remembered trace fingerprint, or None (missing or corrupt)."""
        path = self.trace_index_path(self.trace_key_for(spec_fingerprint, trace_length))
        try:
            fingerprint = path.read_text(encoding="ascii").strip()
        except FileNotFoundError:
            return None
        except (OSError, UnicodeDecodeError) as exc:
            logger.warning("discarding corrupt trace-index entry %s: %s", path, exc)
            self.stats.corrupt += 1
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - unlikely race
                pass
            return None
        if not fingerprint or not fingerprint.isalnum():
            logger.warning("discarding implausible trace-index entry %s", path)
            self.stats.corrupt += 1
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - unlikely race
                pass
            return None
        return fingerprint

    def put_trace_fingerprint(
        self, spec_fingerprint: str, trace_length: int, trace_fingerprint: str
    ) -> pathlib.Path:
        """Atomically remember ``trace_fingerprint``; returns the entry path."""
        path = self.trace_index_path(self.trace_key_for(spec_fingerprint, trace_length))
        with atomic_replace(path, mode="w") as handle:
            handle.write(trace_fingerprint + "\n")
        return path

    # -- packed suite tensor cache ------------------------------------------
    # The suite backend prices a whole batch of jobs through one ragged
    # tensor (:func:`repro.pipeline.suite.pack_suite`).  On a warm tier
    # that tensor is itself a pure function of the batch's analysis
    # entries, so it is memoised here as one flat binary file: a repeat
    # suite run does a single read instead of one ``.npz`` load per job
    # plus a multi-megabyte repack.  Layout (little-endian, validated on
    # read): int64 header ``[njobs, total_n, n_scalars, 0]``, int64
    # per-job column offsets, the int64 ``(njobs, n_scalars)`` scalar
    # matrix (each row a :meth:`TraceEvents.to_arrays` scalar vector),
    # then the concatenated int32 ``(12, total_n)`` column tensor.

    _SUITE_HEADER_FIELDS = 4

    @staticmethod
    def suite_tensor_key(analysis_keys: "list[str] | tuple[str, ...]") -> str:
        """The tensor key for one ordered batch of analysis entries."""
        material = ":".join(analysis_keys) + f":suite-tensor:{ANALYSIS_SCHEMA}"
        return hashlib.sha256(material.encode("ascii")).hexdigest()

    def suite_tensor_path(self, key: str) -> pathlib.Path:
        if len(key) < 3 or not key.isalnum():
            raise ValueError(f"implausible cache key {key!r}")
        return self.directory / "suite" / key[:2] / f"{key}.bin"

    def get_suite_tensor(
        self, key: str
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray] | None":
        """``(columns, offsets, scalars)`` for one batch, or None.

        The returned arrays are read-only views over one buffer:
        ``columns`` is the concatenated ``(12, total_n)`` int32 tensor,
        ``offsets`` the per-job int64 column offsets and ``scalars`` the
        ``(njobs, n_scalars)`` int64 aggregate matrix.
        """
        path = self.suite_tensor_path(key)
        try:
            buf = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError as exc:
            logger.warning("discarding corrupt suite tensor %s: %s", path, exc)
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - unlikely race
                pass
            return None
        try:
            nh = self._SUITE_HEADER_FIELDS
            header = np.frombuffer(buf, dtype=np.int64, count=nh, offset=0)
            njobs, total, n_scalars = (int(v) for v in header[:3])
            if njobs < 0 or total < 0 or n_scalars < 1:
                raise ValueError(f"implausible header {header.tolist()}")
            offset = nh * 8
            offsets = np.frombuffer(buf, np.int64, njobs, offset)
            offset += njobs * 8
            scalars = np.frombuffer(buf, np.int64, njobs * n_scalars, offset)
            offset += njobs * n_scalars * 8
            columns = np.frombuffer(buf, np.int32, 12 * total, offset)
            if len(buf) != offset + 12 * total * 4:
                raise ValueError(f"trailing bytes in {path}")
        except ValueError as exc:
            logger.warning("discarding corrupt suite tensor %s: %s", path, exc)
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - unlikely race
                pass
            return None
        self.stats.hits += 1
        logger.debug("suite tensor hit %s (%d jobs)", key[:12], njobs)
        return (
            columns.reshape(12, total),
            offsets,
            scalars.reshape(njobs, n_scalars),
        )

    def put_suite_tensor(
        self, key: str, columns: np.ndarray, offsets: np.ndarray,
        scalars: np.ndarray,
    ) -> pathlib.Path:
        """Atomically store one batch's packed tensor; returns the path."""
        njobs, n_scalars = scalars.shape
        header = np.array(
            [njobs, columns.shape[1], n_scalars, 0], dtype=np.int64
        )
        path = self.suite_tensor_path(key)
        with atomic_replace(path, mode="wb") as handle:
            handle.write(header.tobytes())
            handle.write(np.ascontiguousarray(offsets, np.int64).tobytes())
            handle.write(np.ascontiguousarray(scalars, np.int64).tobytes())
            handle.write(np.ascontiguousarray(columns, np.int32).tobytes())
        self.stats.writes += 1
        logger.debug("suite tensor write %s -> %s", key[:12], path)
        return path

    def clear(self) -> int:
        """Remove every cache entry (analyses, the trace index and suite
        tensors); returns the number of analysis entries removed."""
        removed = 0
        if not self.directory.exists():
            return removed
        for entry in self.directory.glob("*/*.npz"):
            try:
                entry.unlink()
                removed += 1
            except OSError as exc:  # pragma: no cover - unlikely race
                logger.warning("cache clear failed for %s: %s", entry, exc)
        for pattern in ("traces/*/*.txt", "suite/*/*.bin"):
            for entry in self.directory.glob(pattern):
                try:
                    entry.unlink()
                except OSError as exc:  # pragma: no cover - unlikely race
                    logger.warning("cache clear failed for %s: %s", entry, exc)
        return removed

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.npz"))

    def size_bytes(self) -> int:
        """Total on-disk bytes held by cache entries (best effort)."""
        if not self.directory.exists():
            return 0
        total = 0
        for entry in self.directory.glob("*/*.npz"):
            try:
                total += entry.stat().st_size
            except OSError:  # pragma: no cover - entry vanished mid-scan
                continue
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceEventsCache({str(self.directory)!r}, {self.stats})"
