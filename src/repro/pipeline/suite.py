"""The suite backend: the whole (trace × machine × depth) grid in one call.

The batched backend (:mod:`repro.pipeline.batched`) prices every depth of
ONE (trace, machine) job per kernel entry, so a 55-workload headline run
still crosses the Python/C boundary — and the engine's per-job dispatch
machinery — 55 times.  This module removes that axis too: the columnar
:class:`~repro.pipeline.fastsim.TraceEvents` of every job in a batch are
packed side by side into one ragged tensor (concatenated ``(12, Σn)``
int32 columns, per-job offset/machine descriptor rows, per-(job, depth)
constant rows) and the full (trace × machine × depth) cross-product is
priced by a single invocation of the C kernel's ``run_suite_batched``
entry point — one ``omp parallel for`` over the flattened job×depth
lanes when the kernel was built ``-fopenmp``, a plain serial loop
otherwise.

Lane independence is the same depth-independence argument the batched
backend rests on, extended across jobs: a (job, depth) lane reads only
its own job's column slice and its own scalar state, so the grid is
embarrassingly parallel and the per-lane arithmetic is the exact
``lanes == 1`` specialisation of the batched entry points.  Results are
therefore bit-identical to ``batched`` (hence to ``fast`` and
``reference``), enforced by ``repro validate-kernel --backend suite``
and the hypothesis property tests in ``tests/pipeline/test_suite_kernel``.

When the kernel is unavailable (no compiler, ``REPRO_KERNEL=off``) or a
machine is wider than the kernel supports, callers fall back to the
batched/fast per-job paths — identical results, no batching speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..isa import REGISTER_COUNT
from ._ckernel import (
    JM_AGEN_WIDTH,
    JM_FIELDS,
    JM_IN_ORDER,
    JM_MEMORY_OPS,
    JM_MSHR,
    JM_N,
    JM_OFFSET,
    JM_ROB,
    JM_WIDTH,
    JM_WINDOW,
    NCONST,
    batched_kernel,
    kernel_threads,
)
from .batched import _MAX_KERNEL_WIDTH, BatchedPipelineSimulator, _constants_matrix
from .fastsim import TraceEvents
from .simulator import MachineConfig
from .timing import DepthConstants

__all__ = [
    "SuiteLanes",
    "SuitePipelineSimulator",
    "pack_suite",
    "run_suite",
    "simulate_suite",
]


@dataclass
class SuiteLanes:
    """One job's slice of the ragged suite tensor.

    ``cons_list`` holds one :class:`DepthConstants` per requested depth;
    the job contributes ``len(cons_list)`` lanes to the grid.
    """

    config: MachineConfig
    events: TraceEvents
    cons_list: List[DepthConstants]


def pack_suite(jobs: Sequence[SuiteLanes], prepacked: "np.ndarray | None" = None):
    """Assemble the ragged tensor for one kernel invocation.

    Returns ``(columns, job_rows, lane_job, cons)``: the concatenated
    ``(12, Σn)`` int32 event tensor, the ``(njobs, JM_FIELDS)`` int64
    descriptor matrix, the per-lane job index vector and the per-lane
    constant rows, in job submission order.

    ``prepacked`` supplies an already-concatenated column tensor whose
    job slices match ``jobs`` in order — e.g. the events cache's suite
    tensor entry, or the tensor a previous :func:`pack_suite` call built
    — and skips the per-job copy, the expensive part of packing.
    """
    total = sum(job.events.n for job in jobs)
    if prepacked is not None:
        if prepacked.shape != (12, total):
            raise ValueError(
                f"prepacked tensor shape {prepacked.shape} != (12, {total})"
            )
        columns = prepacked
    else:
        columns = np.empty((12, total), dtype=np.int32)
    job_rows = np.zeros((len(jobs), JM_FIELDS), dtype=np.int64)
    lane_job = np.empty(sum(len(job.cons_list) for job in jobs), dtype=np.int64)
    cons_blocks = []
    offset = 0
    lane = 0
    for index, job in enumerate(jobs):
        events, cfg = job.events, job.config
        if prepacked is None:
            columns[:, offset : offset + events.n] = events.columns
        row = job_rows[index]
        row[JM_OFFSET] = offset
        row[JM_N] = events.n
        row[JM_WIDTH] = cfg.issue_width
        row[JM_AGEN_WIDTH] = cfg.agen_width
        row[JM_MSHR] = cfg.mshr_entries
        row[JM_WINDOW] = cfg.issue_window
        row[JM_ROB] = cfg.rob_size
        row[JM_IN_ORDER] = int(cfg.in_order)
        row[JM_MEMORY_OPS] = events.memory_ops
        cons_blocks.append(_constants_matrix(job.cons_list, cfg.in_order))
        lane_job[lane : lane + len(job.cons_list)] = index
        lane += len(job.cons_list)
        offset += events.n
    if cons_blocks:
        cons = np.ascontiguousarray(np.concatenate(cons_blocks, axis=0))
    else:
        cons = np.zeros((0, NCONST), dtype=np.int64)
    return columns, job_rows, lane_job, cons


def run_suite(
    jobs: Sequence[SuiteLanes],
    threads: "Optional[int]" = None,
    prepacked: "np.ndarray | None" = None,
) -> "Optional[List[np.ndarray]]":
    """Price every job's depth lanes through one kernel call.

    Returns one ``(len(cons_list), 4)`` raw-output matrix per job (the
    batched kernel's ``(cycles, issue_cycles, agen_occ, exec_occ)`` rows),
    or None when the kernel cannot run this batch (disabled, no compiler,
    or a machine wider than the kernel supports) — callers then fall back
    to the per-job batched/fast paths.  ``prepacked`` is forwarded to
    :func:`pack_suite`.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    if any(job.config.issue_width > _MAX_KERNEL_WIDTH for job in jobs):
        return None
    kernel = batched_kernel()
    if kernel is None:
        return None
    columns, job_rows, lane_job, cons = pack_suite(jobs, prepacked=prepacked)
    if threads is None:
        threads = kernel_threads()
    out = kernel.run_suite(
        columns, job_rows, lane_job, cons, REGISTER_COUNT, threads=threads
    )
    split: List[np.ndarray] = []
    lane = 0
    for job in jobs:
        split.append(out[lane : lane + len(job.cons_list)])
        lane += len(job.cons_list)
    return split


class SuitePipelineSimulator(BatchedPipelineSimulator):
    """Per-job facade over the suite kernel.

    A lone (trace, machine) sweep is a one-job ragged batch, so this
    simulator exists mostly to give ``backend="suite"`` the same
    simulator-shaped surface every other backend has (serving, fuzzing,
    ``validate-kernel``); the cross-job win comes from the engine
    scheduler packing many jobs into one :func:`run_suite` call via
    :func:`repro.engine.worker.execute_suite_batch`.  Falls back exactly
    like the batched backend when the kernel cannot run.
    """

    def _run_batched(self, events: TraceEvents, cons_list: List[DepthConstants]):
        raw = run_suite([SuiteLanes(self.config, events, cons_list)])
        return None if raw is None else raw[0]


def simulate_suite(trace, depth, config=None):
    """Module-level convenience wrapper around :class:`SuitePipelineSimulator`."""
    return SuitePipelineSimulator(config).simulate(trace, depth)
