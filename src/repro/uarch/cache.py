"""Set-associative LRU cache substrate.

Caches supply the second hazard family of the depth study: a miss costs a
fixed *absolute* latency (FO4 delays, i.e. wall-clock), which converts to
more stall *cycles* as pipelines deepen and cycle times shrink — the same
``~beta * (t_o*p + t_p)`` time form the theory assumes.  The simulator
instantiates one instruction cache and one data cache per run.

The implementation favours clarity and determinism over raw speed: a
per-set list of tags in LRU order (most recent last).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheConfig", "Cache", "CacheStats"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a set-associative cache.

    Attributes:
        size: total capacity in bytes.
        line_size: bytes per line (power of two).
        associativity: ways per set.
        miss_latency_fo4: absolute miss penalty in FO4 delays (converted
            to cycles by the simulator via the current cycle time).
    """

    size: int = 64 * 1024
    line_size: int = 128
    associativity: int = 4
    miss_latency_fo4: float = 400.0

    def __post_init__(self) -> None:
        if self.line_size < 1 or self.line_size & (self.line_size - 1):
            raise ValueError(f"line_size must be a positive power of two, got {self.line_size!r}")
        if self.associativity < 1:
            raise ValueError(f"associativity must be >= 1, got {self.associativity!r}")
        if self.size < self.line_size * self.associativity:
            raise ValueError(
                f"size {self.size} cannot hold even one set of "
                f"{self.associativity} lines of {self.line_size} bytes"
            )
        if self.size % (self.line_size * self.associativity) != 0:
            raise ValueError("size must be a whole number of sets")
        if self.miss_latency_fo4 < 0:
            raise ValueError(f"miss_latency_fo4 must be >= 0, got {self.miss_latency_fo4!r}")

    @property
    def sets(self) -> int:
        return self.size // (self.line_size * self.associativity)


@dataclass
class CacheStats:
    """Running access/miss counts."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative LRU cache with hit/miss accounting.

    ``access(address)`` returns True on hit and installs the line on miss.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self._sets: list[list[int]] = [[] for _ in range(config.sets)]
        self._set_mask = config.sets - 1
        self._power_of_two_sets = config.sets & (config.sets - 1) == 0
        self._line_shift = config.line_size.bit_length() - 1

    def _locate(self, address: int) -> tuple[list[int], int]:
        line = address >> self._line_shift
        if self._power_of_two_sets:
            index = line & self._set_mask
        else:
            index = line % self.config.sets
        return self._sets[index], line

    def access(self, address: int) -> bool:
        """Reference ``address``; returns True on hit.

        On miss the line is installed, evicting the least recently used
        way if the set is full.  On hit the line becomes most recent.
        """
        ways, line = self._locate(address)
        self.stats.accesses += 1
        try:
            ways.remove(line)
        except ValueError:
            self.stats.misses += 1
            if len(ways) >= self.config.associativity:
                ways.pop(0)
            ways.append(line)
            return False
        ways.append(line)
        return True

    def probe(self, address: int) -> bool:
        """Hit check without state change or accounting."""
        ways, line = self._locate(address)
        return line in ways

    def reset(self) -> None:
        """Invalidate all lines and zero the statistics."""
        for ways in self._sets:
            ways.clear()
        self.stats = CacheStats()
