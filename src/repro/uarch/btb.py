"""Branch target buffer substrate.

Direction prediction alone is not enough to keep the front end streaming:
on a predicted-taken branch the fetch unit also needs the *target*
address before decode can supply it.  A BTB caches targets by branch PC;
a BTB miss on a taken branch costs a front-end redirect bubble equal to
the decode depth — one more hazard whose penalty grows with pipeline
depth, most relevant for big-footprint (legacy/OLTP) code whose branch
population overflows the table.

The default machine configuration uses a *perfect* BTB (``entries=None``
in :class:`~repro.pipeline.simulator.MachineConfig`), matching the
calibration used for the paper reproduction; a finite BTB is an optional
realism knob exercised by tests and available for studies.
"""

from __future__ import annotations

__all__ = ["BranchTargetBuffer"]


class BranchTargetBuffer:
    """A direct-mapped tag-checked target cache.

    ``lookup_and_update(pc)`` returns True when the branch's target was
    available at fetch (BTB hit) and installs/refreshes the entry either
    way — dynamic branches train their own slots, and aliasing between
    branches that share a slot produces the capacity behaviour large
    branch populations see.
    """

    def __init__(self, entries: int = 4096):
        if entries < 1 or entries & (entries - 1):
            raise ValueError(f"entries must be a positive power of two, got {entries!r}")
        self._mask = entries - 1
        self._tags = [-1] * entries
        self.hits = 0
        self.misses = 0

    def _index_tag(self, pc: int) -> tuple[int, int]:
        word = pc >> 2
        return word & self._mask, word >> self._mask.bit_length()

    def lookup_and_update(self, pc: int) -> bool:
        """True on hit; installs the entry on miss."""
        index, tag = self._index_tag(pc)
        if self._tags[index] == tag:
            self.hits += 1
            return True
        self.misses += 1
        self._tags[index] = tag
        return False

    def probe(self, pc: int) -> bool:
        """Hit check without installation or accounting."""
        index, tag = self._index_tag(pc)
        return self._tags[index] == tag

    def reset(self) -> None:
        self._tags = [-1] * (self._mask + 1)
        self.hits = 0
        self.misses = 0

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
