"""Branch prediction substrate.

The hazard that dominates the optimum-depth problem is the branch
misprediction: its penalty is a front-end refill whose *time* cost is
``(front-end stages) * t_s ~ beta * (t_o*p + t_p)`` — exactly the form of
the theory's hazard term.  The simulator therefore needs a predictor whose
accuracy responds to the workload's branch-site population and bias, which
this module provides in two flavours:

* :class:`BimodalPredictor` — a classic table of 2-bit saturating
  counters indexed by PC.
* :class:`GsharePredictor` — 2-bit counters indexed by PC xor global
  history; better on correlated branches, colder on huge branch
  populations (legacy/OLTP code).

Both implement :class:`BranchPredictor`: ``predict(pc) -> bool`` then
``update(pc, taken)``; the convenience :meth:`BranchPredictor.observe`
does predict-then-update and returns whether the prediction was correct.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["BranchPredictor", "BimodalPredictor", "GsharePredictor", "StaticTakenPredictor"]


class BranchPredictor(abc.ABC):
    """Interface: direction prediction with post-resolution update."""

    @abc.abstractmethod
    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool) -> None:
        """Train with the resolved outcome."""

    def observe(self, pc: int, taken: bool) -> bool:
        """Predict, train, and return True when the prediction was correct."""
        correct = self.predict(pc) == taken
        self.update(pc, taken)
        return correct

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all training state."""


class StaticTakenPredictor(BranchPredictor):
    """Predict every branch taken — the degenerate baseline."""

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass

    def reset(self) -> None:
        pass


class BimodalPredictor(BranchPredictor):
    """A table of 2-bit saturating counters indexed by instruction address.

    Counter states 0/1 predict not-taken, 2/3 predict taken; update
    saturates toward the observed direction.  Table size must be a power
    of two.
    """

    def __init__(self, entries: int = 4096):
        if entries < 1 or entries & (entries - 1):
            raise ValueError(f"entries must be a positive power of two, got {entries!r}")
        self._mask = entries - 1
        self._table = np.full(entries, 2, dtype=np.int8)  # weakly taken

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        return bool(self._table[self._index(pc)] >= 2)

    def update(self, pc: int, taken: bool) -> None:
        i = self._index(pc)
        counter = self._table[i]
        if taken:
            if counter < 3:
                self._table[i] = counter + 1
        elif counter > 0:
            self._table[i] = counter - 1

    def reset(self) -> None:
        self._table.fill(2)


class GsharePredictor(BranchPredictor):
    """2-bit counters indexed by (PC xor global branch history).

    Args:
        entries: counter table size (power of two).
        history_bits: global history length; clamped to the index width.
    """

    def __init__(self, entries: int = 4096, history_bits: int = 8):
        if entries < 1 or entries & (entries - 1):
            raise ValueError(f"entries must be a positive power of two, got {entries!r}")
        if history_bits < 1:
            raise ValueError(f"history_bits must be >= 1, got {history_bits!r}")
        self._mask = entries - 1
        self._history_mask = (1 << min(history_bits, entries.bit_length() - 1)) - 1
        self._history = 0
        self._table = np.full(entries, 2, dtype=np.int8)

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return bool(self._table[self._index(pc)] >= 2)

    def update(self, pc: int, taken: bool) -> None:
        i = self._index(pc)
        counter = self._table[i]
        if taken:
            if counter < 3:
                self._table[i] = counter + 1
        elif counter > 0:
            self._table[i] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    def reset(self) -> None:
        self._table.fill(2)
        self._history = 0
