"""Microarchitectural substrates: branch predictors and caches."""

from .branch_predictor import (
    BimodalPredictor,
    BranchPredictor,
    GsharePredictor,
    StaticTakenPredictor,
)
from .btb import BranchTargetBuffer
from .cache import Cache, CacheConfig, CacheStats

__all__ = [
    "BranchPredictor",
    "BimodalPredictor",
    "GsharePredictor",
    "StaticTakenPredictor",
    "BranchTargetBuffer",
    "Cache",
    "CacheConfig",
    "CacheStats",
]
