"""The engine's unit of work and its content-addressed identity.

A :class:`SimJob` names one batch of simulations — *one workload at a set
of pipeline depths on one machine configuration* — which is exactly the
granularity every consumer (depth sweeps, the figure experiments, the
batch CLI) needs, and the granularity at which results are cached.

The cache key is a SHA-256 over a canonical JSON encoding of everything
that can change a simulation's outcome:

* the complete :class:`~repro.trace.spec.WorkloadSpec` (the trace
  generator is deterministic in (spec, length), so the spec stands in for
  the trace itself);
* the complete :class:`~repro.pipeline.simulator.MachineConfig`,
  including nested cache geometries and technology constants;
* the depth set, trace length and simulation backend (the fast kernel
  and the reference interpreter are validated equivalent, but the key
  still separates them so a backend bug can never poison the other
  backend's cache entries);
* ``repro.__version__`` and the payload schema number, so upgrading the
  code or the on-disk format invalidates every stale entry by
  construction rather than by bookkeeping.

Canonicalisation is field-order independent (mappings are key-sorted),
enums are encoded by name, and floats rely on JSON's shortest-round-trip
representation, so equal configurations hash equally across processes and
sessions — the property the cross-process determinism test in
``tests/trace/test_determinism.py`` guards.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Tuple

from ..fingerprint import canonical_fingerprint
from ..pipeline.fastsim import BACKENDS, DEFAULT_BACKEND
from ..pipeline.results import SimulationResult
from ..pipeline.simulator import MachineConfig
from ..trace.spec import WorkloadSpec

__all__ = ["CACHE_SCHEMA", "SimJob", "JobResult", "canonical_fingerprint"]

CACHE_SCHEMA = 1
"""On-disk payload schema number; bump on incompatible format changes."""


def _code_version() -> str:
    # Read dynamically (not captured at import) so tests can patch
    # ``repro.__version__`` to exercise version invalidation.
    from .. import __version__

    return __version__


@dataclass(frozen=True)
class SimJob:
    """One workload simulated at a set of depths on one machine.

    Attributes:
        spec: the workload to generate and simulate.
        depths: strictly ascending pipeline depths to simulate.
        trace_length: dynamic instructions to generate.
        machine: the machine configuration (constant across depths).
        backend: simulation backend — ``"reference"`` (the step-wise
            interpreter), ``"fast"`` (the event-precomputing kernel, one
            trace analysis shared by all depths), ``"batched"`` (the
            depth-batched kernel: one analysis *and* one timing pass
            pricing every depth together), ``"suite"`` (the cross-job
            tensor kernel: the scheduler packs every pending suite job
            of a run into one ragged-batch kernel call) or ``"cycle"``
            (the independent cycle-accurate state machine).
    """

    spec: WorkloadSpec
    depths: Tuple[int, ...]
    trace_length: int = 8000
    machine: MachineConfig = field(default_factory=MachineConfig)
    backend: str = DEFAULT_BACKEND

    def __post_init__(self) -> None:
        depths = tuple(int(d) for d in self.depths)
        object.__setattr__(self, "depths", depths)
        if not depths:
            raise ValueError("a job needs at least one depth")
        if list(depths) != sorted(set(depths)):
            raise ValueError(f"depths must be strictly ascending, got {depths}")
        if self.trace_length < 1:
            raise ValueError(f"trace_length must be >= 1, got {self.trace_length!r}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )

    @property
    def name(self) -> str:
        return self.spec.name

    def fingerprint(self) -> dict:
        """The canonical identity dict the cache key is hashed from.

        The canonical walks over the (frozen) spec and machine dominate
        the cost and are memoised per instance — the scheduler, the
        payload builder and the payload validator each key the same job,
        and a suite batch keys every job in one pass.  The code version
        is re-read on every call so patching ``repro.__version__`` still
        invalidates, and the outer dict is always fresh.
        """
        parts = self.__dict__.get("_canonical_parts")
        if parts is None:
            parts = (
                canonical_fingerprint(self.spec),
                canonical_fingerprint(self.machine),
            )
            object.__setattr__(self, "_canonical_parts", parts)
        spec_fp, machine_fp = parts
        return {
            "schema": CACHE_SCHEMA,
            "version": _code_version(),
            "spec": spec_fp,
            "machine": machine_fp,
            "depths": list(self.depths),
            "trace_length": self.trace_length,
            "backend": self.backend,
        }

    def cache_key(self) -> str:
        """Content-addressed key: SHA-256 hex of the canonical fingerprint.

        Memoised per (instance, code version): the scheduler, the payload
        builder and the payload validator each key the same job.  The memo
        is keyed on ``repro.__version__`` so patching the version (as the
        cache-invalidation tests do) still yields a fresh key.
        """
        version = _code_version()
        cached = self.__dict__.get("_cache_key")
        if cached is not None and cached[0] == version:
            return cached[1]
        encoded = json.dumps(
            self.fingerprint(), sort_keys=True, separators=(",", ":")
        )
        key = hashlib.sha256(encoded.encode("utf-8")).hexdigest()
        object.__setattr__(self, "_cache_key", (version, key))
        return key


@dataclass(frozen=True)
class JobResult:
    """One executed (or cache-served) job with provenance.

    Attributes:
        job: the job this result answers.
        key: the job's cache key at execution time.
        results: one :class:`SimulationResult` per ``job.depths`` entry,
            in depth order.
        cache_hit: True when served from the result cache.
        duration: wall seconds spent resolving this job (near zero for
            cache hits).
        attempts: execution attempts consumed (0 for cache hits).
    """

    job: SimJob
    key: str
    results: Tuple[SimulationResult, ...]
    cache_hit: bool
    duration: float
    attempts: int

    def __post_init__(self) -> None:
        if len(self.results) != len(self.job.depths):
            raise ValueError(
                f"job {self.job.name!r} expects {len(self.job.depths)} results, "
                f"got {len(self.results)}"
            )

    def result_at(self, depth: int) -> SimulationResult:
        try:
            return self.results[self.job.depths.index(depth)]
        except ValueError:
            raise KeyError(f"depth {depth} not in job {self.job.depths}") from None
