"""On-disk content-addressed result cache.

Layout: one JSON file per cache key under ``<dir>/<key[:2]>/<key>.json``
(two-level sharding keeps directories small over thousands of entries).

Guarantees:

* **atomic writes** — payloads go through
  :func:`repro.atomicio.atomic_replace` (uniquely named same-directory
  temp file, fsync, one ``os.replace``): readers never observe a partial
  entry, even across a crash mid-write;
* **corruption tolerance** — unreadable or undecodable entries are logged,
  deleted (best effort) and reported as misses, never raised;
* **implicit invalidation** — keys embed ``repro.__version__``, the
  payload schema and every simulation parameter, so stale entries simply
  stop being addressed; :meth:`ResultCache.clear` reclaims the space
  explicitly.

The default location comes from the active
:class:`~repro.runtime.config.RuntimeConfig` (``$REPRO_CACHE_DIR`` then
``$XDG_CACHE_HOME``, falling back to ``~/.cache/repro/engine``).
"""

from __future__ import annotations

import json
import logging
import pathlib
from dataclasses import dataclass

from ..atomicio import atomic_replace

__all__ = ["CacheStats", "ResultCache", "default_cache_dir"]

logger = logging.getLogger("repro.engine.cache")


def default_cache_dir() -> pathlib.Path:
    """Resolve the cache directory from the active runtime config."""
    from ..runtime.config import default_cache_dir as _runtime_default

    return _runtime_default()


@dataclass
class CacheStats:
    """Counters accumulated over one cache's lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    def __str__(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.writes} writes, {self.corrupt} corrupt"
        )


class ResultCache:
    """Content-addressed JSON payload store with atomic writes."""

    def __init__(self, directory: "str | pathlib.Path"):
        self.directory = pathlib.Path(directory).expanduser()
        self.stats = CacheStats()

    def path_for(self, key: str) -> pathlib.Path:
        if len(key) < 3 or not key.isalnum():
            raise ValueError(f"implausible cache key {key!r}")
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> "dict | None":
        """The payload stored under ``key``, or None (missing or corrupt)."""
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError as exc:
            logger.warning("cache read failed for %s: %s", path, exc)
            self.stats.misses += 1
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError(f"expected an object, got {type(payload).__name__}")
        except ValueError as exc:
            logger.warning("discarding corrupt cache entry %s: %s", path, exc)
            self.stats.corrupt += 1
            self.stats.misses += 1
            self.invalidate(key)
            return None
        self.stats.hits += 1
        logger.debug("cache hit %s", key[:12])
        return payload

    def put(self, key: str, payload: dict) -> pathlib.Path:
        """Atomically store ``payload`` under ``key``; returns the entry path.

        Crash- and concurrency-safe via
        :func:`repro.atomicio.atomic_replace`: a reader sees either the
        old complete entry or the new complete entry, never a torn one,
        even if the writer dies mid-write.
        """
        path = self.path_for(key)
        # durable=False: ``get`` discards (and invalidates) entries that
        # fail to parse, so a file garbled by a power loss degrades to a
        # cache miss — per-entry fsync would buy nothing but latency.
        with atomic_replace(path, encoding="utf-8", durable=False) as handle:
            handle.write(json.dumps(payload, sort_keys=True, separators=(",", ":")))
        self.stats.writes += 1
        logger.debug("cache write %s -> %s", key[:12], path)
        return path

    def invalidate(self, key: str) -> None:
        """Best-effort removal of one entry."""
        try:
            self.path_for(key).unlink(missing_ok=True)
        except OSError as exc:  # pragma: no cover - unlikely race
            logger.warning("cache invalidation failed for %s: %s", key[:12], exc)

    def clear(self) -> int:
        """Remove every cache entry; returns the number removed."""
        removed = 0
        if not self.directory.exists():
            return removed
        for entry in self.directory.glob("*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError as exc:  # pragma: no cover - unlikely race
                logger.warning("cache clear failed for %s: %s", entry, exc)
        return removed

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def size_bytes(self) -> int:
        """Total on-disk bytes held by cache entries (best effort)."""
        if not self.directory.exists():
            return 0
        total = 0
        for entry in self.directory.glob("*/*.json"):
            try:
                total += entry.stat().st_size
            except OSError:  # pragma: no cover - entry vanished mid-scan
                continue
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultCache({str(self.directory)!r}, {self.stats})"
