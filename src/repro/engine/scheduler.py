"""The batch scheduler: cache-first, process-parallel, deterministic.

Resolution pipeline for each submitted job:

1. **cache lookup** — through the shared
   :class:`~repro.runtime.resolver.Resolver` (the same tier stack the
   daemon and CLI use, run disk-first here): a valid payload under the
   job's content key is reconstructed and returned without touching a
   worker;
2. **execution** — misses run through the configured runner, inline when
   ``workers <= 1`` or on a ``ProcessPoolExecutor`` otherwise;
3. **retry** — a failed attempt (worker exception, broken pool, result
   timeout) is retried up to ``retries`` more times; a pool poisoned by a
   timeout or crash is rebuilt between rounds;
4. **store** — freshly computed payloads are written back atomically.

Determinism: results are returned in submission order, and both execution
paths hand back the same normal-form payload dict, so a parallel run is
bit-identical to a serial one and to a warm-cache one.

Suite-backend jobs short-circuit step 2: every pending ``suite`` job in a
run is packed into one ragged event tensor and priced by a single
in-process kernel call (:func:`repro.engine.worker.execute_suite_batch`),
then fanned back out into the result cache per job — a manifest of suite
jobs degenerates to "partition by cache hit → one kernel call → cache
fan-out", while non-suite jobs keep the inline/parallel paths below.

Timeouts bound the *wait for a job's result*; a worker that is already
stuck cannot be interrupted mid-simulation, so on timeout the whole pool
is cancelled and rebuilt for the retry round.  Inline (``workers <= 1``)
execution cannot honour timeouts and logs that once per run.
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, TextIO, Tuple

from ..pipeline.fastsim import DEFAULT_BACKEND
from ..pipeline.simulator import MachineConfig
from ..runtime.resolver import Resolver
from ..trace.spec import WorkloadSpec
from .job import JobResult, SimJob
from .report import JobRecord, ProgressReporter, RunReport
from .serialize import PayloadError, results_from_payload
from .worker import execute_job

__all__ = [
    "EngineConfig",
    "ExecutionEngine",
    "JobExecutionError",
    "default_engine",
    "jobs_for_specs",
]

logger = logging.getLogger("repro.engine.scheduler")

Runner = Callable[[SimJob], dict]


class JobExecutionError(RuntimeError):
    """A job exhausted its retry budget."""

    def __init__(self, job: SimJob, attempts: int, cause: BaseException):
        super().__init__(
            f"job {job.name!r} failed after {attempts} attempt(s): {cause!r}"
        )
        self.job = job
        self.attempts = attempts
        self.cause = cause


@dataclass(frozen=True)
class EngineConfig:
    """Scheduler knobs.

    Attributes:
        workers: process count; ``<= 1`` executes inline in this process.
        cache_dir: result-cache directory, or None to disable caching.
        timeout: seconds to wait for one job's result (parallel mode only).
        retries: extra attempts after a failed first attempt.
        progress: emit ``[k/N]`` progress lines while resolving jobs.
    """

    workers: int = 1
    cache_dir: "str | Path | None" = None
    timeout: "float | None" = None
    retries: int = 1
    progress: bool = False

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers!r}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout!r}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries!r}")


def jobs_for_specs(
    specs: Sequence[WorkloadSpec],
    depths: Sequence[int],
    trace_length: int = 8000,
    machine: "MachineConfig | None" = None,
    backend: str = DEFAULT_BACKEND,
) -> List[SimJob]:
    """One :class:`SimJob` per workload, sharing depths/length/machine/backend."""
    machine = machine or MachineConfig()
    depths = tuple(int(d) for d in depths)
    return [
        SimJob(
            spec=spec,
            depths=depths,
            trace_length=trace_length,
            machine=machine,
            backend=backend,
        )
        for spec in specs
    ]


class ExecutionEngine:
    """Runs batches of :class:`SimJob`\\ s and keeps the books.

    One engine instance owns one :class:`~repro.runtime.resolver.Resolver`
    (disk-only by default — batch runs gain nothing from a payload LRU)
    and one :class:`RunReport`; share a single engine across an
    evaluation so the report aggregates every figure's jobs and repeated
    sweeps dedupe through the cache.  ``self.cache`` remains the
    resolver's disk tier for callers that inspect or clear it directly.
    """

    def __init__(
        self,
        config: "EngineConfig | None" = None,
        stream: "Optional[TextIO]" = None,
        resolver: "Resolver | None" = None,
    ):
        self.config = config or EngineConfig()
        self.resolver = resolver or Resolver(
            cache_dir=self.config.cache_dir, memory_entries=0
        )
        self.cache = self.resolver.disk
        self.report = RunReport()
        self.stream = stream
        self._warned_inline_timeout = False

    # -- public API ---------------------------------------------------------
    def run(self, jobs: Sequence[SimJob], runner: Runner = execute_job) -> List[JobResult]:
        """Resolve every job; returns results in submission order.

        Raises:
            JobExecutionError: a job kept failing after all retries.
        """
        jobs = list(jobs)
        started = time.perf_counter()
        keys = [job.cache_key() for job in jobs]
        slots: List["JobResult | None"] = [None] * len(jobs)
        progress = (
            ProgressReporter(len(jobs), self.stream) if self.config.progress else None
        )

        pending: List[int] = []
        for index, (job, key) in enumerate(zip(jobs, keys)):
            resolved = self._from_cache(job, key)
            if resolved is None:
                pending.append(index)
            else:
                slots[index] = resolved
                self._record(resolved, progress)

        try:
            if pending:
                logger.info(
                    "running %d/%d jobs (%d cache hits) on %d worker(s)",
                    len(pending), len(jobs), len(jobs) - len(pending),
                    max(self.config.workers, 1),
                )
                # Suite-backend misses degenerate to one kernel call:
                # every pending suite job is packed into a single ragged
                # tensor and priced together, then fanned back out into
                # the cache per job.  Only the default runner understands
                # the suite batch contract; injected runners keep per-job
                # control of every backend.
                suite_pending: List[int] = []
                rest = pending
                if runner is execute_job:
                    suite_pending = [
                        i for i in pending if jobs[i].backend == "suite"
                    ]
                    rest = [i for i in pending if jobs[i].backend != "suite"]
                if suite_pending:
                    self._run_suite(jobs, keys, suite_pending, slots, progress)
                if rest:
                    if self.config.workers > 1 and len(rest) > 1:
                        self._run_parallel(jobs, keys, rest, slots, runner, progress)
                    else:
                        self._run_inline(jobs, keys, rest, slots, runner, progress)
        finally:
            self.report.wall_time += time.perf_counter() - started
        return [slot for slot in slots if slot is not None]

    def run_specs(
        self,
        specs: Sequence[WorkloadSpec],
        depths: Sequence[int],
        trace_length: int = 8000,
        machine: "MachineConfig | None" = None,
    ) -> List[JobResult]:
        """Convenience: build and run one job per workload spec."""
        return self.run(jobs_for_specs(specs, depths, trace_length, machine))

    # -- cache --------------------------------------------------------------
    def _from_cache(self, job: SimJob, key: str) -> "JobResult | None":
        if self.cache is None:
            return None
        started = time.perf_counter()
        found = self.resolver.lookup(job, key)
        if found is None:
            return None
        try:
            results = results_from_payload(found.payload, job)
        except PayloadError as exc:
            logger.warning("invalid cache payload for %s (%s); recomputing", job.name, exc)
            self.cache.stats.corrupt += 1
            self.resolver.invalidate(key)
            return None
        return JobResult(
            job=job,
            key=key,
            results=results,
            cache_hit=True,
            duration=time.perf_counter() - started,
            attempts=0,
        )

    def _finish(
        self, job: SimJob, key: str, payload: dict, duration: float, attempts: int
    ) -> JobResult:
        results = results_from_payload(payload, job)  # validates worker output too
        self.resolver.record_computed(duration)
        if self.cache is not None:
            # Resolver.store degrades disk-write failures (unwritable dir,
            # disk full) to a warning — the simulation already succeeded,
            # so the run continues uncached.
            self.resolver.store(key, payload)
        return JobResult(
            job=job,
            key=key,
            results=results,
            cache_hit=False,
            duration=duration,
            attempts=attempts,
        )

    def _record(self, result: JobResult, progress: "ProgressReporter | None") -> None:
        record = JobRecord(
            name=result.job.name,
            key=result.key,
            cache_hit=result.cache_hit,
            duration=result.duration,
            attempts=result.attempts,
        )
        self.report.add(record)
        if progress is not None:
            progress.update(record)

    def _record_failure(
        self,
        job: SimJob,
        key: str,
        duration: float,
        attempts: int,
        error: BaseException,
        progress: "ProgressReporter | None",
    ) -> None:
        record = JobRecord(
            name=job.name,
            key=key,
            cache_hit=False,
            duration=duration,
            attempts=attempts,
            error=repr(error),
        )
        self.report.add(record)
        if progress is not None:
            progress.update(record)

    # -- suite batch execution ----------------------------------------------
    def _run_suite(self, jobs, keys, pending, slots, progress) -> None:
        """Every pending suite job through one in-process kernel call.

        The batch is retried as a unit (the kernel either prices every
        lane or none); per-job timeouts cannot be enforced for an
        in-process call, mirroring inline execution.  Each job's payload
        is validated, stored and reported individually, with the batch
        wall time attributed evenly so ``RunReport`` totals stay
        meaningful.  The kernel is only compiled/loaded here — a fully
        cache-hit run never reaches this method.
        """
        from .worker import execute_suite_batch

        if self.config.timeout is not None and not self._warned_inline_timeout:
            logger.debug("per-job timeout is not enforced for suite batches")
            self._warned_inline_timeout = True
        batch = [jobs[index] for index in pending]
        max_attempts = self.config.retries + 1
        started = time.perf_counter()
        last_error: "BaseException | None" = None
        for attempt in range(1, max_attempts + 1):
            try:
                payloads = execute_suite_batch(
                    batch, events_cache=self.resolver.events
                )
            except Exception as exc:
                last_error = exc
                logger.warning(
                    "suite batch of %d job(s) attempt %d/%d failed: %r",
                    len(batch), attempt, max_attempts, exc,
                )
                continue
            share = (time.perf_counter() - started) / len(pending)
            for index, payload in zip(pending, payloads):
                slots[index] = self._finish(
                    jobs[index], keys[index], payload, share, attempt
                )
                self._record(slots[index], progress)
            return
        duration = time.perf_counter() - started
        job, key = jobs[pending[0]], keys[pending[0]]
        self._record_failure(job, key, duration, max_attempts, last_error, progress)
        raise JobExecutionError(job, max_attempts, last_error)

    # -- inline execution ---------------------------------------------------
    def _run_inline(self, jobs, keys, pending, slots, runner, progress) -> None:
        if self.config.timeout is not None and not self._warned_inline_timeout:
            logger.debug("per-job timeout is not enforced for inline execution")
            self._warned_inline_timeout = True
        max_attempts = self.config.retries + 1
        for index in pending:
            job, key = jobs[index], keys[index]
            started = time.perf_counter()
            last_error: "BaseException | None" = None
            for attempt in range(1, max_attempts + 1):
                try:
                    payload = runner(job)
                    slots[index] = self._finish(
                        job, key, payload, time.perf_counter() - started, attempt
                    )
                    self._record(slots[index], progress)
                    last_error = None
                    break
                except Exception as exc:
                    last_error = exc
                    logger.warning(
                        "job %s attempt %d/%d failed: %r",
                        job.name, attempt, max_attempts, exc,
                    )
            if last_error is not None:
                duration = time.perf_counter() - started
                self._record_failure(
                    job, key, duration, max_attempts, last_error, progress
                )
                raise JobExecutionError(job, max_attempts, last_error)

    # -- parallel execution -------------------------------------------------
    def _run_parallel(self, jobs, keys, pending, slots, runner, progress) -> None:
        max_attempts = self.config.retries + 1
        workers = min(self.config.workers, len(pending))
        pool = ProcessPoolExecutor(max_workers=workers)
        started_at: Dict[int, float] = {index: time.perf_counter() for index in pending}
        to_run = list(pending)
        attempt = 1
        try:
            while to_run:
                futures = {index: pool.submit(runner, jobs[index]) for index in to_run}
                failed: List[Tuple[int, BaseException]] = []
                poisoned = False
                for index in to_run:  # submission order => deterministic results
                    job, key = jobs[index], keys[index]
                    try:
                        payload = futures[index].result(timeout=self.config.timeout)
                    except FutureTimeoutError:
                        logger.warning(
                            "job %s timed out after %.1fs (attempt %d/%d)",
                            job.name, self.config.timeout, attempt, max_attempts,
                        )
                        failed.append((index, TimeoutError(
                            f"no result within {self.config.timeout}s"
                        )))
                        poisoned = True
                    except BrokenProcessPool as exc:
                        logger.warning(
                            "worker pool broke on job %s (attempt %d/%d): %r",
                            job.name, attempt, max_attempts, exc,
                        )
                        failed.append((index, exc))
                        poisoned = True
                    except Exception as exc:
                        logger.warning(
                            "job %s attempt %d/%d failed: %r",
                            job.name, attempt, max_attempts, exc,
                        )
                        failed.append((index, exc))
                    else:
                        duration = time.perf_counter() - started_at[index]
                        slots[index] = self._finish(job, key, payload, duration, attempt)
                        self._record(slots[index], progress)

                if failed and attempt >= max_attempts:
                    index, error = failed[0]
                    job, key = jobs[index], keys[index]
                    duration = time.perf_counter() - started_at[index]
                    self._record_failure(
                        job, key, duration, max_attempts, error, progress
                    )
                    raise JobExecutionError(job, max_attempts, error)

                if poisoned:
                    # A hung or crashed worker taints the pool; rebuild it
                    # for the retry round rather than inherit its state.
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(
                        max_workers=min(workers, max(len(failed), 1))
                    )
                to_run = [index for index, _error in failed]
                attempt += 1
        finally:
            pool.shutdown(wait=False, cancel_futures=True)


def default_engine() -> ExecutionEngine:
    """The fallback engine: serial, uncached, silent.

    Library entry points that accept ``engine=None`` use this so their
    behaviour (and output) matches the historical direct implementation.
    """
    return ExecutionEngine(EngineConfig(workers=1, cache_dir=None))
