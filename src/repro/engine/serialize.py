"""Payload (de)serialisation between jobs, workers and the cache.

The on-disk and cross-process interchange format is a plain JSON dict —
the *payload* — holding one serialised
:class:`~repro.pipeline.results.SimulationResult` per depth.  Only the
measured quantities are stored; derived structures (the stage plan, the
power reports, leakage calibration) are recomputed deterministically on
reconstruction, which keeps payloads small and lets one cached simulation
serve both per-workload and suite-global power calibrations.

JSON's shortest-round-trip float encoding makes the round trip lossless,
so a sweep rebuilt from a payload is bit-identical to one built directly
from the simulator — the property behind the engine's
parallel-equals-serial guarantee.

All reconstruction errors (missing keys, wrong types, values rejected by
``SimulationResult`` validation, depth mismatches) are normalised to
:class:`PayloadError` so the scheduler can treat any malformed payload —
truncated file, foreign schema, hand-edited JSON — as a cache miss.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..core.params import TechnologyParams
from ..pipeline.plan import StagePlan, Unit
from ..pipeline.results import SimulationResult
from .job import CACHE_SCHEMA, SimJob

__all__ = [
    "PayloadError",
    "payload_for",
    "record_for",
    "result_to_dict",
    "result_from_dict",
    "results_from_payload",
]

_COUNT_FIELDS = (
    "instructions",
    "cycles",
    "issue_cycles",
    "branches",
    "mispredicts",
    "icache_misses",
    "dcache_accesses",
    "dcache_misses",
    "store_misses",
    "l2_misses",
    "memory_ops",
    "fp_ops",
)


class PayloadError(ValueError):
    """A payload could not be validated against its job."""


# Enum iteration and ``Unit(name)`` lookups dominate (de)serialisation at
# suite scale (thousands of results per run); both are precomputed here.
_UNITS = tuple(Unit)
_UNIT_NAMES = tuple(unit.value for unit in Unit)
_UNIT_BY_VALUE = {unit.value: unit for unit in Unit}


def result_to_dict(result: SimulationResult) -> dict:
    """Serialise one simulation result to JSON-able primitives."""
    out = {"depth": result.plan.depth, "trace_name": result.trace_name}
    for name in _COUNT_FIELDS:
        out[name] = int(getattr(result, name))
    occupancy = result.unit_occupancy
    out["unit_occupancy"] = {
        unit.value: float(occupancy.get(unit, 0.0)) for unit in _UNITS
    }
    return out


def record_for(
    trace_name: str, depth: int, counts: dict, occupancy: "tuple[float, ...]"
) -> dict:
    """Build one serialised result record without a ``SimulationResult``.

    The suite worker's hot path emits payload records straight from the
    kernel outputs; this mirrors :func:`result_to_dict` field for field
    (``counts`` maps each :data:`_COUNT_FIELDS` name to its integer,
    ``occupancy`` is ``_unit_occupancy``'s flat float tuple in
    :class:`Unit` declaration order), so the scheduler's payload
    reconstruction yields results bit-identical to the per-job backends'.
    """
    out = {"depth": depth, "trace_name": trace_name}
    for name in _COUNT_FIELDS:
        out[name] = int(counts[name])
    out["unit_occupancy"] = dict(zip(_UNIT_NAMES, occupancy))
    return out


def result_from_dict(data: dict, technology: TechnologyParams) -> SimulationResult:
    """Rebuild one simulation result; raises :class:`PayloadError` on any defect."""
    try:
        plan = StagePlan.for_depth(int(data["depth"]))
        occupancy = {
            # Unknown names fall through to Unit(name), which raises.
            (_UNIT_BY_VALUE.get(name) or Unit(name)): float(value)
            # (.items() on a non-mapping raises, normalised to PayloadError.)
            for name, value in data["unit_occupancy"].items()
        }
        return SimulationResult(
            trace_name=str(data["trace_name"]),
            plan=plan,
            technology=technology,
            unit_occupancy=occupancy,
            **{name: int(data[name]) for name in _COUNT_FIELDS},
        )
    except PayloadError:
        raise
    except Exception as exc:
        raise PayloadError(f"malformed simulation record: {exc}") from exc


def payload_for(job: SimJob, results: Sequence[SimulationResult]) -> dict:
    """The cache/worker payload for ``job``'s completed simulations."""
    if tuple(r.plan.depth for r in results) != job.depths:
        raise PayloadError(
            f"results cover depths {tuple(r.plan.depth for r in results)}, "
            f"job expects {job.depths}"
        )
    return {
        "schema": CACHE_SCHEMA,
        "key": job.cache_key(),
        "workload": job.name,
        "depths": list(job.depths),
        "results": [result_to_dict(r) for r in results],
    }


def results_from_payload(payload: dict, job: SimJob) -> Tuple[SimulationResult, ...]:
    """Validate ``payload`` against ``job`` and rebuild its results.

    Raises:
        PayloadError: schema/key/depth mismatch or malformed records — the
            scheduler treats all of these as cache misses.
    """
    try:
        schema = payload["schema"]
        key = payload["key"]
        depths = tuple(int(d) for d in payload["depths"])
        records = list(payload["results"])
    except (KeyError, TypeError, ValueError) as exc:
        raise PayloadError(f"payload missing required structure: {exc}") from exc
    if schema != CACHE_SCHEMA:
        raise PayloadError(f"payload schema {schema!r} != {CACHE_SCHEMA}")
    if key != job.cache_key():
        raise PayloadError("payload key does not match job fingerprint")
    if depths != job.depths or len(records) != len(job.depths):
        raise PayloadError(f"payload depths {depths} != job depths {job.depths}")
    technology = job.machine.technology
    results = tuple(result_from_dict(record, technology) for record in records)
    for result, depth in zip(results, job.depths):
        if result.plan.depth != depth:
            raise PayloadError(
                f"record depth {result.plan.depth} out of place (expected {depth})"
            )
    return results
