"""The engine's worker entry point.

``execute_job`` is the one function shipped to worker processes.  It is
deliberately payload-in/payload-out: the job arrives as a picklable
:class:`~repro.engine.job.SimJob`, and the result returns as the plain
JSON-able payload dict the cache stores — so the parent process handles a
freshly computed result and a cache hit through the identical
reconstruction path, which is what makes parallel, serial and warm-cache
runs bit-identical.
"""

from __future__ import annotations

import logging

from ..pipeline.events_cache import default_events_cache
from ..pipeline.fastsim import make_simulator
from ..trace.generator import generate_trace
from .job import SimJob
from .serialize import payload_for

__all__ = ["execute_job"]

logger = logging.getLogger("repro.engine.worker")

_UNSET = object()


def execute_job(job: SimJob, events_cache=_UNSET) -> dict:
    """Generate the job's trace, simulate every depth, serialise the results.

    The analysing backends are handed an on-disk
    :class:`~repro.pipeline.events_cache.TraceEventsCache`, so sibling
    workers (and any other process sharing the cache directory) converge
    on one trace analysis per (trace, machine).  Callers holding a
    :class:`~repro.runtime.resolver.Resolver` inject its cache via
    ``events_cache`` (None disables); worker processes, which receive
    only the job, resolve it from their runtime config.
    """
    logger.debug(
        "executing %s: %d depths, %d instructions, %s backend",
        job.name, len(job.depths), job.trace_length, job.backend,
    )
    if events_cache is _UNSET:
        events_cache = default_events_cache()
    trace = generate_trace(job.spec, job.trace_length)
    simulator = make_simulator(job.machine, job.backend, events_cache=events_cache)
    results = simulator.simulate_depths(trace, job.depths)
    return payload_for(job, results)
