"""The engine's worker entry points.

``execute_job`` is the one function shipped to worker processes.  It is
deliberately payload-in/payload-out: the job arrives as a picklable
:class:`~repro.engine.job.SimJob`, and the result returns as the plain
JSON-able payload dict the cache stores — so the parent process handles a
freshly computed result and a cache hit through the identical
reconstruction path, which is what makes parallel, serial and warm-cache
runs bit-identical.

``execute_suite_batch`` is its batch-of-jobs sibling for the suite
backend: every miss in an engine run is packed into one ragged event
tensor and priced by a single C-kernel invocation
(:func:`repro.pipeline.suite.run_suite`), with per-job payloads fanned
back out in submission order.  Jobs whose analysis is already in the
shared :class:`~repro.pipeline.events_cache.TraceEventsCache` resolve
through the spec-keyed trace-fingerprint index without materialising a
trace at all, and a batch whose jobs all resolve that way goes one step
further: the packed column tensor itself is cached (keyed by the ordered
per-job analysis keys), so a warm-analysis cold-result suite run is one
flat binary read plus one kernel call — no per-job ``.npz`` loads, no
pack copy.
"""

from __future__ import annotations

import logging
from typing import List, Sequence

import numpy as np

from ..fingerprint import fingerprint_digest
from ..pipeline._ckernel import JM_OFFSET
from ..pipeline.events_cache import default_events_cache
from ..pipeline.fastsim import AGGREGATE_NAMES, TraceEvents, make_simulator
from ..pipeline.plan import StagePlan
from ..pipeline.suite import SuiteLanes, pack_suite, run_suite
from ..pipeline.timing import DepthConstants
from ..trace.generator import generate_trace
from .job import CACHE_SCHEMA, SimJob
from .serialize import payload_for, record_for

__all__ = ["execute_job", "execute_suite_batch"]

logger = logging.getLogger("repro.engine.worker")

_UNSET = object()


def execute_job(job: SimJob, events_cache=_UNSET) -> dict:
    """Generate the job's trace, simulate every depth, serialise the results.

    The analysing backends are handed an on-disk
    :class:`~repro.pipeline.events_cache.TraceEventsCache`, so sibling
    workers (and any other process sharing the cache directory) converge
    on one trace analysis per (trace, machine).  Callers holding a
    :class:`~repro.runtime.resolver.Resolver` inject its cache via
    ``events_cache`` (None disables); worker processes, which receive
    only the job, resolve it from their runtime config.
    """
    logger.debug(
        "executing %s: %d depths, %d instructions, %s backend",
        job.name, len(job.depths), job.trace_length, job.backend,
    )
    if events_cache is _UNSET:
        events_cache = default_events_cache()
    trace = generate_trace(job.spec, job.trace_length)
    simulator = make_simulator(job.machine, job.backend, events_cache=events_cache)
    results = simulator.simulate_depths(trace, job.depths)
    return payload_for(job, results)


class _TraceName:
    """The one attribute result assembly needs from a trace."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


_AGG_INDEX = {name: index + 1 for index, name in enumerate(AGGREGATE_NAMES)}


class _TensorSlice:
    """One job's zero-copy window into a cached suite tensor.

    Exposes exactly what the packed-kernel path reads — ``n`` and the
    scalar aggregates — without materialising the job's own column
    matrix (the kernel reads the shared packed tensor directly).
    ``thaw`` pays the column copy only on the kernel-unavailable
    fallback, whose scalar loops walk real :class:`TraceEvents` columns.
    """

    __slots__ = ("n", "_columns", "_scalars")

    def __init__(self, columns: np.ndarray, scalars: np.ndarray):
        self.n = int(scalars[0])
        self._columns = columns
        self._scalars = scalars

    def __getattr__(self, name: str):
        index = _AGG_INDEX.get(name)
        if index is None:
            raise AttributeError(name)
        return int(self._scalars[index])

    def thaw(self) -> TraceEvents:
        """Materialise the slice as a standalone (contiguous) analysis."""
        return TraceEvents.from_arrays(self._columns, self._scalars)


def _slice_tensor(jobs, columns, offsets, scalars) -> "List[_TensorSlice] | None":
    """Per-job views of a cached suite tensor, or None if it is unusable.

    A stored tensor is internally consistent by construction; the checks
    here reject truncated or foreign files that happened to parse, so a
    bad cache entry degrades to a re-pack instead of wrong results.
    """
    if len(offsets) != len(jobs) or scalars.shape[1] != 1 + len(AGGREGATE_NAMES):
        return None
    lengths = scalars[:, 0]
    if np.any(lengths <= 0):
        return None
    expected = np.concatenate(([0], np.cumsum(lengths[:-1])))
    if int(lengths.sum()) != columns.shape[1] or not np.array_equal(offsets, expected):
        return None
    return [
        _TensorSlice(columns[:, offset : offset + n], row)
        for offset, n, row in zip(offsets.tolist(), lengths.tolist(), scalars)
    ]


def execute_suite_batch(jobs: Sequence[SimJob], events_cache=_UNSET) -> List[dict]:
    """Price a batch of suite jobs through one kernel call; payloads in order.

    Analyses resolve in tiers, cheapest first.  When every job resolves
    through the events cache's spec-keyed trace-fingerprint index, the
    whole batch first tries the packed suite tensor cache — one flat
    read that yields the kernel-ready column tensor and per-job
    zero-copy slices.  Otherwise each job loads its ``.npz`` analysis by
    fingerprint, or (last resort) generates and analyses its trace,
    recording the index entry for next time; the batch is then packed
    once, the tensor stored for the next run.  Either way all lanes are
    priced by a single ``run_suite_batched`` invocation; when the kernel
    cannot run the batch, each job falls back to the fast backend's
    scalar loops over the same analyses — identical results on every
    path.
    """
    jobs = list(jobs)
    if events_cache is _UNSET:
        events_cache = default_events_cache()
    logger.debug("executing suite batch of %d job(s)", len(jobs))

    # Jobs in one batch overwhelmingly share (machine, depths) — a suite
    # run is many workloads on one machine — so the simulator (and its
    # memoised machine fingerprint), stage plans and depth constants are
    # built once per distinct pair, not once per job.
    shared: dict = {}
    contexts = []
    for job in jobs:
        entry = shared.get((job.machine, job.depths))
        if entry is None:
            simulator = make_simulator(
                job.machine, "suite", events_cache=events_cache
            )
            plans = [StagePlan.for_depth(depth) for depth in job.depths]
            cons_list = [
                DepthConstants.for_plan(job.machine, plan) for plan in plans
            ]
            shared[(job.machine, job.depths)] = entry = (
                simulator, plans, cons_list,
            )
        contexts.append(entry)

    if events_cache is not None:
        spec_fps = [fingerprint_digest(job.spec) for job in jobs]
        trace_fps = [
            events_cache.get_trace_fingerprint(spec_fp, job.trace_length)
            for spec_fp, job in zip(spec_fps, jobs)
        ]
    else:
        spec_fps = [None] * len(jobs)
        trace_fps = [None] * len(jobs)

    def _tensor_key():
        return events_cache.suite_tensor_key(
            [
                events_cache.key_for(trace_fp, context[0].machine_fingerprint())
                for trace_fp, context in zip(trace_fps, contexts)
            ]
        )

    # Fully index-resolved batches may hit the packed suite tensor cache:
    # one flat read yields the kernel-ready column tensor plus per-job
    # zero-copy slices, in place of per-job .npz loads and the pack copy.
    tensor_key = None
    prepacked = None
    events_list: "List | None" = None
    if jobs and events_cache is not None and all(fp is not None for fp in trace_fps):
        tensor_key = _tensor_key()
        tensor = events_cache.get_suite_tensor(tensor_key)
        if tensor is not None:
            columns, offsets, scalars = tensor
            events_list = _slice_tensor(jobs, columns, offsets, scalars)
            if events_list is not None:
                prepacked = columns

    if events_list is None:
        events_list = []
        for index, job in enumerate(jobs):
            simulator = contexts[index][0]
            events = None
            if trace_fps[index] is not None:
                events = events_cache.get(
                    trace_fps[index], simulator.machine_fingerprint()
                )
            if events is None:
                trace = generate_trace(job.spec, job.trace_length)
                events = simulator.events_for(trace)
                if events_cache is not None:
                    trace_fps[index] = trace.fingerprint()
                    events_cache.put_trace_fingerprint(
                        spec_fps[index], job.trace_length, trace_fps[index]
                    )
            if events.n == 0:
                raise ValueError("cannot simulate an empty trace")
            events_list.append(events)

    lanes = [
        SuiteLanes(job.machine, events, context[2])
        for job, events, context in zip(jobs, events_list, contexts)
    ]

    if (
        prepacked is None
        and jobs
        and events_cache is not None
        and all(fp is not None for fp in trace_fps)
    ):
        # Pack here (instead of inside run_suite) so the tensor can be
        # stored for the next run, which then reads it back as one flat
        # file in place of the per-job loads and this copy.
        columns, job_rows, _, _ = pack_suite(lanes)
        scalars = np.stack([lane.events.to_arrays()[1] for lane in lanes])
        events_cache.put_suite_tensor(
            tensor_key if tensor_key is not None else _tensor_key(),
            columns, job_rows[:, JM_OFFSET], scalars,
        )
        prepacked = columns

    raw_all = run_suite(lanes, prepacked=prepacked)
    payloads: List[dict] = []
    for index, (job, raw) in enumerate(
        zip(jobs, raw_all if raw_all is not None else [None] * len(jobs))
    ):
        simulator, plans, cons_list = contexts[index]
        events = lanes[index].events
        if raw is None:
            # Kernel unavailable: the fast backend's scalar loops, one
            # depth at a time, off the same shared analysis, then the
            # ordinary result-object serialisation route.
            if isinstance(events, _TensorSlice):
                events = events.thaw()
            runner = (
                simulator._run_in_order
                if job.machine.in_order
                else simulator._run_out_of_order
            )
            raw = [runner(events, cons) for cons in cons_list]
            occ_rename = 0 if job.machine.in_order else events.n
            trace = _TraceName(job.spec.name)
            results = tuple(
                simulator._build_result(
                    trace, plan, cons, events, int(cycles), int(issue_cycles),
                    occ_rename, int(occ_agenq), int(occ_execq),
                )
                for plan, cons, (cycles, issue_cycles, occ_agenq, occ_execq)
                in zip(plans, cons_list, raw)
            )
            payloads.append(payload_for(job, results))
            continue
        # Kernel path: emit payload records directly — the scheduler
        # rebuilds SimulationResults from the payload anyway, so building
        # them here only to re-serialise is pure overhead at suite scale.
        occ_rename = 0 if job.machine.in_order else events.n
        counts = {
            "instructions": events.n,
            "branches": events.branches,
            "mispredicts": events.mispredicts,
            "icache_misses": events.icache_misses,
            "dcache_accesses": events.dcache_accesses,
            "dcache_misses": events.dcache_misses,
            "store_misses": events.store_misses,
            "l2_misses": events.l2_misses,
            "memory_ops": events.memory_ops,
            "fp_ops": events.fp_ops,
        }
        records = []
        for plan, cons, (cycles, issue_cycles, occ_agenq, occ_execq) in zip(
            plans, cons_list, raw
        ):
            occupancy = simulator._unit_occupancy(
                cons, events, occ_rename, int(occ_agenq), int(occ_execq)
            )
            counts["cycles"] = int(cycles)
            counts["issue_cycles"] = int(issue_cycles)
            records.append(record_for(job.spec.name, plan.depth, counts, occupancy))
        payloads.append(
            {
                "schema": CACHE_SCHEMA,
                "key": job.cache_key(),
                "workload": job.name,
                "depths": list(job.depths),
                "results": records,
            }
        )
    return payloads
