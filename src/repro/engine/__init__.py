"""Batch-execution engine: parallel simulation with content-addressed caching.

The full evaluation is dominated by one operation repeated hundreds of
times: *simulate workload X at depth p*.  The engine turns that operation
into a first-class, cacheable, schedulable unit of work:

* :mod:`repro.engine.job` — :class:`SimJob` canonically hashes
  (workload spec, machine config, depths, trace length, code version)
  into a content-addressed cache key; :class:`JobResult` carries the
  per-depth simulation results back with provenance (cache hit, timing,
  attempts).
* :mod:`repro.engine.cache` — an on-disk JSON result cache with atomic
  writes and corruption-tolerant reads.  Keys embed ``repro.__version__``
  and every simulation-relevant parameter, so version or parameter
  changes invalidate stale entries by construction.
* :mod:`repro.engine.scheduler` — :class:`ExecutionEngine`, a
  ``ProcessPoolExecutor``-based scheduler with configurable worker count,
  per-job timeout, bounded retry on worker failure and deterministic
  result ordering (parallel output is bit-identical to serial).
* :mod:`repro.engine.report` — structured run observability: per-job
  records, cache-hit/executed/retry counters and a human summary via
  :class:`RunReport`, plus an incremental progress reporter.
* :mod:`repro.engine.manifest` — declarative batch manifests for the
  ``repro batch`` CLI command (imported explicitly; not re-exported here
  because it reaches up into :mod:`repro.analysis`).

Everything downstream (``repro.analysis.sweep``, the figure experiments,
the ``figures``/``sweep``/``batch`` CLI commands) funnels its simulations
through an :class:`ExecutionEngine`, so ``--jobs``/``--cache-dir`` work
uniformly across the evaluation.  See ``docs/ENGINE.md``.
"""

from __future__ import annotations

import logging

from .cache import CacheStats, ResultCache, default_cache_dir
from .job import CACHE_SCHEMA, JobResult, SimJob
from .report import JobRecord, ProgressReporter, RunReport
from .scheduler import (
    EngineConfig,
    ExecutionEngine,
    JobExecutionError,
    default_engine,
)
from .serialize import PayloadError, payload_for, results_from_payload
from .worker import execute_job

__all__ = [
    "CACHE_SCHEMA",
    "CacheStats",
    "EngineConfig",
    "ExecutionEngine",
    "JobExecutionError",
    "JobRecord",
    "JobResult",
    "PayloadError",
    "ProgressReporter",
    "ResultCache",
    "RunReport",
    "SimJob",
    "default_cache_dir",
    "default_engine",
    "execute_job",
    "payload_for",
    "results_from_payload",
]

logging.getLogger("repro.engine").addHandler(logging.NullHandler())
