"""Run observability: per-job records, counters and progress reporting.

Every engine run appends one :class:`JobRecord` per job to a
:class:`RunReport`.  The report is the engine's public ledger — the
acceptance check "a warm-cache rerun executes zero simulations" reads
``report.executed`` and ``report.cache_hits`` rather than trusting wall
time, and the experiments runner prints ``report.summary()`` after every
evaluation.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import List, Optional, TextIO

__all__ = ["JobRecord", "RunReport", "ProgressReporter"]


@dataclass(frozen=True)
class JobRecord:
    """How one job was resolved.

    Attributes:
        name: workload name.
        key: the job's cache key.
        cache_hit: served from the result cache.
        duration: wall seconds to resolve.
        attempts: execution attempts consumed (0 for a cache hit).
        error: terminal error description, or None on success.
    """

    name: str
    key: str
    cache_hit: bool
    duration: float
    attempts: int
    error: "str | None" = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def retries(self) -> int:
        return max(self.attempts - 1, 0)


@dataclass
class RunReport:
    """Accumulated observability over one engine's lifetime."""

    records: List[JobRecord] = field(default_factory=list)
    wall_time: float = 0.0

    def add(self, record: JobRecord) -> None:
        self.records.append(record)

    # -- counters -----------------------------------------------------------
    @property
    def jobs(self) -> int:
        return len(self.records)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cache_hit)

    @property
    def executed(self) -> int:
        return sum(1 for r in self.records if not r.cache_hit and r.ok)

    @property
    def retries(self) -> int:
        return sum(r.retries for r in self.records)

    @property
    def failures(self) -> int:
        return sum(1 for r in self.records if not r.ok)

    @property
    def simulated_seconds(self) -> float:
        return sum(r.duration for r in self.records if not r.cache_hit)

    def summary(self, per_job: bool = False) -> str:
        """A human summary; ``per_job`` appends one line per record."""
        lines = [
            f"engine: {self.jobs} jobs — {self.cache_hits} cache hits, "
            f"{self.executed} executed, {self.retries} retries, "
            f"{self.failures} failures; {self.wall_time:.1f}s wall"
        ]
        if per_job:
            for r in self.records:
                status = "hit " if r.cache_hit else ("FAIL" if not r.ok else "ran ")
                note = f"  ! {r.error}" if r.error else ""
                lines.append(
                    f"  [{status}] {r.name:24s} {r.duration:7.2f}s  "
                    f"attempts {r.attempts}  key {r.key[:12]}{note}"
                )
        return "\n".join(lines)


class ProgressReporter:
    """Incremental ``[k/N] workload: status`` lines for long batches."""

    def __init__(self, total: int, stream: "Optional[TextIO]" = None):
        self.total = total
        self.done = 0
        self.stream = stream if stream is not None else sys.stderr

    def update(self, record: JobRecord) -> None:
        self.done += 1
        if record.cache_hit:
            status = "cached"
        elif not record.ok:
            status = f"failed ({record.error})"
        else:
            status = f"ran {record.duration:.1f}s"
            if record.retries:
                status += f" after {record.retries} retries"
        print(
            f"[{self.done}/{self.total}] {record.name}: {status}",
            file=self.stream,
            flush=True,
        )
