"""Declarative batch manifests for the ``repro batch`` CLI command.

A manifest is a JSON file describing a set of depth sweeps to execute::

    {
      "defaults": {"depths": [2, 4, 6, 8, 10, 12], "trace_length": 4000,
                   "backend": "fast"},
      "sweeps": [
        {"label": "spec-int", "workloads": ["gzip", "mcf", "gcc95"]},
        {"label": "floats",   "workloads": "class:float", "metric": 3.0},
        {"label": "smoke",    "workloads": "small:1", "trace_length": 1500,
         "backend": "reference"}
      ]
    }

Workload selectors:

* a list of suite workload names;
* ``"suite"`` — all 55 workloads;
* ``"small:N"`` — the first N workloads of each class;
* ``"class:<name>"`` — one workload class (``legacy``, ``modern``,
  ``specint95``, ``specint2000``, ``float``).

Every sweep entry may override ``depths``, ``trace_length``, ``metric``,
``gated`` and ``backend`` (``"reference"`` or ``"fast"`` — the simulator
backend, part of every job's cache key); unset fields inherit from
``defaults``.  All sweeps in a
manifest execute through one shared :class:`~repro.engine.scheduler.
ExecutionEngine`, so overlapping entries dedupe through the result cache
and the closing :class:`~repro.engine.report.RunReport` covers the whole
batch.

:mod:`repro.analysis` is imported lazily inside :func:`run_manifest` —
the analysis layer itself builds on :mod:`repro.engine`, and the lazy
import keeps the package dependency graph acyclic.
"""

from __future__ import annotations

import json
import pathlib
import sys
from dataclasses import dataclass
from typing import Optional, TextIO, Tuple

from ..pipeline.fastsim import BACKENDS, DEFAULT_BACKEND
from ..trace.spec import WorkloadClass, WorkloadSpec
from ..trace.suite import by_class, get_workload, small_suite, suite
from .scheduler import ExecutionEngine, default_engine

__all__ = ["ManifestError", "SweepRequest", "BatchManifest", "load_manifest", "run_manifest"]

_DEFAULTS = {
    "depths": tuple(range(2, 26)),
    "trace_length": 8000,
    "metric": 3.0,
    "gated": True,
}


class ManifestError(ValueError):
    """A manifest file could not be parsed or validated."""


@dataclass(frozen=True)
class SweepRequest:
    """One resolved sweep: concrete workloads plus sweep parameters."""

    label: str
    specs: Tuple[WorkloadSpec, ...]
    depths: Tuple[int, ...]
    trace_length: int
    metric: float
    gated: bool
    backend: str = DEFAULT_BACKEND


@dataclass(frozen=True)
class BatchManifest:
    """A parsed manifest: an ordered tuple of sweep requests."""

    requests: Tuple[SweepRequest, ...]

    def __post_init__(self) -> None:
        if not self.requests:
            raise ManifestError("manifest defines no sweeps")


def _resolve_workloads(selector) -> Tuple[WorkloadSpec, ...]:
    if isinstance(selector, str):
        if selector == "suite":
            return suite()
        if selector.startswith("small:"):
            try:
                return small_suite(int(selector.split(":", 1)[1]))
            except ValueError as exc:
                raise ManifestError(f"bad selector {selector!r}: {exc}") from exc
        if selector.startswith("class:"):
            name = selector.split(":", 1)[1]
            try:
                return by_class(WorkloadClass(name))
            except ValueError:
                choices = [c.value for c in WorkloadClass]
                raise ManifestError(
                    f"unknown workload class {name!r}; choose from {choices}"
                ) from None
        raise ManifestError(
            f"unknown workload selector {selector!r} "
            "(expected 'suite', 'small:N', 'class:<name>' or a name list)"
        )
    if isinstance(selector, (list, tuple)):
        try:
            return tuple(get_workload(str(name)) for name in selector)
        except KeyError as exc:
            raise ManifestError(f"manifest names unknown workload: {exc}") from exc
    raise ManifestError(f"workloads must be a string selector or a list, got {selector!r}")


def _entry_value(entry: dict, defaults: dict, key: str):
    return entry.get(key, defaults.get(key, _DEFAULTS[key]))


def load_manifest(
    path: "str | pathlib.Path", default_backend: str = DEFAULT_BACKEND
) -> BatchManifest:
    """Parse and validate a manifest file.

    Args:
        path: the manifest JSON file.
        default_backend: backend for sweeps that set none themselves (in
            the entry or the manifest ``defaults``) — the CLI routes its
            ``--backend`` flag here.

    Raises:
        ManifestError: unreadable file, invalid JSON or invalid contents.
    """
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ManifestError(f"cannot read manifest {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ManifestError(f"manifest {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ManifestError("manifest must be a JSON object")
    defaults = data.get("defaults", {})
    if not isinstance(defaults, dict):
        raise ManifestError("manifest 'defaults' must be an object")
    entries = data.get("sweeps")
    if not isinstance(entries, list) or not entries:
        raise ManifestError("manifest needs a non-empty 'sweeps' list")

    requests = []
    for position, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ManifestError(f"sweep #{position} must be an object")
        if "workloads" not in entry:
            raise ManifestError(f"sweep #{position} is missing 'workloads'")
        specs = _resolve_workloads(entry["workloads"])
        try:
            depths = tuple(int(d) for d in _entry_value(entry, defaults, "depths"))
            trace_length = int(_entry_value(entry, defaults, "trace_length"))
            metric = float(_entry_value(entry, defaults, "metric"))
            gated = bool(_entry_value(entry, defaults, "gated"))
        except (TypeError, ValueError) as exc:
            raise ManifestError(f"sweep #{position} has invalid parameters: {exc}") from exc
        backend = str(entry.get("backend", defaults.get("backend", default_backend)))
        if backend not in BACKENDS:
            raise ManifestError(
                f"sweep #{position} names unknown backend {backend!r}; "
                f"choose from {list(BACKENDS)}"
            )
        requests.append(
            SweepRequest(
                label=str(entry.get("label", f"sweep-{position}")),
                specs=specs,
                depths=depths,
                trace_length=trace_length,
                metric=metric,
                gated=gated,
                backend=backend,
            )
        )
    return BatchManifest(requests=tuple(requests))


def run_manifest(
    manifest: BatchManifest,
    engine: "ExecutionEngine | None" = None,
    stream: "Optional[TextIO]" = None,
) -> Tuple[str, ...]:
    """Execute every sweep in the manifest; returns (and prints) the tables."""
    from ..analysis.optimum import optimum_from_sweep
    from ..analysis.sweep import run_depth_sweeps

    engine = engine or default_engine()
    stream = stream if stream is not None else sys.stdout
    tables = []
    for request in manifest.requests:
        sweeps = run_depth_sweeps(
            request.specs,
            depths=request.depths,
            trace_length=request.trace_length,
            engine=engine,
            backend=request.backend,
        )
        label = "BIPS" if request.metric == float("inf") else f"BIPS^{request.metric:g}/W"
        lines = [
            f"batch sweep '{request.label}': {len(sweeps)} workloads, "
            f"depths {request.depths[0]}..{request.depths[-1]}, "
            f"{label} ({'gated' if request.gated else 'un-gated'}, "
            f"{request.backend} backend)"
        ]
        for sweep in sweeps:
            estimate = optimum_from_sweep(sweep, request.metric, gated=request.gated)
            fo4 = sweep.results[0].technology.fo4_per_stage(estimate.depth)
            lines.append(
                f"  {sweep.trace_name:22s} optimum {estimate.depth:5.1f} stages "
                f"({fo4:4.1f} FO4/stage, {estimate.method})"
            )
        table = "\n".join(lines)
        tables.append(table)
        print(table, file=stream)
        print(file=stream)
    print(engine.report.summary(), file=stream)
    return tuple(tables)
