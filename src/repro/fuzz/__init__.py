"""Differential fuzzing across the simulation backends.

The four pipeline backends promise to agree (see
:mod:`repro.pipeline`): the analytic family field-for-field, the cycle
backend on every hazard count with timing inside its tolerance.
``repro validate-kernel`` checks that promise on a fixed grid; this
package checks it on *randomly drawn* machines and workloads.

Three pieces:

* :mod:`~repro.fuzz.generate` — probes as a pure function of
  ``(seed, index)``, so campaigns are replayable by coordinates alone;
* :mod:`~repro.fuzz.runner` — differential execution, greedy
  minimization (trace length, then depth set) and replay;
* :mod:`~repro.fuzz.store` — content-addressed repro bundles, the
  fourth on-disk cache family (``repro cache stats|clear``).

Entry points: ``repro fuzz --seed S --budget N`` runs a campaign,
``repro fuzz --replay ID`` re-checks a stored bundle (see
``docs/FUZZING.md``).
"""

from .generate import FuzzProbe, probe_digest, probe_for
from .runner import (
    DEFAULT_FUZZ_BACKENDS,
    FuzzReport,
    ReplayResult,
    compare_results,
    minimize_probe,
    replay_bundle,
    run_fuzz,
    run_probe,
)
from .store import FUZZ_SCHEMA, FuzzBundle, FuzzStore, bundle_identity

__all__ = [
    "DEFAULT_FUZZ_BACKENDS",
    "FUZZ_SCHEMA",
    "FuzzBundle",
    "FuzzProbe",
    "FuzzReport",
    "FuzzStore",
    "ReplayResult",
    "bundle_identity",
    "compare_results",
    "minimize_probe",
    "probe_digest",
    "probe_for",
    "replay_bundle",
    "run_fuzz",
    "run_probe",
]
