"""Deterministic probe generation for the differential fuzzer.

A *probe* is one randomly drawn (workload spec, machine config, depth
set, trace length) tuple.  Probes are a pure function of ``(seed,
index)``: every random draw comes from ``random.Random(f"{seed}:{index}")``,
so a campaign is fully described by its seed and budget, any probe can be
regenerated in isolation (replay does not store the probe, only its
coordinates), and the same seed produces byte-identical probe sequences
across runs and machines — the property the seed-corpus regression suite
pins.

Sampling deliberately stays inside a moderate envelope around the
machine grid that ``repro validate-kernel`` calibrated the cycle
backend's :data:`~repro.pipeline.cycle.CYCLE_CPI_RTOL` tolerance on:
the fuzzer's job is to find *disagreements between backends*, not to
push the analytic model into regimes where the tolerance contract was
never claimed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from ..fingerprint import fingerprint_digest
from ..isa import OpClass
from ..pipeline.plan import MAX_DEPTH, MIN_DEPTH
from ..pipeline.simulator import MachineConfig
from ..tech import node_names
from ..trace.spec import WorkloadClass, WorkloadSpec
from ..uarch.cache import CacheConfig

__all__ = ["FuzzProbe", "probe_digest", "probe_for"]

_WORKLOAD_CLASSES = tuple(WorkloadClass)
_OP_CLASSES = tuple(OpClass)
_PREDICTOR_KINDS = ("gshare", "bimodal", "taken", "oracle")
_TECH_NODES = node_names()


@dataclass(frozen=True)
class FuzzProbe:
    """One differential test case, regenerable from ``(seed, index)``."""

    seed: int
    index: int
    spec: WorkloadSpec
    machine: MachineConfig
    depths: Tuple[int, ...]
    trace_length: int


def probe_digest(probe: FuzzProbe) -> str:
    """Content digest of everything the probe feeds the simulators.

    Replay stores this next to ``(seed, index)``; a digest mismatch on
    regeneration means the generator itself changed and the bundle's
    coordinates no longer name the original inputs.
    """
    return fingerprint_digest(
        {
            "spec": probe.spec,
            "machine": probe.machine,
            "depths": list(probe.depths),
            "trace_length": probe.trace_length,
        }
    )


def _sample_mix(rng: random.Random) -> dict:
    """A random instruction mix over every op class, summing to one.

    RR ALU ops get a floor so every trace retains a pipeline-filling
    baseline; everything else may get arbitrarily rare.
    """
    weights = [rng.random() + (1.0 if cls is OpClass.RR_ALU else 0.05)
               for cls in _OP_CLASSES]
    total = sum(weights)
    return {cls: w / total for cls, w in zip(_OP_CLASSES, weights)}


def _sample_spec(rng: random.Random, name: str) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        workload_class=_WORKLOAD_CLASSES[rng.randrange(len(_WORKLOAD_CLASSES))],
        mix=_sample_mix(rng),
        branch_sites=1 << rng.randrange(0, 12),
        branch_bias=0.5 + 0.5 * rng.random(),
        taken_rate=rng.random(),
        data_working_set=1 << rng.randrange(10, 22),
        data_locality=rng.random(),
        code_footprint=1 << rng.randrange(9, 19),
        dependency_distance=1.0 + 15.0 * rng.random(),
        pointer_chase=rng.random(),
        fp_latency=rng.randrange(1, 12),
        seed=rng.randrange(2**32),
    )


def _sample_cache(rng: random.Random, latency_lo: float, latency_hi: float) -> CacheConfig:
    line = 1 << rng.randrange(5, 9)          # 32..256 B lines
    ways = 1 << rng.randrange(0, 4)          # 1..8 ways
    sets = 1 << rng.randrange(4, 10)         # 16..512 sets
    return CacheConfig(
        size=line * ways * sets,
        line_size=line,
        associativity=ways,
        miss_latency_fo4=latency_lo + (latency_hi - latency_lo) * rng.random(),
    )


def _sample_machine(rng: random.Random) -> MachineConfig:
    issue_width = rng.randrange(2, 7)
    machine = MachineConfig(
        issue_width=issue_width,
        agen_width=rng.randrange(1, min(3, issue_width) + 1),
        icache=_sample_cache(rng, 40.0, 160.0),
        dcache=_sample_cache(rng, 40.0, 160.0),
        l2=_sample_cache(rng, 200.0, 600.0),
        predictor_kind=_PREDICTOR_KINDS[rng.randrange(len(_PREDICTOR_KINDS))],
        predictor_entries=1 << rng.randrange(10, 15),
        warmup=rng.random() < 0.75,
        in_order=rng.random() < 0.5,
        issue_window=1 << rng.randrange(3, 7),
        rob_size=1 << rng.randrange(5, 8),
        mshr_entries=rng.randrange(1, 5),
        btb_entries=None if rng.random() < 0.5 else 1 << rng.randrange(6, 11),
    )
    # Half the probes leave the base node (every backend must agree at
    # every node); re-noding scales the sampled FO4 constants in place.
    if rng.random() < 0.5:
        machine = MachineConfig.for_node(
            _TECH_NODES[rng.randrange(len(_TECH_NODES))], machine
        )
    return machine


def probe_for(seed: int, index: int) -> FuzzProbe:
    """The ``index``-th probe of campaign ``seed`` (pure; no global state)."""
    rng = random.Random(f"{seed}:{index}")
    spec = _sample_spec(rng, f"fuzz-{seed}-{index}")
    machine = _sample_machine(rng)
    count = rng.randrange(3, 7)
    depths = tuple(sorted(rng.sample(range(MIN_DEPTH, MAX_DEPTH + 1), count)))
    trace_length = rng.randrange(300, 1601)
    return FuzzProbe(
        seed=seed,
        index=index,
        spec=spec,
        machine=machine,
        depths=depths,
        trace_length=trace_length,
    )
