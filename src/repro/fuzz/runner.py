"""Differential execution: run probes through every backend and compare.

The comparison contract is the one ``repro validate-kernel`` enforces,
applied point-wise per depth:

* analytic backends (``fast``, ``batched``) must match the reference
  interpreter field-for-field — integers exactly, floats within
  :data:`~repro.analysis.validate.FLOAT_RTOL`;
* tolerance backends (``cycle``) must match every hazard count exactly
  while ``cycles``/``issue_cycles`` stay within the backend's registered
  rtol and ``unit_occupancy`` keeps the same key set.

A probe that disagrees is *minimized* before being stored: first the
trace length is shrunk (greedy halving while the failure persists), then
each depth is dropped from the depth set if the failure survives without
it — in that order, because a shorter trace makes every subsequent depth
trial cheaper.  The minimized failure is written to the
:class:`~repro.fuzz.store.FuzzStore` as a content-addressed bundle.

Everything threads an injectable ``simulate`` callable so tests can
plant deterministic faults in one backend and watch the fuzzer find,
minimize, bundle and replay them.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from ..analysis.validate import FLOAT_RTOL, TOLERANCE_BACKENDS
from ..pipeline.fastsim import BACKENDS, make_simulator
from ..trace import generate_trace
from .generate import FuzzProbe, probe_digest, probe_for
from .store import FuzzBundle, FuzzStore

__all__ = [
    "DEFAULT_FUZZ_BACKENDS",
    "FuzzReport",
    "ReplayResult",
    "compare_results",
    "minimize_probe",
    "replay_bundle",
    "run_fuzz",
    "run_probe",
]

DEFAULT_FUZZ_BACKENDS: Tuple[str, ...] = tuple(BACKENDS)
"""Every registered backend, reference first (the comparison baseline)."""

MIN_TRACE_LENGTH = 32
"""Minimization floor: traces shorter than this stop being meaningful."""

#: SimulationResult fields a tolerance backend must still match exactly.
_HAZARD_FIELDS = (
    "instructions",
    "branches",
    "mispredicts",
    "icache_misses",
    "dcache_accesses",
    "dcache_misses",
    "store_misses",
    "l2_misses",
    "memory_ops",
    "fp_ops",
)

_TIMING_FIELDS = ("cycles", "issue_cycles")

Simulate = Callable[[FuzzProbe, str, int, Tuple[int, ...]], Sequence]


def _simulate(
    probe: FuzzProbe, backend: str, trace_length: int, depths: Tuple[int, ...]
) -> Sequence:
    """Default execution: one backend over the probe's regenerated trace."""
    trace = generate_trace(probe.spec, trace_length)
    return make_simulator(probe.machine, backend).simulate_depths(trace, depths)


def compare_results(reference, candidate, backend: str, depth: int) -> List[str]:
    """Mismatch lines between one reference/candidate result pair."""
    rtol = TOLERANCE_BACKENDS.get(backend)
    prefix = f"{backend}/depth={depth}"
    mismatches: List[str] = []
    if rtol is not None:
        for name in _HAZARD_FIELDS:
            a, b = getattr(reference, name), getattr(candidate, name)
            if a != b:
                mismatches.append(f"{prefix}: hazard field {name}: {a!r} != {b!r}")
        for name in _TIMING_FIELDS:
            a, b = getattr(reference, name), getattr(candidate, name)
            if not math.isclose(float(a), float(b), rel_tol=rtol, abs_tol=0.0):
                rel = abs(float(b) - float(a)) / float(a) if a else float("inf")
                mismatches.append(
                    f"{prefix}: timing field {name}: {a!r} vs {b!r} "
                    f"(rel {rel:.4f} > rtol {rtol:g})"
                )
        if set(reference.unit_occupancy) != set(candidate.unit_occupancy):
            mismatches.append(
                f"{prefix}: unit_occupancy keys differ: "
                f"{sorted(reference.unit_occupancy)} != "
                f"{sorted(candidate.unit_occupancy)}"
            )
        return mismatches
    for fld in dataclasses.fields(reference):
        a, b = getattr(reference, fld.name), getattr(candidate, fld.name)
        if isinstance(a, Mapping) and isinstance(b, Mapping):
            if set(a) != set(b) or any(
                not math.isclose(
                    float(a[k]), float(b[k]), rel_tol=FLOAT_RTOL, abs_tol=0.0
                )
                for k in a
            ):
                mismatches.append(f"{prefix}: field {fld.name}: {a!r} != {b!r}")
        elif isinstance(a, float) or isinstance(b, float):
            if not math.isclose(float(a), float(b), rel_tol=FLOAT_RTOL, abs_tol=0.0):
                mismatches.append(f"{prefix}: field {fld.name}: {a!r} != {b!r}")
        elif a != b:
            mismatches.append(f"{prefix}: field {fld.name}: {a!r} != {b!r}")
    return mismatches


def run_probe(
    probe: FuzzProbe,
    backends: Tuple[str, ...],
    trace_length: Optional[int] = None,
    depths: Optional[Tuple[int, ...]] = None,
    simulate: Simulate = _simulate,
) -> List[str]:
    """Every mismatch the backend set produces on ``probe`` (empty = agree).

    ``trace_length``/``depths`` override the probe's own values during
    minimization and replay.  The reference interpreter is always the
    baseline, whether or not it appears in ``backends``.
    """
    length = probe.trace_length if trace_length is None else trace_length
    depth_set = probe.depths if depths is None else depths
    reference = _simulate(probe, "reference", length, depth_set)
    mismatches: List[str] = []
    for backend in backends:
        if backend == "reference":
            continue
        candidate = simulate(probe, backend, length, depth_set)
        for depth, r, c in zip(depth_set, reference, candidate):
            mismatches.extend(compare_results(r, c, backend, depth))
    return mismatches


def minimize_probe(
    probe: FuzzProbe,
    backends: Tuple[str, ...],
    simulate: Simulate = _simulate,
) -> Tuple[int, Tuple[int, ...], List[str]]:
    """Shrink a failing probe: trace length first, then the depth set.

    Returns ``(trace_length, depths, mismatches)`` for the smallest
    still-failing configuration found by the greedy passes.
    """
    length = probe.trace_length
    depths = tuple(probe.depths)
    while length > MIN_TRACE_LENGTH:
        candidate = max(MIN_TRACE_LENGTH, length // 2)
        if candidate == length:
            break
        if run_probe(probe, backends, candidate, depths, simulate):
            length = candidate
        else:
            break
    for depth in tuple(depths):
        if len(depths) == 1:
            break
        trial = tuple(d for d in depths if d != depth)
        if run_probe(probe, backends, length, trial, simulate):
            depths = trial
    mismatches = run_probe(probe, backends, length, depths, simulate)
    return length, depths, mismatches


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    seed: int
    budget: int
    backends: Tuple[str, ...]
    probes: int = 0
    failures: List[str] = field(default_factory=list)
    bundle_paths: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_doc(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "backends": list(self.backends),
            "probes": self.probes,
            "failures": list(self.failures),
            "bundle_paths": list(self.bundle_paths),
            "passed": self.passed,
        }


def run_fuzz(
    seed: int,
    budget: int,
    backends: Tuple[str, ...] = DEFAULT_FUZZ_BACKENDS,
    store: Optional[FuzzStore] = None,
    simulate: Simulate = _simulate,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run ``budget`` probes of campaign ``seed`` through ``backends``.

    Disagreements are minimized and, when a ``store`` is given, written
    as content-addressed repro bundles.  Deterministic end to end: the
    same seed and budget replay the identical probe sequence and reach
    the identical verdicts.
    """
    unknown = set(backends) - set(BACKENDS)
    if unknown:
        raise ValueError(
            f"unknown backends {sorted(unknown)}; choose from {BACKENDS}"
        )
    report = FuzzReport(seed=seed, budget=budget, backends=tuple(backends))
    for index in range(budget):
        probe = probe_for(seed, index)
        report.probes += 1
        if not run_probe(probe, report.backends, simulate=simulate):
            continue
        if progress is not None:
            progress(f"probe {index}: backends disagree; minimizing")
        length, depths, mismatches = minimize_probe(
            probe, report.backends, simulate
        )
        bundle = FuzzBundle.for_failure(
            probe, report.backends, length, depths, mismatches
        )
        report.failures.append(bundle.bundle_id)
        if store is not None:
            report.bundle_paths.append(str(store.save(bundle)))
    return report


@dataclass
class ReplayResult:
    """Outcome of replaying one stored bundle."""

    bundle_id: str
    generator_drift: bool
    mismatches: List[str]

    @property
    def fixed(self) -> bool:
        return not self.mismatches

    def to_doc(self) -> dict:
        return {
            "bundle_id": self.bundle_id,
            "generator_drift": self.generator_drift,
            "mismatches": list(self.mismatches),
            "fixed": self.fixed,
        }


def replay_bundle(
    bundle: FuzzBundle,
    backends: Optional[Tuple[str, ...]] = None,
    simulate: Simulate = _simulate,
) -> ReplayResult:
    """Re-run a bundle's minimized probe and report whether it still fails.

    The probe is regenerated from ``(seed, index)``; ``generator_drift``
    flags that the regenerated inputs no longer match the digest stored
    when the failure was found (the verdict is then about the *current*
    generator's probe, not the original).
    """
    probe = probe_for(bundle.seed, bundle.index)
    drift = probe_digest(probe) != bundle.probe_digest
    mismatches = run_probe(
        probe,
        tuple(backends) if backends is not None else tuple(bundle.backends),
        trace_length=bundle.trace_length,
        depths=tuple(bundle.depths),
        simulate=simulate,
    )
    return ReplayResult(
        bundle_id=bundle.bundle_id, generator_drift=drift, mismatches=mismatches
    )
