"""Content-addressed, atomically-written fuzz repro bundles.

A *bundle* records one minimized backend disagreement.  Its identity is
the fingerprint of what it takes to reproduce the failure — the probe
coordinates ``(seed, index)`` plus the probe's content digest, the
backend set, and the minimized trace length and depth set
(``bundle_id = fingerprint_digest(identity doc)``).  The mismatch text
and the code version are deliberately excluded: re-finding the same
failure on a newer build lands on the same bundle instead of forking a
new one, which is what lets a committed bundle serve as a regression
fixture (``repro fuzz --replay <id>`` must report it *fixed*).

Bundles do not store the probe itself — probes are a pure function of
``(seed, index)`` (see :mod:`repro.fuzz.generate`) — only an
informational snapshot for human inspection plus the digest that lets
replay detect generator drift.

Each bundle is one JSON file under the fuzz-state directory
(:meth:`~repro.runtime.config.RuntimeConfig.fuzz_state_path`), written
through :func:`~repro.atomicio.atomic_replace` with sorted keys and no
timestamps, so re-finding a failure rewrites a byte-identical file.
:class:`FuzzStore` exposes the same ``directory`` / ``__len__`` /
``size_bytes`` / ``clear`` surface as the other on-disk caches, making
fuzz state the fourth cache family under ``repro cache stats|clear``.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .. import __version__
from ..atomicio import atomic_replace
from ..fingerprint import canonical_fingerprint, fingerprint_digest
from .generate import FuzzProbe, probe_digest

__all__ = ["FUZZ_SCHEMA", "FuzzBundle", "FuzzStore", "bundle_identity"]

FUZZ_SCHEMA = 1
"""Bundle format version; bump on incompatible changes."""


def bundle_identity(
    probe: FuzzProbe,
    backends: Tuple[str, ...],
    trace_length: int,
    depths: Tuple[int, ...],
) -> dict:
    """The canonical identity document a ``bundle_id`` is hashed from."""
    return {
        "schema": FUZZ_SCHEMA,
        "seed": int(probe.seed),
        "index": int(probe.index),
        "probe_digest": probe_digest(probe),
        "backends": list(backends),
        "trace_length": int(trace_length),
        "depths": [int(d) for d in depths],
    }


@dataclass
class FuzzBundle:
    """One minimized, replayable backend disagreement.

    Attributes:
        bundle_id: ``fingerprint_digest`` of :func:`bundle_identity`.
        seed: campaign seed the failing probe came from.
        index: probe index within the campaign.
        probe_digest: content digest of the regenerated probe's inputs;
            replay recomputes it to detect generator drift.
        backends: the backend set the disagreement was found under.
        trace_length: minimized trace length that still fails.
        depths: minimized depth set that still fails.
        mismatches: human-readable mismatch lines from the minimized run.
        probe: informational snapshot of the probe's spec/machine (the
            canonical fingerprint encoding); never read back by replay.
        version: package version that wrote the bundle (provenance only,
            excluded from the identity).
    """

    bundle_id: str
    seed: int
    index: int
    probe_digest: str
    backends: List[str]
    trace_length: int
    depths: List[int]
    mismatches: List[str] = field(default_factory=list)
    probe: Optional[dict] = None
    version: str = __version__

    @classmethod
    def for_failure(
        cls,
        probe: FuzzProbe,
        backends: Tuple[str, ...],
        trace_length: int,
        depths: Tuple[int, ...],
        mismatches: List[str],
    ) -> "FuzzBundle":
        identity = bundle_identity(probe, backends, trace_length, depths)
        return cls(
            bundle_id=fingerprint_digest(identity),
            seed=probe.seed,
            index=probe.index,
            probe_digest=identity["probe_digest"],
            backends=list(backends),
            trace_length=int(trace_length),
            depths=[int(d) for d in depths],
            mismatches=list(mismatches),
            probe=canonical_fingerprint(
                {"spec": probe.spec, "machine": probe.machine}
            ),
        )

    # -- interchange ---------------------------------------------------------
    def to_doc(self) -> dict:
        return {
            "schema": FUZZ_SCHEMA,
            "bundle_id": self.bundle_id,
            "seed": self.seed,
            "index": self.index,
            "probe_digest": self.probe_digest,
            "backends": list(self.backends),
            "trace_length": self.trace_length,
            "depths": list(self.depths),
            "mismatches": list(self.mismatches),
            "probe": self.probe,
            "version": self.version,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "FuzzBundle":
        return cls(
            bundle_id=doc["bundle_id"],
            seed=int(doc["seed"]),
            index=int(doc["index"]),
            probe_digest=doc["probe_digest"],
            backends=list(doc["backends"]),
            trace_length=int(doc["trace_length"]),
            depths=[int(d) for d in doc["depths"]],
            mismatches=list(doc.get("mismatches", [])),
            probe=doc.get("probe"),
            version=doc.get("version", ""),
        )


class FuzzStore:
    """One bundle file per minimized failure under a single directory.

    API-compatible with the other on-disk caches where ``repro cache``
    needs it (``directory``, ``len``, ``size_bytes``, ``clear``).
    """

    def __init__(self, directory: "str | pathlib.Path"):
        self.directory = pathlib.Path(directory)

    def path_for(self, bundle_id: str) -> pathlib.Path:
        # One schema-versioned level down, like the search store: a
        # schema bump isolates old bundles, and nesting inside the
        # result-cache directory keeps them out of its entry glob.
        return self.directory / f"v{FUZZ_SCHEMA}" / f"{bundle_id}.json"

    def load(self, bundle_id: str) -> Optional[FuzzBundle]:
        """The stored bundle, or None when missing, corrupt or stale."""
        try:
            raw = self.path_for(bundle_id).read_text(encoding="utf-8")
            doc = json.loads(raw)
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict) or doc.get("schema") != FUZZ_SCHEMA:
            return None
        if doc.get("bundle_id") != bundle_id:
            return None
        try:
            return FuzzBundle.from_doc(doc)
        except (KeyError, TypeError, ValueError):
            return None

    def save(self, bundle: FuzzBundle) -> pathlib.Path:
        """Atomically (re)write ``bundle``'s file; returns its path."""
        path = self.path_for(bundle.bundle_id)
        with atomic_replace(path, encoding="utf-8") as handle:
            json.dump(bundle.to_doc(), handle, sort_keys=True, indent=1)
            handle.write("\n")
        return path

    def ids(self) -> List[str]:
        """Every stored bundle id, sorted."""
        return [path.stem for path in self._entries()]

    def find(self, prefix: str) -> Optional[FuzzBundle]:
        """The unique bundle whose id starts with ``prefix``, if any."""
        matches = [b for b in self.ids() if b.startswith(prefix)]
        if len(matches) != 1:
            return None
        return self.load(matches[0])

    # -- the cache-family surface used by `repro cache` ----------------------
    def _entries(self) -> List[pathlib.Path]:
        try:
            return sorted(self.directory.glob(f"v{FUZZ_SCHEMA}/*.json"))
        except OSError:
            return []

    def __len__(self) -> int:
        return len(self._entries())

    def size_bytes(self) -> int:
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def clear(self) -> int:
        removed = 0
        for path in self._entries():
            try:
                os.remove(path)
                removed += 1
            except OSError:
                continue
        return removed
