"""Crash- and concurrency-safe file replacement, shared by every cache.

The engine's :class:`~repro.engine.cache.ResultCache` and the pipeline's
:class:`~repro.pipeline.events_cache.TraceEventsCache` both follow the
same write discipline — a uniquely named same-directory temp file
(``tempfile.mkstemp``, so concurrent writers in the same *or* different
processes never share a path), flush + fsync, then one ``os.replace``
into place.  A reader therefore sees either the old complete entry or
the new complete entry, never a torn one, even if the writer dies
mid-write.  This module is the single home of that dance.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import tempfile
from typing import IO, Iterator

__all__ = ["atomic_replace"]


@contextlib.contextmanager
def atomic_replace(
    path: "str | pathlib.Path",
    mode: str = "w",
    encoding: "str | None" = None,
    durable: bool = True,
) -> Iterator[IO]:
    """Yield a handle whose contents atomically replace ``path`` on exit.

    The parent directory is created if missing.  The handle is a uniquely
    named temp file in ``path``'s own directory (same filesystem, so the
    final rename is atomic).  On clean exit the data is flushed, fsynced
    and ``os.replace``\\ d over ``path``; on an exception the temp file is
    removed and ``path`` is left untouched.

    Args:
        path: the destination file.
        mode: open mode for the temp handle (``"w"`` or ``"wb"``).
        encoding: text encoding when ``mode`` is textual.
        durable: fsync before the rename.  ``False`` trades power-loss
            durability for speed: readers still never see a torn entry
            while the OS is up (the rename alone guarantees that), but
            after a machine crash the file may come back garbled — only
            acceptable for caches whose readers detect and discard
            corrupt entries.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.stem[:16]}.", suffix=".tmp", dir=path.parent
    )
    tmp = pathlib.Path(tmp_name)
    try:
        with os.fdopen(fd, mode, encoding=encoding) as handle:
            yield handle
            handle.flush()
            if durable:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
