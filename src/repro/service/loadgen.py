"""Closed-loop load generator for the serving daemon.

``python -m repro.service.loadgen`` drives ``N`` concurrent clients at a
running (or self-hosted) daemon.  Each client is closed-loop — it issues
its next request only after the previous response lands — so offered
load adapts to service capacity, the classic saturation-measurement
shape.  The request mix is **zipf-skewed** over a workload set: a few
hot workloads dominate, a long tail stays cold, which is exactly the
mix the serving layer's memory-LRU + single-flight design targets.

The report covers throughput, p50/p99 latency, the per-source response
breakdown (memory / disk / computed / coalesced), the combined cache
hit ratio, and 429 rejections.

Closed-loop measurement understates queueing delay (clients slow down
with the server — coordinated omission), so SLO numbers come from the
**open-loop** Poisson/zipf generator in :mod:`repro.cluster.loadgen`
instead; this module remains the saturation-shape tool and the shared
:class:`HttpClient` transport.  ``benchmarks/bench_service.py`` records
the acceptance run for both.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..trace.suite import suite_names
from ..runtime.config import RuntimeConfig

__all__ = [
    "HttpClient",
    "LoadReport",
    "run_load",
    "zipf_weights",
    "main",
]


class HttpClient:
    """A tiny keep-alive HTTP/1.1 JSON client over asyncio streams."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: "asyncio.StreamReader | None" = None
        self._writer: "asyncio.StreamWriter | None" = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def request(
        self, method: str, path: str, body: "dict | bytes | None" = None
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One request/response; reconnects if the server closed on us.

        ``body`` may be a dict (JSON-encoded here) or raw bytes passed
        through verbatim — the cluster router forwards client payloads
        byte-for-byte.
        """
        if self._writer is None:
            await self.connect()
        if body is None:
            payload = b""
        elif isinstance(body, bytes):
            payload = body
        else:
            payload = json.dumps(body).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        try:
            self._writer.write(head + payload)
            await self._writer.drain()
            return await self._read_response()
        except (ConnectionError, asyncio.IncompleteReadError):
            # The server may have closed the idle keep-alive connection
            # (e.g. while draining); retry once on a fresh one.
            await self.close()
            await self.connect()
            self._writer.write(head + payload)
            await self._writer.drain()
            return await self._read_response()

    async def request_json(
        self, method: str, path: str, body: "dict | None" = None
    ) -> Tuple[int, dict]:
        status, _headers, raw = await self.request(method, path, body)
        try:
            return status, json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return status, {}

    async def _read_response(self) -> Tuple[int, Dict[str, str], bytes]:
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, headers, body


def zipf_weights(count: int, skew: float = 1.2) -> List[float]:
    """Normalised zipf(rank) weights: weight_i ∝ 1 / (i + 1) ** skew."""
    raw = [1.0 / (rank + 1) ** skew for rank in range(count)]
    total = sum(raw)
    return [w / total for w in raw]


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


@dataclass
class LoadReport:
    """Everything one load run measured."""

    clients: int
    requests: int
    wall_seconds: float
    latencies: List[float] = field(default_factory=list)
    sources: Dict[str, int] = field(default_factory=dict)
    statuses: Dict[int, int] = field(default_factory=dict)
    errors: int = 0

    @property
    def completed(self) -> int:
        return self.statuses.get(200, 0)

    @property
    def rejected(self) -> int:
        return self.statuses.get(429, 0)

    @property
    def throughput(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def p50(self) -> float:
        return _percentile(sorted(self.latencies), 0.50)

    @property
    def p99(self) -> float:
        return _percentile(sorted(self.latencies), 0.99)

    @property
    def coalesced(self) -> int:
        return self.sources.get("coalesced", 0)

    @property
    def hit_ratio(self) -> float:
        """Combined (memory + disk) hit share of completed requests."""
        hits = self.sources.get("memory", 0) + self.sources.get("disk", 0)
        return hits / self.completed if self.completed else 0.0

    def summary(self) -> str:
        lines = [
            f"clients {self.clients}, requests {self.requests} "
            f"({self.completed} ok, {self.rejected} rejected, {self.errors} errors)",
            f"wall {self.wall_seconds:.2f}s, throughput {self.throughput:.1f} req/s",
            f"latency p50 {self.p50 * 1000:.2f} ms, p99 {self.p99 * 1000:.2f} ms",
            f"hit ratio {self.hit_ratio:.1%} (memory+disk)",
            "sources "
            + ", ".join(
                f"{name} {count}" for name, count in sorted(self.sources.items())
            ),
        ]
        return "\n".join(lines)


async def run_load(
    host: str,
    port: int,
    *,
    clients: int = 8,
    requests_per_client: int = 50,
    workloads: "Sequence[str] | None" = None,
    zipf_skew: float = 1.2,
    depths: "Sequence[int] | None" = None,
    length: int = 2000,
    backend: "str | None" = None,
    endpoint: str = "/v1/sweep",
    seed: int = 20030101,
) -> LoadReport:
    """Drive the daemon with a zipf-skewed closed-loop mix; measure it."""
    names = list(workloads) if workloads else list(suite_names())[:16]
    weights = zipf_weights(len(names), zipf_skew)
    depth_list = list(depths) if depths else list(range(2, 26))
    report = LoadReport(clients=clients, requests=0, wall_seconds=0.0)

    async def one_client(ordinal: int) -> None:
        # Every workload draw comes from a client-private random.Random
        # derived from the explicit seed — never the global RNG — so two
        # runs at the same seed request the identical sequence of keys
        # (the same discipline the search optimizers follow).
        rng = random.Random(f"{seed}:client:{ordinal}")
        client = HttpClient(host, port)
        await client.connect()
        try:
            for _ in range(requests_per_client):
                name = rng.choices(names, weights=weights, k=1)[0]
                body = {"workload": name, "depths": depth_list, "length": length}
                if backend is not None:
                    body["backend"] = backend
                started = time.perf_counter()
                try:
                    status, response = await client.request_json(
                        "POST", endpoint, body
                    )
                except (ConnectionError, OSError, asyncio.IncompleteReadError):
                    report.errors += 1
                    continue
                elapsed = time.perf_counter() - started
                report.requests += 1
                report.statuses[status] = report.statuses.get(status, 0) + 1
                if status == 200:
                    report.latencies.append(elapsed)
                    source = response.get("source", "unknown")
                    report.sources[source] = report.sources.get(source, 0) + 1
                elif status == 429:
                    await asyncio.sleep(
                        float(response.get("retry_after", 0.05) or 0.05)
                    )
        finally:
            await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(one_client(i) for i in range(clients)))
    report.wall_seconds = time.perf_counter() - started
    return report


async def _self_hosted_load(args: argparse.Namespace) -> LoadReport:
    from .app import ServiceState
    from .http import ServiceServer

    config = RuntimeConfig.from_env(
        port=0, backend=args.backend, cache_dir=args.cache_dir
    )
    server = ServiceServer(ServiceState(config))
    await server.start()
    try:
        return await run_load(
            config.host,
            server.port,
            clients=args.clients,
            requests_per_client=args.requests,
            zipf_skew=args.zipf_skew,
            length=args.length,
            backend=args.backend,
            seed=args.seed,
        )
    finally:
        await server.drain(timeout=5.0)


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default=None, help="target host (default: config)")
    parser.add_argument("--port", type=int, default=None, help="target port")
    parser.add_argument(
        "--self-host", action="store_true",
        help="start an in-process daemon on an OS-assigned port and load it",
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=50,
                        help="requests per client (closed loop)")
    parser.add_argument("--zipf-skew", type=float, default=1.2)
    parser.add_argument("--length", type=int, default=2000)
    parser.add_argument("--backend", default=None,
                        help="request backend override (default: server's)")
    parser.add_argument("--cache-dir", default=None,
                        help="disk cache dir for --self-host")
    parser.add_argument("--seed", type=int, default=20030101,
                        help="RNG seed for the zipf workload draws; two runs "
                        "at the same seed issue identical request sequences")
    args = parser.parse_args(argv)

    if args.self_host:
        report = asyncio.run(_self_hosted_load(args))
    else:
        config = RuntimeConfig.from_env(host=args.host, port=args.port)
        report = asyncio.run(
            run_load(
                config.host,
                config.port,
                clients=args.clients,
                requests_per_client=args.requests,
                zipf_skew=args.zipf_skew,
                length=args.length,
                backend=args.backend,
                seed=args.seed,
            )
        )
    print(report.summary())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
