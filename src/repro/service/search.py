"""Daemon-side search orchestration: ``POST /v1/search`` + status polling.

A search is minutes of work, not milliseconds, so the daemon runs it
*asynchronously*: ``POST /v1/search`` validates the definition, answers
immediately with the content-addressed ``search_id``, and the driver
(:func:`repro.search.run_search`) runs on a worker thread with its own
engine — sharing the daemon's disk cache, so probes the daemon already
served (or any CLI run computed) are hits, not work.

Design points:

* **idempotent submission** — the id is
  ``fingerprint_digest(space × objective × optimizer × seed)``; POSTing a
  running or finished search returns its status instead of forking a
  duplicate;
* **admission control** — at most ``search_concurrency`` searches run at
  once; past that, 429 with ``Retry-After`` (mirroring the sweep path's
  overload discipline);
* **incremental status** — the driver checkpoints after every scored
  batch and mirrors progress into the in-process registry, so
  ``GET /v1/search/{id}`` reports live probe counts and best-so-far; for
  searches no longer (or never) in this process, the on-disk checkpoint
  answers — a CLI-started search is pollable through the daemon.
"""

from __future__ import annotations

import logging
import threading
from typing import Dict, Optional

from ..runtime.config import RuntimeConfig
from ..search.driver import SearchOutcome, run_search
from ..search.objective import Objective, ObjectiveError
from ..search.optimizers import OptimizerError, optimizer_from_doc
from ..search.space import SearchSpace, SpaceError
from ..search.state import SearchState, SearchStore, search_identity
from ..fingerprint import fingerprint_digest

__all__ = ["SearchManager", "UnknownSearch", "parse_search_request"]

logger = logging.getLogger("repro.service.search")


class UnknownSearch(Exception):
    """No such search in this process or on disk (HTTP 404)."""


def parse_search_request(body: dict, config: RuntimeConfig):
    """Validate a ``POST /v1/search`` body into a search definition.

    Returns ``(space, objective, optimizer, seed, budget)``; raises
    :class:`~repro.service.app.BadRequest` on any defect.
    """
    from .app import BadRequest  # local: app imports this module's manager

    if not isinstance(body, dict):
        raise BadRequest("request body must be a JSON object")
    known = {"space", "objective", "optimizer", "seed", "budget"}
    unknown = set(body) - known
    if unknown:
        raise BadRequest(f"unknown fields: {sorted(unknown)}")
    try:
        space = SearchSpace.from_doc(body.get("space") or {})
        objective = Objective.from_doc(body.get("objective") or {})
        optimizer = optimizer_from_doc(body.get("optimizer", "grid"))
    except (SpaceError, ObjectiveError, OptimizerError) as exc:
        raise BadRequest(str(exc)) from None
    if objective.trace_length > config.max_trace_length:
        raise BadRequest(
            f"'trace_length' must be <= {config.max_trace_length}, "
            f"got {objective.trace_length}"
        )
    try:
        seed = int(body.get("seed", config.search_seed))
        budget = int(body.get("budget", config.search_budget))
    except (TypeError, ValueError):
        raise BadRequest("'seed' and 'budget' must be integers") from None
    if seed < 0 or budget < 0:
        raise BadRequest("'seed' and 'budget' must be >= 0")
    return space, objective, optimizer, seed, budget


class SearchManager:
    """Owns the daemon's running searches and their status registry."""

    def __init__(self, state):
        self._state = state  # the ServiceState (admission + metrics + config)
        self._lock = threading.Lock()
        self._statuses: Dict[str, dict] = {}
        self.store = SearchStore(state.config.search_state_path())

    # -- introspection -------------------------------------------------------
    def running(self) -> int:
        with self._lock:
            return sum(
                1 for status in self._statuses.values() if status["state"] == "running"
            )

    def status(self, search_id: str) -> Optional[dict]:
        with self._lock:
            status = self._statuses.get(search_id)
            return dict(status) if status is not None else None

    def status_or_checkpoint(self, search_id: str) -> dict:
        """Live registry entry, else the on-disk checkpoint, else 404."""
        status = self.status(search_id)
        if status is not None:
            return status
        checkpoint = self.store.load(search_id)
        if checkpoint is None:
            raise UnknownSearch(f"no such search: {search_id}")
        return self._doc_from_checkpoint(checkpoint)

    # -- submission ----------------------------------------------------------
    def submit(self, space, objective, optimizer, seed: int, budget: int) -> dict:
        """Start (or adopt) a search; returns its current status doc.

        Raises :class:`~repro.service.app.Overloaded` when the configured
        search concurrency is saturated by *other* searches.
        """
        from .app import Overloaded  # local: avoids an import cycle

        config = self._state.config
        search_id = fingerprint_digest(
            search_identity(space, objective, optimizer.to_doc(), seed)
        )
        with self._lock:
            existing = self._statuses.get(search_id)
            if existing is not None and existing["state"] == "running":
                return dict(existing)  # idempotent re-POST
            checkpoint = self.store.load(search_id)
            if checkpoint is not None and checkpoint.completed:
                doc = self._doc_from_checkpoint(checkpoint)
                self._statuses[search_id] = doc
                return dict(doc)
            running = sum(
                1 for status in self._statuses.values()
                if status["state"] == "running"
            )
            if running >= config.search_concurrency:
                self._state.rejected_total.inc()
                raise Overloaded(config.retry_after)
            status = {
                "search_id": search_id,
                "state": "running",
                "probes": checkpoint.probes if checkpoint else 0,
                "new_probes": 0,
                "space_size": space.size(),
                "best": self._best_of(checkpoint),
                "completed": False,
                "budget_exhausted": False,
                "error": None,
            }
            self._statuses[search_id] = status
        self._state.searches_total.inc()
        thread = threading.Thread(
            target=self._run,
            args=(search_id, space, objective, optimizer, seed, budget),
            name=f"repro-search-{search_id[:12]}",
            daemon=True,
        )
        thread.start()
        return self.status(search_id)

    # -- the worker-thread body ----------------------------------------------
    def _run(self, search_id, space, objective, optimizer, seed, budget) -> None:
        state = self._state

        def on_progress(search_state: SearchState, new_probes: int) -> None:
            state.search_probes_total.inc()
            with self._lock:
                status = self._statuses[search_id]
                status["probes"] = search_state.probes
                status["new_probes"] = new_probes
                status["best"] = self._best_of(search_state)

        try:
            outcome = run_search(
                space,
                objective,
                optimizer,
                seed=seed,
                budget=budget,
                config=state.config,
                store=self.store,
                runner=state.search_runner,
                on_progress=on_progress,
            )
        except Exception as exc:
            logger.exception("search %s failed", search_id)
            with self._lock:
                status = self._statuses[search_id]
                status["state"] = "failed"
                status["error"] = repr(exc)
            return
        with self._lock:
            self._statuses[search_id] = self._doc_from_outcome(outcome)

    # -- status docs ---------------------------------------------------------
    @staticmethod
    def _best_of(state: "SearchState | None") -> Optional[dict]:
        if state is None or state.best is None:
            return None
        best = state.best
        return {
            "point": best["point"],
            "score": best["score"],
            "best_depth": best["best_depth"],
        }

    @staticmethod
    def _doc_from_checkpoint(checkpoint: SearchState) -> dict:
        return {
            "search_id": checkpoint.search_id,
            "state": "done" if checkpoint.completed else "paused",
            "probes": checkpoint.probes,
            "new_probes": 0,
            "space_size": None,
            "best": SearchManager._best_of(checkpoint),
            "completed": checkpoint.completed,
            "budget_exhausted": not checkpoint.completed,
            "error": None,
        }

    @staticmethod
    def _doc_from_outcome(outcome: SearchOutcome) -> dict:
        return {
            "search_id": outcome.search_id,
            "state": "done" if outcome.completed else "paused",
            "probes": outcome.probes,
            "new_probes": outcome.new_probes,
            "space_size": outcome.space_size,
            "best": {
                "point": outcome.best_point,
                "score": outcome.best_score,
                "best_depth": outcome.best_depth,
            },
            "completed": outcome.completed,
            "budget_exhausted": outcome.budget_exhausted,
            "error": None,
            "computed": outcome.computed,
            "cache_hits": outcome.cache_hits,
        }
