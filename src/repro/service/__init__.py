"""The serving layer: ``repro serve``, an asyncio HTTP daemon.

Turns the optimum-depth solver into a long-lived online API with the
same shape as an inference server — hot state in memory, request
deduplication, bounded queues:

* :mod:`repro.service.config` — serving flags and the deprecated
  :class:`ServiceConfig` alias; settings live on
  :class:`repro.runtime.RuntimeConfig` now (env-var and config-file
  overridable, with provenance via ``repro config show``).
* :mod:`repro.service.app` — the HTTP-facing shell around the shared
  :class:`repro.runtime.Resolver` (memory LRU → single-flight →
  disk → compute): admission control / backpressure and the endpoint
  handlers.
* :mod:`repro.service.metrics` — Prometheus-text counters, gauges and
  latency histograms behind ``GET /metrics``.
* :mod:`repro.service.http` — the stdlib asyncio HTTP/1.1 transport
  with graceful drain on SIGTERM.
* :mod:`repro.service.loadgen` — a closed-loop, zipf-skewed load
  generator (also ``python -m repro.service.loadgen``).

See ``docs/SERVICE.md`` for architecture, endpoints and tuning.
"""

from __future__ import annotations

import logging

from .app import (
    BadRequest,
    Overloaded,
    Resolution,
    ServiceState,
    handle_optimum,
    handle_sweep,
    job_from_request,
)
from .config import ServiceConfig, add_service_arguments, config_from_args
from .http import ServiceServer, serve
from .lru import LRUCache
from .metrics import MetricsRegistry
from .singleflight import SingleFlight

__all__ = [
    "BadRequest",
    "LRUCache",
    "MetricsRegistry",
    "Overloaded",
    "Resolution",
    "ServiceConfig",
    "ServiceServer",
    "ServiceState",
    "SingleFlight",
    "add_service_arguments",
    "config_from_args",
    "handle_optimum",
    "handle_sweep",
    "job_from_request",
    "serve",
]

logging.getLogger("repro.service").addHandler(logging.NullHandler())
