"""The asyncio HTTP/1.1 transport for ``repro serve`` (stdlib-only).

A deliberately small server — request-line + headers + Content-Length
bodies, keep-alive, JSON in/out — because the daemon's surface is six
endpoints:

* ``POST /v1/sweep``       — per-depth BIPS / watts / metric series;
* ``POST /v1/optimum``     — simulated (cubic-fit) vs analytic
  (theory-fit) optimum, side by side;
* ``POST /v1/search``      — start (or adopt) an async design-space
  search; answers immediately with its content-addressed id;
* ``GET  /v1/search/{id}`` — incremental search status (live registry or
  on-disk checkpoint);
* ``GET  /healthz``        — liveness + drain state (503 while draining);
* ``GET  /metrics``        — Prometheus text exposition.

Overload maps to ``429`` with a ``Retry-After`` header (admission
control lives in :mod:`repro.service.app`); malformed bodies map to
``400``.  ``SIGTERM``/``SIGINT`` trigger a graceful drain: stop
accepting, let in-flight requests finish (bounded by
``drain_timeout``), then exit.  Every request emits one structured
(JSON) access-log line on ``repro.service.access``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import signal
import time
from typing import Awaitable, Callable, Dict, Optional, Tuple

from .app import (
    BadRequest,
    Overloaded,
    ServiceState,
    handle_optimum,
    handle_search_status,
    handle_search_submit,
    handle_sweep,
)
from .search import UnknownSearch
from ..runtime.config import RuntimeConfig

__all__ = ["HttpError", "ServiceServer", "serve"]

logger = logging.getLogger("repro.service")
access_log = logging.getLogger("repro.service.access")

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_MAX_HEADER_BYTES = 16 * 1024
_MAX_HEADER_COUNT = 64


class HttpError(Exception):
    """An error that maps directly onto an HTTP status."""

    def __init__(self, status: int, message: str, headers: "Dict[str, str] | None" = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


async def _read_request(
    reader: asyncio.StreamReader, max_body: int
) -> "Optional[Tuple[str, str, Dict[str, str], bytes]]":
    """One request off the wire, or None on a cleanly closed connection."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "malformed request line")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await reader.readline()
        header_bytes += len(line)
        if header_bytes > _MAX_HEADER_BYTES or len(headers) > _MAX_HEADER_COUNT:
            raise HttpError(400, "header section too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _sep, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "invalid Content-Length") from None
        if length < 0:
            raise HttpError(400, "invalid Content-Length")
        if length > max_body:
            raise HttpError(413, f"body exceeds {max_body} bytes")
        body = await reader.readexactly(length)
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")
    return method.upper(), target.split("?", 1)[0], headers, body


def _encode_response(
    status: int,
    body: bytes,
    content_type: str,
    keep_alive: bool,
    extra_headers: "Dict[str, str] | None" = None,
) -> bytes:
    reason = _STATUS_TEXT.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def _json_body(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


Handler = Callable[[ServiceState, dict], Awaitable[dict]]


class ServiceServer:
    """Bind, accept, route; owns the drain sequence."""

    def __init__(self, state: "ServiceState | None" = None):
        self.state = state or ServiceState()
        self.config: RuntimeConfig = self.state.config
        self._server: "asyncio.base_events.Server | None" = None
        self._connections = 0
        self._post_routes: Dict[str, Handler] = {
            "/v1/sweep": handle_sweep,
            "/v1/optimum": handle_optimum,
            "/v1/search": handle_search_submit,
        }

    # -- lifecycle ----------------------------------------------------------
    @property
    def port(self) -> int:
        """The actually bound port (meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        await self.state.startup()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        logger.info(
            "repro serve listening on %s:%d (backend=%s, executor=%s x%d, "
            "concurrency=%d, queue=%d, lru=%d, disk=%s)",
            self.config.host, self.port, self.config.backend,
            self.config.executor, self.config.workers, self.config.concurrency,
            self.config.queue_limit, self.config.memory_entries,
            self.state.disk.directory if self.state.disk is not None else "off",
        )

    async def drain(self, timeout: "float | None" = None) -> bool:
        """Stop accepting, wait for in-flight work, release executors."""
        timeout = self.config.drain_timeout if timeout is None else timeout
        self.state.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = await self.state.wait_idle(timeout)
        if not drained:
            logger.warning(
                "drain timed out after %.1fs with %d request(s) in flight",
                timeout, self.state.admitted,
            )
        await self.state.shutdown()
        logger.info("repro serve drained (%s)", "clean" if drained else "timed out")
        return drained

    async def serve_forever(self, install_signals: bool = True) -> None:
        """Run until SIGTERM/SIGINT, then drain gracefully."""
        await self.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed = []
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, stop.set)
                    installed.append(signum)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # non-Unix event loops
        try:
            await stop.wait()
            logger.info("shutdown signal received; draining")
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.drain()

    # -- connection handling -------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        try:
            while True:
                try:
                    request = await _read_request(reader, self.config.max_body_bytes)
                except HttpError as exc:
                    await self._write(
                        writer, exc.status,
                        _json_body({"error": exc.message}), "application/json",
                        keep_alive=False, extra=exc.headers,
                    )
                    return
                if request is None:
                    return
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                    and not self.state.draining
                )
                status, payload, content_type, extra = await self._dispatch(
                    method, path, body
                )
                await self._write(
                    writer, status, payload, content_type, keep_alive, extra
                )
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # event-loop shutdown cancelled this connection
        finally:
            self._connections -= 1
            writer.close()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await writer.wait_closed()

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        started = time.perf_counter()
        status, response, content_type, extra = await self._route(method, path, body)
        elapsed = time.perf_counter() - started
        self.state.requests_total.inc(endpoint=path, status=str(status))
        self.state.request_seconds.observe(elapsed, endpoint=path)
        access_log.info(
            "%s",
            json.dumps(
                {
                    "method": method,
                    "path": path,
                    "status": status,
                    "duration_ms": round(elapsed * 1000.0, 3),
                },
                sort_keys=True,
            ),
        )
        return status, response, content_type, extra

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        if path == "/healthz":
            if method != "GET":
                return self._error(405, "use GET")
            health = self.state.health()
            status = 503 if self.state.draining else 200
            return status, _json_body(health), "application/json", {}
        if path == "/metrics":
            if method != "GET":
                return self._error(405, "use GET")
            text = self.state.metrics.render().encode("utf-8")
            return 200, text, "text/plain; version=0.0.4; charset=utf-8", {}
        if path.startswith("/v1/search/"):
            if method != "GET":
                return self._error(405, "use GET")
            search_id = path[len("/v1/search/"):]
            try:
                status = await handle_search_status(self.state, search_id)
            except UnknownSearch as exc:
                return self._error(404, str(exc))
            return 200, _json_body(status), "application/json", {}
        handler = self._post_routes.get(path)
        if handler is None:
            return self._error(404, f"no such endpoint: {path}")
        if method != "POST":
            return self._error(405, "use POST")
        try:
            parsed = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return self._error(400, f"invalid JSON body: {exc}")
        try:
            response = await handler(self.state, parsed)
        except BadRequest as exc:
            return self._error(400, str(exc))
        except Overloaded as exc:
            return self._error(
                429, str(exc), {"Retry-After": f"{exc.retry_after:g}"}
            )
        except Exception:
            logger.exception("unhandled error serving %s", path)
            return self._error(500, "internal error")
        return 200, _json_body(response), "application/json", {}

    @staticmethod
    def _error(
        status: int, message: str, extra: "Dict[str, str] | None" = None
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        return status, _json_body({"error": message}), "application/json", extra or {}

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
        keep_alive: bool,
        extra: "Dict[str, str] | None" = None,
    ) -> None:
        writer.write(_encode_response(status, body, content_type, keep_alive, extra))
        await writer.drain()


async def serve(config: "RuntimeConfig | None" = None) -> None:
    """Run the daemon until a shutdown signal (the ``repro serve`` body)."""
    server = ServiceServer(ServiceState(config))
    await server.serve_forever()
