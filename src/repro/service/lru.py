"""Compatibility re-export: :class:`LRUCache` moved to :mod:`repro.runtime`.

The in-memory hot tier is no longer service-specific — it is the top of
the shared :class:`~repro.runtime.resolver.Resolver` hierarchy used by
every entry point.  Import from :mod:`repro.runtime.lru` (or
:mod:`repro.runtime`) in new code.
"""

from ..runtime.lru import LRUCache

__all__ = ["LRUCache"]
