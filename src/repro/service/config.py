"""Serving configuration — now a façade over :mod:`repro.runtime`.

:class:`ServiceConfig` used to be the serving layer's own settings
object; every knob it carried now lives on
:class:`repro.runtime.config.RuntimeConfig`, which adds layered loading
(defaults < env < file < CLI flags) and per-field provenance
(``repro config show``).  The class remains as a **deprecated alias**
so existing imports and constructions keep working — constructing one
emits :class:`DeprecationWarning` and returns an object that is a
``RuntimeConfig`` in every useful sense.

The argparse helpers (:func:`add_service_arguments`,
:func:`config_from_args`) stay here because their flags are
serving-specific; they now build plain ``RuntimeConfig`` objects.

Migration:

* ``ServiceConfig(...)`` → ``RuntimeConfig(...)`` (same field names);
* ``ServiceConfig.from_env()`` → ``RuntimeConfig.from_env()``;
* ``$REPRO_SERVICE_CACHE_DIR`` → ``$REPRO_CACHE_DIR`` (the unified
  engine/daemon spelling; the old variable still works and warns, and
  an empty value still disables the disk tier).
"""

from __future__ import annotations

import argparse
import warnings

from ..pipeline.fastsim import BACKENDS
from ..runtime.config import EXECUTORS, SERVICE_ENV_PREFIX, RuntimeConfig

__all__ = [
    "ServiceConfig",
    "add_service_arguments",
    "config_from_args",
    "ENV_PREFIX",
]

ENV_PREFIX = SERVICE_ENV_PREFIX

_MIGRATION = (
    "ServiceConfig is deprecated; use repro.runtime.RuntimeConfig "
    "(same field names, plus config-file and provenance support)"
)


class ServiceConfig(RuntimeConfig):
    """Deprecated alias of :class:`~repro.runtime.config.RuntimeConfig`.

    Exists so pre-``repro.runtime`` code keeps importing and
    constructing it; every construction path (direct, ``from_env``,
    ``load``) warns once per call site.
    """

    def __post_init__(self) -> None:
        warnings.warn(_MIGRATION, DeprecationWarning, stacklevel=3)
        super().__post_init__()


def add_service_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``repro serve`` flags (defaults come from the config)."""
    defaults = RuntimeConfig()
    parser.add_argument("--host", default=None,
                        help=f"bind address (default: {defaults.host})")
    parser.add_argument("--port", type=int, default=None,
                        help=f"bind port, 0 for an OS-assigned one "
                        f"(default: {defaults.port})")
    parser.add_argument("--backend", choices=BACKENDS, default=None,
                        help="default simulation backend for requests "
                        f"(default: {defaults.backend})")
    parser.add_argument("--executor", choices=EXECUTORS, default=None,
                        help="compute executor for cache misses "
                        f"(default: {defaults.executor})")
    parser.add_argument("--workers", type=int, default=None,
                        help=f"executor worker count (default: {defaults.workers})")
    parser.add_argument("--concurrency", type=int, default=None,
                        help="cache-miss computations in flight at once "
                        f"(default: {defaults.concurrency})")
    parser.add_argument("--queue-limit", type=int, default=None,
                        help="waiting requests beyond --concurrency before "
                        f"429 (default: {defaults.queue_limit})")
    parser.add_argument("--memory-entries", type=int, default=None,
                        help="in-memory LRU capacity in payloads "
                        f"(default: {defaults.memory_entries})")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="disk result-cache directory (default: "
                        "$REPRO_CACHE_DIR or ~/.cache/repro/engine)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="serve from memory only; skip the disk cache layer")
    parser.add_argument("--drain-timeout", type=float, default=None,
                        help="seconds to wait for in-flight requests on "
                        f"SIGTERM (default: {defaults.drain_timeout})")
    parser.add_argument("--log-level", default=None,
                        help=f"logging level (default: {defaults.log_level})")
    parser.add_argument("--config", default=None, metavar="FILE",
                        help="config file (JSON, or TOML on Python >= 3.11); "
                        "overrides env vars, is overridden by flags "
                        "(default: $REPRO_CONFIG)")


def config_from_args(args: argparse.Namespace) -> RuntimeConfig:
    """Build the effective config: defaults < env < file < given flags."""
    flags = dict(
        host=args.host,
        port=args.port,
        backend=args.backend,
        executor=args.executor,
        workers=args.workers,
        concurrency=args.concurrency,
        queue_limit=args.queue_limit,
        memory_entries=args.memory_entries,
        cache_dir=args.cache_dir,
        drain_timeout=args.drain_timeout,
        log_level=args.log_level,
    )
    config = RuntimeConfig.load(file=getattr(args, "config", None), flags=flags)
    if getattr(args, "no_disk_cache", False):
        config = config.with_values(_source="flag:--no-disk-cache", cache_dir=None)
    return config
