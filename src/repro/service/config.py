"""The one place serving defaults live: :class:`ServiceConfig`.

Every serving entry point — ``repro serve``, the load generator, the
service benchmark, the tests — builds its knobs from this dataclass
instead of scattering argparse defaults, so the backend default
(``"fast"``), queue bounds and cache sizing agree everywhere.

Precedence, lowest to highest:

1. the dataclass defaults below;
2. ``REPRO_SERVICE_*`` environment variables (:meth:`ServiceConfig.from_env`);
3. explicit keyword/CLI overrides (``config_from_args`` only overrides
   fields whose flags were actually given).

The disk-cache directory additionally honours the engine's own
``$REPRO_CACHE_DIR`` convention via
:func:`repro.engine.cache.default_cache_dir`; set
``REPRO_SERVICE_CACHE_DIR=""`` (empty) or pass ``--no-disk-cache`` to
run memory-only.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
from dataclasses import dataclass
from typing import Optional

from ..engine.cache import default_cache_dir
from ..pipeline.fastsim import BACKENDS

__all__ = [
    "ServiceConfig",
    "add_service_arguments",
    "config_from_args",
    "ENV_PREFIX",
]

ENV_PREFIX = "REPRO_SERVICE_"

EXECUTORS = ("thread", "process")
"""Recognised compute-executor kinds."""


@dataclass(frozen=True)
class ServiceConfig:
    """Serving-layer knobs shared by the daemon, the load generator and tests.

    Attributes:
        host: bind address.
        port: bind port (0 lets the OS pick; the bound port is reported).
        backend: default simulation backend for requests that do not name
            one — ``"fast"`` for serving (the engines are validated
            equivalent; requests may still ask for ``"reference"``).
        executor: ``"thread"`` or ``"process"`` — where cache misses are
            computed.  Threads are simplest; processes buy real CPU
            parallelism for compute-heavy mixes.
        workers: executor worker count.
        concurrency: cache-miss computations allowed in flight at once;
            further admitted requests wait in the queue.
        queue_limit: admitted-but-waiting requests allowed beyond
            ``concurrency``; past that the daemon answers 429.
        memory_entries: in-memory LRU capacity in payloads (0 disables
            the memory layer).
        cache_dir: disk result-cache directory (None disables the disk
            layer; default follows the engine's resolution rules).
        drain_timeout: seconds to wait for in-flight requests on SIGTERM.
        retry_after: seconds advertised in 429 ``Retry-After`` headers.
        max_body_bytes: largest accepted request body.
        max_trace_length: largest per-request trace length accepted.
        log_level: root logging level for ``repro serve``.
    """

    host: str = "127.0.0.1"
    port: int = 8023
    backend: str = "fast"
    executor: str = "thread"
    workers: int = 4
    concurrency: int = 4
    queue_limit: int = 64
    memory_entries: int = 512
    cache_dir: "str | None" = dataclasses.field(
        default_factory=lambda: str(default_cache_dir())
    )
    drain_timeout: float = 10.0
    retry_after: float = 1.0
    max_body_bytes: int = 64 * 1024
    max_trace_length: int = 100_000
    log_level: str = "INFO"

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; choose from {BACKENDS}")
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; choose from {EXECUTORS}"
            )
        for name in ("workers", "concurrency"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)!r}")
        for name in ("port", "queue_limit", "memory_entries"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)!r}")
        for name in ("drain_timeout", "retry_after"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)!r}")

    @property
    def admission_limit(self) -> int:
        """Admitted leaders allowed in flight before new ones get 429."""
        return self.concurrency + self.queue_limit

    @classmethod
    def from_env(cls, environ: "Optional[dict]" = None, **overrides) -> "ServiceConfig":
        """Defaults, patched by ``REPRO_SERVICE_*`` vars, then ``overrides``.

        Overrides passed as None are ignored (convenient for argparse
        namespaces where an un-given flag stays None).
        """
        environ = os.environ if environ is None else environ
        values: dict = {}
        for field in dataclasses.fields(cls):
            raw = environ.get(ENV_PREFIX + field.name.upper())
            if raw is None:
                continue
            if field.name == "cache_dir":
                values["cache_dir"] = raw or None
            elif field.type in ("int", int):
                values[field.name] = int(raw)
            elif field.type in ("float", float):
                values[field.name] = float(raw)
            else:
                values[field.name] = raw
        values.update({k: v for k, v in overrides.items() if v is not None})
        return cls(**values)


def add_service_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``repro serve`` flags (defaults come from the config)."""
    defaults = ServiceConfig()
    parser.add_argument("--host", default=None,
                        help=f"bind address (default: {defaults.host})")
    parser.add_argument("--port", type=int, default=None,
                        help=f"bind port, 0 for an OS-assigned one "
                        f"(default: {defaults.port})")
    parser.add_argument("--backend", choices=BACKENDS, default=None,
                        help="default simulation backend for requests "
                        f"(default: {defaults.backend})")
    parser.add_argument("--executor", choices=EXECUTORS, default=None,
                        help="compute executor for cache misses "
                        f"(default: {defaults.executor})")
    parser.add_argument("--workers", type=int, default=None,
                        help=f"executor worker count (default: {defaults.workers})")
    parser.add_argument("--concurrency", type=int, default=None,
                        help="cache-miss computations in flight at once "
                        f"(default: {defaults.concurrency})")
    parser.add_argument("--queue-limit", type=int, default=None,
                        help="waiting requests beyond --concurrency before "
                        f"429 (default: {defaults.queue_limit})")
    parser.add_argument("--memory-entries", type=int, default=None,
                        help="in-memory LRU capacity in payloads "
                        f"(default: {defaults.memory_entries})")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="disk result-cache directory (default: "
                        "$REPRO_CACHE_DIR or ~/.cache/repro/engine)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="serve from memory only; skip the disk cache layer")
    parser.add_argument("--drain-timeout", type=float, default=None,
                        help="seconds to wait for in-flight requests on "
                        f"SIGTERM (default: {defaults.drain_timeout})")
    parser.add_argument("--log-level", default=None,
                        help=f"logging level (default: {defaults.log_level})")


def config_from_args(args: argparse.Namespace) -> ServiceConfig:
    """Build the effective config: defaults < environment < given flags."""
    overrides = dict(
        host=args.host,
        port=args.port,
        backend=args.backend,
        executor=args.executor,
        workers=args.workers,
        concurrency=args.concurrency,
        queue_limit=args.queue_limit,
        memory_entries=args.memory_entries,
        cache_dir=args.cache_dir,
        drain_timeout=args.drain_timeout,
        log_level=args.log_level,
    )
    config = ServiceConfig.from_env(**overrides)
    if getattr(args, "no_disk_cache", False):
        config = dataclasses.replace(config, cache_dir=None)
    return config
