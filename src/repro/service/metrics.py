"""Minimal Prometheus-style instrumentation for the serving layer.

Stdlib-only counterparts of the three metric families ``/metrics``
exposes: monotonically increasing :class:`Counter`\\ s, point-in-time
:class:`Gauge`\\ s (stored or callback-backed) and cumulative-bucket
:class:`Histogram`\\ s.  All are label-aware; rendering follows the
Prometheus text exposition format (``# HELP`` / ``# TYPE`` preamble,
``name{label="value"} sample`` lines, histogram ``_bucket``/``_sum``/
``_count`` series with a ``+Inf`` bucket).

Single-threaded like the rest of the serving layer: every mutation
happens on the asyncio event loop, so increments are plain ``+=``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
"""Latency buckets (seconds): sub-ms memory hits through multi-second computes."""

Labels = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, str]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: Labels, extra: "Tuple[Tuple[str, str], ...]" = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing sample per label set."""

    kind = "counter"

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help_text = help_text
        self._samples: Dict[Labels, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount!r}")
        key = _labelset(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._samples.get(_labelset(labels), 0.0)

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help_text}", f"# TYPE {self.name} {self.kind}"]
        for labels, value in sorted(self._samples.items()):
            lines.append(f"{self.name}{_render_labels(labels)} {_format_value(value)}")
        if not self._samples:
            lines.append(f"{self.name} 0")
        return lines


class Gauge:
    """A settable point-in-time sample, optionally callback-backed."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        callback: "Optional[Callable[[], float]]" = None,
    ):
        self.name = name
        self.help_text = help_text
        self.callback = callback
        self._samples: Dict[Labels, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._samples[_labelset(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _labelset(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        if self.callback is not None:
            return float(self.callback())
        return self._samples.get(_labelset(labels), 0.0)

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help_text}", f"# TYPE {self.name} {self.kind}"]
        if self.callback is not None:
            lines.append(f"{self.name} {_format_value(float(self.callback()))}")
            return lines
        for labels, value in sorted(self._samples.items()):
            lines.append(f"{self.name}{_render_labels(labels)} {_format_value(value)}")
        if not self._samples:
            lines.append(f"{self.name} 0")
        return lines


class Histogram:
    """Cumulative-bucket distribution per label set (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one finite bucket")
        self.name = name
        self.help_text = help_text
        self.bounds = bounds
        self._counts: Dict[Labels, List[int]] = {}
        self._sums: Dict[Labels, float] = {}
        self._totals: Dict[Labels, int] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _labelset(labels)
        counts = self._counts.setdefault(key, [0] * (len(self.bounds) + 1))
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
        self._sums[key] = self._sums.get(key, 0.0) + float(value)
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: str) -> int:
        return self._totals.get(_labelset(labels), 0)

    def sum(self, **labels: str) -> float:
        return self._sums.get(_labelset(labels), 0.0)

    def quantile(self, q: float, **labels: str) -> float:
        """Bucket-upper-bound estimate of the ``q`` quantile (diagnostic)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        key = _labelset(labels)
        counts = self._counts.get(key)
        total = self._totals.get(key, 0)
        if not counts or total == 0:
            return math.nan
        rank = q * total
        cumulative = 0
        for index, bound in enumerate(self.bounds):
            cumulative += counts[index]
            if cumulative >= rank:
                return bound
        return math.inf

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help_text}", f"# TYPE {self.name} {self.kind}"]
        for labels in sorted(self._counts):
            counts = self._counts[labels]
            cumulative = 0
            for index, bound in enumerate(self.bounds):
                cumulative += counts[index]
                le = (("le", _format_value(bound)),)
                lines.append(
                    f"{self.name}_bucket{_render_labels(labels, le)} {cumulative}"
                )
            cumulative += counts[-1]
            lines.append(
                f'{self.name}_bucket{_render_labels(labels, (("le", "+Inf"),))} '
                f"{cumulative}"
            )
            lines.append(
                f"{self.name}_sum{_render_labels(labels)} "
                f"{_format_value(self._sums[labels])}"
            )
            lines.append(f"{self.name}_count{_render_labels(labels)} {cumulative}")
        return lines


class MetricsRegistry:
    """Orders and renders the service's metric families."""

    def __init__(self) -> None:
        self._metrics: Dict[str, "Counter | Gauge | Histogram"] = {}

    def _register(self, metric):
        if metric.name in self._metrics:
            raise ValueError(f"metric {metric.name!r} already registered")
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str) -> Counter:
        return self._register(Counter(name, help_text))

    def gauge(
        self,
        name: str,
        help_text: str,
        callback: "Optional[Callable[[], float]]" = None,
    ) -> Gauge:
        return self._register(Gauge(name, help_text, callback))

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help_text, buckets))

    def get(self, name: str):
        return self._metrics[name]

    def render(self) -> str:
        """The full ``/metrics`` document (text exposition format)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render())
        return "\n".join(lines) + "\n"
