"""Compatibility re-export: :class:`SingleFlight` moved to :mod:`repro.runtime`.

Request coalescing is part of the shared
:class:`~repro.runtime.resolver.Resolver` tier stack now.  Import from
:mod:`repro.runtime.singleflight` (or :mod:`repro.runtime`) in new code.
"""

from ..runtime.singleflight import SingleFlight

__all__ = ["SingleFlight"]
